//! Logical collective-communication algorithms for C-Cube.
//!
//! This crate implements the *logical topology* side of the paper
//! "Logical/Physical Topology-Aware Collective Communication in Deep
//! Learning Training" (HPCA 2023): the AllReduce algorithms themselves,
//! independent of any particular machine.
//!
//! The algorithms are expressed as a [`Schedule`] — a dependency DAG of
//! point-to-point [`Transfer`]s — that downstream crates consume:
//! `ccube-sim` replays a schedule over a physical topology with channel
//! contention, and `ccube-runtime` executes it with real buffers and
//! threads.
//!
//! Implemented algorithms (one builder each):
//!
//! * [`ring_allreduce`] — the classic bandwidth-optimal ring
//!   (Reduce-Scatter + AllGather), the paper's `R` baseline.
//! * [`tree_allreduce`] with `overlap = `[`Overlap::None`] — the pipelined
//!   tree algorithm (reduction up, then broadcast down), the paper's `B`
//!   when run on a [`DoubleBinaryTree`].
//! * [`tree_allreduce`] with `overlap = `[`Overlap::ReductionBroadcast`] —
//!   the paper's **overlapped tree** (`C1`): the broadcast of each chunk
//!   starts as soon as that chunk is fully reduced at the root, cutting
//!   the effective pipeline depth from `2(log P + K)` to `2 log P + K`.
//!
//! The [`cost`] module contains the closed-form α+β models of the paper's
//! §II-C (Eq. 1–7), used for Fig. 4 and the model-vs-measurement
//! comparison of Fig. 12(b). The [`verify`] module proves schedules
//! correct symbolically and replays them in unit-time steps (reproducing
//! the 10-step vs 7-step contrast of the paper's Fig. 5). The
//! [`embedding`] module maps logical edges onto physical channels of a
//! `ccube-topology` machine, allocating the DGX-1's doubled NVLinks and
//! detour routes exactly as §IV describes.
//!
//! # Examples
//!
//! ```
//! use ccube_collectives::{
//!     tree_allreduce, Chunking, DoubleBinaryTree, Overlap, verify,
//! };
//! use ccube_topology::ByteSize;
//!
//! let trees = DoubleBinaryTree::new(8).expect("8 ranks is valid");
//! let chunking = Chunking::even(ByteSize::mib(64), 16);
//! let schedule = tree_allreduce(trees.trees(), &chunking, Overlap::ReductionBroadcast);
//! // Every rank ends with the full reduction, delivered in order per tree.
//! verify::check_allreduce(&schedule).expect("schedule is a correct AllReduce");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod chunk;
pub mod cost;
pub mod embedding;
pub mod lowering;
pub mod physical;
pub mod primitives;
mod rank;
mod ring;
mod schedule;
mod tree;
mod tree_schedule;
pub mod verify;

pub use analyze::{AnalyzeOptions, Diagnostic, LintCode, LintReport, Severity, Span};
pub use chunk::{ChunkId, Chunking};
pub use embedding::{EdgeKey, Embedding, EmbeddingError};
pub use lowering::{
    lower_schedule, lower_to_ports, LinkTiming, LowerError, PreparedLowering, TransferSpec,
};
pub use physical::{
    analyze_physical, fabric_lower_bound, gate_physical, makespan_lower_bound,
    PhysicalAnalyzeOptions,
};
pub use rank::Rank;
pub use ring::{ring_allreduce, ring_allreduce_multi};
pub use schedule::{Phase, Schedule, ScheduleStats, Transfer, TransferId, TreeIndex};
pub use tree::{BinaryTree, DoubleBinaryTree, TreeError};
pub use tree_schedule::{tree_allreduce, Overlap};

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cost::CostParams;
    pub use crate::{
        ring_allreduce, ring_allreduce_multi, tree_allreduce, BinaryTree, ChunkId, Chunking,
        DoubleBinaryTree, Embedding, Overlap, Phase, Rank, Schedule, Transfer, TransferId,
        TreeIndex,
    };
}
