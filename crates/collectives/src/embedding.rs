//! Embedding of logical schedules onto physical topologies.
//!
//! An [`Embedding`] assigns every distinct logical edge `(src, dst, tree)`
//! of a [`Schedule`] a static physical [`Route`]: a dedicated NVLink
//! channel where one is free, one of the doubled NVLinks when two trees
//! use the same GPU pair, a **detour route** through an intermediate GPU
//! when no direct link exists (paper §IV-A), or — only if permitted — the
//! PCIe host bridge.
//!
//! Because the allocation is per `(edge, tree)` and spreads load across
//! parallel channels, embedding the overlapped double tree on the DGX-1
//! automatically lands the conflicting tree edges (e.g. GPU2–GPU3) on the
//! machine's *two separate* NVLinks — the physical-topology trick of the
//! paper's Fig. 10.

use crate::rank::Rank;
use crate::schedule::{Schedule, TreeIndex};
use ccube_topology::{ChannelId, GpuId, Route, Router, Topology, TopologyError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A logical directed edge of a schedule, qualified by tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeKey {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Which logical tree the edge belongs to.
    pub tree: TreeIndex,
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}@{}", self.src, self.dst, self.tree)
    }
}

/// Errors from embedding a schedule onto a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmbeddingError {
    /// The schedule has more ranks than the topology has GPUs.
    RankCountMismatch {
        /// Ranks in the schedule.
        ranks: usize,
        /// GPUs in the topology.
        gpus: usize,
    },
    /// A logical edge could not be routed.
    Routing(TopologyError),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::RankCountMismatch { ranks, gpus } => {
                write!(f, "schedule has {ranks} ranks but topology has {gpus} gpus")
            }
            EmbeddingError::Routing(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl Error for EmbeddingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmbeddingError::Routing(e) => Some(e),
            EmbeddingError::RankCountMismatch { .. } => None,
        }
    }
}

impl From<TopologyError> for EmbeddingError {
    fn from(e: TopologyError) -> Self {
        EmbeddingError::Routing(e)
    }
}

/// A complete logical-to-physical mapping for one schedule.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Overlap, Embedding};
/// use ccube_topology::dgx1;
/// use ccube_topology::ByteSize;
///
/// let topo = dgx1();
/// let dt = DoubleBinaryTree::new(8).unwrap();
/// let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::mib(64), 16),
///                        Overlap::ReductionBroadcast);
/// let emb = Embedding::identity(&topo, &s).unwrap();
/// // The DGX-1 embedding stays off the host bridge entirely.
/// assert!(emb.routes().values().all(|r| r.class() != ccube_topology::ChannelClass::HostBridge));
/// ```
#[derive(Debug, Clone)]
pub struct Embedding {
    rank_to_gpu: Vec<GpuId>,
    routes: HashMap<EdgeKey, Route>,
}

impl Embedding {
    /// Embeds `schedule` on `topo` with the identity rank→GPU mapping,
    /// refusing host-bridge routes (NVLink + detours only, like the
    /// paper's implementation).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RankCountMismatch`] if the schedule needs
    /// more GPUs than the topology has, or [`EmbeddingError::Routing`] if
    /// some edge cannot be routed without the host bridge.
    pub fn identity(topo: &Topology, schedule: &Schedule) -> Result<Self, EmbeddingError> {
        let mapping: Vec<GpuId> = (0..schedule.num_ranks() as u32).map(GpuId).collect();
        Self::with_mapping(topo, schedule, mapping, false)
    }

    /// Embeds with the identity mapping, permitting host-bridge fallback —
    /// the configuration the paper's baseline would have been forced into
    /// without detour routes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Embedding::identity`], except host-bridge
    /// routes are accepted instead of rejected.
    pub fn identity_with_host(
        topo: &Topology,
        schedule: &Schedule,
    ) -> Result<Self, EmbeddingError> {
        let mapping: Vec<GpuId> = (0..schedule.num_ranks() as u32).map(GpuId).collect();
        Self::with_mapping(topo, schedule, mapping, true)
    }

    /// Embeds with an explicit rank→GPU mapping.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RankCountMismatch`] if `mapping` is
    /// shorter than the rank count or maps to missing GPUs, and
    /// [`EmbeddingError::Routing`] if an edge cannot be routed.
    pub fn with_mapping(
        topo: &Topology,
        schedule: &Schedule,
        mapping: Vec<GpuId>,
        allow_host: bool,
    ) -> Result<Self, EmbeddingError> {
        if mapping.len() < schedule.num_ranks() || schedule.num_ranks() > topo.num_gpus() {
            return Err(EmbeddingError::RankCountMismatch {
                ranks: schedule.num_ranks(),
                gpus: mapping.len().min(topo.num_gpus()),
            });
        }
        for &g in &mapping {
            topo.check_gpu(g)?;
        }
        let mut router = if allow_host {
            Router::new(topo)
        } else {
            Router::without_host_fallback(topo)
        };
        // Two-pass allocation: directly connected edges claim their
        // channels first, so the load-aware detour selection in the second
        // pass steers around them (static routing, as in the paper's
        // dedicated forwarding kernels).
        let edges = schedule.logical_edges();
        let mut routes = HashMap::new();
        for pass in 0..2 {
            for &(src, dst, tree) in &edges {
                let sg = mapping[src.index()];
                let dg = mapping[dst.index()];
                // "Direct" means a real GPU-to-GPU link; the host bridge
                // connects everything and must not count.
                let direct = topo
                    .channels_between(sg, dg)
                    .into_iter()
                    .any(|c| topo.channel(c).class() != ccube_topology::ChannelClass::HostBridge);
                if (pass == 0) != direct {
                    continue;
                }
                let route = router.allocate(sg, dg)?;
                routes.insert(EdgeKey { src, dst, tree }, route);
            }
        }
        Ok(Embedding {
            rank_to_gpu: mapping,
            routes,
        })
    }

    /// The DGX-1 rank placement for the double-tree algorithms
    /// (`[0, 4, 7, 5, 6, 3, 2, 1]`), chosen so that
    ///
    /// * every logical pair used by **both** trees (in the same channel
    ///   direction, the conflict of paper §IV-A) lands on one of the
    ///   machine's *doubled* NVLink pairs, and
    /// * the two cross-quad logical edges with no direct NVLink take
    ///   detour routes whose hop channels are otherwise unused,
    ///
    /// yielding a completely conflict-free embedding of the overlapped
    /// double tree — the physical-topology awareness of the paper's
    /// Fig. 10(c), where two GPUs serve as dedicated detour forwarders.
    pub fn dgx1_double_tree_mapping() -> Vec<GpuId> {
        [0u32, 4, 7, 5, 6, 3, 2, 1].into_iter().map(GpuId).collect()
    }

    /// Embeds a double-tree schedule on the DGX-1 using
    /// [`Embedding::dgx1_double_tree_mapping`], NVLink + detours only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Embedding::identity`].
    pub fn dgx1_double_tree(topo: &Topology, schedule: &Schedule) -> Result<Self, EmbeddingError> {
        Self::with_mapping(topo, schedule, Self::dgx1_double_tree_mapping(), false)
    }

    /// Embeds `schedule` on a [`hierarchical`](ccube_topology::hierarchical)
    /// topology: every logical edge occupies the sender's NIC injection
    /// channel and the receiver's NIC ejection channel.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::RankCountMismatch`] if the schedule needs
    /// more nodes than the topology has.
    pub fn nic(topo: &Topology, schedule: &Schedule) -> Result<Self, EmbeddingError> {
        if schedule.num_ranks() > topo.num_gpus() {
            return Err(EmbeddingError::RankCountMismatch {
                ranks: schedule.num_ranks(),
                gpus: topo.num_gpus(),
            });
        }
        let mapping: Vec<GpuId> = (0..schedule.num_ranks() as u32).map(GpuId).collect();
        let mut routes = HashMap::new();
        for (src, dst, tree) in schedule.logical_edges() {
            let sg = mapping[src.index()];
            let dg = mapping[dst.index()];
            let path = ccube_topology::nic_path(sg, dg);
            routes.insert(
                EdgeKey { src, dst, tree },
                Route::multi(sg, dg, path, ccube_topology::ChannelClass::Nic),
            );
        }
        Ok(Embedding {
            rank_to_gpu: mapping,
            routes,
        })
    }

    /// The GPU a rank is placed on.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn gpu_of(&self, rank: Rank) -> GpuId {
        self.rank_to_gpu[rank.index()]
    }

    /// The route assigned to a logical edge, if that edge was embedded.
    pub fn route(&self, edge: &EdgeKey) -> Option<&Route> {
        self.routes.get(edge)
    }

    /// All edge→route assignments.
    pub fn routes(&self) -> &HashMap<EdgeKey, Route> {
        &self.routes
    }

    /// Overrides (or adds) the route for one logical edge.
    ///
    /// This is the hook the static analyzer's tests and the `ccube lint`
    /// demo cases use to construct deliberately conflicting or invalid
    /// embeddings; the constructors never produce such routes themselves.
    /// No validation is performed — run the route through
    /// [`analyze::analyze_embedded`](crate::analyze::analyze_embedded)
    /// (or at least [`analyze::gate`](crate::analyze::gate)) afterwards.
    pub fn set_route(&mut self, edge: EdgeKey, route: Route) {
        self.routes.insert(edge, route);
    }

    /// Pairs of distinct edges that share a physical channel. Empty for a
    /// conflict-free embedding (which is what the overlapped double tree
    /// needs).
    pub fn conflicts(&self) -> Vec<(EdgeKey, EdgeKey, ChannelId)> {
        let mut by_channel: HashMap<ChannelId, Vec<EdgeKey>> = HashMap::new();
        for (edge, route) in &self.routes {
            for &c in route.channels() {
                by_channel.entry(c).or_default().push(*edge);
            }
        }
        let mut out = Vec::new();
        for (c, edges) in by_channel {
            for i in 0..edges.len() {
                for j in (i + 1)..edges.len() {
                    out.push((edges[i], edges[j], c));
                }
            }
        }
        out
    }

    /// How many detour routes each GPU forwards (the load that costs the
    /// paper's Fig. 15 detour nodes 3–4% of performance).
    pub fn forwarding_load(&self) -> HashMap<GpuId, usize> {
        let mut load = HashMap::new();
        for route in self.routes.values() {
            if let Some(via) = route.via() {
                *load.entry(via).or_insert(0) += 1;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunking;
    use crate::ring::ring_allreduce;
    use crate::tree::DoubleBinaryTree;
    use crate::tree_schedule::{tree_allreduce, Overlap};
    use ccube_topology::{dgx1, ByteSize, ChannelClass};

    fn double_tree_schedule() -> Schedule {
        let dt = DoubleBinaryTree::new(8).unwrap();
        tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(64), 16),
            Overlap::ReductionBroadcast,
        )
    }

    #[test]
    fn dgx1_double_tree_embeds_without_host() {
        let topo = dgx1();
        let emb = Embedding::identity(&topo, &double_tree_schedule()).unwrap();
        for r in emb.routes().values() {
            assert_ne!(r.class(), ChannelClass::HostBridge);
        }
    }

    #[test]
    fn dgx1_double_tree_embedding_is_conflict_free() {
        // The point of the physical-topology-aware placement: the two
        // trees of the overlapped double tree never share a channel — the
        // shared logical pairs sit on doubled NVLinks and the detours use
        // otherwise idle links (paper Fig. 10(c)).
        let topo = dgx1();
        let s = double_tree_schedule();
        let emb = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let conflicts = emb.conflicts();
        assert!(
            conflicts.is_empty(),
            "found {} conflicts, e.g. {:?}",
            conflicts.len(),
            conflicts.first()
        );
    }

    #[test]
    fn dgx1_double_tree_uses_two_detour_forwarders() {
        // Like the paper's implementation (Fig. 15: GPUs 0 and 1), exactly
        // two GPUs serve as detour intermediates, one per logical
        // cross-quad edge pair.
        let topo = dgx1();
        let s = double_tree_schedule();
        let emb = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let load = emb.forwarding_load();
        assert_eq!(load.len(), 2, "forwarders: {load:?}");
        assert!(
            load.values().all(|&l| l == 2),
            "each forwards both directions"
        );
    }

    #[test]
    fn quad_flip_beats_identity_placement() {
        // The flipped placement should never have more channel sharing
        // than the naive identity placement.
        let topo = dgx1();
        let s = double_tree_schedule();
        let identity = Embedding::identity(&topo, &s).unwrap();
        let flipped = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        assert!(flipped.conflicts().len() <= identity.conflicts().len());
    }

    #[test]
    fn dgx1_embedding_uses_detours() {
        let topo = dgx1();
        let emb = Embedding::identity(&topo, &double_tree_schedule()).unwrap();
        let load = emb.forwarding_load();
        // The in-order double tree on the DGX-1 needs cross-quad edges that
        // have no direct NVLink, so at least one detour must appear.
        assert!(!load.is_empty(), "expected at least one detour route");
    }

    #[test]
    fn ring_embeds_on_dgx1() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(64));
        let emb = Embedding::identity(&topo, &s).unwrap();
        assert_eq!(emb.routes().len(), s.logical_edges().len());
    }

    #[test]
    fn mismatched_rank_count_is_rejected() {
        let topo = dgx1();
        let s = ring_allreduce(16, ByteSize::mib(1));
        assert!(matches!(
            Embedding::identity(&topo, &s),
            Err(EmbeddingError::RankCountMismatch { .. })
        ));
    }

    #[test]
    fn nic_embedding_uses_injection_ejection_pairs() {
        let topo = ccube_topology::hierarchical(16);
        let s = ring_allreduce(16, ByteSize::mib(1));
        let emb = Embedding::nic(&topo, &s).unwrap();
        for (edge, route) in emb.routes() {
            assert_eq!(route.channels().len(), 2, "{edge}");
        }
    }

    #[test]
    fn gpu_of_is_identity_here() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(1));
        let emb = Embedding::identity(&topo, &s).unwrap();
        for r in 0..8 {
            assert_eq!(emb.gpu_of(Rank(r)), GpuId(r));
        }
    }
}
