//! Logical rank identifiers.

use std::fmt;

/// A logical participant in a collective operation.
///
/// Ranks are the *logical* identity of a GPU inside a collective
/// algorithm; the [`embedding`](crate::embedding) module maps them onto
/// physical [`GpuId`](ccube_topology::GpuId)s (identity-mapped on the
/// DGX-1, but kept distinct in the type system so logical algorithms can
/// never accidentally depend on physical placement).
///
/// # Examples
///
/// ```
/// use ccube_collectives::Rank;
/// let r = Rank(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(format!("{r}"), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all ranks `0..p`.
    pub fn all(p: usize) -> impl Iterator<Item = Rank> {
        (0..p as u32).map(Rank)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(v: u32) -> Self {
        Rank(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enumerates_ranks() {
        let v: Vec<Rank> = Rank::all(3).collect();
        assert_eq!(v, vec![Rank(0), Rank(1), Rank(2)]);
    }
}
