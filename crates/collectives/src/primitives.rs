//! Standalone collective primitives.
//!
//! AllReduce is the composition Reduce∘Broadcast (tree algorithm) or
//! ReduceScatter∘AllGather (ring algorithm); NCCL exposes all four as
//! separate collectives and the paper's cost model (Eq. 1/3) prices the
//! phases individually. This module builds each phase as a standalone
//! [`Schedule`], with its own correctness checkers in
//! [`verify`](crate::verify).
//!
//! Like the full AllReduce builders, every primitive supports chunked
//! pipelining, and the tree primitives accept multiple trees with
//! parity-interleaved chunks.

use crate::chunk::{ChunkId, Chunking};
use crate::rank::Rank;
use crate::schedule::{Phase, Schedule, ScheduleBuilder, TransferId, TreeIndex};
use crate::tree::BinaryTree;
use ccube_topology::ByteSize;
use std::collections::HashMap;

/// Builds a pipelined tree **broadcast**: the root's buffer flows down
/// the tree chunk by chunk; after completion every rank holds the root's
/// data.
///
/// Cost: `(log P + K - 1 + 1)` steps ≈ Eq. 3's single phase.
///
/// # Panics
///
/// Panics if `trees` is empty or the trees disagree on rank count.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{primitives, verify, BinaryTree, Chunking};
/// use ccube_topology::ByteSize;
///
/// let tree = BinaryTree::inorder(8).unwrap();
/// let s = primitives::tree_broadcast(
///     std::slice::from_ref(&tree),
///     &Chunking::even(ByteSize::mib(8), 8),
/// );
/// verify::check_broadcast(&s).unwrap();
/// ```
pub fn tree_broadcast(trees: &[BinaryTree], chunking: &Chunking) -> Schedule {
    assert!(!trees.is_empty(), "need at least one tree");
    let p = trees[0].num_ranks();
    assert!(trees.iter().all(|t| t.num_ranks() == p));
    let mut b = ScheduleBuilder::new();
    let mut bc: HashMap<(usize, ChunkId, u32), TransferId> = HashMap::new();
    for (ti, tree) in trees.iter().enumerate() {
        let top_down = tree.top_down();
        for c in chunking.ids().filter(|c| c.index() % trees.len() == ti) {
            for &r in &top_down {
                for &child in tree.children(r) {
                    let deps = match tree.parent(r) {
                        Some(_) => vec![bc[&(ti, c, r.0)]],
                        None => vec![],
                    };
                    let id = b.push(
                        r,
                        child,
                        c,
                        chunking.size(c),
                        Phase::Broadcast,
                        TreeIndex(ti as u8),
                        deps,
                    );
                    bc.insert((ti, c, child.0), id);
                }
            }
        }
    }
    b.finish("tree-broadcast", p, chunking.clone())
}

/// Builds a pipelined tree **reduce**: every rank's buffer is summed up
/// the tree; after completion the root of each tree holds the full
/// reduction of that tree's chunks.
///
/// # Panics
///
/// Panics if `trees` is empty or the trees disagree on rank count.
pub fn tree_reduce(trees: &[BinaryTree], chunking: &Chunking) -> Schedule {
    assert!(!trees.is_empty(), "need at least one tree");
    let p = trees[0].num_ranks();
    assert!(trees.iter().all(|t| t.num_ranks() == p));
    let mut b = ScheduleBuilder::new();
    let mut red: HashMap<(usize, ChunkId, u32), TransferId> = HashMap::new();
    for (ti, tree) in trees.iter().enumerate() {
        let bottom_up = tree.bottom_up();
        for c in chunking.ids().filter(|c| c.index() % trees.len() == ti) {
            for &r in &bottom_up {
                let Some(parent) = tree.parent(r) else {
                    continue;
                };
                let deps = tree
                    .children(r)
                    .iter()
                    .map(|&child| red[&(ti, c, child.0)])
                    .collect();
                let id = b.push(
                    r,
                    parent,
                    c,
                    chunking.size(c),
                    Phase::Reduce,
                    TreeIndex(ti as u8),
                    deps,
                );
                red.insert((ti, c, r.0), id);
            }
        }
    }
    b.finish("tree-reduce", p, chunking.clone())
}

/// Builds the ring **ReduceScatter**: after `P-1` steps, rank `i` holds
/// the fully reduced chunk `(i+1) mod P`.
///
/// Cost: Eq. 1's `(P-1)(α + βN/P)`.
///
/// # Panics
///
/// Panics if `p < 2`.
pub fn ring_reduce_scatter(p: usize, total: ByteSize) -> Schedule {
    assert!(p >= 2, "ring needs at least 2 ranks");
    let chunking = Chunking::even(total, p);
    let pi = p as i64;
    let modp = |x: i64| (((x % pi) + pi) % pi) as usize;
    let mut b = ScheduleBuilder::new();
    let mut rs: Vec<Vec<TransferId>> = vec![Vec::with_capacity(p - 1); p];
    for s in 0..(p - 1) as i64 {
        for i in 0..pi {
            let chunk = ChunkId(modp(i - s) as u32);
            let deps = if s == 0 {
                vec![]
            } else {
                vec![rs[modp(i - 1)][(s - 1) as usize]]
            };
            let id = b.push(
                Rank(i as u32),
                Rank(modp(i + 1) as u32),
                chunk,
                chunking.size(chunk),
                Phase::ReduceScatter,
                TreeIndex(0),
                deps,
            );
            rs[i as usize].push(id);
        }
    }
    b.finish("ring-reduce-scatter", p, chunking)
}

/// Builds the ring **AllGather** from the post-ReduceScatter ownership
/// (rank `i` contributes chunk `(i+1) mod P`): after `P-1` steps every
/// rank holds every chunk.
///
/// Cost: Eq. 1's `(P-1)(α + βN/P)`.
///
/// # Panics
///
/// Panics if `p < 2`.
pub fn ring_all_gather(p: usize, total: ByteSize) -> Schedule {
    assert!(p >= 2, "ring needs at least 2 ranks");
    let chunking = Chunking::even(total, p);
    let pi = p as i64;
    let modp = |x: i64| (((x % pi) + pi) % pi) as usize;
    let mut b = ScheduleBuilder::new();
    let mut ag: Vec<Vec<TransferId>> = vec![Vec::with_capacity(p - 1); p];
    for s in 0..(p - 1) as i64 {
        for i in 0..pi {
            let chunk = ChunkId(modp(i + 1 - s) as u32);
            let deps = if s == 0 {
                vec![]
            } else {
                vec![ag[modp(i - 1)][(s - 1) as usize]]
            };
            let id = b.push(
                Rank(i as u32),
                Rank(modp(i + 1) as u32),
                chunk,
                chunking.size(chunk),
                Phase::AllGather,
                TreeIndex(0),
                deps,
            );
            ag[i as usize].push(id);
        }
    }
    b.finish("ring-all-gather", p, chunking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn broadcast_counts_and_verifies() {
        for p in 2..10 {
            let tree = BinaryTree::inorder(p).unwrap();
            let s = tree_broadcast(
                std::slice::from_ref(&tree),
                &Chunking::even(ByteSize::mib(1), 4),
            );
            assert_eq!(s.transfers().len(), (p - 1) * 4);
            verify::check_broadcast(&s).unwrap();
        }
    }

    #[test]
    fn reduce_counts_and_verifies() {
        for p in 2..10 {
            let tree = BinaryTree::inorder(p).unwrap();
            let s = tree_reduce(
                std::slice::from_ref(&tree),
                &Chunking::even(ByteSize::mib(1), 4),
            );
            assert_eq!(s.transfers().len(), (p - 1) * 4);
            verify::check_reduce(&s, &[tree.root()]).unwrap();
        }
    }

    #[test]
    fn double_tree_reduce_has_two_roots() {
        let dt = crate::DoubleBinaryTree::new(8).unwrap();
        let s = tree_reduce(dt.trees(), &Chunking::even(ByteSize::mib(1), 8));
        verify::check_reduce(&s, &[dt.tree(0).root(), dt.tree(1).root()]).unwrap();
    }

    #[test]
    fn reduce_scatter_verifies() {
        for p in 2..10 {
            let s = ring_reduce_scatter(p, ByteSize::mib(1));
            assert_eq!(s.transfers().len(), (p - 1) * p);
            verify::check_reduce_scatter(&s).unwrap();
        }
    }

    #[test]
    fn all_gather_verifies() {
        for p in 2..10 {
            let s = ring_all_gather(p, ByteSize::mib(1));
            assert_eq!(s.transfers().len(), (p - 1) * p);
            verify::check_all_gather(&s).unwrap();
        }
    }

    #[test]
    fn phases_compose_into_allreduce_step_counts() {
        // ReduceScatter then AllGather step counts equal the full ring's.
        let p = 6;
        let rs = ring_reduce_scatter(p, ByteSize::mib(1));
        let ag = ring_all_gather(p, ByteSize::mib(1));
        let full = crate::ring_allreduce(p, ByteSize::mib(1));
        assert_eq!(
            rs.transfers().len() + ag.transfers().len(),
            full.transfers().len()
        );
    }
}
