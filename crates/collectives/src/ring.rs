//! Ring AllReduce schedule builders (the paper's `R` baseline).
//!
//! Two flavors:
//!
//! * [`ring_allreduce`] — the textbook single ring over ranks `0..P`.
//! * [`ring_allreduce_multi`] — NCCL-style **multi-ring**: the message is
//!   striped over several rings (each typically an edge-disjoint
//!   Hamiltonian cycle of the physical topology, found with
//!   [`disjoint_rings`](ccube_topology::disjoint_rings), used in both
//!   directions), which is how NCCL reaches the DGX-1's aggregate NVLink
//!   bandwidth.

use crate::chunk::{ChunkId, Chunking};
use crate::rank::Rank;
use crate::schedule::{Phase, Schedule, ScheduleBuilder, TransferId, TreeIndex};
use ccube_topology::ByteSize;

/// Emits one ring's Reduce-Scatter + AllGather transfers.
///
/// `order` is the node sequence of the ring (successor of `order[i]` is
/// `order[(i+1) % p]`), `tree` tags the ring for embedding, and the ring
/// carries global chunks `chunk_base .. chunk_base + p`.
fn build_ring(
    b: &mut ScheduleBuilder,
    order: &[Rank],
    tree: TreeIndex,
    chunk_base: usize,
    chunking: &Chunking,
) {
    let p = order.len();
    let pi = p as i64;
    let modp = |x: i64| (((x % pi) + pi) % pi) as usize;

    // rs[i][s] / ag[i][s] = id of the transfer *sent by* position i at
    // step s.
    let mut rs: Vec<Vec<TransferId>> = vec![Vec::with_capacity(p - 1); p];
    let mut ag: Vec<Vec<TransferId>> = vec![Vec::with_capacity(p - 1); p];

    // Reduce-Scatter: at step s, position i sends chunk (i - s) mod p to
    // its successor, which accumulates it.
    for s in 0..(p - 1) as i64 {
        for i in 0..pi {
            let local = modp(i - s);
            let chunk = ChunkId((chunk_base + local) as u32);
            let deps = if s == 0 {
                vec![]
            } else {
                // the chunk position i sends now is the one it received
                // from its predecessor in the previous step
                vec![rs[modp(i - 1)][(s - 1) as usize]]
            };
            let id = b.push(
                order[i as usize],
                order[modp(i + 1)],
                chunk,
                chunking.size(chunk),
                Phase::ReduceScatter,
                tree,
                deps,
            );
            rs[i as usize].push(id);
        }
    }

    // AllGather: at step s, position i sends chunk (i + 1 - s) mod p; at
    // s=0 this is the chunk it just finished reducing.
    for s in 0..(p - 1) as i64 {
        for i in 0..pi {
            let local = modp(i + 1 - s);
            let chunk = ChunkId((chunk_base + local) as u32);
            let deps = if s == 0 {
                // position i's ownership of chunk i+1 comes from the last
                // reduce-scatter transfer it received
                vec![rs[modp(i - 1)][p - 2]]
            } else {
                vec![ag[modp(i - 1)][(s - 1) as usize]]
            };
            let id = b.push(
                order[i as usize],
                order[modp(i + 1)],
                chunk,
                chunking.size(chunk),
                Phase::AllGather,
                tree,
                deps,
            );
            ag[i as usize].push(id);
        }
    }
}

/// Builds the classic single-ring AllReduce on `p` ranks for a message of
/// `total` bytes.
///
/// The message is split into `p` chunks. The Reduce-Scatter phase runs
/// `p-1` steps in which every rank forwards a partial to its successor;
/// after it, rank `i` owns the fully reduced chunk `(i+1) mod p`. The
/// AllGather phase runs another `p-1` steps circulating the reduced
/// chunks. This is the bandwidth-optimal algorithm of Eq. 2:
/// `T_ring = 2(P-1)α + 2((P-1)/P)βN`.
///
/// Note the property the paper's Observation #3 contrasts against: at the
/// end of Reduce-Scatter *each rank owns a different chunk*, so reduced
/// data does **not** complete in chunk order at any rank — which is why
/// computation chaining (gradient queuing) cannot be applied to the ring.
///
/// # Panics
///
/// Panics if `p < 2`.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{ring_allreduce, verify};
/// use ccube_topology::ByteSize;
///
/// let s = ring_allreduce(4, ByteSize::mib(4));
/// assert_eq!(s.transfers().len(), 2 * (4 - 1) * 4); // 2(P-1) steps x P ranks
/// verify::check_allreduce(&s).unwrap();
/// ```
pub fn ring_allreduce(p: usize, total: ByteSize) -> Schedule {
    assert!(p >= 2, "ring allreduce needs at least 2 ranks, got {p}");
    let order: Vec<Rank> = Rank::all(p).collect();
    ring_allreduce_multi(total, std::slice::from_ref(&order))
}

/// Builds an NCCL-style multi-ring AllReduce: the message is striped over
/// `orders.len()` rings running concurrently, ring `r` following the node
/// sequence `orders[r]` and carrying global chunks `r*P .. (r+1)*P`.
///
/// Each ring is tagged with its own [`TreeIndex`], so the embedding
/// assigns it its own physical channels (parallel NVLinks where the
/// topology has them). To use a Hamiltonian cycle in both directions,
/// pass the cycle and its reverse as two orders.
///
/// # Panics
///
/// Panics if `orders` is empty, rings disagree on length, a ring has
/// fewer than 2 ranks, or a ring is not a permutation of `0..P`.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{ring_allreduce_multi, verify, Rank};
/// use ccube_topology::ByteSize;
///
/// let fwd: Vec<Rank> = (0..4).map(Rank).collect();
/// let rev: Vec<Rank> = (0..4).rev().map(Rank).collect();
/// let s = ring_allreduce_multi(ByteSize::mib(8), &[fwd, rev]);
/// verify::check_allreduce(&s).unwrap();
/// ```
pub fn ring_allreduce_multi(total: ByteSize, orders: &[Vec<Rank>]) -> Schedule {
    assert!(!orders.is_empty(), "need at least one ring");
    let p = orders[0].len();
    assert!(p >= 2, "rings need at least 2 ranks");
    for order in orders {
        assert_eq!(order.len(), p, "all rings must span the same ranks");
        let mut seen = vec![false; p];
        for r in order {
            assert!(
                r.index() < p && !seen[r.index()],
                "ring order must be a permutation of 0..{p}"
            );
            seen[r.index()] = true;
        }
    }
    let rings = orders.len();
    let chunking = Chunking::even(total, rings * p);
    let mut b = ScheduleBuilder::new();
    for (r, order) in orders.iter().enumerate() {
        build_ring(&mut b, order, TreeIndex(r as u8), r * p, &chunking);
    }
    let name = if rings == 1 {
        "ring".to_string()
    } else {
        format!("{rings}-ring")
    };
    b.finish(name, p, chunking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allreduce;

    #[test]
    fn transfer_count_is_2_p_minus_1_times_p() {
        for p in 2..12 {
            let s = ring_allreduce(p, ByteSize::mib(1));
            assert_eq!(s.transfers().len(), 2 * (p - 1) * p);
        }
    }

    #[test]
    fn every_rank_sends_every_step() {
        let p = 5;
        let s = ring_allreduce(p, ByteSize::mib(1));
        // sends per rank = 2(p-1)
        for r in 0..p as u32 {
            let sends = s.transfers().iter().filter(|t| t.src == Rank(r)).count();
            assert_eq!(sends, 2 * (p - 1));
        }
    }

    #[test]
    fn messages_travel_to_successor_only() {
        let p = 6;
        let s = ring_allreduce(p, ByteSize::mib(1));
        for t in s.transfers() {
            assert_eq!((t.src.0 + 1) % p as u32, t.dst.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 ranks")]
    fn single_rank_is_rejected() {
        let _ = ring_allreduce(1, ByteSize::mib(1));
    }

    #[test]
    fn two_rank_ring_is_minimal() {
        let s = ring_allreduce(2, ByteSize::kib(8));
        assert_eq!(s.transfers().len(), 4);
        // allgather transfers depend on the reduce-scatter ones
        let ag: Vec<_> = s
            .transfers()
            .iter()
            .filter(|t| t.phase == Phase::AllGather)
            .collect();
        assert!(ag.iter().all(|t| !t.deps.is_empty()));
    }

    #[test]
    fn multi_ring_is_correct_for_arbitrary_orders() {
        let orders = vec![
            vec![Rank(0), Rank(1), Rank(2), Rank(3), Rank(4)],
            vec![Rank(4), Rank(3), Rank(2), Rank(1), Rank(0)],
            vec![Rank(0), Rank(2), Rank(4), Rank(1), Rank(3)],
        ];
        let s = ring_allreduce_multi(ByteSize::mib(3), &orders);
        check_allreduce(&s).unwrap();
        assert_eq!(s.chunking().num_chunks(), 15);
        assert_eq!(s.transfers().len(), 3 * 2 * 4 * 5);
    }

    #[test]
    fn rings_use_distinct_tree_tags() {
        let fwd: Vec<Rank> = (0..4).map(Rank).collect();
        let rev: Vec<Rank> = (0..4).rev().map(Rank).collect();
        let s = ring_allreduce_multi(ByteSize::mib(8), &[fwd, rev]);
        let tags: std::collections::HashSet<TreeIndex> =
            s.transfers().iter().map(|t| t.tree).collect();
        assert_eq!(tags.len(), 2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn invalid_order_is_rejected() {
        let _ = ring_allreduce_multi(ByteSize::mib(1), &[vec![Rank(0), Rank(0), Rank(1)]]);
    }
}
