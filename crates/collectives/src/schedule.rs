//! The schedule IR: a dependency DAG of point-to-point transfers.

use crate::chunk::{ChunkId, Chunking};
use crate::rank::Rank;
use ccube_topology::ByteSize;
use std::fmt;

/// Identifier of a transfer within a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u32);

impl TransferId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Which logical tree a transfer belongs to (0 for single-tree and ring
/// schedules; 0 or 1 for double-tree schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TreeIndex(pub u8);

impl TreeIndex {
    /// The index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TreeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The semantic phase of a transfer, which determines how the receiver
/// combines the payload with its local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tree reduction: receiver *accumulates* the payload into its partial.
    Reduce,
    /// Tree broadcast: receiver *overwrites* its buffer with the payload.
    Broadcast,
    /// Ring Reduce-Scatter step: accumulate.
    ReduceScatter,
    /// Ring AllGather step: overwrite.
    AllGather,
}

impl Phase {
    /// True if the receiver accumulates (reduces) rather than overwrites.
    pub fn is_reduction(self) -> bool {
        matches!(self, Phase::Reduce | Phase::ReduceScatter)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Reduce => write!(f, "reduce"),
            Phase::Broadcast => write!(f, "broadcast"),
            Phase::ReduceScatter => write!(f, "reduce-scatter"),
            Phase::AllGather => write!(f, "all-gather"),
        }
    }
}

/// One point-to-point message of a collective schedule.
///
/// A transfer may start once **all** of its `deps` have completed *and*
/// the channel its logical edge is embedded on is free; the simulator and
/// the threaded runtime both honor exactly these two constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// This transfer's id (its index in [`Schedule::transfers`]).
    pub id: TransferId,
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Which chunk of the message is carried.
    pub chunk: ChunkId,
    /// Payload size.
    pub bytes: ByteSize,
    /// Semantic phase (reduce vs broadcast).
    pub phase: Phase,
    /// Which logical tree the transfer belongs to.
    pub tree: TreeIndex,
    /// Transfers that must complete before this one may start.
    pub deps: Vec<TransferId>,
}

impl fmt::Display for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}->{} {} ({})",
            self.id, self.phase, self.src, self.dst, self.chunk, self.bytes
        )
    }
}

/// A complete collective schedule: the transfer DAG plus its metadata.
///
/// Invariants (enforced by the builders and re-checked by
/// [`verify::check_dag`](crate::verify::check_dag)):
///
/// * transfer ids are dense and equal to their index;
/// * every dependency id is smaller than the dependent's id (the DAG is
///   topologically ordered by construction);
/// * `src != dst` for every transfer.
#[derive(Debug, Clone)]
pub struct Schedule {
    algorithm: String,
    num_ranks: usize,
    chunking: Chunking,
    transfers: Vec<Transfer>,
}

impl Schedule {
    /// Assembles a schedule from parts. Intended for algorithm builders;
    /// users normally call [`ring_allreduce`](crate::ring_allreduce) or
    /// [`tree_allreduce`](crate::tree_allreduce).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if transfer ids are not dense or a dependency
    /// points forward.
    pub fn new(
        algorithm: impl Into<String>,
        num_ranks: usize,
        chunking: Chunking,
        transfers: Vec<Transfer>,
    ) -> Self {
        #[cfg(debug_assertions)]
        for (i, t) in transfers.iter().enumerate() {
            debug_assert_eq!(t.id.index(), i, "transfer ids must be dense");
            for d in &t.deps {
                debug_assert!(d.index() < i, "dependency must precede dependent");
            }
        }
        Schedule {
            algorithm: algorithm.into(),
            num_ranks,
            chunking,
            transfers,
        }
    }

    /// Assembles a schedule **without** the dense-id / backward-dep debug
    /// assertions of [`Schedule::new`]. Exists so the static analyzer
    /// ([`analyze`](crate::analyze)) and its tests can construct
    /// deliberately broken schedules — forward dependencies, dependency
    /// cycles — and prove they are detected rather than panicking at
    /// construction time. Everything downstream of a schedule built this
    /// way must go through [`verify::check_dag`](crate::verify::check_dag)
    /// or the analyzer first.
    pub fn new_unchecked(
        algorithm: impl Into<String>,
        num_ranks: usize,
        chunking: Chunking,
        transfers: Vec<Transfer>,
    ) -> Self {
        Schedule {
            algorithm: algorithm.into(),
            num_ranks,
            chunking,
            transfers,
        }
    }

    /// The algorithm name (e.g. `"ring"`, `"double-tree"`,
    /// `"overlapped-double-tree"`).
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Number of participating ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The chunking of the message.
    pub fn chunking(&self) -> &Chunking {
        &self.chunking
    }

    /// All transfers, indexed by [`TransferId::index`].
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// The transfer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transfer(&self, id: TransferId) -> &Transfer {
        &self.transfers[id.index()]
    }

    /// Total bytes moved by the schedule (sum over transfers) — useful for
    /// comparing algorithm traffic.
    pub fn total_traffic(&self) -> ByteSize {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// The distinct logical directed edges `(src, dst, tree)` used by the
    /// schedule, in first-use order. This is the set the embedding maps to
    /// physical channels.
    pub fn logical_edges(&self) -> Vec<(Rank, Rank, TreeIndex)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for t in &self.transfers {
            let key = (t.src, t.dst, t.tree);
            if seen.insert(key) {
                out.push(key);
            }
        }
        out
    }
}

/// Summary statistics of a schedule (see [`Schedule::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Total transfers.
    pub transfers: usize,
    /// Transfers in reduction-type phases.
    pub reduction_transfers: usize,
    /// Transfers in broadcast/gather-type phases.
    pub broadcast_transfers: usize,
    /// Total bytes moved.
    pub total_bytes: ByteSize,
    /// Distinct logical edges.
    pub logical_edges: usize,
    /// Length (in transfers) of the longest dependency chain — the
    /// schedule's critical path, a lower bound on its step count on any
    /// machine.
    pub critical_path: usize,
}

impl fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} transfers ({} reduce, {} broadcast), {} over {} edges, critical path {}",
            self.transfers,
            self.reduction_transfers,
            self.broadcast_transfers,
            self.total_bytes,
            self.logical_edges,
            self.critical_path
        )
    }
}

impl Schedule {
    /// Computes summary statistics, including the critical-path length
    /// (longest dependency chain).
    ///
    /// # Examples
    ///
    /// ```
    /// use ccube_collectives::ring_allreduce;
    /// use ccube_topology::ByteSize;
    ///
    /// let s = ring_allreduce(4, ByteSize::mib(4));
    /// let stats = s.stats();
    /// // The ring's dependency chain is its 2(P-1) sequential steps.
    /// assert_eq!(stats.critical_path, 2 * 3);
    /// ```
    pub fn stats(&self) -> ScheduleStats {
        let mut reduction = 0usize;
        let mut broadcast = 0usize;
        // depth[i] = longest chain ending at transfer i (ids are
        // topologically ordered, so one forward pass suffices).
        let mut depth = vec![1usize; self.transfers.len()];
        let mut critical = 0usize;
        for t in &self.transfers {
            if t.phase.is_reduction() {
                reduction += 1;
            } else {
                broadcast += 1;
            }
            let base = t.deps.iter().map(|d| depth[d.index()]).max().unwrap_or(0);
            depth[t.id.index()] = base + 1;
            critical = critical.max(base + 1);
        }
        ScheduleStats {
            transfers: self.transfers.len(),
            reduction_transfers: reduction,
            broadcast_transfers: broadcast,
            total_bytes: self.total_traffic(),
            logical_edges: self.logical_edges().len(),
            critical_path: critical,
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (p={}, {}, {} transfers)",
            self.algorithm,
            self.num_ranks,
            self.chunking,
            self.transfers.len()
        )
    }
}

/// Incremental builder used by the algorithm modules.
#[derive(Debug, Default)]
pub(crate) struct ScheduleBuilder {
    transfers: Vec<Transfer>,
}

impl ScheduleBuilder {
    pub(crate) fn new() -> Self {
        ScheduleBuilder::default()
    }

    /// Appends a transfer and returns its id.
    #[allow(clippy::too_many_arguments)] // mirrors the Transfer fields
    pub(crate) fn push(
        &mut self,
        src: Rank,
        dst: Rank,
        chunk: ChunkId,
        bytes: ByteSize,
        phase: Phase,
        tree: TreeIndex,
        deps: Vec<TransferId>,
    ) -> TransferId {
        let id = TransferId(self.transfers.len() as u32);
        self.transfers.push(Transfer {
            id,
            src,
            dst,
            chunk,
            bytes,
            phase,
            tree,
            deps,
        });
        id
    }

    pub(crate) fn finish(
        self,
        algorithm: impl Into<String>,
        num_ranks: usize,
        chunking: Chunking,
    ) -> Schedule {
        Schedule::new(algorithm, num_ranks, chunking, self.transfers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Schedule {
        let mut b = ScheduleBuilder::new();
        let t0 = b.push(
            Rank(0),
            Rank(1),
            ChunkId(0),
            ByteSize::kib(1),
            Phase::Reduce,
            TreeIndex(0),
            vec![],
        );
        b.push(
            Rank(1),
            Rank(0),
            ChunkId(0),
            ByteSize::kib(1),
            Phase::Broadcast,
            TreeIndex(0),
            vec![t0],
        );
        b.finish("tiny", 2, Chunking::even(ByteSize::kib(1), 1))
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let s = tiny();
        assert_eq!(s.transfers().len(), 2);
        assert_eq!(s.transfer(TransferId(1)).deps, vec![TransferId(0)]);
    }

    #[test]
    fn total_traffic_sums_bytes() {
        let s = tiny();
        assert_eq!(s.total_traffic(), ByteSize::kib(2));
    }

    #[test]
    fn logical_edges_deduplicate() {
        let s = tiny();
        let edges = s.logical_edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (Rank(0), Rank(1), TreeIndex(0)));
    }

    #[test]
    fn stats_reflect_structure() {
        use crate::{ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Overlap};
        let ring = ring_allreduce(6, ByteSize::mib(6));
        let rs = ring.stats();
        assert_eq!(rs.transfers, 2 * 5 * 6);
        assert_eq!(rs.critical_path, 2 * 5);
        assert_eq!(rs.reduction_transfers, 5 * 6);

        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(8), 8);
        let b = tree_allreduce(dt.trees(), &chunking, Overlap::None).stats();
        let o = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast).stats();
        // Same traffic and — instructively — the same *dependency*
        // critical path (one chunk's reduce-up plus broadcast-down): the
        // baseline's extra steps come entirely from channel serialization
        // behind its reduction barrier, which the unit-step executor and
        // the DES expose, not the DAG itself.
        assert_eq!(b.total_bytes, o.total_bytes);
        assert_eq!(b.transfers, o.transfers);
        assert_eq!(o.critical_path, b.critical_path);
        let tree_depth = 3; // inorder(8)
        assert_eq!(o.critical_path, 2 * tree_depth);
    }

    #[test]
    fn phase_reduction_flag() {
        assert!(Phase::Reduce.is_reduction());
        assert!(Phase::ReduceScatter.is_reduction());
        assert!(!Phase::Broadcast.is_reduction());
        assert!(!Phase::AllGather.is_reduction());
    }
}
