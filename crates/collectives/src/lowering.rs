//! Lowering of logical schedules to physical transfer events.
//!
//! A [`Schedule`] is purely logical: transfers name ranks and chunks but
//! know nothing about channels or wall-clock time. Before any engine can
//! replay one, every transfer must be resolved against an [`Embedding`]
//! and a [`Topology`] into a physical
//! [`TransferSpec`]: the channel path it occupies, the intermediate GPU
//! it detours through (if any), and its wormhole duration
//! `Σ per-hop latency (+ forwarding latency for detours)
//!  + bytes / (bottleneck bandwidth × bandwidth_scale)`.
//!
//! Both discrete-event engines of `ccube-sim` (the network-only
//! `simulate` and the compute/communication `simulate_system`) consume
//! this one lowering, so their timing models can never drift apart.

use crate::chunk::ChunkId;
use crate::embedding::{EdgeKey, Embedding};
use crate::schedule::{Schedule, TransferId};
use ccube_topology::{ByteSize, ChannelId, FabricGraph, GpuId, PortId, Seconds, Topology};
use std::error::Error;
use std::fmt;

/// The link-timing knobs of the lowering (a subset of the simulator's
/// options that affects transfer durations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTiming {
    /// Multiplier on every channel's bandwidth (1.0 = nominal; the
    /// paper's low-bandwidth configuration uses 0.25).
    pub bandwidth_scale: f64,
    /// Extra latency charged to detour routes for the store-and-forward
    /// kernel on the intermediate GPU.
    pub forwarding_latency: Seconds,
}

impl Default for LinkTiming {
    fn default() -> Self {
        LinkTiming {
            bandwidth_scale: 1.0,
            forwarding_latency: Seconds::from_micros(0.5),
        }
    }
}

/// One transfer, lowered onto the physical topology: ready to be
/// scheduled by an event-driven engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSpec {
    /// The transfer's id (its index in the schedule).
    pub id: TransferId,
    /// The global chunk the transfer carries (arbitration priority).
    pub chunk: ChunkId,
    /// The physical channels the transfer occupies, in route order.
    pub path: Vec<ChannelId>,
    /// The intermediate GPU for detour routes.
    pub via: Option<GpuId>,
    /// Wormhole occupancy time of the whole path.
    pub duration: Seconds,
    /// Payload size, kept so lower layers (the switch-fabric network
    /// model, fault-driven re-routing) can recompute durations when the
    /// effective path or per-hop resources change.
    pub bytes: ByteSize,
}

/// Errors from lowering a schedule onto a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The embedding is missing a route for a logical edge the schedule
    /// uses.
    MissingRoute(EdgeKey),
    /// A route references a channel that does not exist in the topology.
    UnknownChannel {
        /// The offending edge.
        edge: EdgeKey,
        /// The channel index that was out of range.
        channel_index: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::MissingRoute(edge) => {
                write!(f, "embedding has no route for logical edge {edge}")
            }
            LowerError::UnknownChannel {
                edge,
                channel_index,
            } => write!(
                f,
                "route for {edge} references unknown channel index {channel_index}"
            ),
        }
    }
}

impl Error for LowerError {}

/// Resolves every transfer of `schedule` into a [`TransferSpec`] using
/// the routes of `embedding` over `topo`.
///
/// The result is indexed by transfer id (schedules use dense ids).
///
/// # Errors
///
/// Returns [`LowerError::MissingRoute`] if the embedding lacks a route
/// for a logical edge and [`LowerError::UnknownChannel`] if a route
/// references a channel outside the topology.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{lower_schedule, ring_allreduce, Embedding, LinkTiming};
/// use ccube_topology::{dgx1, ByteSize};
///
/// let topo = dgx1();
/// let s = ring_allreduce(8, ByteSize::mib(8));
/// let e = Embedding::identity(&topo, &s).unwrap();
/// let specs = lower_schedule(&s, &e, &topo, &LinkTiming::default()).unwrap();
/// assert_eq!(specs.len(), s.transfers().len());
/// assert!(specs.iter().all(|sp| !sp.path.is_empty()));
/// ```
pub fn lower_schedule(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    timing: &LinkTiming,
) -> Result<Vec<TransferSpec>, LowerError> {
    let num_channels = topo.channels().len();
    let mut specs = Vec::with_capacity(schedule.transfers().len());
    for t in schedule.transfers() {
        let key = EdgeKey {
            src: t.src,
            dst: t.dst,
            tree: t.tree,
        };
        let route = embedding.route(&key).ok_or(LowerError::MissingRoute(key))?;
        let mut alpha = Seconds::ZERO;
        let mut bottleneck = f64::INFINITY;
        for &c in route.channels() {
            if c.index() >= num_channels {
                return Err(LowerError::UnknownChannel {
                    edge: key,
                    channel_index: c.index(),
                });
            }
            let ch = topo.channel(c);
            alpha += ch.latency();
            bottleneck = bottleneck.min(ch.bandwidth().as_bytes_per_sec());
        }
        if route.is_detour() {
            alpha += timing.forwarding_latency;
        }
        let serialization = Seconds::new(t.bytes.as_f64() / (bottleneck * timing.bandwidth_scale));
        specs.push(TransferSpec {
            id: t.id,
            chunk: t.chunk,
            path: route.channels().to_vec(),
            via: route.via(),
            duration: alpha + serialization,
            bytes: t.bytes,
        });
    }
    Ok(specs)
}

/// Lowers channel-level [`TransferSpec`]s one level further, onto an
/// explicit switch fabric: the result holds, per transfer, the ordered
/// port path the transfer occupies (endpoint ports plus any uplink ports
/// inserted between leaves). Indexed like `specs`, by transfer id.
///
/// This is the hop-level view the `SwitchFabric` network model schedules
/// on; under a passthrough fabric every port path mirrors the channel
/// path one-for-one.
pub fn lower_to_ports(specs: &[TransferSpec], fabric: &FabricGraph) -> Vec<Vec<PortId>> {
    specs.iter().map(|s| fabric.port_route(&s.path)).collect()
}

/// One transfer's route, resolved once and stored with the two timing
/// coefficients of the wormhole model, so durations can be recomputed
/// for any payload size and [`LinkTiming`] without touching the
/// embedding or the topology again.
#[derive(Debug, Clone, PartialEq)]
struct PreparedRoute {
    /// The physical channels the route occupies, in hop order.
    path: Vec<ChannelId>,
    /// The intermediate GPU for detour routes.
    via: Option<GpuId>,
    /// Σ per-hop channel latency, accumulated in hop order exactly as
    /// [`lower_schedule`] does — the forwarding latency of detours is
    /// *not* folded in, because it is a per-point timing knob.
    alpha: Seconds,
    /// The route's bottleneck bandwidth in bytes/sec at nominal scale.
    bottleneck: f64,
}

/// A schedule's lowering with the payload- and timing-independent work
/// hoisted out: route resolution, per-route latency sums, and bottleneck
/// bandwidths are computed once, and [`PreparedLowering::lower`] then
/// produces [`TransferSpec`]s for any `(payload, LinkTiming)` point.
///
/// Equivalence contract: for the schedule/embedding/topology it was
/// prepared from — or any schedule with the same transfers modulo
/// payload sizes — `lower()` is **bit-identical** to calling
/// [`lower_schedule`] from scratch. The float operations run in the same
/// order (`alpha` accumulates per hop, the forwarding latency is added
/// last, serialization divides by `bottleneck × bandwidth_scale`), so
/// not even the last ulp can drift. The sweep-wide preparation cache in
/// `ccube-sim` relies on this to rescale cached points.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedLowering {
    routes: Vec<PreparedRoute>,
}

impl PreparedLowering {
    /// Resolves every transfer of `schedule` against `embedding` over
    /// `topo`, storing routes and timing coefficients for later
    /// [`PreparedLowering::lower`] calls.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`lower_schedule`]:
    /// [`LowerError::MissingRoute`] and [`LowerError::UnknownChannel`].
    pub fn new(
        schedule: &Schedule,
        embedding: &Embedding,
        topo: &Topology,
    ) -> Result<Self, LowerError> {
        let num_channels = topo.channels().len();
        let mut routes = Vec::with_capacity(schedule.transfers().len());
        for t in schedule.transfers() {
            let key = EdgeKey {
                src: t.src,
                dst: t.dst,
                tree: t.tree,
            };
            let route = embedding.route(&key).ok_or(LowerError::MissingRoute(key))?;
            let mut alpha = Seconds::ZERO;
            let mut bottleneck = f64::INFINITY;
            for &c in route.channels() {
                if c.index() >= num_channels {
                    return Err(LowerError::UnknownChannel {
                        edge: key,
                        channel_index: c.index(),
                    });
                }
                let ch = topo.channel(c);
                alpha += ch.latency();
                bottleneck = bottleneck.min(ch.bandwidth().as_bytes_per_sec());
            }
            routes.push(PreparedRoute {
                path: route.channels().to_vec(),
                via: route.via(),
                alpha,
                bottleneck,
            });
        }
        Ok(PreparedLowering { routes })
    }

    /// Number of prepared routes (= transfers of the source schedule).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the source schedule had no transfers.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Produces the [`TransferSpec`]s for `schedule` under `timing`,
    /// bit-identical to [`lower_schedule`]. `schedule` supplies the
    /// per-transfer payload sizes (and ids/chunks); it must have the
    /// same transfers as the schedule this lowering was prepared from,
    /// up to payload sizes — the preparation cache's key guarantees
    /// that, and debug builds assert the count.
    pub fn lower(&self, schedule: &Schedule, timing: &LinkTiming) -> Vec<TransferSpec> {
        let transfers = schedule.transfers();
        debug_assert_eq!(transfers.len(), self.routes.len());
        transfers
            .iter()
            .zip(&self.routes)
            .map(|(t, r)| {
                let mut alpha = r.alpha;
                if r.via.is_some() {
                    alpha += timing.forwarding_latency;
                }
                let serialization =
                    Seconds::new(t.bytes.as_f64() / (r.bottleneck * timing.bandwidth_scale));
                TransferSpec {
                    id: t.id,
                    chunk: t.chunk,
                    path: r.path.clone(),
                    via: r.via,
                    duration: alpha + serialization,
                    bytes: t.bytes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ring_allreduce, tree_allreduce, BinaryTree, Chunking, Overlap};
    use ccube_topology::{dgx1, ByteSize};

    #[test]
    fn durations_scale_with_bandwidth() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(16));
        let e = Embedding::identity(&topo, &s).unwrap();
        let hi = lower_schedule(&s, &e, &topo, &LinkTiming::default()).unwrap();
        let lo = lower_schedule(
            &s,
            &e,
            &topo,
            &LinkTiming {
                bandwidth_scale: 0.25,
                ..LinkTiming::default()
            },
        )
        .unwrap();
        for (h, l) in hi.iter().zip(&lo) {
            assert!(l.duration > h.duration);
        }
    }

    #[test]
    fn detours_carry_via_and_forwarding_latency() {
        let topo = dgx1();
        let dt = crate::DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(8), 8),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let specs = lower_schedule(&s, &e, &topo, &LinkTiming::default()).unwrap();
        assert!(
            specs.iter().any(|sp| sp.via.is_some()),
            "the DGX-1 double tree must detour somewhere"
        );
    }

    #[test]
    fn missing_route_is_an_error() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(1));
        let tree = BinaryTree::inorder(8).unwrap();
        let other = tree_allreduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::mib(1), 4),
            Overlap::None,
        );
        let e = Embedding::identity(&topo, &other).unwrap();
        assert!(matches!(
            lower_schedule(&s, &e, &topo, &LinkTiming::default()),
            Err(LowerError::MissingRoute(_))
        ));
    }
}
