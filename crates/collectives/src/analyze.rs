//! Static analysis (lints) over schedules and their physical embeddings.
//!
//! The DES and the symbolic replayer discover structural problems by
//! *running* a schedule; this module finds them *statically*, before any
//! simulation is spent — the pre-execution checking that GC3-style
//! collective compilers argue for, applied to this repo's [`Schedule`]
//! IR. Every finding is a [`Diagnostic`] with a stable lint code
//! (`CC001`..), a severity, and a [`Span`] naming the offending
//! transfers, ranks, chunks, channels, or logical edges.
//!
//! Four analysis families:
//!
//! * **Deadlock** — [`analyze`] builds the wait-for graph over transfer
//!   dependencies, per-channel FIFO grant order, and the runtime's
//!   bounded-mailbox protocol (a producer blocks when its `(tree, edge)`
//!   mailbox is full, see `ccube-runtime`), and reports every cycle as a
//!   minimal witness path (`CC002`).
//! * **Dataflow conservation** — symbolic replay proves every chunk is
//!   reduced exactly once per tree and broadcast to all ranks (`CC003`,
//!   `CC004`), an ancestor-reachability pass flags conflicting buffer
//!   accesses that no dependency path orders (`CC005`, the lint that
//!   catches a dropped dependency edge), and per-tree in-order chunk
//!   delivery — the property C2's gradient queue relies on — is checked
//!   explicitly (`CC006`).
//! * **Embedding conflicts** — [`analyze_embedded`] validates every
//!   route against the topology (`CC007`, `CC008`) and reports logical
//!   edges sharing a physical channel in overlapping steps — the paper's
//!   doubled-NVLink double-tree hazard — as errors with step witnesses
//!   (`CC009`), plus oversubscription and NIC fan-in notes (`CC010`,
//!   `CC011`, `CC012`).
//! * **Critical-path bounds** — the static step depth is compared with
//!   the paper's class formulas, `2·log P + K` for the overlapped tree
//!   and `2(log P + K)` for the baseline (`CC013`).
//!
//! # Lint codes
//!
//! The logical-layer codes, stable across releases (`ccube lint`):
//!
//! | code | name | meaning |
//! |---|---|---|
//! | `CC001` | `malformed-dag` | a structural DAG invariant is broken (dangling dep, self-loop, bad rank) |
//! | `CC002` | `wait-cycle` | the wait-for graph has a cycle — a deadlock witness path |
//! | `CC003` | `incomplete-dataflow` | a buffer ends without all contributions (incomplete reduction/broadcast) |
//! | `CC004` | `double-reduction` | a reduction folds in contributions the destination already holds |
//! | `CC005` | `dataflow-race` | two conflicting buffer accesses no dependency path orders |
//! | `CC006` | `out-of-order-delivery` | chunks complete out of order within a tree (breaks C2's gradient queue) |
//! | `CC007` | `missing-route` | the embedding has no route for a logical edge |
//! | `CC008` | `invalid-route` | a route is invalid on the topology (unknown channel, broken hop chain) |
//! | `CC009` | `channel-conflict` | two logical edges occupy one physical channel in overlapping steps — the doubled-NVLink double-tree hazard |
//! | `CC010` | `oversubscription` | edges share a channel but never in the same step (serialization pressure, not a conflict) |
//! | `CC011` | `nic-fan-in` | NIC injection/ejection channels carry several edges concurrently |
//! | `CC012` | `host-bridge-route` | a route crosses the PCIe host bridge the paper's detours avoid |
//! | `CC013` | `step-bound-exceeded` | static step depth exceeds the algorithm's class formula |
//! | `CC014` | `analysis-truncated` | an analysis was skipped (e.g. the race check past its pair budget) |
//!
//! `CC015`..`CC023` are the physical-layer analyzer's codes — fabric
//! hazards, certified lower bounds and fault severance — documented in
//! [`physical`](crate::physical).
//!
//! [`gate`] is the cheap structural subset (DAG + routes) that the
//! simulators debug-assert on every input.
//!
//! # Examples
//!
//! ```
//! use ccube_collectives::{analyze, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
//! use ccube_topology::{dgx1, ByteSize};
//!
//! let topo = dgx1();
//! let dt = DoubleBinaryTree::new(8).unwrap();
//! let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::mib(64), 16),
//!                        Overlap::ReductionBroadcast);
//!
//! // The topology-aware placement lints clean...
//! let good = Embedding::dgx1_double_tree(&topo, &s).unwrap();
//! assert!(analyze::analyze_embedded(&s, &good, &topo, &Default::default()).is_clean());
//!
//! // ...the naive identity placement collides on the doubled NVLinks.
//! let naive = Embedding::identity(&topo, &s).unwrap();
//! let report = analyze::analyze_embedded(&s, &naive, &topo, &Default::default());
//! assert!(report.diagnostics().iter().any(|d| d.code == analyze::LintCode::ChannelConflict));
//! ```

use crate::chunk::ChunkId;
use crate::embedding::{EdgeKey, Embedding};
use crate::rank::Rank;
use crate::schedule::{Phase, Schedule, TransferId, TreeIndex};
use crate::verify::{self, ChannelKeying, DagViolation};
use ccube_topology::{ChannelClass, ChannelId, Topology};
use std::collections::BTreeMap;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected or informational — no action needed.
    Info,
    /// Suspicious but not provably wrong; worth a look.
    Warn,
    /// The schedule/embedding is invalid; running it would deadlock,
    /// corrupt data, or serialize on a conflicted channel.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. The numeric code (`CC001`..) and the kebab-case
/// name are both part of the output contract and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `CC001` — a structural DAG invariant is broken.
    MalformedDag,
    /// `CC002` — the wait-for graph has a cycle (deadlock).
    WaitCycle,
    /// `CC003` — a buffer ends without all contributions (incomplete
    /// reduction or broadcast).
    IncompleteDataflow,
    /// `CC004` — a reduction folds in contributions the destination
    /// already has (a chunk reduced more than once).
    DoubleReduction,
    /// `CC005` — two conflicting accesses to the same buffer with no
    /// dependency path ordering them (a data race; the signature of a
    /// dropped dependency edge).
    DataflowRace,
    /// `CC006` — chunks complete out of order within a tree (breaks the
    /// in-order delivery C2's gradient queue depends on).
    OutOfOrderDelivery,
    /// `CC007` — the embedding has no route for a logical edge.
    MissingRoute,
    /// `CC008` — a route is invalid on the topology (unknown channel,
    /// broken hop chain, wrong endpoints, or via mismatch).
    InvalidRoute,
    /// `CC009` — two logical edges occupy the same physical channel in
    /// the same step (the doubled-NVLink double-tree hazard).
    ChannelConflict,
    /// `CC010` — edges share a channel but never in the same step;
    /// correct, yet the channel is oversubscribed and any slip
    /// serializes.
    Oversubscription,
    /// `CC011` — NIC injection/ejection channels carry several edges
    /// (expected in scale-out topologies; arbitrated at runtime).
    NicFanIn,
    /// `CC012` — a route crosses the PCIe host bridge.
    HostBridgeRoute,
    /// `CC013` — the static step count exceeds the algorithm's class
    /// bound (`2·log P + K` overlapped, `2(log P + K)` baseline).
    StepBoundExceeded,
    /// `CC014` — an analysis was skipped (e.g. the race check on an
    /// oversized schedule); absence of findings is not proof.
    AnalysisTruncated,
    /// `CC015` — several logical edges pile onto one physical port (an
    /// NVLink or host-bridge lane); the embedding serializes there.
    LinkContention,
    /// `CC016` — cross-leaf transfers stripe unevenly over the uplink
    /// slots of a multi-uplink leaf (the `source_node % k` hazard:
    /// static hashing can leave whole slots idle).
    UplinkStripingSkew,
    /// `CC017` — the offered cross-leaf load drains slower through a
    /// leaf's uplink pool than through any endpoint port; the
    /// oversubscribed uplinks are the static bottleneck.
    OversubscriptionHotspot,
    /// `CC018` — a lowered route has no physical port path on the
    /// fabric (fabric/topology mismatch, a channel with no port, or a
    /// leaf crossing with no uplinks).
    UnreachablePortPath,
    /// `CC019` — certified channel-level makespan lower bound
    /// (max of dependency critical path and bottleneck congestion).
    MakespanLowerBound,
    /// `CC020` — certified port-level makespan lower bound on the
    /// switch fabric (endpoint ports exact, uplink pools amortized).
    FabricLowerBound,
    /// `CC021` — a fault window is survivable: every affected transfer
    /// has a fallback route or a surviving uplink slot.
    FaultReroutable,
    /// `CC022` — a fault window stalls traffic until repair (no
    /// fallback while down, but the outage is finite).
    FaultStall,
    /// `CC023` — a permanent fault severs live routes with no fallback;
    /// the fault engine would drain `Unroutable`.
    FaultSevered,
}

impl LintCode {
    /// The stable `CCnnn` code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::MalformedDag => "CC001",
            LintCode::WaitCycle => "CC002",
            LintCode::IncompleteDataflow => "CC003",
            LintCode::DoubleReduction => "CC004",
            LintCode::DataflowRace => "CC005",
            LintCode::OutOfOrderDelivery => "CC006",
            LintCode::MissingRoute => "CC007",
            LintCode::InvalidRoute => "CC008",
            LintCode::ChannelConflict => "CC009",
            LintCode::Oversubscription => "CC010",
            LintCode::NicFanIn => "CC011",
            LintCode::HostBridgeRoute => "CC012",
            LintCode::StepBoundExceeded => "CC013",
            LintCode::AnalysisTruncated => "CC014",
            LintCode::LinkContention => "CC015",
            LintCode::UplinkStripingSkew => "CC016",
            LintCode::OversubscriptionHotspot => "CC017",
            LintCode::UnreachablePortPath => "CC018",
            LintCode::MakespanLowerBound => "CC019",
            LintCode::FabricLowerBound => "CC020",
            LintCode::FaultReroutable => "CC021",
            LintCode::FaultStall => "CC022",
            LintCode::FaultSevered => "CC023",
        }
    }

    /// The kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::MalformedDag => "malformed-dag",
            LintCode::WaitCycle => "wait-cycle",
            LintCode::IncompleteDataflow => "incomplete-dataflow",
            LintCode::DoubleReduction => "double-reduction",
            LintCode::DataflowRace => "dataflow-race",
            LintCode::OutOfOrderDelivery => "out-of-order-delivery",
            LintCode::MissingRoute => "missing-route",
            LintCode::InvalidRoute => "invalid-route",
            LintCode::ChannelConflict => "channel-conflict",
            LintCode::Oversubscription => "oversubscription",
            LintCode::NicFanIn => "nic-fan-in",
            LintCode::HostBridgeRoute => "host-bridge-route",
            LintCode::StepBoundExceeded => "step-bound-exceeded",
            LintCode::AnalysisTruncated => "analysis-truncated",
            LintCode::LinkContention => "link-contention",
            LintCode::UplinkStripingSkew => "uplink-striping-skew",
            LintCode::OversubscriptionHotspot => "oversubscription-hotspot",
            LintCode::UnreachablePortPath => "unreachable-port-path",
            LintCode::MakespanLowerBound => "makespan-lower-bound",
            LintCode::FabricLowerBound => "fabric-lower-bound",
            LintCode::FaultReroutable => "fault-reroutable",
            LintCode::FaultStall => "fault-stall",
            LintCode::FaultSevered => "fault-severed",
        }
    }

    /// The fixed severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::MalformedDag
            | LintCode::WaitCycle
            | LintCode::IncompleteDataflow
            | LintCode::DoubleReduction
            | LintCode::DataflowRace
            | LintCode::MissingRoute
            | LintCode::InvalidRoute
            | LintCode::ChannelConflict
            | LintCode::UnreachablePortPath
            | LintCode::FaultSevered => Severity::Error,
            LintCode::OutOfOrderDelivery
            | LintCode::Oversubscription
            | LintCode::StepBoundExceeded
            | LintCode::LinkContention
            | LintCode::UplinkStripingSkew
            | LintCode::OversubscriptionHotspot
            | LintCode::FaultStall => Severity::Warn,
            LintCode::NicFanIn
            | LintCode::HostBridgeRoute
            | LintCode::AnalysisTruncated
            | LintCode::MakespanLowerBound
            | LintCode::FabricLowerBound
            | LintCode::FaultReroutable => Severity::Info,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// The program locations a diagnostic points at. Every field may be
/// empty; together they name the offending transfers/ranks/chunks/
/// channels/edges precisely enough to find them in a schedule dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Offending transfers.
    pub transfers: Vec<TransferId>,
    /// Offending ranks.
    pub ranks: Vec<Rank>,
    /// Offending chunks.
    pub chunks: Vec<ChunkId>,
    /// Offending physical channels.
    pub channels: Vec<ChannelId>,
    /// Offending logical edges.
    pub edges: Vec<EdgeKey>,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Human-readable description of the finding.
    pub message: String,
    /// What the finding points at.
    pub span: Span,
}

impl Diagnostic {
    /// Builds a diagnostic. Public so downstream analyzer passes (the
    /// physical analyzer, the simulator's severance pass) can report
    /// through the same machinery.
    pub fn new(code: LintCode, message: String, span: Span) -> Self {
        Diagnostic {
            code,
            message,
            span,
        }
    }

    /// The severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity(),
            self.code.as_str(),
            self.message
        )
    }
}

/// The result of a lint pass: diagnostics in stable (code, discovery)
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// All diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Count of diagnostics at a severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// True if no **error**-severity diagnostic was found (warnings and
    /// infos do not make a schedule invalid).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Appends a finding. Public for downstream analyzer passes; call
    /// [`LintReport::finish`] before handing the report out.
    pub fn push(&mut self, code: LintCode, message: String, span: Span) {
        self.diagnostics.push(Diagnostic::new(code, message, span));
    }

    /// Seals a report: sorts diagnostics into the stable
    /// (code, discovery) order every renderer relies on.
    pub fn finish(mut self) -> Self {
        // Stable sort: diagnostics group by code, discovery order within.
        self.diagnostics.sort_by_key(|d| d.code);
        self
    }

    /// Renders the report as deterministic JSON (stable key order, empty
    /// span fields omitted) — the `ccube lint --json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                d.code.as_str(),
                d.code.name(),
                d.severity(),
                json_escape(&d.message)
            ));
            push_json_list(&mut out, "transfers", &d.span.transfers, |t| {
                t.0.to_string()
            });
            push_json_list(&mut out, "ranks", &d.span.ranks, |r| r.0.to_string());
            push_json_list(&mut out, "chunks", &d.span.chunks, |c| c.0.to_string());
            push_json_list(&mut out, "channels", &d.span.channels, |c| c.0.to_string());
            push_json_list(&mut out, "edges", &d.span.edges, |e| format!("\"{e}\""));
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} errors, {} warnings, {} infos",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

fn push_json_list<T>(out: &mut String, key: &str, items: &[T], render: impl Fn(&T) -> String) {
    if items.is_empty() {
        return;
    }
    out.push_str(&format!(",\"{key}\":["));
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render(item));
    }
    out.push(']');
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Knobs of the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Model the runtime's bounded per-`(tree, edge)` mailboxes in the
    /// wait-for graph: a message blocks until the message `capacity`
    /// positions ahead of it has been consumed. `None` models unbounded
    /// mailboxes (no such wait edges).
    pub mailbox_capacity: Option<usize>,
    /// Compare the unit-step depth against the paper's class formulas
    /// (`CC013`).
    pub check_step_bounds: bool,
    /// Skip the O(n²/64) race-reachability check above this many
    /// transfers, reporting `CC014` instead.
    pub max_race_transfers: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            mailbox_capacity: None,
            check_step_bounds: true,
            max_race_transfers: 16_384,
        }
    }
}

/// Why one transfer waits for another in the wait-for graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitKind {
    /// An explicit schedule dependency.
    Dependency,
    /// FIFO grant order on a shared logical channel.
    ChannelFifo,
    /// The runtime's bounded-mailbox back-pressure.
    MailboxCapacity,
}

impl WaitKind {
    fn label(self) -> &'static str {
        match self {
            WaitKind::Dependency => "dep",
            WaitKind::ChannelFifo => "fifo",
            WaitKind::MailboxCapacity => "mailbox",
        }
    }
}

/// Statically analyzes the **logical** schedule: DAG shape, deadlock,
/// dataflow conservation, delivery order, and step bounds.
///
/// The dataflow family assumes the schedule intends to be an AllReduce
/// (every buffer must end with all contributions); lint other collective
/// kinds with [`gate`] and the `verify` checkers instead.
pub fn analyze(schedule: &Schedule, opts: &AnalyzeOptions) -> LintReport {
    let mut report = LintReport::default();

    // CC001: structural violations, all of them.
    let violations = verify::dag_violations(schedule);
    for v in &violations {
        report.push(
            LintCode::MalformedDag,
            format!("{v}"),
            Span {
                transfers: vec![v.transfer()],
                ..Span::default()
            },
        );
    }
    let ids_topological = violations.iter().all(|v| {
        !matches!(
            v,
            DagViolation::ForwardDep { .. } | DagViolation::NonDenseId { .. }
        )
    });

    // CC002: wait-for cycles, with minimal witnesses.
    wait_cycle_lints(schedule, opts.mailbox_capacity, &mut report);

    if violations.is_empty() {
        // The remaining analyses replay the schedule in id order, which is
        // only meaningful on a structurally sound DAG.
        dataflow_lints(schedule, &mut report);
        race_lints(schedule, opts.max_race_transfers, &mut report);
        if report.is_clean() {
            ordering_and_bound_lints(schedule, opts, &mut report);
        }
    } else if !ids_topological {
        report.push(
            LintCode::AnalysisTruncated,
            "dataflow analyses skipped: transfer ids are not a topological order".to_string(),
            Span::default(),
        );
    }

    report.finish()
}

/// [`analyze`] plus the embedding lints: route existence and validity,
/// channel conflicts with step witnesses, oversubscription, NIC fan-in,
/// and host-bridge usage.
pub fn analyze_embedded(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    opts: &AnalyzeOptions,
) -> LintReport {
    let mut report = analyze(schedule, opts);
    // Re-open the sorted report; finish() re-sorts at the end.
    embedding_lints(schedule, embedding, topo, &mut report);
    report.finish()
}

/// The fast structural gate the simulators debug-assert on: DAG
/// violations (`CC001`) and missing/invalid routes (`CC007`, `CC008`)
/// only — O(transfers + edges), no replay. Channel conflicts are *not*
/// gated: deliberately conflicted embeddings (e.g. the topology-oblivious
/// baselines of the extension studies) are legitimate simulator inputs.
pub fn gate(schedule: &Schedule, embedding: &Embedding, topo: &Topology) -> LintReport {
    let mut report = LintReport::default();
    for v in verify::dag_violations(schedule) {
        report.push(
            LintCode::MalformedDag,
            format!("{v}"),
            Span {
                transfers: vec![v.transfer()],
                ..Span::default()
            },
        );
    }
    route_lints(schedule, embedding, topo, &mut report);
    report.finish()
}

// ---------------------------------------------------------------------
// CC002: wait-for graph and deadlock witnesses
// ---------------------------------------------------------------------

fn wait_cycle_lints(schedule: &Schedule, mailbox_capacity: Option<usize>, report: &mut LintReport) {
    let transfers = schedule.transfers();
    let n = transfers.len();
    if n == 0 {
        return;
    }

    // adj[u] = v: u waits for v.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut kinds: BTreeMap<(u32, u32), WaitKind> = BTreeMap::new();
    let add = |adj: &mut Vec<Vec<u32>>,
               kinds: &mut BTreeMap<(u32, u32), WaitKind>,
               u: u32,
               v: u32,
               kind: WaitKind| {
        adj[u as usize].push(v);
        kinds.entry((u, v)).or_insert(kind);
    };

    // Dependencies: a transfer waits for each of its deps.
    for (i, t) in transfers.iter().enumerate() {
        for d in &t.deps {
            if d.index() < n {
                add(&mut adj, &mut kinds, i as u32, d.0, WaitKind::Dependency);
            }
        }
    }

    // Channel FIFO: each logical channel grants its transfers in id
    // order, so every transfer waits for its predecessor on the channel.
    // Mailboxes are keyed the same way ((tree, edge) queues in the
    // runtime), so the same queues drive the capacity edges.
    let mut queues: BTreeMap<(Rank, Rank, TreeIndex), Vec<u32>> = BTreeMap::new();
    for t in transfers {
        queues
            .entry((t.src, t.dst, t.tree))
            .or_default()
            .push(t.id.0);
    }
    for queue in queues.values() {
        for w in queue.windows(2) {
            add(&mut adj, &mut kinds, w[1], w[0], WaitKind::ChannelFifo);
        }
    }

    // Mailbox back-pressure: with capacity C, message m_i on an edge
    // cannot be posted until m_{i-C} has been *consumed*. The runtime's
    // workers are per-(rank, tree, direction), so a message is consumed
    // by the receiver's first *same-class* (reduction vs broadcast),
    // same-tree send that depends on it — the forward that the worker
    // blocks on between receives. A message with no such send lands in a
    // pure-sink worker (e.g. the root's reduction loop, which only posts
    // semaphores) and never exerts back-pressure.
    if let Some(cap) = mailbox_capacity {
        if cap > 0 {
            let mut consumer: Vec<Option<u32>> = vec![None; n];
            for t in transfers {
                for d in &t.deps {
                    if d.index() < n {
                        let dep = &transfers[d.index()];
                        if dep.dst == t.src
                            && dep.tree == t.tree
                            && dep.phase.is_reduction() == t.phase.is_reduction()
                        {
                            let slot = &mut consumer[d.index()];
                            if slot.is_none() {
                                *slot = Some(t.id.0);
                            }
                        }
                    }
                }
            }
            for queue in queues.values() {
                for i in cap..queue.len() {
                    if let Some(c) = consumer[queue[i - cap] as usize] {
                        add(&mut adj, &mut kinds, queue[i], c, WaitKind::MailboxCapacity);
                    }
                }
            }
        }
    }

    for cycle in find_cycles(&adj) {
        let witness = minimal_witness(&adj, &cycle);
        let mut msg = String::from("wait-for cycle: ");
        for (i, &u) in witness.iter().enumerate() {
            let v = witness[(i + 1) % witness.len()];
            let kind = kinds.get(&(u, v)).map(|k| k.label()).unwrap_or("?");
            msg.push_str(&format!("t{u} -{kind}-> "));
        }
        msg.push_str(&format!("t{}", witness[0]));
        report.push(
            LintCode::WaitCycle,
            msg,
            Span {
                transfers: witness.iter().map(|&u| TransferId(u)).collect(),
                ..Span::default()
            },
        );
    }
}

/// Strongly connected components with a cycle (size > 1, or a self
/// loop), as sorted node lists ordered by smallest member. Iterative
/// Tarjan, so deep schedules cannot overflow the stack.
fn find_cycles(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut out = Vec::new();

    // (node, next edge position) frames.
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let vi = v as usize;
            if *ei == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if let Some(&w) = adj[vi].get(*ei) {
                *ei += 1;
                let wi = w as usize;
                if index[wi] == u32::MAX {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                if low[vi] == index[vi] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    let cyclic = scc.len() > 1 || adj[scc[0] as usize].contains(&scc[0]);
                    if cyclic {
                        out.push(scc);
                    }
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }
    out.sort_by_key(|scc| scc[0]);
    out
}

/// The shortest cycle through the smallest node of a cyclic SCC — the
/// minimal witness path reported to the user. BFS restricted to the SCC.
fn minimal_witness(adj: &[Vec<u32>], scc: &[u32]) -> Vec<u32> {
    let start = scc[0];
    let in_scc: std::collections::HashSet<u32> = scc.iter().copied().collect();
    let mut prev: BTreeMap<u32, u32> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if v == start {
                // Reconstruct start -> ... -> u, closing back to start.
                let mut path = vec![u];
                let mut cur = u;
                while cur != start {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            if in_scc.contains(&v) && !prev.contains_key(&v) && v != start {
                prev.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    scc.to_vec() // unreachable for a true SCC, but stay total
}

// ---------------------------------------------------------------------
// CC003 / CC004: dataflow conservation via symbolic replay
// ---------------------------------------------------------------------

fn dataflow_lints(schedule: &Schedule, report: &mut LintReport) {
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    let mut state: Vec<Vec<verify::Contrib>> = (0..p)
        .map(|r| {
            (0..k)
                .map(|_| verify::Contrib::single(Rank(r as u32), p))
                .collect()
        })
        .collect();

    for t in schedule.transfers() {
        let payload = state[t.src.index()][t.chunk.index()].clone();
        let dst = &mut state[t.dst.index()][t.chunk.index()];
        if t.phase.is_reduction() {
            if payload.intersects(dst) {
                report.push(
                    LintCode::DoubleReduction,
                    format!(
                        "{} folds contributions already present at {} {}",
                        t.id, t.dst, t.chunk
                    ),
                    Span {
                        transfers: vec![t.id],
                        ranks: vec![t.dst],
                        chunks: vec![t.chunk],
                        ..Span::default()
                    },
                );
            }
            dst.union(&payload);
        } else {
            *dst = payload;
        }
    }

    #[allow(clippy::needless_range_loop)] // `c` indexes the inner axis of state[r][c]
    for c in 0..k {
        let incomplete: Vec<(Rank, usize)> = (0..p)
            .filter_map(|r| {
                let have = state[r][c].count();
                (have != p).then_some((Rank(r as u32), have))
            })
            .collect();
        if let Some(&(worst_rank, worst_have)) = incomplete.iter().min_by_key(|&&(_, h)| h) {
            report.push(
                LintCode::IncompleteDataflow,
                format!(
                    "chunk c{c} incomplete at {} ranks (worst: {} with {}/{} contributions)",
                    incomplete.len(),
                    worst_rank,
                    worst_have,
                    p
                ),
                Span {
                    ranks: incomplete.iter().map(|&(r, _)| r).collect(),
                    chunks: vec![ChunkId(c as u32)],
                    ..Span::default()
                },
            );
        }
    }
}

// ---------------------------------------------------------------------
// CC005: unordered conflicting buffer accesses
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    /// The transfer reads the buffer (it is the sender's source).
    Read,
    /// The transfer accumulates into the buffer (reduction receive).
    Acc,
    /// The transfer overwrites the buffer (broadcast receive).
    Over,
}

impl Access {
    fn label(self) -> &'static str {
        match self {
            Access::Read => "read",
            Access::Acc => "accumulate",
            Access::Over => "overwrite",
        }
    }

    /// Acc/Acc commutes (reduction is associative-commutative) and
    /// Read/Read is harmless; every other pair needs a dependency path.
    fn conflicts_with(self, other: Access) -> bool {
        !matches!(
            (self, other),
            (Access::Read, Access::Read) | (Access::Acc, Access::Acc)
        )
    }
}

fn race_lints(schedule: &Schedule, max_transfers: usize, report: &mut LintReport) {
    let transfers = schedule.transfers();
    let n = transfers.len();
    if n > max_transfers {
        report.push(
            LintCode::AnalysisTruncated,
            format!("race analysis skipped: {n} transfers exceed the {max_transfers} cap"),
            Span::default(),
        );
        return;
    }

    // anc[i] = bitset of transfers reachable from i via deps (ancestors
    // in execution order). Ids are topological here (checked upstream).
    let words = n.div_ceil(64);
    let mut anc: Vec<Vec<u64>> = Vec::with_capacity(n);
    for t in transfers {
        let mut bits = vec![0u64; words];
        for d in &t.deps {
            let di = d.index();
            bits[di / 64] |= 1 << (di % 64);
            for (w, a) in bits.iter_mut().zip(&anc[di]) {
                *w |= a;
            }
        }
        anc.push(bits);
    }
    let ordered = |a: usize, b: usize| -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        anc[hi][lo / 64] & (1 << (lo % 64)) != 0
    };

    // Buffer accesses, in id order per (rank, chunk) buffer.
    let mut accesses: BTreeMap<(u32, u32), Vec<(u32, Access)>> = BTreeMap::new();
    for t in transfers {
        accesses
            .entry((t.src.0, t.chunk.0))
            .or_default()
            .push((t.id.0, Access::Read));
        let write = if t.phase.is_reduction() {
            Access::Acc
        } else {
            Access::Over
        };
        accesses
            .entry((t.dst.0, t.chunk.0))
            .or_default()
            .push((t.id.0, write));
    }

    for (&(rank, chunk), list) in &accesses {
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let (ta, ka) = list[i];
                let (tb, kb) = list[j];
                if ka.conflicts_with(kb) && !ordered(ta as usize, tb as usize) {
                    report.push(
                        LintCode::DataflowRace,
                        format!(
                            "unordered conflicting accesses to r{rank} c{chunk}: \
                             t{ta} ({}) vs t{tb} ({})",
                            ka.label(),
                            kb.label()
                        ),
                        Span {
                            transfers: vec![TransferId(ta), TransferId(tb)],
                            ranks: vec![Rank(rank)],
                            chunks: vec![ChunkId(chunk)],
                            ..Span::default()
                        },
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// CC006 / CC013: delivery order and class step bounds
// ---------------------------------------------------------------------

fn ordering_and_bound_lints(schedule: &Schedule, opts: &AnalyzeOptions, report: &mut LintReport) {
    let is_pure_tree = schedule
        .transfers()
        .iter()
        .all(|t| matches!(t.phase, Phase::Reduce | Phase::Broadcast));
    let Ok(replay) = verify::execute_steps(schedule, ChannelKeying::PerTree) else {
        return; // a replay deadlock would already be a CC002 upstream
    };

    if is_pure_tree && !schedule.transfers().is_empty() {
        let num_trees = schedule
            .transfers()
            .iter()
            .map(|t| t.tree.index() + 1)
            .max()
            .unwrap_or(1);
        for parity in 0..num_trees {
            let per_parity: Vec<(usize, usize)> = replay
                .chunk_complete_step
                .iter()
                .enumerate()
                .filter(|(c, _)| c % num_trees == parity)
                .map(|(c, &s)| (c, s))
                .collect();
            if let Some(w) = per_parity.windows(2).find(|w| w[0].1 > w[1].1) {
                report.push(
                    LintCode::OutOfOrderDelivery,
                    format!(
                        "tree {parity}: chunk c{} (step {}) completes after chunk c{} (step {})",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ),
                    Span {
                        chunks: vec![ChunkId(w[0].0 as u32), ChunkId(w[1].0 as u32)],
                        ..Span::default()
                    },
                );
            }
        }
    }

    if opts.check_step_bounds {
        step_bound_lints(schedule, &replay, report);
    }
}

fn step_bound_lints(schedule: &Schedule, replay: &verify::StepReport, report: &mut LintReport) {
    let name = schedule.algorithm();
    let p = schedule.num_ranks();
    if name == "ring" || name.ends_with("-ring") {
        // Each ring's dependency chain is its 2(P-1) sequential steps.
        let bound = 2 * (p.saturating_sub(1));
        let actual = schedule.stats().critical_path;
        if actual > bound {
            report.push(
                LintCode::StepBoundExceeded,
                format!("ring critical path {actual} exceeds 2(P-1) = {bound} at P={p}"),
                Span::default(),
            );
        }
        return;
    }
    let overlapped = name.starts_with("overlapped-");
    if !name.contains("tree") || (!overlapped && !name.starts_with("baseline-")) {
        return; // unknown class: no bound to check
    }

    // Per tree t: d_t = longest reduction chain (the tree depth a chunk
    // climbs), k_t = chunks the tree carries. The paper's Fig. 7 bounds:
    // overlapped 2·d_t + k_t - 1, baseline 2(d_t + k_t - 1); trees run on
    // disjoint channels, so the schedule bound is the max over trees.
    let transfers = schedule.transfers();
    let mut reduce_depth = vec![0usize; transfers.len()];
    let mut per_tree: BTreeMap<usize, (usize, std::collections::BTreeSet<u32>)> = BTreeMap::new();
    for t in transfers {
        let entry = per_tree.entry(t.tree.index()).or_default();
        entry.1.insert(t.chunk.0);
        if t.phase.is_reduction() {
            let base = t
                .deps
                .iter()
                .filter(|d| transfers[d.index()].phase.is_reduction())
                .map(|d| reduce_depth[d.index()])
                .max()
                .unwrap_or(0);
            reduce_depth[t.id.index()] = base + 1;
            entry.0 = entry.0.max(base + 1);
        }
    }
    let bound = per_tree
        .values()
        .map(|&(d, ref chunks)| {
            let k = chunks.len();
            if overlapped {
                2 * d + k.saturating_sub(1)
            } else {
                2 * (d + k.saturating_sub(1))
            }
        })
        .max()
        .unwrap_or(0);
    if replay.num_steps > bound {
        let formula = if overlapped {
            "2·logP + K - 1"
        } else {
            "2(logP + K - 1)"
        };
        report.push(
            LintCode::StepBoundExceeded,
            format!(
                "{} steps exceed the {} class bound {} ({})",
                replay.num_steps, name, bound, formula
            ),
            Span::default(),
        );
    }
}

// ---------------------------------------------------------------------
// CC007..CC012: embedding lints
// ---------------------------------------------------------------------

fn embedding_lints(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    report: &mut LintReport,
) {
    let had_errors = !report.is_clean();
    route_lints(schedule, embedding, topo, report);

    // Conflict detection over the valid routes, in deterministic
    // logical-edge order (never HashMap iteration order).
    let edges = schedule.logical_edges();
    let mut by_channel: BTreeMap<ChannelId, Vec<EdgeKey>> = BTreeMap::new();
    let mut transfers_on_edge: BTreeMap<(u32, u32, u8), Vec<u32>> = BTreeMap::new();
    for t in schedule.transfers() {
        transfers_on_edge
            .entry((t.src.0, t.dst.0, t.tree.0))
            .or_default()
            .push(t.id.0);
    }
    let mut host_edges: Vec<EdgeKey> = Vec::new();
    for &(src, dst, tree) in &edges {
        let key = EdgeKey { src, dst, tree };
        let Some(route) = embedding.route(&key) else {
            continue; // already a CC007
        };
        if route.class() == ChannelClass::HostBridge {
            host_edges.push(key);
        }
        for &c in route.channels() {
            if c.index() < topo.channels().len() {
                by_channel.entry(c).or_default().push(key);
            }
        }
    }

    // Unit-step completion times give the "overlapping steps" witness: a
    // shared channel is a real conflict only if two edges occupy it in
    // the same step.
    let replay = if had_errors {
        None
    } else {
        verify::execute_steps(schedule, ChannelKeying::PerTree).ok()
    };
    let steps_of = |edge: &EdgeKey| -> BTreeMap<usize, u32> {
        let mut steps = BTreeMap::new();
        if let Some(rep) = &replay {
            if let Some(tids) = transfers_on_edge.get(&(edge.src.0, edge.dst.0, edge.tree.0)) {
                for &tid in tids {
                    steps
                        .entry(rep.completion_step[tid as usize])
                        .or_insert(tid);
                }
            }
        }
        steps
    };

    let mut nic_shared = 0usize;
    let mut nic_max_fanin = 0usize;
    for (&channel, edges) in &by_channel {
        if edges.len() < 2 {
            continue;
        }
        if topo.channel(channel).class() == ChannelClass::Nic {
            nic_shared += 1;
            nic_max_fanin = nic_max_fanin.max(edges.len());
            continue;
        }
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                let (e1, e2) = (edges[i], edges[j]);
                let s1 = steps_of(&e1);
                let s2 = steps_of(&e2);
                let overlap = s1
                    .iter()
                    .find_map(|(step, &t1)| s2.get(step).map(|&t2| (*step, t1, t2)));
                match overlap {
                    Some((step, t1, t2)) => report.push(
                        LintCode::ChannelConflict,
                        format!(
                            "{e1} and {e2} both occupy {channel} at step {step} (t{t1}, t{t2})"
                        ),
                        Span {
                            transfers: vec![TransferId(t1), TransferId(t2)],
                            channels: vec![channel],
                            edges: vec![e1, e2],
                            ..Span::default()
                        },
                    ),
                    None if replay.is_some() => report.push(
                        LintCode::Oversubscription,
                        format!("{e1} and {e2} share {channel} (never in the same step)"),
                        Span {
                            channels: vec![channel],
                            edges: vec![e1, e2],
                            ..Span::default()
                        },
                    ),
                    // Without a step replay (schedule already errored) a
                    // shared point-to-point channel must be assumed hot.
                    None => report.push(
                        LintCode::ChannelConflict,
                        format!("{e1} and {e2} both mapped to {channel}"),
                        Span {
                            channels: vec![channel],
                            edges: vec![e1, e2],
                            ..Span::default()
                        },
                    ),
                }
            }
        }
    }

    if nic_shared > 0 {
        report.push(
            LintCode::NicFanIn,
            format!(
                "{nic_shared} nic channels carry multiple edges (max fan-in {nic_max_fanin}); \
                 arbitrated at runtime, expected in scale-out topologies"
            ),
            Span::default(),
        );
    }
    if !host_edges.is_empty() {
        report.push(
            LintCode::HostBridgeRoute,
            format!(
                "{} edges routed over the PCIe host bridge (e.g. {})",
                host_edges.len(),
                host_edges[0]
            ),
            Span {
                edges: host_edges,
                ..Span::default()
            },
        );
    }
}

/// CC007/CC008: every logical edge must have a route that is real on the
/// topology — channels exist, hops chain from the source GPU to the
/// destination GPU (NIC routes instead follow the injection/ejection
/// convention), and the declared detour GPU lies on the path.
fn route_lints(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    report: &mut LintReport,
) {
    for (src, dst, tree) in schedule.logical_edges() {
        let key = EdgeKey { src, dst, tree };
        let Some(route) = embedding.route(&key) else {
            report.push(
                LintCode::MissingRoute,
                format!("no route for logical edge {key}"),
                Span {
                    edges: vec![key],
                    ..Span::default()
                },
            );
            continue;
        };
        let sg = embedding.gpu_of(src);
        let dg = embedding.gpu_of(dst);
        let mut invalid = |why: String, channels: Vec<ChannelId>| {
            report.push(
                LintCode::InvalidRoute,
                format!("invalid route for {key}: {why}"),
                Span {
                    channels,
                    edges: vec![key],
                    ..Span::default()
                },
            );
        };
        if route.src() != sg || route.dst() != dg {
            invalid(
                format!(
                    "route endpoints {}->{} do not match the edge's GPUs {}->{}",
                    route.src(),
                    route.dst(),
                    sg,
                    dg
                ),
                route.channels().to_vec(),
            );
            continue;
        }
        if let Some(&bad) = route
            .channels()
            .iter()
            .find(|c| c.index() >= topo.channels().len())
        {
            invalid(format!("unknown channel {bad}"), vec![bad]);
            continue;
        }
        if route.channels().is_empty() {
            invalid("empty channel path".to_string(), Vec::new());
            continue;
        }
        if route.class() == ChannelClass::Nic {
            // NIC routes are (injection, ejection) pairs, not hop chains:
            // the first channel must leave the source node and the last
            // must arrive at the destination node.
            let first = topo.channel(route.channels()[0]);
            let last = topo.channel(*route.channels().last().expect("non-empty"));
            if first.src() != sg || last.dst() != dg {
                invalid(
                    format!(
                        "nic route must inject at {sg} and eject at {dg} \
                         (got {} and {})",
                        first.src(),
                        last.dst()
                    ),
                    route.channels().to_vec(),
                );
            }
            continue;
        }
        if !topo.is_path(sg, dg, route.channels()) {
            invalid(
                format!("channels do not form a path from {sg} to {dg}"),
                route.channels().to_vec(),
            );
            continue;
        }
        if let Some(via) = route.via() {
            let through_via = route.channels()[..route.channels().len() - 1]
                .iter()
                .any(|&c| topo.channel(c).dst() == via);
            if !through_via {
                invalid(
                    format!("declared detour via {via} is not on the path"),
                    route.channels().to_vec(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunking;
    use crate::ring::{ring_allreduce, ring_allreduce_multi};
    use crate::schedule::Transfer;
    use crate::tree::{BinaryTree, DoubleBinaryTree};
    use crate::tree_schedule::{tree_allreduce, Overlap};
    use ccube_topology::{dgx1, ByteSize, Route};

    fn double_tree(k: usize, overlap: Overlap) -> Schedule {
        let dt = DoubleBinaryTree::new(8).unwrap();
        tree_allreduce(dt.trees(), &Chunking::even(ByteSize::mib(64), k), overlap)
    }

    fn runtime_opts() -> AnalyzeOptions {
        AnalyzeOptions {
            mailbox_capacity: Some(4),
            ..AnalyzeOptions::default()
        }
    }

    #[test]
    fn shipped_schedules_lint_clean() {
        let opts = runtime_opts();
        let fwd: Vec<Rank> = (0..8).map(Rank).collect();
        let rev: Vec<Rank> = (0..8).rev().map(Rank).collect();
        for s in [
            ring_allreduce(8, ByteSize::mib(64)),
            ring_allreduce_multi(ByteSize::mib(64), &[fwd, rev]),
            double_tree(16, Overlap::ReductionBroadcast),
            double_tree(16, Overlap::None),
        ] {
            let report = analyze(&s, &opts);
            assert!(report.is_clean(), "{}:\n{report}", s.algorithm());
            assert_eq!(
                report.count(Severity::Warn),
                0,
                "{}:\n{report}",
                s.algorithm()
            );
        }
    }

    #[test]
    fn seeded_dependency_cycle_is_a_minimal_witness() {
        // t0 and t1 wait on each other: a 2-cycle.
        let mk = |id: u32, deps: Vec<TransferId>| Transfer {
            id: TransferId(id),
            src: Rank(id % 2),
            dst: Rank((id + 1) % 2),
            chunk: ChunkId(0),
            bytes: ByteSize::kib(4),
            phase: Phase::Reduce,
            tree: TreeIndex(0),
            deps,
        };
        let s = Schedule::new_unchecked(
            "seeded-deadlock",
            2,
            Chunking::even(ByteSize::kib(8), 1),
            vec![mk(0, vec![TransferId(1)]), mk(1, vec![TransferId(0)])],
        );
        let report = analyze(&s, &AnalyzeOptions::default());
        let cycle: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::WaitCycle)
            .collect();
        assert_eq!(cycle.len(), 1, "{report}");
        // Minimal witness: exactly the two mutually-waiting transfers.
        assert_eq!(cycle[0].span.transfers.len(), 2, "{}", cycle[0].message);
        // The forward dep is also flagged structurally.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::MalformedDag));
    }

    #[test]
    fn mailbox_capacity_one_deadlocks_a_two_message_exchange() {
        // Edge r0->r1 carries m0 (t0) and m1 (t1); r1's forwarding send
        // t2 consumes both. With capacity 1, m1 cannot be posted until m0
        // is consumed by t2 — which waits for m1.
        let t = |id: u32, src: u32, dst: u32, deps: Vec<TransferId>| Transfer {
            id: TransferId(id),
            src: Rank(src),
            dst: Rank(dst),
            chunk: ChunkId(0),
            bytes: ByteSize::kib(4),
            phase: Phase::Reduce,
            tree: TreeIndex(0),
            deps,
        };
        let s = Schedule::new_unchecked(
            "mailbox-exchange",
            3,
            Chunking::even(ByteSize::kib(4), 1),
            vec![
                t(0, 0, 1, vec![]),
                t(1, 0, 1, vec![]),
                t(2, 1, 2, vec![TransferId(0), TransferId(1)]),
            ],
        );
        let tight = analyze(
            &s,
            &AnalyzeOptions {
                mailbox_capacity: Some(1),
                ..AnalyzeOptions::default()
            },
        );
        assert!(
            tight
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::WaitCycle && d.message.contains("mailbox")),
            "{tight}"
        );
        // Capacity 2 clears the back-pressure edge.
        let roomy = analyze(
            &s,
            &AnalyzeOptions {
                mailbox_capacity: Some(2),
                ..AnalyzeOptions::default()
            },
        );
        assert!(
            !roomy
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::WaitCycle),
            "{roomy}"
        );
    }

    #[test]
    fn dropped_dependency_is_a_dataflow_race() {
        // Dropping a data-carrying dep leaves the symbolic (id-order)
        // replay correct but the accesses unordered — exactly CC005.
        let good = double_tree(8, Overlap::ReductionBroadcast);
        let mut transfers = good.transfers().to_vec();
        let victim = transfers
            .iter()
            .position(|t| {
                !t.deps.is_empty()
                    && t.deps.iter().any(|d| {
                        let dep = &good.transfers()[d.index()];
                        dep.chunk == t.chunk && (dep.dst == t.src || dep.dst == t.dst)
                    })
            })
            .expect("a data-carrying dependency exists");
        let keep: Vec<TransferId> = transfers[victim]
            .deps
            .iter()
            .copied()
            .filter(|d| {
                let dep = &good.transfers()[d.index()];
                !(dep.chunk == transfers[victim].chunk
                    && (dep.dst == transfers[victim].src || dep.dst == transfers[victim].dst))
            })
            .collect();
        let dropped = transfers[victim].deps.len() - keep.len();
        assert!(dropped > 0);
        transfers[victim].deps = keep;
        let mutated = Schedule::new(
            good.algorithm().to_string(),
            good.num_ranks(),
            good.chunking().clone(),
            transfers,
        );
        // Still "correct" under id-order symbolic replay...
        verify::check_allreduce(&mutated).unwrap();
        // ...but the analyzer sees the missing ordering.
        let report = analyze(&mutated, &AnalyzeOptions::default());
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::DataflowRace),
            "{report}"
        );
    }

    #[test]
    fn incomplete_and_double_reductions_are_flagged() {
        let t = |id: u32, src: u32, dst: u32, deps: Vec<TransferId>| Transfer {
            id: TransferId(id),
            src: Rank(src),
            dst: Rank(dst),
            chunk: ChunkId(0),
            bytes: ByteSize::kib(4),
            phase: Phase::Reduce,
            tree: TreeIndex(0),
            deps,
        };
        // Reduce r0 into r1 twice: the second fold double-counts r0.
        let s = Schedule::new(
            "bad",
            2,
            Chunking::even(ByteSize::kib(4), 1),
            vec![t(0, 0, 1, vec![]), t(1, 0, 1, vec![TransferId(0)])],
        );
        let report = analyze(&s, &AnalyzeOptions::default());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::DoubleReduction));
        // And r0 never hears back: incomplete.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::IncompleteDataflow));
    }

    #[test]
    fn dgx1_double_tree_embedding_is_clean_but_identity_conflicts() {
        let topo = dgx1();
        let s = double_tree(16, Overlap::ReductionBroadcast);
        let good = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let report = analyze_embedded(&s, &good, &topo, &runtime_opts());
        assert!(report.is_clean(), "{report}");

        let naive = Embedding::identity(&topo, &s).unwrap();
        let report = analyze_embedded(&s, &naive, &topo, &runtime_opts());
        let conflicts: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::ChannelConflict)
            .collect();
        assert!(
            !conflicts.is_empty(),
            "identity double tree must collide on the doubled NVLinks:\n{report}"
        );
        // The witness names the step and both transfers.
        assert!(conflicts[0].message.contains("step"), "{}", conflicts[0]);
        assert_eq!(conflicts[0].span.transfers.len(), 2);
    }

    #[test]
    fn nic_embedding_reports_fanin_info_only() {
        let topo = ccube_topology::hierarchical(16);
        let dt = DoubleBinaryTree::new(16).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(64), 16),
            Overlap::ReductionBroadcast,
        );
        let emb = Embedding::nic(&topo, &s).unwrap();
        let report = analyze_embedded(&s, &emb, &topo, &runtime_opts());
        assert!(report.is_clean(), "{report}");
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::NicFanIn));
    }

    #[test]
    fn missing_and_invalid_routes_are_flagged() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(1));
        let mut emb = Embedding::identity(&topo, &s).unwrap();
        // Remap one edge onto a channel with the wrong endpoints.
        let edge = {
            let (src, dst, tree) = s.logical_edges()[0];
            EdgeKey { src, dst, tree }
        };
        let wrong = topo
            .channels()
            .iter()
            .find(|c| c.src() != emb.gpu_of(edge.src))
            .unwrap()
            .id();
        emb.set_route(
            edge,
            Route::multi(
                emb.gpu_of(edge.src),
                emb.gpu_of(edge.dst),
                vec![wrong],
                ChannelClass::NvLink,
            ),
        );
        let report = gate(&s, &emb, &topo);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::InvalidRoute));

        // A different schedule's embedding has no routes for this one.
        let tree = BinaryTree::inorder(8).unwrap();
        let other = tree_allreduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::mib(1), 4),
            Overlap::None,
        );
        let other_emb = Embedding::identity(&topo, &other).unwrap();
        let report = gate(&s, &other_emb, &topo);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::MissingRoute));
    }

    #[test]
    fn step_bound_flags_a_mislabeled_schedule() {
        // Baseline transfers labeled as overlapped exceed the overlapped
        // class bound 2·d + k - 1.
        let tree = BinaryTree::inorder(8).unwrap();
        let baseline = tree_allreduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::mib(8), 8),
            Overlap::None,
        );
        let mislabeled = Schedule::new(
            "overlapped-tree",
            baseline.num_ranks(),
            baseline.chunking().clone(),
            baseline.transfers().to_vec(),
        );
        let report = analyze(&mislabeled, &AnalyzeOptions::default());
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::StepBoundExceeded),
            "{report}"
        );
        // Correctly labeled, the same schedule meets its class bound.
        let report = analyze(&baseline, &AnalyzeOptions::default());
        assert!(
            !report
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::StepBoundExceeded),
            "{report}"
        );
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut report = LintReport::default();
        report.push(
            LintCode::MissingRoute,
            "quote \" and backslash \\".to_string(),
            Span {
                transfers: vec![TransferId(3)],
                ..Span::default()
            },
        );
        let json = report.finish().to_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\"transfers\":[3]"));
        assert!(json.starts_with("{\"errors\":1,"));
    }

    #[test]
    fn gate_is_clean_for_all_shipped_embeddings() {
        let topo = dgx1();
        let s = double_tree(16, Overlap::ReductionBroadcast);
        for emb in [
            Embedding::identity(&topo, &s).unwrap(),
            Embedding::identity_with_host(&topo, &s).unwrap(),
            Embedding::dgx1_double_tree(&topo, &s).unwrap(),
        ] {
            assert!(gate(&s, &emb, &topo).is_clean());
        }
        let hier = ccube_topology::hierarchical(16);
        let dt = DoubleBinaryTree::new(16).unwrap();
        let s16 = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(64), 16),
            Overlap::ReductionBroadcast,
        );
        let emb = Embedding::nic(&hier, &s16).unwrap();
        assert!(gate(&s16, &emb, &hier).is_clean());
    }
}
