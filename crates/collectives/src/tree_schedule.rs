//! Schedule builders for tree-based AllReduce (baseline and overlapped).

use crate::chunk::{ChunkId, Chunking};
use crate::schedule::{Phase, Schedule, ScheduleBuilder, TransferId, TreeIndex};
use crate::tree::BinaryTree;

/// Whether the reduction and broadcast phases of the tree algorithm are
/// chained together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Overlap {
    /// Conventional tree algorithm (paper's `B`): the broadcast of *any*
    /// chunk starts only after *every* chunk has been reduced at the root
    /// (paper Fig. 7(a)).
    None,
    /// The paper's overlapped tree (`C1`): each chunk's broadcast starts
    /// as soon as that chunk is fully reduced at the root, flowing down
    /// the idle "downlink" channels while reduction continues up (paper
    /// Fig. 7(b), Observations #1 and #2).
    ReductionBroadcast,
}

impl Overlap {
    /// Short label used in schedule names ("baseline" / "overlapped").
    pub fn label(self) -> &'static str {
        match self {
            Overlap::None => "baseline",
            Overlap::ReductionBroadcast => "overlapped",
        }
    }
}

/// Builds a tree AllReduce schedule over one or more logical trees.
///
/// Chunks are distributed over the trees round-robin by chunk parity
/// (`chunk % trees.len()`), so a [`DoubleBinaryTree`] receives the even
/// chunks on tree 0 and the odd chunks on tree 1 and overall completion
/// order still tracks chunk order — the in-order property (paper
/// Observation #3) that gradient queuing depends on.
///
/// Within each tree the reduction is pipelined chunk-by-chunk up the tree
/// and the broadcast down; with [`Overlap::ReductionBroadcast`] the two
/// phases are chained per chunk.
///
/// # Panics
///
/// Panics if `trees` is empty or the trees disagree on rank count.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{tree_allreduce, BinaryTree, Chunking, Overlap};
/// use ccube_topology::ByteSize;
///
/// let tree = BinaryTree::inorder(4).unwrap();
/// let chunking = Chunking::even(ByteSize::mib(4), 4);
/// let s = tree_allreduce(
///     std::slice::from_ref(&tree),
///     &chunking,
///     Overlap::ReductionBroadcast,
/// );
/// // (P-1) up-edges + (P-1) down-edges, once per chunk:
/// assert_eq!(s.transfers().len(), 2 * 3 * 4);
/// ```
///
/// [`DoubleBinaryTree`]: crate::DoubleBinaryTree
pub fn tree_allreduce(trees: &[BinaryTree], chunking: &Chunking, overlap: Overlap) -> Schedule {
    assert!(!trees.is_empty(), "tree_allreduce needs at least one tree");
    let p = trees[0].num_ranks();
    assert!(
        trees.iter().all(|t| t.num_ranks() == p),
        "all trees must span the same ranks"
    );

    let mut b = ScheduleBuilder::new();
    // Dense (tree, chunk, rank) tables — every slot the loops below read
    // is written first, so the placeholder never escapes. A hash map
    // here is measurably slower: these tables are hit once or twice per
    // transfer, and deep grids build millions of transfers per sweep.
    let k = chunking.num_chunks();
    let idx = |ti: usize, c: ChunkId, r: u32| (ti * k + c.index()) * p + r as usize;
    // red[idx(tree, chunk, rank)] = id of the reduction transfer rank->parent.
    let mut red: Vec<TransferId> = vec![TransferId(u32::MAX); trees.len() * k * p];
    // bc[idx(tree, chunk, rank)] = id of the broadcast transfer parent->rank.
    let mut bc: Vec<TransferId> = vec![TransferId(u32::MAX); trees.len() * k * p];

    let tree_chunks: Vec<Vec<ChunkId>> = (0..trees.len())
        .map(|ti| {
            chunking
                .ids()
                .filter(|c| c.index() % trees.len() == ti)
                .collect()
        })
        .collect();

    // Reduction phase: pipelined up each tree, chunk-major.
    for (ti, tree) in trees.iter().enumerate() {
        let bottom_up = tree.bottom_up();
        for &c in &tree_chunks[ti] {
            for &r in &bottom_up {
                let Some(parent) = tree.parent(r) else {
                    continue; // root does not send upward
                };
                let deps = tree
                    .children(r)
                    .iter()
                    .map(|&child| red[idx(ti, c, child.0)])
                    .collect();
                let id = b.push(
                    r,
                    parent,
                    c,
                    chunking.size(c),
                    Phase::Reduce,
                    TreeIndex(ti as u8),
                    deps,
                );
                red[idx(ti, c, r.0)] = id;
            }
        }
    }

    // Broadcast phase: pipelined down each tree.
    for (ti, tree) in trees.iter().enumerate() {
        let top_down = tree.top_down();
        let root = tree.root();
        // Baseline barrier: every reduction transfer into the root of this
        // tree, across all of its chunks.
        let mut barrier: Vec<TransferId> = Vec::new();
        if overlap == Overlap::None {
            for &c in &tree_chunks[ti] {
                for &child in tree.children(root) {
                    barrier.push(red[idx(ti, c, child.0)]);
                }
            }
        }
        for &c in &tree_chunks[ti] {
            for &r in &top_down {
                for &child in tree.children(r) {
                    let deps: Vec<TransferId> = if r == root {
                        match overlap {
                            Overlap::None => barrier.clone(),
                            Overlap::ReductionBroadcast => tree
                                .children(root)
                                .iter()
                                .map(|&ch| red[idx(ti, c, ch.0)])
                                .collect(),
                        }
                    } else {
                        vec![bc[idx(ti, c, r.0)]]
                    };
                    let id = b.push(
                        r,
                        child,
                        c,
                        chunking.size(c),
                        Phase::Broadcast,
                        TreeIndex(ti as u8),
                        deps,
                    );
                    bc[idx(ti, c, child.0)] = id;
                }
            }
        }
    }

    let name = match trees.len() {
        1 => format!("{}-tree", overlap.label()),
        2 => format!("{}-double-tree", overlap.label()),
        n => format!("{}-{}-tree", overlap.label(), n),
    };
    b.finish(name, p, chunking.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DoubleBinaryTree;
    use ccube_topology::ByteSize;

    #[test]
    fn transfer_counts_match_edges_times_chunks() {
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(8), 8);
        for overlap in [Overlap::None, Overlap::ReductionBroadcast] {
            let s = tree_allreduce(dt.trees(), &chunking, overlap);
            // each tree: (P-1) up + (P-1) down edges, once per chunk of
            // that tree (4 chunks each)
            assert_eq!(s.transfers().len(), 2 * (7 + 7) * 4);
        }
    }

    #[test]
    fn overlapped_root_broadcast_depends_only_on_its_chunk() {
        let tree = crate::BinaryTree::inorder(4).unwrap();
        let chunking = Chunking::even(ByteSize::mib(4), 4);
        let s = tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        );
        let root = tree.root();
        for t in s.transfers() {
            if t.phase == Phase::Broadcast && t.src == root {
                for d in &t.deps {
                    assert_eq!(s.transfer(*d).chunk, t.chunk);
                }
            }
        }
    }

    #[test]
    fn baseline_root_broadcast_waits_for_all_chunks() {
        let tree = crate::BinaryTree::inorder(4).unwrap();
        let chunking = Chunking::even(ByteSize::mib(4), 4);
        let s = tree_allreduce(std::slice::from_ref(&tree), &chunking, Overlap::None);
        let root = tree.root();
        let first_bc = s
            .transfers()
            .iter()
            .find(|t| t.phase == Phase::Broadcast && t.src == root)
            .unwrap();
        let dep_chunks: std::collections::HashSet<ChunkId> =
            first_bc.deps.iter().map(|&d| s.transfer(d).chunk).collect();
        assert_eq!(dep_chunks.len(), 4, "barrier must cover all chunks");
    }
}
