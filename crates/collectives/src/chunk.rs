//! Message chunking.
//!
//! AllReduce implementations split the message into *chunks* — "the amount
//! of data that is communicated between neighboring nodes in each step"
//! (paper footnote 3). The chunk count trades the latency term (more
//! chunks, more α) against pipeline fill (fewer chunks, worse overlap);
//! the optimum is Eq. 4 of the paper, implemented as
//! [`cost::k_opt`](crate::cost::k_opt).

use ccube_topology::ByteSize;
use std::fmt;

/// Identifier of a chunk within a collective's message.
///
/// Chunk ids are global across the whole message; in a double-tree
/// schedule the chunks are interleaved between the two trees by parity
/// (tree 0 carries even chunks, tree 1 odd chunks) so that completion
/// order still tracks chunk order — the property gradient queuing's
/// count-based semaphores rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// The chunk id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A partition of a message into chunks.
///
/// # Examples
///
/// ```
/// use ccube_collectives::Chunking;
/// use ccube_topology::ByteSize;
///
/// let c = Chunking::even(ByteSize::mib(64), 16);
/// assert_eq!(c.num_chunks(), 16);
/// assert_eq!(c.total(), ByteSize::mib(64));
/// assert_eq!(c.size(ccube_collectives::ChunkId(0)), ByteSize::mib(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunking {
    total: ByteSize,
    sizes: Vec<ByteSize>,
}

impl Chunking {
    /// Splits `total` into `k` chunks whose sizes differ by at most one
    /// byte.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn even(total: ByteSize, k: usize) -> Self {
        Chunking {
            total,
            sizes: total.split(k),
        }
    }

    /// Builds a chunking from explicit chunk sizes (used when chunk
    /// boundaries must align with DNN layer boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: Vec<ByteSize>) -> Self {
        assert!(!sizes.is_empty(), "chunking needs at least one chunk");
        let total = sizes.iter().copied().sum();
        Chunking { total, sizes }
    }

    /// Total message size.
    pub fn total(&self) -> ByteSize {
        self.total
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.sizes.len()
    }

    /// Size of one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn size(&self, chunk: ChunkId) -> ByteSize {
        self.sizes[chunk.index()]
    }

    /// All chunk sizes in chunk order.
    pub fn sizes(&self) -> &[ByteSize] {
        &self.sizes
    }

    /// Iterator over all chunk ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ChunkId> + '_ {
        (0..self.sizes.len() as u32).map(ChunkId)
    }
}

impl fmt::Display for Chunking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {} chunks", self.total, self.sizes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_chunking_sums_to_total() {
        let c = Chunking::even(ByteSize::new(1001), 7);
        assert_eq!(c.num_chunks(), 7);
        let sum: ByteSize = c.sizes().iter().copied().sum();
        assert_eq!(sum, ByteSize::new(1001));
    }

    #[test]
    fn from_sizes_preserves_layout() {
        let c = Chunking::from_sizes(vec![ByteSize::kib(4), ByteSize::kib(8)]);
        assert_eq!(c.total(), ByteSize::kib(12));
        assert_eq!(c.size(ChunkId(1)), ByteSize::kib(8));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn empty_sizes_rejected() {
        let _ = Chunking::from_sizes(vec![]);
    }

    #[test]
    fn ids_iterate_in_order() {
        let c = Chunking::even(ByteSize::kib(16), 4);
        let ids: Vec<ChunkId> = c.ids().collect();
        assert_eq!(ids, vec![ChunkId(0), ChunkId(1), ChunkId(2), ChunkId(3)]);
    }
}
