//! Closed-form α+β cost models (paper §II-C, Eq. 1–7).
//!
//! The models use the linear communication cost `α + βn` per step, with
//! the paper's notation: `N` message size, `K` chunk count, `P` ranks,
//! `α` latency, `β` inverse bandwidth. They drive:
//!
//! * Fig. 4 — the ring-vs-tree performance ratio over `(P, N)`;
//! * Eq. 4 — the optimal chunk count used everywhere a schedule is built;
//! * Fig. 12(b) — the model-vs-measurement comparison of the overlapped
//!   tree's benefit;
//! * Fig. 3 — the invocation-granularity study (one-shot vs layer-wise vs
//!   slicing), via [`GranularityModel`].

use ccube_topology::{Bandwidth, ByteSize, Seconds};
use std::fmt;

/// The α/β parameters of the linear communication cost model.
///
/// # Examples
///
/// ```
/// use ccube_collectives::cost::CostParams;
/// use ccube_topology::{Bandwidth, ByteSize, Seconds};
///
/// let p = CostParams::new(Seconds::from_micros(1.5), Bandwidth::gb_per_sec(25.0));
/// let t = p.step_time(ByteSize::mib(1));
/// assert!(t > Seconds::from_micros(40.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    alpha: Seconds,
    bandwidth: Bandwidth,
}

impl CostParams {
    /// Creates cost parameters from a latency and a bandwidth.
    pub fn new(alpha: Seconds, bandwidth: Bandwidth) -> Self {
        CostParams { alpha, bandwidth }
    }

    /// Parameters of one DGX-1 NVLink (25 GB/s, 1.5 µs), matching the
    /// system of the paper's proof of concept.
    pub fn nvlink() -> Self {
        CostParams::new(Seconds::from_micros(1.5), Bandwidth::gb_per_sec(25.0))
    }

    /// Parameters representative of the NCCL 2.4 blog post the paper's
    /// Fig. 4 takes its α/β values from: inter-node fabric with ~12.5 GB/s
    /// per-node bandwidth and a few microseconds of latency.
    pub fn nccl_blog() -> Self {
        CostParams::new(Seconds::from_micros(5.0), Bandwidth::gb_per_sec(12.5))
    }

    /// The latency term α.
    pub fn alpha(&self) -> Seconds {
        self.alpha
    }

    /// The bandwidth whose inverse is β.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// β in seconds per byte.
    pub fn beta(&self) -> f64 {
        self.bandwidth.beta()
    }

    /// The cost of one step carrying `bytes`: `α + β·n`.
    pub fn step_time(&self, bytes: ByteSize) -> Seconds {
        self.alpha + self.bandwidth.transfer_time(bytes)
    }

    /// These parameters with the bandwidth scaled by `factor` (the
    /// paper's low-bandwidth configuration uses `0.25`).
    #[must_use]
    pub fn scaled_bandwidth(&self, factor: f64) -> CostParams {
        CostParams::new(self.alpha, self.bandwidth.scaled(factor))
    }
}

impl fmt::Display for CostParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alpha={}, bw={}", self.alpha, self.bandwidth)
    }
}

fn log2p(p: usize) -> f64 {
    (p as f64).log2()
}

/// Eq. 1 — AllGather time on a ring: `(P-1)(α + βN/P)`.
pub fn t_allgather(params: &CostParams, p: usize, n: ByteSize) -> Seconds {
    let steps = (p - 1) as f64;
    let chunk = n.as_f64() / p as f64;
    Seconds::new(steps * (params.alpha().as_secs_f64() + params.beta() * chunk))
}

/// Eq. 2 — ring AllReduce time: `2(P-1)α + 2((P-1)/P)βN`.
pub fn t_ring(params: &CostParams, p: usize, n: ByteSize) -> Seconds {
    t_allgather(params, p, n) * 2.0
}

/// Eq. 3 — one phase (reduction *or* broadcast) of the chunked tree
/// algorithm: `(log P + K)(α + βN/K)`.
pub fn t_tree_phase(params: &CostParams, p: usize, n: ByteSize, k: usize) -> Seconds {
    let steps = log2p(p) + k as f64;
    let chunk = n.as_f64() / k as f64;
    Seconds::new(steps * (params.alpha().as_secs_f64() + params.beta() * chunk))
}

/// Eq. 4 — the chunk count that minimizes Eq. 3:
/// `K_opt = sqrt(log(P)·βN/α)`, clamped to at least 1.
///
/// # Examples
///
/// ```
/// use ccube_collectives::cost::{k_opt, CostParams};
/// use ccube_topology::ByteSize;
///
/// let k = k_opt(&CostParams::nvlink(), 8, ByteSize::mib(64));
/// assert!(k >= 32 && k <= 512);
/// ```
pub fn k_opt(params: &CostParams, p: usize, n: ByteSize) -> usize {
    let k = (log2p(p) * params.beta() * n.as_f64() / params.alpha().as_secs_f64()).sqrt();
    (k.round() as usize).max(1)
}

/// Non-overlapped tree AllReduce with an explicit chunk count:
/// `2(log P + K)(α + βN/K)` (two passes of Eq. 3).
pub fn t_tree_chunked(params: &CostParams, p: usize, n: ByteSize, k: usize) -> Seconds {
    t_tree_phase(params, p, n, k) * 2.0
}

/// Eq. 6 — non-overlapped tree AllReduce at the optimal chunk count:
/// `2 log(P)α + 2βN + 4 sqrt(αβN log P)`.
pub fn t_tree(params: &CostParams, p: usize, n: ByteSize) -> Seconds {
    let a = params.alpha().as_secs_f64();
    let bn = params.beta() * n.as_f64();
    let lp = log2p(p);
    Seconds::new(2.0 * lp * a + 2.0 * bn + 4.0 * (a * bn * lp).sqrt())
}

/// Overlapped tree AllReduce with an explicit chunk count:
/// `(2 log P + K)(α + βN/K)` — the reduction and broadcast chained into a
/// single pass through a pipeline of double the depth.
pub fn t_overlapped_chunked(params: &CostParams, p: usize, n: ByteSize, k: usize) -> Seconds {
    let steps = 2.0 * log2p(p) + k as f64;
    let chunk = n.as_f64() / k as f64;
    Seconds::new(steps * (params.alpha().as_secs_f64() + params.beta() * chunk))
}

/// Eq. 7 — overlapped tree AllReduce at its optimal chunk count:
/// `2 log(P)α + βN + 3 sqrt(αβN log P)` (the paper approximates with the
/// same K regime as Eq. 6; we evaluate the closed form as printed).
pub fn t_overlapped(params: &CostParams, p: usize, n: ByteSize) -> Seconds {
    let a = params.alpha().as_secs_f64();
    let bn = params.beta() * n.as_f64();
    let lp = log2p(p);
    Seconds::new(2.0 * lp * a + bn + 3.0 * (a * bn * lp).sqrt())
}

/// Double-tree variants: each tree carries half the message on its own
/// channels, so the per-tree cost is evaluated at `N/2` and `K/2` and the
/// two trees run concurrently.
pub fn t_double_tree_chunked(params: &CostParams, p: usize, n: ByteSize, k: usize) -> Seconds {
    let half = ByteSize::new(n.as_u64() / 2);
    t_tree_chunked(params, p, half, (k / 2).max(1))
}

/// Overlapped double tree with explicit chunk count (per-tree `N/2`,
/// `K/2`).
pub fn t_overlapped_double_chunked(
    params: &CostParams,
    p: usize,
    n: ByteSize,
    k: usize,
) -> Seconds {
    let half = ByteSize::new(n.as_u64() / 2);
    t_overlapped_chunked(params, p, half, (k / 2).max(1))
}

/// Gradient turnaround time of the **baseline** tree (paper Fig. 7): the
/// first chunk is usable only after the whole reduction
/// (`(log P + K)` steps) plus its broadcast down (`log P` steps).
pub fn turnaround_tree(params: &CostParams, p: usize, n: ByteSize, k: usize) -> Seconds {
    let chunk = n.as_f64() / k as f64;
    let steps = (log2p(p) + k as f64) + log2p(p);
    Seconds::new(steps * (params.alpha().as_secs_f64() + params.beta() * chunk))
}

/// Gradient turnaround time of the **overlapped** tree: the first chunk
/// comes back after one round trip of the tree, `2 log P + 1` steps,
/// regardless of K — the property that makes computation chaining (C2)
/// effective.
pub fn turnaround_overlapped(params: &CostParams, p: usize, n: ByteSize, k: usize) -> Seconds {
    let chunk = n.as_f64() / k as f64;
    let steps = 2.0 * log2p(p) + 1.0;
    Seconds::new(steps * (params.alpha().as_secs_f64() + params.beta() * chunk))
}

/// Model of the paper's Fig. 3 granularity study: invoking AllReduce once
/// per slice adds a fixed per-invocation launch overhead and pays the
/// full latency term each time.
///
/// # Examples
///
/// ```
/// use ccube_collectives::cost::{CostParams, GranularityModel};
/// use ccube_topology::{ByteSize, Seconds};
///
/// let m = GranularityModel::new(CostParams::nvlink(), Seconds::from_micros(5.0), 8);
/// let one_shot = m.total_time(&[ByteSize::mib(100)]);
/// let sliced: Vec<ByteSize> = (0..400).map(|_| ByteSize::kib(256)).collect();
/// assert!(m.total_time(&sliced) > one_shot * 2.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GranularityModel {
    params: CostParams,
    launch_overhead: Seconds,
    p: usize,
}

impl GranularityModel {
    /// Creates a granularity model for a `p`-rank ring AllReduce with the
    /// given per-invocation `launch_overhead`.
    pub fn new(params: CostParams, launch_overhead: Seconds, p: usize) -> Self {
        GranularityModel {
            params,
            launch_overhead,
            p,
        }
    }

    /// Time of one AllReduce invocation of `bytes`.
    pub fn invocation_time(&self, bytes: ByteSize) -> Seconds {
        self.launch_overhead + t_ring(&self.params, self.p, bytes)
    }

    /// Total time to AllReduce a list of messages, one invocation each.
    pub fn total_time(&self, messages: &[ByteSize]) -> Seconds {
        messages
            .iter()
            .fold(Seconds::ZERO, |acc, &m| acc + self.invocation_time(m))
    }

    /// Effective bandwidth (total bytes / total time) of a message list.
    pub fn effective_bandwidth(&self, messages: &[ByteSize]) -> Bandwidth {
        let total: ByteSize = messages.iter().copied().sum();
        let t = self.total_time(messages).as_secs_f64();
        Bandwidth::bytes_per_sec(total.as_f64() / t)
    }
}

/// Fits α/β parameters from measured `(message size, point-to-point
/// time)` samples by ordinary least squares on `t = α + β·n` — how one
/// calibrates the cost models against a real interconnect (the paper's
/// Fig. 12(b) methodology in reverse).
///
/// Returns `None` if fewer than two distinct sizes are supplied or the
/// fit produces a non-positive bandwidth or negative latency.
///
/// # Examples
///
/// ```
/// use ccube_collectives::cost::{fit_params, CostParams};
/// use ccube_topology::{ByteSize, Seconds};
///
/// let truth = CostParams::nvlink();
/// let samples: Vec<(ByteSize, Seconds)> = [1u64, 4, 16, 64]
///     .iter()
///     .map(|&m| {
///         let n = ByteSize::mib(m);
///         (n, truth.step_time(n))
///     })
///     .collect();
/// let fitted = fit_params(&samples).expect("well-conditioned fit");
/// assert!((fitted.alpha().as_micros() - 1.5).abs() < 1e-6);
/// assert!((fitted.bandwidth().as_gb_per_sec() - 25.0).abs() < 1e-6);
/// ```
pub fn fit_params(samples: &[(ByteSize, Seconds)]) -> Option<CostParams> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|(b, _)| b.as_f64()).sum::<f64>() / n;
    let mean_y = samples.iter().map(|(_, t)| t.as_secs_f64()).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (b, t) in samples {
        let dx = b.as_f64() - mean_x;
        cov += dx * (t.as_secs_f64() - mean_y);
        var += dx * dx;
    }
    if var == 0.0 {
        return None;
    }
    let beta = cov / var; // seconds per byte
    let alpha = mean_y - beta * mean_x;
    if beta <= 0.0 || alpha < 0.0 {
        return None;
    }
    Some(CostParams::new(
        Seconds::new(alpha),
        Bandwidth::bytes_per_sec(1.0 / beta),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::new(Seconds::from_micros(2.0), Bandwidth::gb_per_sec(10.0))
    }

    #[test]
    fn ring_matches_eq2_by_hand() {
        // P=4, N=4 MB, alpha=2us, beta=0.1 ns/B
        let p = params();
        let n = ByteSize::new(4_000_000);
        let t = t_ring(&p, 4, n);
        // 2*3*2us + 2*(3/4)*4e6*1e-10 = 12us + 600us
        assert!((t.as_micros() - 612.0).abs() < 1e-6);
    }

    #[test]
    fn tree_phase_matches_eq3_by_hand() {
        let p = params();
        let n = ByteSize::new(1_000_000);
        // (log2(4) + 10)(2us + 1e5 B * 1e-10 s/B) = 12 * (2us + 10us)
        let t = t_tree_phase(&p, 4, n, 10);
        assert!((t.as_micros() - 144.0).abs() < 1e-6);
    }

    #[test]
    fn k_opt_minimizes_eq3_over_neighbors() {
        let p = params();
        for (ranks, n) in [
            (4, ByteSize::mib(16)),
            (64, ByteSize::mib(1)),
            (8, ByteSize::kib(64)),
        ] {
            let k = k_opt(&p, ranks, n);
            let t = t_tree_phase(&p, ranks, n, k);
            if k > 1 {
                assert!(t <= t_tree_phase(&p, ranks, n, k - 1));
            }
            assert!(t <= t_tree_phase(&p, ranks, n, k + 1));
        }
    }

    #[test]
    fn eq6_equals_chunked_at_continuous_kopt() {
        // With K treated continuously, Eq. 3 at K_opt equals Eq. 6 / 2.
        let p = params();
        let n = ByteSize::mib(32);
        let ranks = 16;
        let a = p.alpha().as_secs_f64();
        let bn = p.beta() * n.as_f64();
        let lp = (ranks as f64).log2();
        let k_cont = (lp * bn / a).sqrt();
        let phase = (lp + k_cont) * (a + bn / k_cont);
        let eq6 = t_tree(&p, ranks, n).as_secs_f64();
        assert!((2.0 * phase - eq6).abs() / eq6 < 1e-12);
    }

    #[test]
    fn overlap_always_beats_baseline_tree() {
        let p = params();
        for ranks in [2usize, 8, 64, 512] {
            for n in [ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)] {
                assert!(t_overlapped(&p, ranks, n) < t_tree(&p, ranks, n));
                let k = k_opt(&p, ranks, n);
                assert!(t_overlapped_chunked(&p, ranks, n, k) < t_tree_chunked(&p, ranks, n, k));
            }
        }
    }

    #[test]
    fn overlap_benefit_approaches_2x_for_large_messages() {
        // For bandwidth-dominated messages the chained single pass moves
        // each byte once instead of twice.
        let p = params();
        let n = ByteSize::gib(4);
        let ratio = t_tree(&p, 8, n) / t_overlapped(&p, 8, n);
        assert!(ratio > 1.7 && ratio < 2.0, "ratio={ratio}");
    }

    #[test]
    fn tree_beats_ring_at_scale_small_messages() {
        // Fig. 4: latency-dominated regime favors the tree's O(log P).
        let p = CostParams::nccl_blog();
        let n = ByteSize::kib(16);
        let ring = t_ring(&p, 256, n);
        let tree = t_tree(&p, 256, n);
        assert!(tree < ring);
        // and the ring's O(P) latency makes it much worse
        assert!(ring / tree > 5.0);
    }

    #[test]
    fn ring_beats_tree_small_scale_large_messages() {
        // Fig. 4: bandwidth-dominated regime at small P favors the ring
        // (by up to ~14% in the paper).
        let p = CostParams::nccl_blog();
        let n = ByteSize::mib(256);
        let ring = t_ring(&p, 4, n);
        let tree = t_tree(&p, 4, n);
        assert!(ring < tree);
        let advantage = tree / ring;
        assert!(advantage < 1.5, "advantage={advantage}");
    }

    #[test]
    fn turnaround_overlap_is_independent_of_k() {
        let p = params();
        let n = ByteSize::mib(64);
        let t64 = turnaround_overlapped(&p, 8, n, 64);
        let t256 = turnaround_overlapped(&p, 8, n, 256);
        // more chunks -> smaller chunks -> the single round trip shrinks
        assert!(t256 < t64);
        // while the baseline turnaround grows with total reduction length
        assert!(turnaround_tree(&p, 8, n, 256) > turnaround_overlapped(&p, 8, n, 256) * 10.0);
    }

    #[test]
    fn granularity_layerwise_loses_about_2x() {
        // Shape check for Fig. 3: ~160 per-layer invocations cost about
        // half the effective bandwidth of one-shot.
        let m = GranularityModel::new(
            CostParams::new(Seconds::from_micros(1.0), Bandwidth::gb_per_sec(60.0)),
            Seconds::from_micros(5.0),
            8,
        );
        let total = ByteSize::mib(100);
        let one_shot = m.effective_bandwidth(&[total]);
        let layers: Vec<ByteSize> = total.split(160);
        let layerwise = m.effective_bandwidth(&layers);
        let ratio = one_shot.as_bytes_per_sec() / layerwise.as_bytes_per_sec();
        assert!(ratio > 1.5 && ratio < 3.0, "ratio={ratio}");
        let slices: Vec<ByteSize> = total.split(640);
        let sliced = m.effective_bandwidth(&slices);
        let ratio4 = one_shot.as_bytes_per_sec() / sliced.as_bytes_per_sec();
        assert!(ratio4 > 3.5, "ratio4={ratio4}");
    }

    #[test]
    fn fit_recovers_exact_linear_data() {
        let truth = CostParams::new(Seconds::from_micros(3.0), Bandwidth::gb_per_sec(40.0));
        let samples: Vec<(ByteSize, Seconds)> = [64u64, 256, 1024, 4096]
            .iter()
            .map(|&k| {
                let b = ByteSize::kib(k);
                (b, truth.step_time(b))
            })
            .collect();
        let fitted = fit_params(&samples).unwrap();
        assert!((fitted.alpha().as_secs_f64() - truth.alpha().as_secs_f64()).abs() < 1e-12);
        assert!(
            (fitted.bandwidth().as_gb_per_sec() - truth.bandwidth().as_gb_per_sec()).abs() < 1e-6
        );
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(fit_params(&[]).is_none());
        let one = (ByteSize::mib(1), Seconds::from_micros(10.0));
        assert!(fit_params(&[one]).is_none());
        // identical sizes -> zero variance
        assert!(fit_params(&[one, one]).is_none());
        // decreasing time with size -> negative beta
        let bad = [
            (ByteSize::mib(1), Seconds::from_millis(2.0)),
            (ByteSize::mib(2), Seconds::from_millis(1.0)),
        ];
        assert!(fit_params(&bad).is_none());
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = CostParams::nvlink();
        let samples: Vec<(ByteSize, Seconds)> = (1..=16u64)
            .map(|m| {
                let b = ByteSize::mib(m);
                let jitter = 1.0 + 0.01 * if m % 2 == 0 { 1.0 } else { -1.0 };
                (b, Seconds::new(truth.step_time(b).as_secs_f64() * jitter))
            })
            .collect();
        let fitted = fit_params(&samples).unwrap();
        let rel = (fitted.bandwidth().as_gb_per_sec() - 25.0).abs() / 25.0;
        assert!(rel < 0.03, "fitted bw off by {rel}");
    }

    #[test]
    fn scaled_bandwidth_quarters_throughput() {
        let p = params().scaled_bandwidth(0.25);
        assert!((p.bandwidth().as_gb_per_sec() - 2.5).abs() < 1e-9);
    }
}
