//! Logical binary trees for tree-based AllReduce.
//!
//! The single [`BinaryTree`] is the in-order balanced layout (each node
//! has at most two children, depth `⌈log2(P+1)⌉`). The
//! [`DoubleBinaryTree`] pairs it with its mirror image — "the first tree
//! is flipped to invert the nodes and leaves to create the second tree"
//! (paper footnote 4, after Sanders et al.'s two-tree algorithm) — so
//! that the two trees together keep every rank busy and double the
//! usable bandwidth.

use crate::rank::Rank;
use std::error::Error;
use std::fmt;

/// Errors from tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// Trees need at least two ranks.
    TooFewRanks(usize),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::TooFewRanks(p) => {
                write!(f, "tree collective needs at least 2 ranks, got {p}")
            }
        }
    }
}

impl Error for TreeError {}

/// A rooted binary tree over ranks `0..P`, the logical topology of the
/// tree AllReduce.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{BinaryTree, Rank};
/// let t = BinaryTree::inorder(8).unwrap();
/// assert_eq!(t.root(), Rank(4));
/// assert!(t.depth() <= 4);
/// // every non-root rank has a parent
/// for r in 0..8 {
///     assert_eq!(t.parent(Rank(r)).is_none(), Rank(r) == t.root());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTree {
    root: Rank,
    parent: Vec<Option<Rank>>,
    children: Vec<Vec<Rank>>,
}

impl BinaryTree {
    /// Builds the balanced in-order tree on `p` ranks: the root is the
    /// midpoint rank and each half recurses, so an in-order traversal
    /// visits ranks `0, 1, …, p-1`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooFewRanks`] if `p < 2`.
    pub fn inorder(p: usize) -> Result<Self, TreeError> {
        if p < 2 {
            return Err(TreeError::TooFewRanks(p));
        }
        let mut parent = vec![None; p];
        let mut children = vec![Vec::new(); p];
        let root = Self::build(0, p, None, &mut parent, &mut children);
        Ok(BinaryTree {
            root,
            parent,
            children,
        })
    }

    fn build(
        lo: usize,
        hi: usize,
        up: Option<Rank>,
        parent: &mut [Option<Rank>],
        children: &mut [Vec<Rank>],
    ) -> Rank {
        debug_assert!(lo < hi);
        let mid = (lo + hi) / 2;
        let node = Rank(mid as u32);
        parent[mid] = up;
        if let Some(p) = up {
            children[p.index()].push(node);
        }
        if lo < mid {
            Self::build(lo, mid, Some(node), parent, children);
        }
        if mid + 1 < hi {
            Self::build(mid + 1, hi, Some(node), parent, children);
        }
        node
    }

    /// Builds the mirror image of `tree`: rank `r` takes the role of rank
    /// `P-1-r`. Leaves of the original become (mostly) internal nodes of
    /// the mirror, balancing work across ranks when both trees run.
    pub fn mirror(tree: &BinaryTree) -> Self {
        let p = tree.num_ranks();
        let flip = |r: Rank| Rank((p - 1 - r.index()) as u32);
        let mut parent = vec![None; p];
        let mut children = vec![Vec::new(); p];
        for r in Rank::all(p) {
            if let Some(q) = tree.parent(r) {
                parent[flip(r).index()] = Some(flip(q));
            }
        }
        for r in Rank::all(p) {
            for &c in tree.children(r) {
                children[flip(r).index()].push(flip(c));
            }
        }
        BinaryTree {
            root: flip(tree.root()),
            parent,
            children,
        }
    }

    /// Number of ranks in the tree.
    pub fn num_ranks(&self) -> usize {
        self.parent.len()
    }

    /// The root rank.
    pub fn root(&self) -> Rank {
        self.root
    }

    /// The parent of `r`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn parent(&self, r: Rank) -> Option<Rank> {
        self.parent[r.index()]
    }

    /// The children of `r` (0, 1 or 2 of them).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn children(&self, r: Rank) -> &[Rank] {
        &self.children[r.index()]
    }

    /// True if `r` is a leaf.
    pub fn is_leaf(&self, r: Rank) -> bool {
        self.children(r).is_empty()
    }

    /// The depth of the tree: number of edges on the longest root-to-leaf
    /// path. This is the `log(P)` of the paper's cost model.
    pub fn depth(&self) -> usize {
        fn go(t: &BinaryTree, r: Rank) -> usize {
            t.children(r)
                .iter()
                .map(|&c| 1 + go(t, c))
                .max()
                .unwrap_or(0)
        }
        go(self, self.root)
    }

    /// The depth of rank `r` (root is 0).
    pub fn depth_of(&self, r: Rank) -> usize {
        let mut d = 0;
        let mut cur = r;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// All directed "uplink" edges `(child, parent)` in rank order.
    pub fn up_edges(&self) -> Vec<(Rank, Rank)> {
        Rank::all(self.num_ranks())
            .filter_map(|r| self.parent(r).map(|p| (r, p)))
            .collect()
    }

    /// Ranks in bottom-up order: every rank appears after all of its
    /// children (used by reduction schedule builders).
    pub fn bottom_up(&self) -> Vec<Rank> {
        let mut order = Vec::with_capacity(self.num_ranks());
        fn go(t: &BinaryTree, r: Rank, out: &mut Vec<Rank>) {
            for &c in t.children(r) {
                go(t, c, out);
            }
            out.push(r);
        }
        go(self, self.root, &mut order);
        order
    }

    /// Ranks in top-down order: every rank appears before its children.
    pub fn top_down(&self) -> Vec<Rank> {
        let mut order = self.bottom_up();
        order.reverse();
        order
    }
}

impl fmt::Display for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "binary tree (p={}, root={}, depth={})",
            self.num_ranks(),
            self.root,
            self.depth()
        )
    }
}

/// The two-tree pair used by the double(-binary)-tree AllReduce: the
/// in-order tree and its mirror.
///
/// # Examples
///
/// ```
/// use ccube_collectives::DoubleBinaryTree;
/// let dt = DoubleBinaryTree::new(8).unwrap();
/// assert_ne!(dt.tree(0).root(), dt.tree(1).root());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleBinaryTree {
    trees: [BinaryTree; 2],
}

impl DoubleBinaryTree {
    /// Builds the two-tree pair on `p` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::TooFewRanks`] if `p < 2`.
    pub fn new(p: usize) -> Result<Self, TreeError> {
        let t0 = BinaryTree::inorder(p)?;
        let t1 = BinaryTree::mirror(&t0);
        Ok(DoubleBinaryTree { trees: [t0, t1] })
    }

    /// The tree with the given index (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn tree(&self, i: usize) -> &BinaryTree {
        &self.trees[i]
    }

    /// Both trees as a slice.
    pub fn trees(&self) -> &[BinaryTree] {
        &self.trees
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.trees[0].num_ranks()
    }
}

impl fmt::Display for DoubleBinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "double binary tree (p={})", self.num_ranks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_all(t: &BinaryTree) {
        let p = t.num_ranks();
        let mut seen = vec![false; p];
        let mut stack = vec![t.root()];
        while let Some(r) = stack.pop() {
            assert!(!seen[r.index()], "rank {r} visited twice");
            seen[r.index()] = true;
            stack.extend(t.children(r).iter().copied());
        }
        assert!(seen.iter().all(|&s| s), "tree does not span all ranks");
    }

    #[test]
    fn inorder_tree_spans_and_is_binary() {
        for p in 2..40 {
            let t = BinaryTree::inorder(p).unwrap();
            spans_all(&t);
            for r in Rank::all(p) {
                assert!(t.children(r).len() <= 2);
            }
        }
    }

    #[test]
    fn inorder_depth_is_logarithmic() {
        for p in [2usize, 4, 8, 16, 64, 256, 1024] {
            let t = BinaryTree::inorder(p).unwrap();
            let bound = ((p + 1) as f64).log2().ceil() as usize;
            assert!(
                t.depth() <= bound,
                "p={p}: depth {} > bound {bound}",
                t.depth()
            );
        }
    }

    #[test]
    fn too_few_ranks_is_rejected() {
        assert_eq!(
            BinaryTree::inorder(1).unwrap_err(),
            TreeError::TooFewRanks(1)
        );
        assert!(DoubleBinaryTree::new(0).is_err());
    }

    #[test]
    fn mirror_is_valid_and_distinct() {
        for p in 2..20 {
            let t0 = BinaryTree::inorder(p).unwrap();
            let t1 = BinaryTree::mirror(&t0);
            spans_all(&t1);
            assert_eq!(t1.depth(), t0.depth());
            assert_eq!(t1.root(), Rank((p - 1 - t0.root().index()) as u32));
        }
    }

    #[test]
    fn mirror_rebalances_leaf_roles() {
        // In the two-tree algorithm most leaves of one tree should be
        // internal in the other so bandwidth is used by all ranks.
        let t0 = BinaryTree::inorder(8).unwrap();
        let t1 = BinaryTree::mirror(&t0);
        let both_leaf = Rank::all(8)
            .filter(|&r| t0.is_leaf(r) && t1.is_leaf(r))
            .count();
        assert!(both_leaf <= 2, "{both_leaf} ranks are leaves in both trees");
    }

    #[test]
    fn bottom_up_respects_child_order() {
        let t = BinaryTree::inorder(11).unwrap();
        let order = t.bottom_up();
        let pos: std::collections::HashMap<Rank, usize> =
            order.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        for r in Rank::all(11) {
            for &c in t.children(r) {
                assert!(pos[&c] < pos[&r]);
            }
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn depth_of_matches_parent_chain() {
        let t = BinaryTree::inorder(8).unwrap();
        assert_eq!(t.depth_of(t.root()), 0);
        let max = Rank::all(8).map(|r| t.depth_of(r)).max().unwrap();
        assert_eq!(max, t.depth());
    }

    #[test]
    fn up_edges_count_is_p_minus_1() {
        for p in 2..20 {
            let t = BinaryTree::inorder(p).unwrap();
            assert_eq!(t.up_edges().len(), p - 1);
        }
    }
}
