//! Physical-layer static analysis: embedding/fabric lints, certified
//! makespan lower bounds, and the port-path validity gate.
//!
//! The logical analyzer ([`crate::analyze`], CC001–CC014) sees the
//! schedule and its channel-level embedding; this module lowers one
//! level further, onto the port-level [`FabricGraph`], and reports what
//! the *physical* fabric does to the schedule before any simulation is
//! spent (diagnostic series CC015–CC023, same
//! [`Diagnostic`](crate::analyze::Diagnostic)/[`Span`]
//! machinery and byte-stable `--json` rendering):
//!
//! * **Contention lints** — logical edges that pile onto one physical
//!   port (`CC015`), cross-leaf transfers that stripe unevenly over a
//!   leaf's uplink slots — the `source_node % k` hashing hazard
//!   (`CC016`) — and leaves whose oversubscribed uplink pool drains
//!   slower than any endpoint port (`CC017`).
//! * **Port-path validity** — routes with no physical realization on
//!   the fabric, from fabric/topology mismatches or missing uplinks
//!   (`CC018`, the error class [`gate_physical`] debug-asserts in the
//!   switch-fabric engine).
//! * **Certified lower bounds** — [`makespan_lower_bound`] (channel
//!   level) and [`fabric_lower_bound`] (port level) compute
//!   `max(critical path, bottleneck congestion)`, reported as `CC019`/
//!   `CC020` Info diagnostics. The bound is *certified*: every DES
//!   makespan is `≥` it (property-tested across random topologies,
//!   fabrics, and hop modes), so `policy_search` can prune candidates
//!   whose bound already exceeds an incumbent's simulated makespan
//!   without changing any simulated result.
//! * **Fault severance** (`ccube_sim::analyze_severance`, upstream in
//!   the simulator crate) — replays a `FaultPlan` against the
//!   embedding's route set and classifies each window: survivable via a
//!   fallback route (`CC021`), a finite stall until repair (`CC022`),
//!   or permanent severance — the run is provably `Unroutable`
//!   (`CC023`).
//!
//! # Lint codes
//!
//! The physical-layer series, stable across releases
//! (`ccube lint --physical`); `CC001`..`CC014` are the logical
//! analyzer's ([`crate::analyze`]):
//!
//! | code | name | severity | meaning |
//! |---|---|---|---|
//! | `CC015` | `link-contention` | warning | several logical edges pile onto one physical port |
//! | `CC016` | `uplink-striping-skew` | warning | cross-leaf traffic stripes unevenly over a leaf's uplink slots (the `source_node % k` hashing hazard) |
//! | `CC017` | `oversubscription-hotspot` | warning | a leaf's uplink pool drains slower than any endpoint port feeding it |
//! | `CC018` | `unreachable-port-path` | error | a route has no physical realization on the fabric |
//! | `CC019` | `makespan-lower-bound` | info | certified channel-level bound: `max(critical path, bottleneck congestion)` |
//! | `CC020` | `fabric-lower-bound` | info | the same bound at port level, uplink pools divided by slot count |
//! | `CC021` | `fault-reroutable` | info | every transfer a fault window hits has a surviving fallback route |
//! | `CC022` | `fault-stall` | warning | traffic must stall until the window lifts (no alternative path) |
//! | `CC023` | `fault-severed` | error | a permanent window severs the embedding — the engine outcome is `Unroutable` |
//!
//! # Why the bounds are valid
//!
//! *Critical path*: a transfer completes no earlier than
//! `ready + duration`, where `ready` is the max completion of its
//! dependencies and `duration` is the mode-appropriate transit time
//! ([`lower_schedule`] for the channel engines, the port-path
//! `duration_on` replica for the fabric engine — under both cut-through
//! and store-and-forward, dependents are released only when the last
//! hop finishes). Chaining over any dependency path lower-bounds the
//! makespan.
//!
//! *Congestion*: the channel engines hold every channel of a wormhole
//! path exclusively for the transfer's whole duration, so a channel's
//! total offered occupancy is a makespan lower bound. On the fabric,
//! endpoint ports are charged exactly (cut-through: the whole path
//! duration; store-and-forward: that hop's `latency + serialization`).
//! Uplink ports are **pooled** per (leaf, direction): adaptive uplink
//! policies may move a crossing to any of the `k` homogeneous slots
//! (slot substitution never changes a duration), but each crossing
//! still occupies exactly one slot, so the busiest slot is at least the
//! pool's total charge divided by `k` — valid for every uplink policy
//! and hop mode.

use crate::analyze::{LintCode, LintReport, Span};
use crate::embedding::{EdgeKey, Embedding};
use crate::lowering::{lower_schedule, LinkTiming, LowerError, TransferSpec};
use crate::schedule::Schedule;
use ccube_topology::{
    ChannelClass, ChannelId, FabricGraph, PortId, PortKind, Seconds, SwitchId, Topology,
};
use std::collections::BTreeMap;

/// Knobs of the physical analysis (a subset of the simulator's options
/// that affects port-level timing).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhysicalAnalyzeOptions {
    /// Link-timing knobs shared with the lowering.
    pub timing: LinkTiming,
    /// Charge ports per hop (the fabric engine's store-and-forward
    /// mode) instead of wormhole cut-through.
    pub store_forward: bool,
}

/// Ports of each channel, rebuilt from the fabric's port list so a
/// mismatched channel id is a reportable finding instead of a panic.
fn ports_by_channel(fabric: &FabricGraph) -> Vec<Vec<PortId>> {
    let mut by_channel: Vec<Vec<PortId>> = Vec::new();
    for p in fabric.ports() {
        if let Some(c) = p.channel() {
            if by_channel.len() <= c.index() {
                by_channel.resize(c.index() + 1, Vec::new());
            }
            by_channel[c.index()].push(p.id());
        }
    }
    by_channel
}

/// One cross-leaf hop of a lowered route, as [`FabricGraph::port_route`]
/// would insert it: the source leaf, destination leaf, and the uplink
/// slot static hash striping picks.
struct Crossing {
    spec: usize,
    up_leaf: SwitchId,
    down_leaf: SwitchId,
    slot: usize,
}

/// Walks every spec's channel path exactly as `port_route` does and
/// returns the cross-leaf hops. Requires a validated path (every channel
/// has ports).
fn crossings(specs: &[TransferSpec], fabric: &FabricGraph, by: &[Vec<PortId>]) -> Vec<Crossing> {
    let mut out = Vec::new();
    if !fabric.has_uplinks() {
        return out;
    }
    for (i, s) in specs.iter().enumerate() {
        for (k, &c) in s.path.iter().enumerate() {
            if k + 1 >= s.path.len() {
                continue;
            }
            let here = match by[c.index()].last() {
                Some(&p) => fabric.port(p).switch(),
                None => continue,
            };
            let next = match by[s.path[k + 1].index()].first() {
                Some(&p) => fabric.port(p).switch(),
                None => continue,
            };
            if here == next {
                continue;
            }
            let ups = fabric.uplinks_up(here);
            let downs = fabric.uplinks_down(next);
            if ups.is_empty() || downs.is_empty() {
                continue;
            }
            let slot = (c.0 / 2) as usize % ups.len().min(downs.len());
            out.push(Crossing {
                spec: i,
                up_leaf: here,
                down_leaf: next,
                slot,
            });
        }
    }
    out
}

/// Reports lowering failures with the analyzer's stable codes.
fn push_lower_error(report: &mut LintReport, err: &LowerError) {
    match err {
        LowerError::MissingRoute(edge) => report.push(
            LintCode::MissingRoute,
            format!("embedding has no route for logical edge {edge}"),
            Span {
                edges: vec![*edge],
                ..Span::default()
            },
        ),
        LowerError::UnknownChannel {
            edge,
            channel_index,
        } => report.push(
            LintCode::InvalidRoute,
            format!("route for {edge} references unknown channel index {channel_index}"),
            Span {
                edges: vec![*edge],
                ..Span::default()
            },
        ),
    }
}

/// `CC018` checks: every channel of every lowered path must have ports
/// on the fabric, and (on switched fabrics) every leaf crossing must
/// have uplink ports on both sides. Returns true when clean.
fn port_path_lints(
    report: &mut LintReport,
    specs: &[TransferSpec],
    fabric: &FabricGraph,
    by: &[Vec<PortId>],
) -> bool {
    let mut portless: BTreeMap<ChannelId, usize> = BTreeMap::new();
    let mut severed: BTreeMap<(SwitchId, SwitchId), usize> = BTreeMap::new();
    for s in specs {
        let mut path_ok = true;
        for &c in &s.path {
            if by.get(c.index()).is_none_or(|ports| ports.is_empty()) {
                *portless.entry(c).or_insert(0) += 1;
                path_ok = false;
            }
        }
        if !path_ok || !fabric.has_uplinks() {
            continue;
        }
        for (k, &c) in s.path.iter().enumerate() {
            if k + 1 >= s.path.len() {
                continue;
            }
            let here = fabric.port(*by[c.index()].last().unwrap()).switch();
            let next = fabric
                .port(*by[s.path[k + 1].index()].first().unwrap())
                .switch();
            if here != next
                && (fabric.uplinks_up(here).is_empty() || fabric.uplinks_down(next).is_empty())
            {
                *severed.entry((here, next)).or_insert(0) += 1;
            }
        }
    }
    for (c, count) in &portless {
        report.push(
            LintCode::UnreachablePortPath,
            format!(
                "{c} has no port on the fabric ({count} transfers routed over it); \
                 fabric and topology disagree"
            ),
            Span {
                channels: vec![*c],
                ..Span::default()
            },
        );
    }
    for ((here, next), count) in &severed {
        report.push(
            LintCode::UnreachablePortPath,
            format!(
                "no uplink path from {here} to {next} ({count} cross-leaf transfers \
                 have no physical route)"
            ),
            Span::default(),
        );
    }
    portless.is_empty() && severed.is_empty()
}

/// Longest dependency chain under the given per-transfer durations.
/// Dependencies that violate the DAG's topological-order invariant are
/// ignored (under-approximating keeps the result a valid lower bound).
fn critical_path(schedule: &Schedule, durations: &[Seconds]) -> Seconds {
    let transfers = schedule.transfers();
    let mut completion = vec![Seconds::ZERO; transfers.len()];
    let mut best = Seconds::ZERO;
    for (i, t) in transfers.iter().enumerate() {
        let mut ready = Seconds::ZERO;
        for &d in &t.deps {
            if d.index() < i {
                ready = ready.max(completion[d.index()]);
            }
        }
        completion[i] = ready + durations[i];
        best = best.max(completion[i]);
    }
    best
}

/// Per-channel total wormhole occupancy; returns the busiest channel.
fn channel_congestion(specs: &[TransferSpec], num_channels: usize) -> (Seconds, Option<ChannelId>) {
    let mut busy = vec![Seconds::ZERO; num_channels];
    for s in specs {
        let mut seen: Vec<ChannelId> = Vec::with_capacity(s.path.len());
        for &c in &s.path {
            if c.index() < num_channels && !seen.contains(&c) {
                seen.push(c);
                busy[c.index()] += s.duration;
            }
        }
    }
    let mut max = Seconds::ZERO;
    let mut arg = None;
    for (i, &b) in busy.iter().enumerate() {
        if b > max {
            max = b;
            arg = Some(ChannelId(i as u32));
        }
    }
    (max, arg)
}

/// Transit time of a port route, mirroring the fabric engine's
/// `duration_on` float-for-float in both hop modes.
fn port_duration(
    fabric: &FabricGraph,
    route: &[PortId],
    bytes: ccube_topology::ByteSize,
    detour: bool,
    opts: &PhysicalAnalyzeOptions,
) -> Seconds {
    let timing = &opts.timing;
    if opts.store_forward {
        let mut total = Seconds::ZERO;
        for &p in route {
            let port = fabric.port(p);
            total += port.latency()
                + Seconds::new(
                    bytes.as_f64() / (port.bandwidth().as_bytes_per_sec() * timing.bandwidth_scale),
                );
        }
        if detour {
            total += timing.forwarding_latency;
        }
        total
    } else {
        let mut alpha = Seconds::ZERO;
        let mut bottleneck = f64::INFINITY;
        for &p in route {
            let port = fabric.port(p);
            alpha += port.latency();
            bottleneck = bottleneck.min(port.bandwidth().as_bytes_per_sec());
        }
        if detour {
            alpha += timing.forwarding_latency;
        }
        alpha + Seconds::new(bytes.as_f64() / (bottleneck * timing.bandwidth_scale))
    }
}

/// Per-port congestion charges of the port-level bound: endpoint ports
/// exact, uplink ports pooled per (leaf, direction).
struct PortLoads {
    /// Total charge per endpoint port (indexed by port id).
    endpoint: Vec<Seconds>,
    /// Total charge per (leaf, is-up-direction) uplink pool.
    pools: BTreeMap<(SwitchId, bool), Seconds>,
}

/// Accumulates congestion charges and per-transfer durations over the
/// statically-striped port routes.
fn port_loads(
    specs: &[TransferSpec],
    fabric: &FabricGraph,
    opts: &PhysicalAnalyzeOptions,
) -> (PortLoads, Vec<Seconds>) {
    let timing = &opts.timing;
    let mut loads = PortLoads {
        endpoint: vec![Seconds::ZERO; fabric.num_ports()],
        pools: BTreeMap::new(),
    };
    let mut durations = Vec::with_capacity(specs.len());
    for s in specs {
        let route = fabric.port_route(&s.path);
        let duration = port_duration(fabric, &route, s.bytes, s.via.is_some(), opts);
        durations.push(duration);
        let mut seen: Vec<PortId> = Vec::with_capacity(route.len());
        for (h, &p) in route.iter().enumerate() {
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            let port = fabric.port(p);
            // Cut-through holds the whole path for the full duration;
            // store-and-forward holds each port for its own hop (the
            // detour forwarding latency lands on the last hop, as in
            // the engine).
            let mut charge = if opts.store_forward {
                port.latency()
                    + Seconds::new(
                        s.bytes.as_f64()
                            / (port.bandwidth().as_bytes_per_sec() * timing.bandwidth_scale),
                    )
            } else {
                duration
            };
            if opts.store_forward && s.via.is_some() && h + 1 == route.len() {
                charge += timing.forwarding_latency;
            }
            match port.kind() {
                PortKind::UplinkUp => {
                    *loads
                        .pools
                        .entry((port.switch(), true))
                        .or_insert(Seconds::ZERO) += charge;
                }
                PortKind::UplinkDown => {
                    *loads
                        .pools
                        .entry((port.switch(), false))
                        .or_insert(Seconds::ZERO) += charge;
                }
                PortKind::Ingress | PortKind::Egress => {
                    loads.endpoint[p.index()] += charge;
                }
            }
        }
    }
    (loads, durations)
}

/// What the port-level congestion bound bottlenecks on.
enum Bottleneck {
    Port(PortId),
    Pool(SwitchId, bool),
}

/// The congestion part of the port-level bound: the busiest endpoint
/// port, or the busiest uplink pool amortized over its `k` slots.
fn fabric_congestion(loads: &PortLoads, fabric: &FabricGraph) -> (Seconds, Option<Bottleneck>) {
    let mut max = Seconds::ZERO;
    let mut arg = None;
    for (i, &b) in loads.endpoint.iter().enumerate() {
        if b > max {
            max = b;
            arg = Some(Bottleneck::Port(PortId(i as u32)));
        }
    }
    for (&(leaf, up), &total) in &loads.pools {
        let k = if up {
            fabric.uplinks_up(leaf).len()
        } else {
            fabric.uplinks_down(leaf).len()
        };
        if k == 0 {
            continue;
        }
        let amortized = Seconds::new(total.as_secs_f64() / k as f64);
        if amortized > max {
            max = amortized;
            arg = Some(Bottleneck::Pool(leaf, up));
        }
    }
    (max, arg)
}

/// Certified channel-level lower bound on the DES makespan of
/// `(schedule, embedding, topo)`: the max of the dependency critical
/// path and the busiest channel's total wormhole occupancy. `None` when
/// the schedule does not lower.
///
/// Every channel-engine makespan (`simulate`, `simulate_system`,
/// passthrough fabrics) is `≥` this bound; `policy_search` uses it to
/// prune candidates that provably cannot beat an incumbent.
pub fn makespan_lower_bound(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    timing: &LinkTiming,
) -> Option<Seconds> {
    let specs = lower_schedule(schedule, embedding, topo, timing).ok()?;
    let durations: Vec<Seconds> = specs.iter().map(|s| s.duration).collect();
    let cp = critical_path(schedule, &durations);
    let (congestion, _) = channel_congestion(&specs, topo.channels().len());
    Some(cp.max(congestion))
}

/// Certified port-level lower bound on the switch-fabric DES makespan:
/// the max of the critical path under port-route durations and the
/// busiest endpoint port / amortized uplink pool. `None` when the
/// schedule does not lower or a route has no physical port path.
pub fn fabric_lower_bound(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    fabric: &FabricGraph,
    opts: &PhysicalAnalyzeOptions,
) -> Option<Seconds> {
    let specs = lower_schedule(schedule, embedding, topo, &opts.timing).ok()?;
    let by = ports_by_channel(fabric);
    let mut scratch = LintReport::default();
    if !port_path_lints(&mut scratch, &specs, fabric, &by) {
        return None;
    }
    let (loads, durations) = port_loads(&specs, fabric, opts);
    let cp = critical_path(schedule, &durations);
    let (congestion, _) = fabric_congestion(&loads, fabric);
    Some(cp.max(congestion))
}

/// The cheap structural subset of the physical analyzer: lowering
/// failures (`CC007`/`CC008`) and port-path validity (`CC018`). The
/// switch-fabric engine debug-asserts this gate on every input.
pub fn gate_physical(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    fabric: &FabricGraph,
) -> LintReport {
    let mut report = LintReport::default();
    let specs = match lower_schedule(schedule, embedding, topo, &LinkTiming::default()) {
        Ok(specs) => specs,
        Err(err) => {
            push_lower_error(&mut report, &err);
            return report.finish();
        }
    };
    let by = ports_by_channel(fabric);
    port_path_lints(&mut report, &specs, fabric, &by);
    report.finish()
}

/// Runs the full physical analysis of `(schedule, embedding, topo)`
/// lowered onto `fabric`: contention lints (`CC015`–`CC017`), port-path
/// validity (`CC018`), and the certified lower bounds (`CC019`,
/// `CC020`).
///
/// # Examples
///
/// ```
/// use ccube_collectives::{physical, ring_allreduce, Embedding};
/// use ccube_topology::{hierarchical, ByteSize, FabricConfig, FabricGraph};
///
/// let topo = hierarchical(16);
/// let s = ring_allreduce(16, ByteSize::mib(16));
/// let e = Embedding::nic(&topo, &s).unwrap();
/// let fabric = FabricGraph::from_topology(
///     &topo,
///     &FabricConfig { radix: Some(4), uplinks_per_leaf: 2, spines: 2, ..FabricConfig::default() },
/// );
/// let report =
///     physical::analyze_physical(&s, &e, &topo, &fabric, &Default::default());
/// // The unidirectional ring's cross-leaf sources are all odd, so hash
/// // striping piles every crossing onto one uplink slot.
/// use ccube_collectives::analyze::LintCode;
/// assert!(report
///     .diagnostics()
///     .iter()
///     .any(|d| d.code == LintCode::UplinkStripingSkew));
/// ```
pub fn analyze_physical(
    schedule: &Schedule,
    embedding: &Embedding,
    topo: &Topology,
    fabric: &FabricGraph,
    opts: &PhysicalAnalyzeOptions,
) -> LintReport {
    let mut report = LintReport::default();
    let specs = match lower_schedule(schedule, embedding, topo, &opts.timing) {
        Ok(specs) => specs,
        Err(err) => {
            push_lower_error(&mut report, &err);
            return report.finish();
        }
    };

    // Channel-level bound (CC019) is computable whether or not the
    // fabric realizes the paths.
    let durations: Vec<Seconds> = specs.iter().map(|s| s.duration).collect();
    let cp = critical_path(schedule, &durations);
    let (congestion, hot) = channel_congestion(&specs, topo.channels().len());
    let bound = cp.max(congestion);
    report.push(
        LintCode::MakespanLowerBound,
        match hot {
            Some(c) => format!(
                "channel-level makespan lower bound {bound}: critical path {cp}, \
                 bottleneck congestion {congestion} on {c}"
            ),
            None => format!("channel-level makespan lower bound {bound}: critical path {cp}"),
        },
        Span {
            channels: hot.into_iter().collect(),
            ..Span::default()
        },
    );

    let by = ports_by_channel(fabric);
    if !port_path_lints(&mut report, &specs, fabric, &by) {
        // No physical realization: the port-level passes have nothing
        // sound to measure.
        return report.finish();
    }

    link_contention_lints(&mut report, schedule, &specs, topo, fabric);
    striping_lints(&mut report, &specs, fabric, &by);
    let (loads, port_durations) = port_loads(&specs, fabric, opts);
    oversubscription_lints(&mut report, &specs, fabric, &by, opts);

    let cp = critical_path(schedule, &port_durations);
    let (congestion, hot) = fabric_congestion(&loads, fabric);
    let bound = cp.max(congestion);
    let mode = if opts.store_forward {
        "store-and-forward"
    } else {
        "cut-through"
    };
    let at = match hot {
        Some(Bottleneck::Port(p)) => {
            format!(
                ", bottleneck congestion {congestion} at {}",
                fabric.port(p).label()
            )
        }
        Some(Bottleneck::Pool(leaf, up)) => format!(
            ", bottleneck congestion {congestion} at the {leaf} uplink-{} pool (k={})",
            if up { "up" } else { "down" },
            fabric.uplinks_per_leaf()
        ),
        None => String::new(),
    };
    report.push(
        LintCode::FabricLowerBound,
        format!("port-level makespan lower bound {bound} ({mode}): critical path {cp}{at}"),
        Span::default(),
    );

    report.finish()
}

/// `CC015`: several logical edges on one point-to-point endpoint port.
/// NIC-class ports are excluded (fan-in there is expected and
/// arbitrated at runtime, the logical analyzer's `CC011`); uplink ports
/// are the striping lints' concern.
fn link_contention_lints(
    report: &mut LintReport,
    schedule: &Schedule,
    specs: &[TransferSpec],
    topo: &Topology,
    fabric: &FabricGraph,
) {
    let mut edges_on: BTreeMap<PortId, Vec<EdgeKey>> = BTreeMap::new();
    for (i, s) in specs.iter().enumerate() {
        let t = &schedule.transfers()[i];
        let key = EdgeKey {
            src: t.src,
            dst: t.dst,
            tree: t.tree,
        };
        for p in fabric.port_route(&s.path) {
            let port = fabric.port(p);
            if !matches!(port.kind(), PortKind::Ingress | PortKind::Egress) {
                continue;
            }
            let Some(c) = port.channel() else { continue };
            if topo.channel(c).class() == ChannelClass::Nic {
                continue;
            }
            let edges = edges_on.entry(p).or_default();
            if !edges.contains(&key) {
                edges.push(key);
            }
        }
    }
    for (p, edges) in &edges_on {
        if edges.len() < 2 {
            continue;
        }
        let port = fabric.port(*p);
        let class = match port.channel().map(|c| topo.channel(c).class()) {
            Some(ChannelClass::HostBridge) => "host-bridge",
            _ => "nv-link",
        };
        report.push(
            LintCode::LinkContention,
            format!(
                "{} logical edges pile onto {class} port {} (e.g. {} and {}); \
                 the embedding serializes them",
                edges.len(),
                port.label(),
                edges[0],
                edges[1]
            ),
            Span {
                channels: port.channel().into_iter().collect(),
                edges: edges.clone(),
                ..Span::default()
            },
        );
    }
}

/// `CC016`: the static `source_node % k` slot histogram of actual
/// cross-leaf transfers, per (leaf, direction); warn when hashing
/// leaves a slot idle while another carries two or more.
fn striping_lints(
    report: &mut LintReport,
    specs: &[TransferSpec],
    fabric: &FabricGraph,
    by: &[Vec<PortId>],
) {
    let k = fabric.uplinks_per_leaf();
    if !fabric.has_uplinks() || k < 2 {
        return;
    }
    let mut hist: BTreeMap<(SwitchId, bool), Vec<u32>> = BTreeMap::new();
    for x in crossings(specs, fabric, by) {
        hist.entry((x.up_leaf, true)).or_insert_with(|| vec![0; k])[x.slot] += 1;
        hist.entry((x.down_leaf, false))
            .or_insert_with(|| vec![0; k])[x.slot] += 1;
    }
    for ((leaf, up), counts) in &hist {
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if max < 2 || min > 0 {
            continue;
        }
        let idle: Vec<String> = counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(slot, _)| slot.to_string())
            .collect();
        let total: u32 = counts.iter().sum();
        report.push(
            LintCode::UplinkStripingSkew,
            format!(
                "{leaf} uplink-{} striping skew: slot histogram {counts:?} over {total} \
                 cross-leaf transfers — hash striping (source_node % {k}) leaves slot {} idle; \
                 adaptive uplink policies rebalance at grant time",
                if *up { "up" } else { "down" },
                idle.join(", ")
            ),
            Span::default(),
        );
    }
}

/// `CC017`: on an oversubscribed fabric, a leaf's uplink pool whose
/// offered-load drain time exceeds every endpoint port's — the
/// statically provable hotspot. Drain times compare *serialization
/// demand* (`offered bytes / port bandwidth`), deliberately ignoring
/// latencies and cross-port bottlenecking so the comparison isolates
/// where capacity, not the protocol, runs out.
fn oversubscription_lints(
    report: &mut LintReport,
    specs: &[TransferSpec],
    fabric: &FabricGraph,
    by: &[Vec<PortId>],
    opts: &PhysicalAnalyzeOptions,
) {
    if !fabric.has_uplinks() || fabric.oversubscription() <= 1.0 {
        return;
    }
    let mut endpoint_drain = vec![Seconds::ZERO; fabric.num_ports()];
    for s in specs {
        let mut seen: Vec<PortId> = Vec::new();
        for p in fabric.port_route(&s.path) {
            let port = fabric.port(p);
            if !matches!(port.kind(), PortKind::Ingress | PortKind::Egress) || seen.contains(&p) {
                continue;
            }
            seen.push(p);
            endpoint_drain[p.index()] += Seconds::new(
                s.bytes.as_f64()
                    / (port.bandwidth().as_bytes_per_sec() * opts.timing.bandwidth_scale),
            );
        }
    }
    let endpoint_max = endpoint_drain
        .iter()
        .copied()
        .fold(Seconds::ZERO, Seconds::max);
    let mut offered: BTreeMap<(SwitchId, bool), ccube_topology::ByteSize> = BTreeMap::new();
    for x in crossings(specs, fabric, by) {
        let bytes = specs[x.spec].bytes;
        let up = offered
            .entry((x.up_leaf, true))
            .or_insert(ccube_topology::ByteSize::new(0));
        *up = ccube_topology::ByteSize::new(up.as_u64() + bytes.as_u64());
        let down = offered
            .entry((x.down_leaf, false))
            .or_insert(ccube_topology::ByteSize::new(0));
        *down = ccube_topology::ByteSize::new(down.as_u64() + bytes.as_u64());
    }
    let mut worst: Option<(Seconds, SwitchId, bool, ccube_topology::ByteSize)> = None;
    let mut hot_dirs = 0usize;
    for (&(leaf, up), &bytes) in &offered {
        let slots = if up {
            fabric.uplinks_up(leaf)
        } else {
            fabric.uplinks_down(leaf)
        };
        let capacity: f64 = slots
            .iter()
            .map(|&p| fabric.port(p).bandwidth().as_bytes_per_sec())
            .sum();
        if capacity <= 0.0 {
            continue;
        }
        let drain = Seconds::new(bytes.as_f64() / (capacity * opts.timing.bandwidth_scale));
        if drain > endpoint_max {
            hot_dirs += 1;
            if worst.as_ref().is_none_or(|(w, ..)| drain > *w) {
                worst = Some((drain, leaf, up, bytes));
            }
        }
    }
    if let Some((drain, leaf, up, bytes)) = worst {
        report.push(
            LintCode::OversubscriptionHotspot,
            format!(
                "uplink oversubscription hotspot: {leaf} uplink-{} pool drains {bytes} of \
                 offered cross-leaf load in {drain} vs {endpoint_max} at the busiest endpoint \
                 port ({:.1}:1 oversubscription; {hot_dirs} leaf direction(s) uplink-bound)",
                if up { "up" } else { "down" },
                fabric.oversubscription()
            ),
            Span::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Overlap};
    use ccube_topology::{dgx1, hierarchical, ByteSize, FabricConfig};

    fn hier16_case() -> (Topology, Schedule, Embedding) {
        let topo = hierarchical(16);
        let s = ring_allreduce(16, ByteSize::mib(16));
        let e = Embedding::nic(&topo, &s).unwrap();
        (topo, s, e)
    }

    fn fabric(topo: &Topology, radix: usize, uplinks: usize, spines: usize) -> FabricGraph {
        FabricGraph::from_topology(
            topo,
            &FabricConfig {
                radix: Some(radix),
                uplinks_per_leaf: uplinks,
                spines,
                ..FabricConfig::default()
            },
        )
    }

    #[test]
    fn ring_on_multi_uplink_fabric_warns_on_skew() {
        let (topo, s, e) = hier16_case();
        let f = fabric(&topo, 4, 2, 2);
        let report = analyze_physical(&s, &e, &topo, &f, &Default::default());
        assert!(report.is_clean());
        let skew: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::UplinkStripingSkew)
            .collect();
        // Every leaf has odd-only cross-leaf sources in both directions.
        assert_eq!(skew.len(), 8, "{report}");
    }

    #[test]
    fn dgx1_smart_embedding_is_physically_quiet() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(64), 16),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let f = FabricGraph::from_topology(&topo, &FabricConfig::default());
        let report = analyze_physical(&s, &e, &topo, &f, &Default::default());
        assert!(report.is_clean());
        assert!(!report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::LinkContention));
        // The two bounds are always reported.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::MakespanLowerBound));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::FabricLowerBound));
    }

    #[test]
    fn naive_identity_double_tree_shows_link_contention() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(64), 16),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::identity(&topo, &s).unwrap();
        let f = FabricGraph::from_topology(&topo, &FabricConfig::default());
        let report = analyze_physical(&s, &e, &topo, &f, &Default::default());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::LinkContention));
    }

    #[test]
    fn mismatched_fabric_is_an_unreachable_port_path_error() {
        let (_, s, e) = hier16_case();
        let topo16 = hierarchical(16);
        let topo8 = hierarchical(8);
        let f8 = fabric(&topo8, 4, 1, 1);
        let report = analyze_physical(&s, &e, &topo16, &f8, &Default::default());
        assert!(!report.is_clean());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::UnreachablePortPath));
        assert!(fabric_lower_bound(&s, &e, &topo16, &f8, &Default::default()).is_none());
    }

    #[test]
    fn oversubscribed_fabric_reports_a_hotspot() {
        let (topo, s, e) = hier16_case();
        let f = FabricGraph::from_topology(
            &topo,
            &FabricConfig {
                radix: Some(4),
                oversubscription: 8.0,
                ..FabricConfig::default()
            },
        );
        let report = analyze_physical(&s, &e, &topo, &f, &Default::default());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::OversubscriptionHotspot));
    }

    #[test]
    fn bounds_are_monotone_in_mode_and_positive() {
        let (topo, s, e) = hier16_case();
        let f = fabric(&topo, 4, 2, 2);
        let ct = fabric_lower_bound(&s, &e, &topo, &f, &Default::default()).unwrap();
        let sf = fabric_lower_bound(
            &s,
            &e,
            &topo,
            &f,
            &PhysicalAnalyzeOptions {
                store_forward: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ct > Seconds::ZERO);
        // Store-and-forward serializes per hop, so its bound dominates.
        assert!(sf >= ct);
        let channel = makespan_lower_bound(&s, &e, &topo, &LinkTiming::default()).unwrap();
        assert!(channel > Seconds::ZERO);
    }
}
