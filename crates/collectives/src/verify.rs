//! Schedule verification: symbolic correctness and unit-step replay.
//!
//! Two independent checkers:
//!
//! * [`check_allreduce`] symbolically executes a [`Schedule`] over
//!   *contribution sets* (which ranks' inputs a buffer currently
//!   contains) and proves that every rank finishes with the contribution
//!   of every rank for every chunk — i.e. the schedule really computes an
//!   AllReduce.
//! * [`execute_steps`] replays a schedule in unit-time steps with
//!   exclusive logical channels, reproducing the step counts of the
//!   paper's Fig. 5 (e.g. 10 steps for the conventional tree vs 7 for the
//!   overlapped tree at P=4, K=4).

// rank/chunk indices are semantic here; iterator rewrites would obscure them
#![allow(clippy::needless_range_loop)]

use crate::chunk::ChunkId;
use crate::rank::Rank;
use crate::schedule::{Schedule, TransferId, TreeIndex};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One structural invariant violation of a schedule DAG, with the exact
/// offending transfer — shared between [`check_dag`] (which stops at the
/// first) and the [`analyze`](crate::analyze) lint pass (which reports
/// all of them as `CC001` diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagViolation {
    /// A transfer's id does not equal its index (ids must be dense).
    NonDenseId {
        /// The index the transfer sits at.
        index: usize,
        /// The id it claims.
        id: TransferId,
    },
    /// A transfer sends to itself.
    SelfLoop {
        /// The offending transfer.
        id: TransferId,
    },
    /// A transfer endpoint is outside `0..num_ranks`.
    EndpointOutOfRange {
        /// The offending transfer.
        id: TransferId,
        /// Its sending rank.
        src: Rank,
        /// Its receiving rank.
        dst: Rank,
        /// The schedule's rank count.
        num_ranks: usize,
    },
    /// A transfer's chunk is outside `0..num_chunks`.
    ChunkOutOfRange {
        /// The offending transfer.
        id: TransferId,
        /// Its chunk.
        chunk: ChunkId,
        /// The schedule's chunk count.
        num_chunks: usize,
    },
    /// A dependency does not precede its dependent (ids are required to
    /// be a topological order, so a forward dep also covers cycles).
    ForwardDep {
        /// The offending transfer.
        id: TransferId,
        /// The dependency that does not precede it.
        dep: TransferId,
    },
}

impl DagViolation {
    /// The transfer the violation is anchored to.
    pub fn transfer(&self) -> TransferId {
        match *self {
            DagViolation::NonDenseId { id, .. }
            | DagViolation::SelfLoop { id }
            | DagViolation::EndpointOutOfRange { id, .. }
            | DagViolation::ChunkOutOfRange { id, .. }
            | DagViolation::ForwardDep { id, .. } => id,
        }
    }
}

impl fmt::Display for DagViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagViolation::NonDenseId { index, id } => {
                write!(f, "transfer at index {index} has id {id}")
            }
            DagViolation::SelfLoop { id } => write!(f, "{id} is a self-loop"),
            DagViolation::EndpointOutOfRange {
                id,
                src,
                dst,
                num_ranks,
            } => write!(
                f,
                "{id} endpoints {src}->{dst} out of range for p={num_ranks}"
            ),
            DagViolation::ChunkOutOfRange {
                id,
                chunk,
                num_chunks,
            } => write!(f, "{id} chunk {chunk} out of range for k={num_chunks}"),
            DagViolation::ForwardDep { id, dep } => {
                write!(f, "{id} depends on {dep} which does not precede it")
            }
        }
    }
}

/// Errors found by the verifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A structural invariant of the schedule DAG is broken.
    MalformedDag(DagViolation),
    /// After execution, a rank is missing contributions for a chunk.
    MissingContribution {
        /// The rank whose buffer is incomplete.
        rank: Rank,
        /// The chunk that is incomplete.
        chunk: ChunkId,
        /// How many of the `num_ranks` contributions arrived.
        have: usize,
    },
    /// The step executor made no progress although transfers remain.
    Deadlock {
        /// The step at which execution stalled.
        step: usize,
        /// Number of transfers still outstanding.
        remaining: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MalformedDag(violation) => {
                write!(f, "malformed schedule dag: {violation}")
            }
            VerifyError::MissingContribution { rank, chunk, have } => write!(
                f,
                "incomplete reduction: {rank} {chunk} has only {have} contributions"
            ),
            VerifyError::Deadlock { step, remaining } => {
                write!(
                    f,
                    "schedule deadlocked at step {step} with {remaining} transfers left"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// How logical edges map onto exclusive channels during unit-step replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKeying {
    /// Each `(src, dst, tree)` triple is its own channel — models a
    /// machine with enough parallel links for every tree (the DGX-1's
    /// doubled NVLinks for the 2-tree C-Cube).
    PerTree,
    /// Trees share the `(src, dst)` channel — models the conflict that
    /// makes the naive overlapped double tree impossible (paper §IV-A).
    SharedAcrossTrees,
}

/// Checks the structural invariants of a schedule DAG.
///
/// # Errors
///
/// Returns [`VerifyError::MalformedDag`] if transfer ids are not dense,
/// a dependency does not precede its dependent, an endpoint pair is a
/// self-loop, or a rank/chunk is out of range.
pub fn check_dag(schedule: &Schedule) -> Result<(), VerifyError> {
    match dag_violations(schedule).into_iter().next() {
        Some(v) => Err(VerifyError::MalformedDag(v)),
        None => Ok(()),
    }
}

/// Collects **every** structural violation of the schedule DAG, in
/// transfer order. [`check_dag`] reports the first; the analyzer reports
/// them all.
pub fn dag_violations(schedule: &Schedule) -> Vec<DagViolation> {
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    let mut out = Vec::new();
    for (i, t) in schedule.transfers().iter().enumerate() {
        if t.id.index() != i {
            out.push(DagViolation::NonDenseId { index: i, id: t.id });
        }
        if t.src == t.dst {
            out.push(DagViolation::SelfLoop { id: t.id });
        }
        if t.src.index() >= p || t.dst.index() >= p {
            out.push(DagViolation::EndpointOutOfRange {
                id: t.id,
                src: t.src,
                dst: t.dst,
                num_ranks: p,
            });
        }
        if t.chunk.index() >= k {
            out.push(DagViolation::ChunkOutOfRange {
                id: t.id,
                chunk: t.chunk,
                num_chunks: k,
            });
        }
        for &d in &t.deps {
            if d.index() >= i {
                out.push(DagViolation::ForwardDep { id: t.id, dep: d });
            }
        }
    }
    out
}

/// A set of rank contributions, one bit per rank. Shared with the
/// analyzer's dataflow lints (`pub(crate)` for that reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Contrib {
    bits: Vec<u64>,
}

impl Contrib {
    pub(crate) fn single(rank: Rank, p: usize) -> Self {
        let mut bits = vec![0u64; p.div_ceil(64)];
        bits[rank.index() / 64] |= 1 << (rank.index() % 64);
        Contrib { bits }
    }

    pub(crate) fn union(&mut self, other: &Contrib) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    pub(crate) fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if the two sets share any contribution — the signature of a
    /// double reduction (a payload folded into a buffer that already
    /// contains part of it).
    pub(crate) fn intersects(&self, other: &Contrib) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }
}

/// Symbolically executes `schedule` and proves it computes an AllReduce:
/// every rank must end with all `P` contributions for every chunk.
///
/// Reduction-phase transfers union the sender's contribution set into the
/// receiver's; broadcast-phase transfers overwrite it. Transfers are
/// applied in id order, which the builders guarantee is a valid
/// linearization of the dependency DAG.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the DAG is malformed or any buffer ends
/// incomplete.
pub fn check_allreduce(schedule: &Schedule) -> Result<(), VerifyError> {
    check_dag(schedule)?;
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    // state[rank][chunk] = contribution set of that buffer
    let mut state: Vec<Vec<Contrib>> = (0..p)
        .map(|r| (0..k).map(|_| Contrib::single(Rank(r as u32), p)).collect())
        .collect();

    for t in schedule.transfers() {
        let payload = state[t.src.index()][t.chunk.index()].clone();
        let dst = &mut state[t.dst.index()][t.chunk.index()];
        if t.phase.is_reduction() {
            dst.union(&payload);
        } else {
            *dst = payload;
        }
    }

    for r in 0..p {
        for c in 0..k {
            let have = state[r][c].count();
            if have != p {
                return Err(VerifyError::MissingContribution {
                    rank: Rank(r as u32),
                    chunk: ChunkId(c as u32),
                    have,
                });
            }
        }
    }
    Ok(())
}

/// The result of a unit-step replay of a schedule.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Total steps until the last transfer completed (1-based; a schedule
    /// whose last transfer runs in the first step reports 1).
    pub num_steps: usize,
    /// Completion step of each transfer, indexed by transfer id (1-based).
    pub completion_step: Vec<usize>,
    /// The step at which each chunk became fully AllReduced everywhere
    /// (i.e. its last transfer completed), indexed by chunk id.
    pub chunk_complete_step: Vec<usize>,
}

impl StepReport {
    /// The step at which the *first* chunk completed everywhere — the
    /// unit-step analog of the paper's gradient turnaround time.
    pub fn turnaround_step(&self) -> usize {
        self.chunk_complete_step.iter().copied().min().unwrap_or(0)
    }

    /// True if chunks complete in non-decreasing chunk order within each
    /// tree-parity class (the in-order property, Observation #3).
    pub fn chunks_in_order(&self, num_trees: usize) -> bool {
        for parity in 0..num_trees {
            let steps: Vec<usize> = self
                .chunk_complete_step
                .iter()
                .enumerate()
                .filter(|(c, _)| c % num_trees == parity)
                .map(|(_, &s)| s)
                .collect();
            if steps.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }
}

/// Replays `schedule` in unit-time steps: every transfer takes exactly
/// one step, each logical channel (per `keying`) carries at most one
/// transfer per step, channels serve their transfers strictly in id
/// (FIFO) order, and a transfer may start only in a step strictly after
/// all of its dependencies completed.
///
/// This is the executor used to reproduce the step counts of the paper's
/// Fig. 5 and the timing diagrams of Fig. 7.
///
/// # Errors
///
/// Returns [`VerifyError::Deadlock`] if no transfer can make progress, or
/// [`VerifyError::MalformedDag`] if the schedule is structurally invalid.
pub fn execute_steps(
    schedule: &Schedule,
    keying: ChannelKeying,
) -> Result<StepReport, VerifyError> {
    check_dag(schedule)?;
    let transfers = schedule.transfers();
    let n = transfers.len();
    let k = schedule.chunking().num_chunks();

    // Group transfer ids per channel, in id (FIFO) order.
    type Key = (Rank, Rank, TreeIndex);
    let key_of = |src: Rank, dst: Rank, tree: TreeIndex| -> Key {
        match keying {
            ChannelKeying::PerTree => (src, dst, tree),
            ChannelKeying::SharedAcrossTrees => (src, dst, TreeIndex(0)),
        }
    };
    let mut queues: HashMap<Key, Vec<u32>> = HashMap::new();
    for t in transfers {
        queues
            .entry(key_of(t.src, t.dst, t.tree))
            .or_default()
            .push(t.id.0);
    }
    let mut heads: HashMap<Key, usize> = queues.keys().map(|&k| (k, 0usize)).collect();

    let mut completion_step = vec![0usize; n];
    let mut done = vec![false; n];
    let mut remaining = n;
    let mut step = 0usize;

    while remaining > 0 {
        step += 1;
        let mut fired = Vec::new();
        for (key, queue) in &queues {
            let head = heads[key];
            if head >= queue.len() {
                continue;
            }
            let tid = queue[head] as usize;
            let ready = transfers[tid]
                .deps
                .iter()
                .all(|d| done[d.index()] && completion_step[d.index()] < step);
            if ready {
                fired.push((*key, tid));
            }
        }
        if fired.is_empty() {
            return Err(VerifyError::Deadlock { step, remaining });
        }
        for (key, tid) in fired {
            done[tid] = true;
            completion_step[tid] = step;
            *heads.get_mut(&key).expect("queue exists") += 1;
            remaining -= 1;
        }
    }

    let mut chunk_complete_step = vec![0usize; k];
    for t in transfers {
        let c = t.chunk.index();
        chunk_complete_step[c] = chunk_complete_step[c].max(completion_step[t.id.index()]);
    }

    Ok(StepReport {
        num_steps: step,
        completion_step,
        chunk_complete_step,
    })
}

/// Runs the symbolic executor and returns the final contribution state.
pub(crate) fn run_symbolic(schedule: &Schedule) -> Result<Vec<Vec<Contrib>>, VerifyError> {
    check_dag(schedule)?;
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    let mut state: Vec<Vec<Contrib>> = (0..p)
        .map(|r| (0..k).map(|_| Contrib::single(Rank(r as u32), p)).collect())
        .collect();
    for t in schedule.transfers() {
        let payload = state[t.src.index()][t.chunk.index()].clone();
        let dst = &mut state[t.dst.index()][t.chunk.index()];
        if t.phase.is_reduction() {
            dst.union(&payload);
        } else {
            *dst = payload;
        }
    }
    Ok(state)
}

/// Proves `schedule` is a correct **broadcast**: after execution every
/// rank holds, for every chunk, exactly one and the same contribution
/// (the root's data).
///
/// # Errors
///
/// Returns [`VerifyError::MalformedDag`] for structural problems, or a
/// [`VerifyError::MissingContribution`]-style error if any buffer
/// diverges from the root's.
pub fn check_broadcast(schedule: &Schedule) -> Result<(), VerifyError> {
    let state = run_symbolic(schedule)?;
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    for c in 0..k {
        let reference = &state[0][c];
        if reference.count() != 1 {
            // A broadcast must leave exactly one (the root's) contribution
            // everywhere; anything else is a dataflow error with the same
            // structured shape as an incomplete reduction.
            return Err(VerifyError::MissingContribution {
                rank: Rank(0),
                chunk: ChunkId(c as u32),
                have: reference.count(),
            });
        }
        for r in 1..p {
            if &state[r][c] != reference {
                return Err(VerifyError::MissingContribution {
                    rank: Rank(r as u32),
                    chunk: ChunkId(c as u32),
                    have: state[r][c].count(),
                });
            }
        }
    }
    Ok(())
}

/// Proves `schedule` is a correct **reduce**: after execution, for every
/// chunk, at least one of the given `roots` holds all `P` contributions.
///
/// # Errors
///
/// Returns a [`VerifyError`] if some chunk is fully reduced at none of
/// the roots.
pub fn check_reduce(schedule: &Schedule, roots: &[Rank]) -> Result<(), VerifyError> {
    let state = run_symbolic(schedule)?;
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    for c in 0..k {
        let best = roots
            .iter()
            .map(|r| state[r.index()][c].count())
            .max()
            .unwrap_or(0);
        if best != p {
            return Err(VerifyError::MissingContribution {
                rank: *roots.first().unwrap_or(&Rank(0)),
                chunk: ChunkId(c as u32),
                have: best,
            });
        }
    }
    Ok(())
}

/// Proves `schedule` is a correct ring **ReduceScatter**: after
/// execution, chunk `c` is fully reduced at rank `(c - 1) mod P` (the
/// standard post-RS ownership).
///
/// # Errors
///
/// Returns a [`VerifyError`] if the owning rank's chunk is incomplete.
pub fn check_reduce_scatter(schedule: &Schedule) -> Result<(), VerifyError> {
    let state = run_symbolic(schedule)?;
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    for c in 0..k {
        let owner = (c + p - 1) % p;
        let have = state[owner][c].count();
        if have != p {
            return Err(VerifyError::MissingContribution {
                rank: Rank(owner as u32),
                chunk: ChunkId(c as u32),
                have,
            });
        }
    }
    Ok(())
}

/// Proves `schedule` is a correct ring **AllGather** from the post-RS
/// ownership: after execution every rank holds, for every chunk, exactly
/// the owner's contribution.
///
/// # Errors
///
/// Returns a [`VerifyError`] if any buffer differs from the owner's.
pub fn check_all_gather(schedule: &Schedule) -> Result<(), VerifyError> {
    let state = run_symbolic(schedule)?;
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    for c in 0..k {
        let owner = (c + p - 1) % p;
        let reference = &state[owner][c];
        for r in 0..p {
            if &state[r][c] != reference {
                return Err(VerifyError::MissingContribution {
                    rank: Rank(r as u32),
                    chunk: ChunkId(c as u32),
                    have: state[r][c].count(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunking;
    use crate::ring::ring_allreduce;
    use crate::schedule::Phase;
    use crate::tree::{BinaryTree, DoubleBinaryTree};
    use crate::tree_schedule::{tree_allreduce, Overlap};
    use ccube_topology::ByteSize;

    #[test]
    fn ring_is_a_correct_allreduce() {
        for p in 2..10 {
            let s = ring_allreduce(p, ByteSize::mib(1));
            check_allreduce(&s).unwrap();
        }
    }

    #[test]
    fn single_tree_is_a_correct_allreduce() {
        for p in 2..10 {
            for overlap in [Overlap::None, Overlap::ReductionBroadcast] {
                let tree = BinaryTree::inorder(p).unwrap();
                let s = tree_allreduce(
                    std::slice::from_ref(&tree),
                    &Chunking::even(ByteSize::mib(1), 5),
                    overlap,
                );
                check_allreduce(&s).unwrap();
            }
        }
    }

    #[test]
    fn double_tree_is_a_correct_allreduce() {
        for p in 2..10 {
            for overlap in [Overlap::None, Overlap::ReductionBroadcast] {
                let dt = DoubleBinaryTree::new(p).unwrap();
                let s = tree_allreduce(dt.trees(), &Chunking::even(ByteSize::mib(1), 8), overlap);
                check_allreduce(&s).unwrap();
            }
        }
    }

    /// The paper's Fig. 5: P=4 chain-shaped tree, K=4 chunks — the
    /// conventional tree needs 10 steps, the overlapped tree 7.
    #[test]
    fn fig5_step_counts() {
        // Fig. 5 uses a 2-level tree over 4 nodes: two leaves reduce into
        // a middle node, which reduces into the root. The in-order tree on
        // 4 ranks has exactly depth 2.
        let tree = BinaryTree::inorder(4).unwrap();
        assert_eq!(tree.depth(), 2);
        let chunking = Chunking::even(ByteSize::mib(4), 4);

        let baseline = tree_allreduce(std::slice::from_ref(&tree), &chunking, Overlap::None);
        let overlapped = tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        );

        let rb = execute_steps(&baseline, ChannelKeying::PerTree).unwrap();
        let ro = execute_steps(&overlapped, ChannelKeying::PerTree).unwrap();

        // reduction: depth + K - 1 = 5; broadcast likewise; baseline
        // serializes them (10 steps), overlap chains them (7 steps).
        assert_eq!(rb.num_steps, 10, "conventional tree");
        assert_eq!(ro.num_steps, 7, "overlapped tree");
    }

    /// Fig. 7 generalization: steps are 2(logP + K) vs 2logP + K.
    #[test]
    fn fig7_pipeline_depths() {
        for (p, k) in [(8usize, 6usize), (8, 12), (16, 8)] {
            let tree = BinaryTree::inorder(p).unwrap();
            let d = tree.depth();
            let chunking = Chunking::even(ByteSize::mib(8), k);
            let b = tree_allreduce(std::slice::from_ref(&tree), &chunking, Overlap::None);
            let o = tree_allreduce(
                std::slice::from_ref(&tree),
                &chunking,
                Overlap::ReductionBroadcast,
            );
            let rb = execute_steps(&b, ChannelKeying::PerTree).unwrap();
            let ro = execute_steps(&o, ChannelKeying::PerTree).unwrap();
            assert_eq!(rb.num_steps, 2 * (d + k - 1), "baseline p={p} k={k}");
            assert_eq!(ro.num_steps, 2 * d + k - 1, "overlapped p={p} k={k}");
        }
    }

    #[test]
    fn overlapped_turnaround_is_much_earlier() {
        let tree = BinaryTree::inorder(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(8), 32);
        let b = tree_allreduce(std::slice::from_ref(&tree), &chunking, Overlap::None);
        let o = tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        );
        let rb = execute_steps(&b, ChannelKeying::PerTree).unwrap();
        let ro = execute_steps(&o, ChannelKeying::PerTree).unwrap();
        // Baseline: first chunk usable after the whole reduction plus its
        // broadcast; overlapped: one tree round trip.
        assert!(ro.turnaround_step() * 4 < rb.turnaround_step());
    }

    #[test]
    fn tree_delivery_is_in_order() {
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(8), 16);
        for overlap in [Overlap::None, Overlap::ReductionBroadcast] {
            let s = tree_allreduce(dt.trees(), &chunking, overlap);
            let r = execute_steps(&s, ChannelKeying::PerTree).unwrap();
            assert!(r.chunks_in_order(2), "overlap={overlap:?}");
        }
    }

    #[test]
    fn shared_channels_slow_down_the_double_tree() {
        // When the two trees must share channels (no doubled links), the
        // replay takes longer than with per-tree channels — the conflict
        // the paper resolves with the DGX-1's extra physical channels.
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(8), 16);
        let s = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let dedicated = execute_steps(&s, ChannelKeying::PerTree).unwrap();
        let shared = execute_steps(&s, ChannelKeying::SharedAcrossTrees).unwrap();
        assert!(shared.num_steps >= dedicated.num_steps);
    }

    #[test]
    fn malformed_dag_is_detected() {
        use crate::schedule::{Transfer, TransferId};
        let t = Transfer {
            id: TransferId(0),
            src: Rank(0),
            dst: Rank(0), // self loop
            chunk: ChunkId(0),
            bytes: ByteSize::kib(1),
            phase: Phase::Reduce,
            tree: TreeIndex(0),
            deps: vec![],
        };
        let s = Schedule::new("bad", 2, Chunking::even(ByteSize::kib(1), 1), vec![t]);
        assert!(matches!(check_dag(&s), Err(VerifyError::MalformedDag(_))));
    }

    #[test]
    fn incomplete_schedule_fails_verification() {
        // A schedule that only reduces but never broadcasts cannot be an
        // AllReduce.
        use crate::schedule::{Transfer, TransferId};
        let t = Transfer {
            id: TransferId(0),
            src: Rank(0),
            dst: Rank(1),
            chunk: ChunkId(0),
            bytes: ByteSize::kib(1),
            phase: Phase::Reduce,
            tree: TreeIndex(0),
            deps: vec![],
        };
        let s = Schedule::new("partial", 2, Chunking::even(ByteSize::kib(1), 1), vec![t]);
        assert!(matches!(
            check_allreduce(&s),
            Err(VerifyError::MissingContribution { .. })
        ));
    }
}
