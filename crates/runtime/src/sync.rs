//! Device-side synchronization primitives (paper Fig. 11).
//!
//! The paper's persistent kernels synchronize without host intervention:
//! a spin lock from `atomicCAS` + `threadfence`, and semaphores whose
//! `post`/`wait`/`check` operations guard a count variable with that
//! lock. We transliterate the pseudocode one-to-one onto Rust atomics;
//! `Acquire`/`Release` orderings play the role of `threadfence`.

use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// A spin lock equivalent to the paper's `lock`/`unlock`:
///
/// ```text
/// def lock(lock):                def unlock(lock):
///   while atomicCAS(lock,0,1)!=0:    threadfence()
///     threadfence()                  atomicExch(lock,0)
/// ```
///
/// # Examples
///
/// ```
/// use ccube_runtime::DeviceLock;
/// let l = DeviceLock::new();
/// l.lock();
/// // ... critical section ...
/// l.unlock();
/// ```
#[derive(Debug, Default)]
pub struct DeviceLock {
    locked: AtomicU32,
}

impl DeviceLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        DeviceLock {
            locked: AtomicU32::new(0),
        }
    }

    /// Acquires the lock, spinning until it is free.
    pub fn lock(&self) {
        // while atomicCAS(lock, 0, 1) != 0: threadfence()
        while self
            .locked
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the lock was not held.
    pub fn unlock(&self) {
        // threadfence(); atomicExch(lock, 0)
        let prev = self.locked.swap(0, Ordering::Release);
        debug_assert_eq!(prev, 1, "unlock of an unheld DeviceLock");
    }

    /// Runs `f` with the lock held.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let r = f();
        self.unlock();
        r
    }
}

/// A counting semaphore equivalent to the paper's `post`/`wait`/`check`:
///
/// ```text
/// def post(lock,cnt,value):   def wait(lock,cnt):   def check(lock,cnt,value):
///   lock(lock)                  lock(lock)            lock(lock)
///   while cnt==value:           while cnt==0:         while cnt<value:
///     unlock(lock);lock(lock)     unlock(lock);lock     unlock(lock);lock(lock)
///   ++cnt                       --cnt                 # just check
///   unlock(lock)                unlock(lock)          unlock(lock)
/// ```
///
/// `post` blocks while the count is at `capacity` (bounded receive
/// buffers), `wait` consumes one unit, and `check` blocks until the count
/// reaches a threshold *without consuming* — the operation gradient
/// queuing's dequeue gate uses (paper §IV-B).
///
/// # Examples
///
/// ```
/// use ccube_runtime::DeviceSemaphore;
/// let s = DeviceSemaphore::new(0, 8);
/// s.post();
/// s.post();
/// s.check(2); // returns immediately: count >= 2
/// s.wait();
/// assert_eq!(s.count(), 1);
/// ```
#[derive(Debug)]
pub struct DeviceSemaphore {
    lock: DeviceLock,
    count: AtomicI64,
    capacity: i64,
}

impl DeviceSemaphore {
    /// Creates a semaphore with an initial count and a capacity bound for
    /// `post`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` exceeds `capacity` or either is negative.
    pub fn new(initial: i64, capacity: i64) -> Self {
        assert!(initial >= 0 && capacity > 0 && initial <= capacity);
        DeviceSemaphore {
            lock: DeviceLock::new(),
            count: AtomicI64::new(initial),
            capacity,
        }
    }

    /// Creates an effectively unbounded semaphore (capacity `i64::MAX`).
    pub fn counting(initial: i64) -> Self {
        DeviceSemaphore::new(initial, i64::MAX)
    }

    fn read(&self) -> i64 {
        // All mutation happens under `lock`, matching the paper's plain
        // count variable; Relaxed is sufficient because the lock's
        // Acquire/Release edges order the accesses.
        self.count.load(Ordering::Relaxed)
    }

    /// Increments the count, blocking while it is at capacity.
    pub fn post(&self) {
        self.lock.lock();
        while self.read() == self.capacity {
            self.lock.unlock();
            std::thread::yield_now();
            self.lock.lock();
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.lock.unlock();
    }

    /// Decrements the count, blocking while it is zero.
    pub fn wait(&self) {
        self.lock.lock();
        while self.read() == 0 {
            self.lock.unlock();
            std::thread::yield_now();
            self.lock.lock();
        }
        self.count.fetch_sub(1, Ordering::Relaxed);
        self.lock.unlock();
    }

    /// Blocks until the count reaches `value`, without consuming.
    pub fn check(&self, value: i64) {
        self.lock.lock();
        while self.read() < value {
            self.lock.unlock();
            std::thread::yield_now();
            self.lock.lock();
        }
        self.lock.unlock();
    }

    /// The current count (racy snapshot; for monitoring and tests).
    pub fn count(&self) -> i64 {
        self.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_provides_mutual_exclusion() {
        let lock = Arc::new(DeviceLock::new());
        let counter = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..1000 {
                        lock.with(|| {
                            // non-atomic read-modify-write made safe by the lock
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn semaphore_post_wait_pairs() {
        let s = Arc::new(DeviceSemaphore::counting(0));
        std::thread::scope(|scope| {
            let s2 = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..100 {
                    s2.post();
                }
            });
            for _ in 0..100 {
                s.wait();
            }
        });
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn post_blocks_at_capacity() {
        let s = Arc::new(DeviceSemaphore::new(0, 2));
        s.post();
        s.post();
        assert_eq!(s.count(), 2);
        std::thread::scope(|scope| {
            let s2 = Arc::clone(&s);
            let t = scope.spawn(move || {
                s2.post(); // blocks until someone waits
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(s.count(), 2, "post must not exceed capacity");
            s.wait();
            t.join().unwrap();
        });
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn check_does_not_consume() {
        let s = DeviceSemaphore::counting(3);
        s.check(3);
        s.check(1);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn check_blocks_until_threshold() {
        let s = Arc::new(DeviceSemaphore::counting(0));
        std::thread::scope(|scope| {
            let s2 = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..5 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    s2.post();
                }
            });
            s.check(5);
            assert!(s.count() >= 5);
        });
    }

    #[test]
    #[should_panic]
    fn invalid_initial_rejected() {
        let _ = DeviceSemaphore::new(5, 2);
    }
}
