//! Gradient queuing and communication/computation chaining (C2, CC).
//!
//! The paper's gradient queue (Fig. 9) lets the *next iteration's forward
//! pass* begin layer-by-layer while AllReduce is still running:
//!
//! * the broadcast kernel `post`s the **Enqueue Semaphore** whenever a
//!   fully reduced chunk lands in the gradient buffer (the buffer itself
//!   is the queue — chunks arrive in order, Observation #3);
//! * the compute stream keeps a **Layer Index Counter** and `check`s the
//!   enqueue count against the **Layer-Chunk Table** entry of the next
//!   layer; when enough chunks have arrived, that layer's parameter
//!   update + forward computation runs and the counter advances.
//!
//! With a double tree the chunks interleave between two pipelines, so the
//! queue keeps one enqueue semaphore per tree and the table stores the
//! per-tree chunk requirement — a faithful generalization of the paper's
//! single counter.

use crate::allreduce::TreeAllReduceRuntime;
use crate::error::RuntimeError;
use crate::sync::DeviceSemaphore;
use ccube_collectives::Rank;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One rank's gradient queue: per-tree enqueue semaphores plus the
/// layer-chunk table.
///
/// # Examples
///
/// ```
/// use ccube_runtime::GradientQueue;
/// // 4 chunks over 2 trees; layer 0 needs chunks 0..2, layer 1 all 4.
/// let q = GradientQueue::new(2, &[2, 4]).unwrap();
/// q.enqueue(0); // chunk 0 (tree 0)
/// q.enqueue(1); // chunk 1 (tree 1)
/// q.wait_layer(0); // returns: both tree counters reached 1
/// ```
#[derive(Debug)]
pub struct GradientQueue {
    /// Enqueue semaphore per tree (paper Fig. 9 ⓗ).
    sems: Vec<Arc<DeviceSemaphore>>,
    /// required[layer][tree]: chunks of that tree needed before the layer
    /// may run (the Layer-Chunk Table, Fig. 9 ⓔ).
    required: Vec<Vec<i64>>,
}

impl GradientQueue {
    /// Builds a queue for `num_trees` pipelines from the (exclusive,
    /// cumulative) layer-chunk table — entry `l` is the number of leading
    /// chunks layer `l` needs (see
    /// `NetworkModel::layer_chunk_table` in `ccube-dnn`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidLayerTable`] if the table is empty
    /// or not non-decreasing.
    pub fn new(num_trees: usize, layer_chunk_table: &[usize]) -> Result<Self, RuntimeError> {
        if num_trees == 0 {
            return Err(RuntimeError::InvalidLayerTable(
                "need at least one tree".into(),
            ));
        }
        if layer_chunk_table.is_empty() {
            return Err(RuntimeError::InvalidLayerTable("table is empty".into()));
        }
        if layer_chunk_table.windows(2).any(|w| w[0] > w[1]) {
            return Err(RuntimeError::InvalidLayerTable(
                "table must be non-decreasing".into(),
            ));
        }
        let sems = (0..num_trees)
            .map(|_| Arc::new(DeviceSemaphore::counting(0)))
            .collect();
        let required = layer_chunk_table
            .iter()
            .map(|&upper| {
                (0..num_trees)
                    .map(|t| {
                        // chunks c < upper with c % num_trees == t
                        ((upper + num_trees - 1).saturating_sub(t) / num_trees) as i64
                    })
                    .collect()
            })
            .collect();
        Ok(GradientQueue { sems, required })
    }

    /// Builds a queue sharing existing enqueue semaphores (used by the
    /// chained executor so the broadcast kernels post directly into it).
    pub(crate) fn with_semaphores(
        sems: Vec<Arc<DeviceSemaphore>>,
        layer_chunk_table: &[usize],
    ) -> Result<Self, RuntimeError> {
        let q = GradientQueue::new(sems.len(), layer_chunk_table)?;
        Ok(GradientQueue {
            sems,
            required: q.required,
        })
    }

    /// Number of layers gated by the queue.
    pub fn num_layers(&self) -> usize {
        self.required.len()
    }

    /// Records the arrival of a fully reduced chunk of `tree`
    /// (the enqueue operation ①/ⓗ of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `tree` is out of range.
    pub fn enqueue(&self, tree: usize) {
        self.sems[tree].post();
    }

    /// Blocks until every chunk layer `layer` needs has been enqueued —
    /// the dequeue gate (`check` against the Layer-Chunk Table).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn wait_layer(&self, layer: usize) {
        for (t, sem) in self.sems.iter().enumerate() {
            sem.check(self.required[layer][t]);
        }
    }

    /// The per-tree chunk requirement of a layer (for tests/reporting).
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `tree` is out of range.
    pub fn required(&self, layer: usize, tree: usize) -> i64 {
        self.required[layer][tree]
    }

    /// Chunks currently enqueued for `tree` (racy snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `tree` is out of range.
    pub fn enqueued(&self, tree: usize) -> i64 {
        self.sems[tree].count()
    }
}

/// The result of a chained run: each rank's reduced buffer plus its
/// ordered layer events.
pub type ChainedOutput = (Vec<Vec<f32>>, Vec<Vec<LayerEvent>>);

/// A record of one chained layer execution on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerEvent {
    /// The layer that ran.
    pub layer: usize,
    /// Global sequence number (totally ordered across ranks) at the
    /// moment the layer's dequeue gate opened.
    pub seq: u64,
    /// Chunks enqueued across all trees when the gate opened — must be at
    /// least the layer's requirement.
    pub chunks_available: i64,
}

/// The chained (C2 / CC) executor: runs a tree AllReduce *and* the next
/// iteration's forward pass concurrently, layer-gated by a
/// [`GradientQueue`] per rank.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{DoubleBinaryTree, Overlap};
/// use ccube_runtime::{ChainedRun, TreeAllReduceRuntime};
///
/// let dt = DoubleBinaryTree::new(4).unwrap();
/// let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 4);
/// let chained = ChainedRun::new(rt, vec![1, 2, 4]).unwrap(); // 3 layers
/// let inputs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 64]).collect();
/// let (outputs, events) = chained.run(inputs, |_rank, _layer| {}).unwrap();
/// assert!(outputs.iter().all(|o| o.iter().all(|&x| x == 6.0)));
/// // every rank ran its 3 layers in order
/// assert!(events.iter().all(|e| e.len() == 3));
/// ```
#[derive(Debug, Clone)]
pub struct ChainedRun {
    runtime: TreeAllReduceRuntime,
    layer_chunk_table: Vec<usize>,
}

impl ChainedRun {
    /// Creates a chained executor from a tree runtime and the
    /// layer-chunk table (exclusive cumulative chunk index per layer).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidLayerTable`] if the table is empty,
    /// decreasing, or its last entry exceeds the chunk count.
    pub fn new(
        runtime: TreeAllReduceRuntime,
        layer_chunk_table: Vec<usize>,
    ) -> Result<Self, RuntimeError> {
        if layer_chunk_table.is_empty() {
            return Err(RuntimeError::InvalidLayerTable("table is empty".into()));
        }
        if layer_chunk_table.windows(2).any(|w| w[0] > w[1]) {
            return Err(RuntimeError::InvalidLayerTable(
                "table must be non-decreasing".into(),
            ));
        }
        let last = *layer_chunk_table.last().expect("non-empty");
        if last > runtime.num_chunks() {
            return Err(RuntimeError::InvalidLayerTable(format!(
                "table needs {last} chunks but the collective has {}",
                runtime.num_chunks()
            )));
        }
        Ok(ChainedRun {
            runtime,
            layer_chunk_table,
        })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layer_chunk_table.len()
    }

    /// Runs the AllReduce with per-rank compute threads chained through
    /// gradient queues. `on_layer(rank, layer)` is invoked as each
    /// layer's gate opens (this is where the layer's parameter update and
    /// forward computation would run).
    ///
    /// Returns the reduced buffers and, per rank, the ordered
    /// [`LayerEvent`]s.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] variants for malformed inputs.
    pub fn run<F>(&self, inputs: Vec<Vec<f32>>, on_layer: F) -> Result<ChainedOutput, RuntimeError>
    where
        F: Fn(usize, usize) + Sync,
    {
        let state = self.runtime.build_state(inputs)?;
        let p = self.runtime.num_ranks();
        let num_trees = self.runtime.trees().len();
        let seq = AtomicU64::new(0);

        // One gradient queue per rank, sharing the executor's enqueue
        // semaphores so the broadcast kernels post straight into them.
        let queues: Vec<GradientQueue> = (0..p)
            .map(|r| {
                GradientQueue::with_semaphores(state.enqueue[r].clone(), &self.layer_chunk_table)
            })
            .collect::<Result<_, _>>()?;

        let mut events: Vec<Vec<LayerEvent>> = vec![Vec::new(); p];

        std::thread::scope(|s| {
            for ti in 0..num_trees {
                for r in Rank::all(p) {
                    let st = &state;
                    s.spawn(move || st.reduction_worker(ti, r));
                    let st = &state;
                    s.spawn(move || st.broadcast_worker(ti, r));
                }
            }
            // Compute streams: one per rank, gated by its gradient queue.
            for (r, (queue, ev)) in queues.iter().zip(events.iter_mut()).enumerate() {
                let on_layer = &on_layer;
                let seq = &seq;
                s.spawn(move || {
                    // The Layer Index Counter walks the layers in order.
                    for layer in 0..queue.num_layers() {
                        queue.wait_layer(layer);
                        let available: i64 = (0..num_trees).map(|t| queue.enqueued(t)).sum();
                        let n = seq.fetch_add(1, Ordering::SeqCst);
                        on_layer(r, layer);
                        ev.push(LayerEvent {
                            layer,
                            seq: n,
                            chunks_available: available,
                        });
                    }
                });
            }
        });

        Ok((state.into_outputs(), events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::{BinaryTree, DoubleBinaryTree, Overlap};

    fn inputs(p: usize, n: usize) -> Vec<Vec<f32>> {
        (0..p)
            .map(|r| (0..n).map(|i| ((r * 3 + i) % 7) as f32).collect())
            .collect()
    }

    fn reference(inp: &[Vec<f32>]) -> Vec<f32> {
        let mut out = vec![0f32; inp[0].len()];
        for b in inp {
            for (o, x) in out.iter_mut().zip(b) {
                *o += x;
            }
        }
        out
    }

    #[test]
    fn queue_requirements_split_by_parity() {
        let q = GradientQueue::new(2, &[3, 5, 8]).unwrap();
        // layer 0 needs chunks {0,1,2}: tree0 {0,2}=2, tree1 {1}=1
        assert_eq!(q.required(0, 0), 2);
        assert_eq!(q.required(0, 1), 1);
        // layer 2 needs all 8: 4 + 4
        assert_eq!(q.required(2, 0), 4);
        assert_eq!(q.required(2, 1), 4);
    }

    #[test]
    fn queue_rejects_bad_tables() {
        assert!(GradientQueue::new(1, &[]).is_err());
        assert!(GradientQueue::new(1, &[3, 2]).is_err());
        assert!(GradientQueue::new(0, &[1]).is_err());
    }

    #[test]
    fn chained_run_matches_reference_and_orders_layers() {
        let dt = DoubleBinaryTree::new(8).unwrap();
        let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 16);
        let chained = ChainedRun::new(rt, vec![2, 5, 9, 16]).unwrap();
        let inp = inputs(8, 160);
        let expect = reference(&inp);
        let (out, events) = chained.run(inp, |_, _| {}).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
        for rank_events in &events {
            assert_eq!(rank_events.len(), 4);
            // layers execute in order on each rank
            for (i, e) in rank_events.iter().enumerate() {
                assert_eq!(e.layer, i);
            }
            // seq strictly increases per rank
            for w in rank_events.windows(2) {
                assert!(w[0].seq < w[1].seq);
            }
        }
    }

    #[test]
    fn gate_never_opens_early() {
        // chunks_available at gate time must cover the layer requirement.
        let dt = DoubleBinaryTree::new(4).unwrap();
        let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 8);
        let table = vec![1, 4, 8];
        let chained = ChainedRun::new(rt, table.clone()).unwrap();
        let (_, events) = chained.run(inputs(4, 64), |_, _| {}).unwrap();
        for rank_events in &events {
            for e in rank_events {
                // requirement over both trees is exactly table[layer]
                assert!(
                    e.chunks_available >= table[e.layer] as i64,
                    "layer {} gate opened with {} chunks",
                    e.layer,
                    e.chunks_available
                );
            }
        }
    }

    #[test]
    fn chained_works_with_baseline_tree_too() {
        // C2 without C1: baseline tree + gradient queuing.
        let tree = BinaryTree::inorder(4).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::None, 8);
        let chained = ChainedRun::new(rt, vec![4, 8]).unwrap();
        let inp = inputs(4, 64);
        let expect = reference(&inp);
        let (out, events) = chained.run(inp, |_, _| {}).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
        assert!(events.iter().all(|e| e.len() == 2));
    }

    #[test]
    fn invalid_tables_are_rejected() {
        let tree = BinaryTree::inorder(4).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::None, 4);
        assert!(ChainedRun::new(rt.clone(), vec![]).is_err());
        assert!(ChainedRun::new(rt.clone(), vec![3, 2]).is_err());
        assert!(ChainedRun::new(rt, vec![5]).is_err()); // more than 4 chunks
    }

    #[test]
    fn on_layer_callback_sees_every_rank() {
        use std::sync::atomic::AtomicUsize;
        let dt = DoubleBinaryTree::new(4).unwrap();
        let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 4);
        let chained = ChainedRun::new(rt, vec![4]).unwrap();
        let calls = AtomicUsize::new(0);
        let _ = chained
            .run(inputs(4, 32), |_, _| {
                calls.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }
}
