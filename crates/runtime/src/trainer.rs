//! A synchronous data-parallel training loop over the threaded C-Cube
//! runtime.
//!
//! This is the end-to-end shape of the paper's system: per iteration,
//! every "GPU" computes local gradients from its shard of the batch, the
//! gradients are AllReduced with the overlapped double tree, and the
//! parameter update + next forward pass of each layer is *chained*
//! through gradient queuing — all with real arithmetic, so replica
//! divergence (the bug class synchronous training exists to prevent) is
//! directly observable.
//!
//! The "model" is deliberately simple — a linear scorer per rank whose
//! gradient is a deterministic function of the parameters and the rank's
//! data shard — because what is under test is the *communication and
//! chaining machinery*, not the learning: after every iteration all
//! replicas must hold bit-identical parameters, equal to a serial
//! reference execution.

use crate::allreduce::TreeAllReduceRuntime;
use crate::chained::ChainedRun;
use crate::error::RuntimeError;
use ccube_collectives::{DoubleBinaryTree, Overlap};

/// Configuration of a [`Trainer`].
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of data-parallel replicas ("GPUs").
    pub num_ranks: usize,
    /// Parameters per replica.
    pub num_params: usize,
    /// AllReduce chunk count.
    pub num_chunks: usize,
    /// Layer boundaries as the cumulative (exclusive) chunk index per
    /// layer — the Layer-Chunk Table. The last entry must equal
    /// `num_chunks`.
    pub layer_chunk_table: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl TrainerConfig {
    /// A small default: 4 ranks, 256 parameters, 8 chunks, 4 layers.
    pub fn small() -> Self {
        TrainerConfig {
            num_ranks: 4,
            num_params: 256,
            num_chunks: 8,
            layer_chunk_table: vec![2, 4, 6, 8],
            learning_rate: 0.01,
        }
    }
}

/// The state of one training run: per-rank parameter replicas.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    /// params[rank][i] — replicas of the same model.
    params: Vec<Vec<f32>>,
    chained: ChainedRun,
    iterations_done: usize,
}

/// The deterministic local "gradient computation": a pseudo-gradient
/// that depends on the parameters, the rank's shard, and the iteration,
/// with values kept to small integer multiples so f32 summation is
/// exact. Public so tests can run the serial reference with the same
/// function.
pub fn local_gradient(params: &[f32], rank: usize, iteration: usize) -> Vec<f32> {
    params
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let data = ((rank * 31 + i * 7 + iteration * 13) % 5) as f32 - 2.0;
            // quantized "loss slope": keeps the arithmetic exact in f32
            (w * 0.0 + data) + ((i % 3) as f32)
        })
        .collect()
}

impl Trainer {
    /// Creates a trainer with all replicas initialized to the same
    /// deterministic parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidLayerTable`] if the layer table is
    /// inconsistent with the chunk count.
    pub fn new(config: TrainerConfig) -> Result<Self, RuntimeError> {
        let trees = DoubleBinaryTree::new(config.num_ranks)
            .map_err(|e| RuntimeError::InvalidLayerTable(e.to_string()))?;
        let rt = TreeAllReduceRuntime::new(
            trees.trees().to_vec(),
            Overlap::ReductionBroadcast,
            config.num_chunks,
        );
        let chained = ChainedRun::new(rt, config.layer_chunk_table.clone())?;
        let init: Vec<f32> = (0..config.num_params)
            .map(|i| ((i % 11) as f32) / 8.0)
            .collect();
        let params = vec![init; config.num_ranks];
        Ok(Trainer {
            config,
            params,
            chained,
            iterations_done: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Iterations run so far.
    pub fn iterations_done(&self) -> usize {
        self.iterations_done
    }

    /// A rank's current parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn params(&self, rank: usize) -> &[f32] {
        &self.params[rank]
    }

    /// True if all replicas hold bit-identical parameters.
    pub fn replicas_agree(&self) -> bool {
        self.params.windows(2).all(|w| w[0] == w[1])
    }

    /// Runs one synchronous iteration: local gradients, chained C-Cube
    /// AllReduce, SGD update. Returns the number of layers whose dequeue
    /// gate opened before the collective finished (on rank 0) — the
    /// chaining activity indicator.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the runtime (cannot occur for a
    /// well-formed config).
    pub fn step(&mut self) -> Result<usize, RuntimeError> {
        let iteration = self.iterations_done;
        let grads: Vec<Vec<f32>> = (0..self.config.num_ranks)
            .map(|r| local_gradient(&self.params[r], r, iteration))
            .collect();
        let (summed, events) = self.chained.run(grads, |_rank, _layer| {})?;
        let lr = self.config.learning_rate / self.config.num_ranks as f32;
        for (rank, total_grad) in summed.iter().enumerate() {
            for (w, g) in self.params[rank].iter_mut().zip(total_grad) {
                *w -= lr * g;
            }
        }
        self.iterations_done += 1;
        let early = events[0]
            .iter()
            .filter(|e| e.chunks_available < self.config.num_chunks as i64)
            .count();
        Ok(early)
    }

    /// Runs `n` iterations.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] encountered.
    pub fn run(&mut self, n: usize) -> Result<(), RuntimeError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }
}

/// Serial reference: the same training loop on one process, no
/// communication machinery.
pub fn serial_reference(config: &TrainerConfig, iterations: usize) -> Vec<f32> {
    let mut params: Vec<f32> = (0..config.num_params)
        .map(|i| ((i % 11) as f32) / 8.0)
        .collect();
    let lr = config.learning_rate / config.num_ranks as f32;
    for iteration in 0..iterations {
        let mut total = vec![0f32; config.num_params];
        for r in 0..config.num_ranks {
            for (t, g) in total.iter_mut().zip(local_gradient(&params, r, iteration)) {
                *t += g;
            }
        }
        for (w, g) in params.iter_mut().zip(&total) {
            *w -= lr * g;
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_stay_bit_identical_over_many_iterations() {
        let mut t = Trainer::new(TrainerConfig::small()).unwrap();
        t.run(10).unwrap();
        assert!(t.replicas_agree());
        assert_eq!(t.iterations_done(), 10);
    }

    #[test]
    fn distributed_matches_serial_reference() {
        let config = TrainerConfig::small();
        let mut t = Trainer::new(config.clone()).unwrap();
        t.run(7).unwrap();
        let reference = serial_reference(&config, 7);
        assert_eq!(t.params(0), &reference[..]);
    }

    #[test]
    fn chaining_is_active_during_training() {
        let mut t = Trainer::new(TrainerConfig {
            num_ranks: 8,
            num_params: 4096,
            num_chunks: 32,
            layer_chunk_table: (1..=32).collect(),
            learning_rate: 0.05,
        })
        .unwrap();
        let mut any_early = 0;
        for _ in 0..5 {
            any_early += t.step().unwrap();
        }
        assert!(
            any_early > 0,
            "no layer ever chained ahead of the collective"
        );
        assert!(t.replicas_agree());
    }

    #[test]
    fn eight_rank_trainer_matches_serial() {
        let config = TrainerConfig {
            num_ranks: 8,
            num_params: 1000,
            num_chunks: 10,
            layer_chunk_table: vec![1, 3, 6, 10],
            learning_rate: 0.02,
        };
        let mut t = Trainer::new(config.clone()).unwrap();
        t.run(4).unwrap();
        assert_eq!(t.params(3), &serial_reference(&config, 4)[..]);
    }

    #[test]
    fn invalid_table_is_rejected() {
        let config = TrainerConfig {
            layer_chunk_table: vec![9], // exceeds num_chunks = 8
            ..TrainerConfig::small()
        };
        assert!(Trainer::new(config).is_err());
    }
}
