//! Threaded AllReduce executors (tree and ring) with real `f32` data.

use crate::error::RuntimeError;
use crate::mailbox::Mailbox;
use crate::sync::DeviceSemaphore;
use ccube_collectives::{BinaryTree, Overlap, Rank};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Splits `n` elements into `k` contiguous ranges differing by at most
/// one element.
pub(crate) fn chunk_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    let base = n / k;
    let rem = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Which global chunks each tree carries (parity interleave, matching the
/// schedule builders).
pub(crate) fn tree_chunks(num_trees: usize, num_chunks: usize) -> Vec<Vec<usize>> {
    (0..num_trees)
        .map(|t| (t..num_chunks).step_by(num_trees).collect())
        .collect()
}

type ChunkMsg = (usize, Vec<f32>);

/// Shared state of one tree-AllReduce execution.
pub(crate) struct TreeExecState {
    pub(crate) trees: Vec<BinaryTree>,
    pub(crate) overlap: Overlap,
    pub(crate) tree_chunks: Vec<Vec<usize>>,
    /// slots[rank][chunk]: the gradient buffer, chunk-granular. The same
    /// memory serves as the gradient queue (paper §III-D: "the memory
    /// address of gradient data can also be used as the gradient queue").
    pub(crate) slots: Vec<Vec<Mutex<Vec<f32>>>>,
    /// up[(tree, child)]: mailbox child -> parent.
    pub(crate) up: HashMap<(usize, u32), Mailbox<ChunkMsg>>,
    /// down[(tree, child)]: mailbox parent -> child.
    pub(crate) down: HashMap<(usize, u32), Mailbox<ChunkMsg>>,
    /// red_done[tree]: posted by the root's reduction loop per finished
    /// chunk; the broadcast loop waits on it (all chunks up front for the
    /// baseline, per chunk for the overlapped tree).
    pub(crate) red_done: Vec<DeviceSemaphore>,
    /// enqueue[rank][tree]: the gradient queue's Enqueue Semaphore
    /// (paper Fig. 9), posted whenever a fully reduced chunk lands.
    pub(crate) enqueue: Vec<Vec<Arc<DeviceSemaphore>>>,
}

impl TreeExecState {
    pub(crate) fn new(
        trees: &[BinaryTree],
        overlap: Overlap,
        num_chunks: usize,
        mailbox_capacity: usize,
        inputs: Vec<Vec<f32>>,
    ) -> Self {
        let p = trees[0].num_ranks();
        let n = inputs[0].len();
        let ranges = chunk_ranges(n, num_chunks);
        let tc = tree_chunks(trees.len(), num_chunks);
        let slots: Vec<Vec<Mutex<Vec<f32>>>> = inputs
            .into_iter()
            .map(|buf| {
                ranges
                    .iter()
                    .map(|r| Mutex::new(buf[r.clone()].to_vec()))
                    .collect()
            })
            .collect();
        let mut up = HashMap::new();
        let mut down = HashMap::new();
        for (ti, tree) in trees.iter().enumerate() {
            for r in Rank::all(p) {
                if tree.parent(r).is_some() {
                    up.insert((ti, r.0), Mailbox::new(mailbox_capacity));
                    down.insert((ti, r.0), Mailbox::new(mailbox_capacity));
                }
            }
        }
        let red_done = (0..trees.len())
            .map(|_| DeviceSemaphore::counting(0))
            .collect();
        let enqueue = (0..p)
            .map(|_| {
                (0..trees.len())
                    .map(|_| Arc::new(DeviceSemaphore::counting(0)))
                    .collect()
            })
            .collect();
        TreeExecState {
            trees: trees.to_vec(),
            overlap,
            tree_chunks: tc,
            slots,
            up,
            down,
            red_done,
            enqueue,
        }
    }

    /// The reduction persistent kernel of rank `r` for tree `ti`.
    pub(crate) fn reduction_worker(&self, ti: usize, r: Rank) {
        let tree = &self.trees[ti];
        for &c in &self.tree_chunks[ti] {
            for &child in tree.children(r) {
                let (cc, data) = self.up[&(ti, child.0)].recv();
                debug_assert_eq!(cc, c, "in-order delivery on the uplink");
                let mut slot = self.slots[r.index()][c].lock();
                for (a, b) in slot.iter_mut().zip(&data) {
                    *a += b;
                }
            }
            match tree.parent(r) {
                Some(_) => {
                    let payload = self.slots[r.index()][c].lock().clone();
                    self.up[&(ti, r.0)].send((c, payload));
                }
                None => self.red_done[ti].post(),
            }
        }
    }

    /// The broadcast persistent kernel of rank `r` for tree `ti`.
    pub(crate) fn broadcast_worker(&self, ti: usize, r: Rank) {
        let tree = &self.trees[ti];
        let chunks = &self.tree_chunks[ti];
        if tree.parent(r).is_none() {
            // Root: gate on the reduction according to the overlap mode.
            if self.overlap == Overlap::None {
                for _ in 0..chunks.len() {
                    self.red_done[ti].wait();
                }
            }
            for &c in chunks {
                if self.overlap == Overlap::ReductionBroadcast {
                    self.red_done[ti].wait();
                }
                let payload = self.slots[r.index()][c].lock().clone();
                for &child in tree.children(r) {
                    self.down[&(ti, child.0)].send((c, payload.clone()));
                }
                self.enqueue[r.index()][ti].post();
            }
        } else {
            for &c in chunks {
                let (cc, data) = self.down[&(ti, r.0)].recv();
                debug_assert_eq!(cc, c, "in-order delivery on the downlink");
                *self.slots[r.index()][c].lock() = data.clone();
                for &child in tree.children(r) {
                    self.down[&(ti, child.0)].send((c, data.clone()));
                }
                self.enqueue[r.index()][ti].post();
            }
        }
    }

    /// Reassembles per-rank output buffers from the chunk slots.
    pub(crate) fn into_outputs(self) -> Vec<Vec<f32>> {
        self.slots
            .into_iter()
            .map(|chunks| {
                let mut buf = Vec::new();
                for slot in chunks {
                    buf.extend_from_slice(&slot.into_inner());
                }
                buf
            })
            .collect()
    }
}

fn validate_inputs(p: usize, inputs: &[Vec<f32>]) -> Result<(), RuntimeError> {
    if inputs.len() != p {
        return Err(RuntimeError::RankCountMismatch {
            expected: p,
            got: inputs.len(),
        });
    }
    let first = inputs[0].len();
    for (rank, buf) in inputs.iter().enumerate() {
        if buf.len() != first {
            return Err(RuntimeError::RaggedInputs {
                first,
                rank,
                len: buf.len(),
            });
        }
    }
    Ok(())
}

/// A threaded tree-AllReduce executor: one thread per rank per direction
/// per tree (the paper's persistent kernels), synchronized with
/// [`DeviceSemaphore`]s, computing real sums.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{DoubleBinaryTree, Overlap};
/// use ccube_runtime::TreeAllReduceRuntime;
///
/// let dt = DoubleBinaryTree::new(8).unwrap();
/// let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 8);
/// let inputs: Vec<Vec<f32>> = (0..8).map(|r| vec![(r + 1) as f32; 64]).collect();
/// let out = rt.run(inputs).unwrap();
/// assert!(out.iter().all(|o| o.iter().all(|&x| x == 36.0)));
/// ```
#[derive(Debug, Clone)]
pub struct TreeAllReduceRuntime {
    trees: Vec<BinaryTree>,
    overlap: Overlap,
    num_chunks: usize,
    mailbox_capacity: usize,
}

impl TreeAllReduceRuntime {
    /// Creates a runtime over the given trees.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty, the trees disagree on rank count, or
    /// `num_chunks` is zero.
    pub fn new(trees: Vec<BinaryTree>, overlap: Overlap, num_chunks: usize) -> Self {
        assert!(!trees.is_empty(), "need at least one tree");
        assert!(num_chunks > 0, "need at least one chunk");
        let p = trees[0].num_ranks();
        assert!(trees.iter().all(|t| t.num_ranks() == p));
        TreeAllReduceRuntime {
            trees,
            overlap,
            num_chunks,
            mailbox_capacity: crate::protocol::DEFAULT_TREE_MAILBOX_CAPACITY,
        }
    }

    /// Sets the per-edge receive-buffer capacity (default 4).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0);
        self.mailbox_capacity = capacity;
        self
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.trees[0].num_ranks()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// The logical trees.
    pub fn trees(&self) -> &[BinaryTree] {
        &self.trees
    }

    /// The overlap mode.
    pub fn overlap(&self) -> Overlap {
        self.overlap
    }

    pub(crate) fn build_state(&self, inputs: Vec<Vec<f32>>) -> Result<TreeExecState, RuntimeError> {
        validate_inputs(self.num_ranks(), &inputs)?;
        Ok(TreeExecState::new(
            &self.trees,
            self.overlap,
            self.num_chunks,
            self.mailbox_capacity,
            inputs,
        ))
    }

    /// Executes the AllReduce and returns each rank's reduced buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RankCountMismatch`] or
    /// [`RuntimeError::RaggedInputs`] for malformed inputs.
    pub fn run(&self, inputs: Vec<Vec<f32>>) -> Result<Vec<Vec<f32>>, RuntimeError> {
        let state = self.build_state(inputs)?;
        let p = self.num_ranks();
        std::thread::scope(|s| {
            for ti in 0..self.trees.len() {
                for r in Rank::all(p) {
                    let st = &state;
                    s.spawn(move || st.reduction_worker(ti, r));
                    let st = &state;
                    s.spawn(move || st.broadcast_worker(ti, r));
                }
            }
        });
        Ok(state.into_outputs())
    }
}

/// A threaded ring-AllReduce executor (Reduce-Scatter + AllGather), the
/// paper's `R` baseline, with one thread per rank.
///
/// # Examples
///
/// ```
/// use ccube_runtime::RingAllReduceRuntime;
/// let rt = RingAllReduceRuntime::new(4);
/// let inputs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 16]).collect();
/// let out = rt.run(inputs).unwrap();
/// assert!(out.iter().all(|o| o.iter().all(|&x| x == 6.0)));
/// ```
#[derive(Debug, Clone)]
pub struct RingAllReduceRuntime {
    num_ranks: usize,
    mailbox_capacity: usize,
}

impl RingAllReduceRuntime {
    /// Creates a ring runtime over `p` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 2, "ring needs at least two ranks");
        RingAllReduceRuntime {
            num_ranks: p,
            mailbox_capacity: crate::protocol::DEFAULT_RING_MAILBOX_CAPACITY,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Executes the AllReduce and returns each rank's reduced buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RankCountMismatch`] or
    /// [`RuntimeError::RaggedInputs`] for malformed inputs.
    pub fn run(&self, inputs: Vec<Vec<f32>>) -> Result<Vec<Vec<f32>>, RuntimeError> {
        validate_inputs(self.num_ranks, &inputs)?;
        let p = self.num_ranks;
        let n = inputs[0].len();
        let ranges = chunk_ranges(n, p);
        let slots: Vec<Vec<Mutex<Vec<f32>>>> = inputs
            .into_iter()
            .map(|buf| {
                ranges
                    .iter()
                    .map(|r| Mutex::new(buf[r.clone()].to_vec()))
                    .collect()
            })
            .collect();
        // mailboxes[i]: from rank i to rank (i+1) % p
        let mailboxes: Vec<Mailbox<ChunkMsg>> = (0..p)
            .map(|_| Mailbox::new(self.mailbox_capacity))
            .collect();

        let modp = |x: i64| (((x % p as i64) + p as i64) % p as i64) as usize;

        std::thread::scope(|s| {
            for r in 0..p {
                let slots = &slots;
                let mailboxes = &mailboxes;
                s.spawn(move || {
                    let pred = modp(r as i64 - 1);
                    // Reduce-Scatter: send chunk (r-s), accumulate chunk
                    // (r-s-1) received from the predecessor.
                    for step in 0..p - 1 {
                        let send_chunk = modp(r as i64 - step as i64);
                        let payload = slots[r][send_chunk].lock().clone();
                        mailboxes[r].send((send_chunk, payload));
                        let (c, data) = mailboxes[pred].recv();
                        debug_assert_eq!(c, modp(r as i64 - step as i64 - 1));
                        let mut slot = slots[r][c].lock();
                        for (a, b) in slot.iter_mut().zip(&data) {
                            *a += b;
                        }
                    }
                    // AllGather: circulate the fully reduced chunks.
                    for step in 0..p - 1 {
                        let send_chunk = modp(r as i64 + 1 - step as i64);
                        let payload = slots[r][send_chunk].lock().clone();
                        mailboxes[r].send((send_chunk, payload));
                        let (c, data) = mailboxes[pred].recv();
                        debug_assert_eq!(c, modp(r as i64 - step as i64));
                        *slots[r][c].lock() = data;
                    }
                });
            }
        });

        Ok(slots
            .into_iter()
            .map(|chunks| {
                let mut buf = Vec::new();
                for slot in chunks {
                    buf.extend_from_slice(&slot.into_inner());
                }
                buf
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::DoubleBinaryTree;

    fn integer_inputs(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        // Small integers sum exactly in f32, so results are bit-exact
        // regardless of reduction order.
        (0..p)
            .map(|r| {
                (0..n)
                    .map(|i| (((r as u64 * 31 + i as u64 * 7 + seed) % 13) as f32) - 6.0)
                    .collect()
            })
            .collect()
    }

    fn reference_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
        let n = inputs[0].len();
        let mut out = vec![0f32; n];
        for buf in inputs {
            for (o, x) in out.iter_mut().zip(buf) {
                *o += x;
            }
        }
        out
    }

    #[test]
    fn chunk_ranges_cover_everything() {
        let ranges = chunk_ranges(103, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 103);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn tree_chunks_interleave_by_parity() {
        let tc = tree_chunks(2, 7);
        assert_eq!(tc[0], vec![0, 2, 4, 6]);
        assert_eq!(tc[1], vec![1, 3, 5]);
    }

    #[test]
    fn single_tree_baseline_matches_reference() {
        let tree = BinaryTree::inorder(6).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::None, 5);
        let inputs = integer_inputs(6, 77, 1);
        let expect = reference_sum(&inputs);
        let out = rt.run(inputs).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn single_tree_overlapped_matches_reference() {
        let tree = BinaryTree::inorder(7).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::ReductionBroadcast, 9);
        let inputs = integer_inputs(7, 100, 2);
        let expect = reference_sum(&inputs);
        let out = rt.run(inputs).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn double_tree_overlapped_matches_reference() {
        let dt = DoubleBinaryTree::new(8).unwrap();
        let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 16);
        let inputs = integer_inputs(8, 256, 3);
        let expect = reference_sum(&inputs);
        let out = rt.run(inputs).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn ring_matches_reference() {
        for p in [2usize, 3, 5, 8] {
            let rt = RingAllReduceRuntime::new(p);
            let inputs = integer_inputs(p, 64, p as u64);
            let expect = reference_sum(&inputs);
            let out = rt.run(inputs).unwrap();
            for o in out {
                assert_eq!(o, expect);
            }
        }
    }

    #[test]
    fn buffer_shorter_than_chunk_count_still_works() {
        let tree = BinaryTree::inorder(4).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::ReductionBroadcast, 8);
        let inputs = integer_inputs(4, 5, 4); // 5 elements, 8 chunks
        let expect = reference_sum(&inputs);
        let out = rt.run(inputs).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let tree = BinaryTree::inorder(4).unwrap();
        let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::None, 2);
        assert!(matches!(
            rt.run(vec![vec![0.0; 8]; 3]),
            Err(RuntimeError::RankCountMismatch { .. })
        ));
        let mut bad = vec![vec![0.0f32; 8]; 4];
        bad[2] = vec![0.0; 7];
        assert!(matches!(
            rt.run(bad),
            Err(RuntimeError::RaggedInputs { rank: 2, .. })
        ));
    }

    #[test]
    fn tiny_mailboxes_do_not_deadlock() {
        let dt = DoubleBinaryTree::new(8).unwrap();
        let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 32)
            .with_mailbox_capacity(1);
        let inputs = integer_inputs(8, 512, 9);
        let expect = reference_sum(&inputs);
        let out = rt.run(inputs).unwrap();
        for o in out {
            assert_eq!(o, expect);
        }
    }
}
