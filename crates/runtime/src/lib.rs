//! Threaded functional AllReduce runtime for C-Cube.
//!
//! The paper implements C-Cube as CUDA **persistent kernels** with
//! device-side peer-to-peer synchronization — no host round trips — using
//! spin locks and semaphores built from atomics (`lock`/`unlock`,
//! `post`/`wait`/`check`, paper Fig. 11). This crate transliterates that
//! protocol to Rust atomics and runs it for real: one thread per "GPU",
//! per-direction worker loops (the persistent kernels), bounded mailboxes
//! as the receive buffers, and actual `f32` arithmetic for the
//! reductions.
//!
//! What this buys the reproduction:
//!
//! * **Functional correctness** — the overlapped tree and the chained
//!   C-Cube execution compute bit-identical AllReduce results on every
//!   rank (validated against a serial reference in tests and proptests).
//! * **Ordering guarantees under real concurrency** — in-order chunk
//!   delivery per tree (Observation #3) and the gradient queue's
//!   layer-gating (a layer's forward pass never starts before all of its
//!   gradient chunks arrived) are asserted on real thread interleavings,
//!   not just on the simulator's idealized timeline.
//!
//! The three sync primitives are exactly the paper's:
//!
//! * [`DeviceLock`] — `atomicCAS` spin lock with fences;
//! * [`DeviceSemaphore`] — `post` (bounded producer), `wait` (consumer),
//!   and `check` (non-consuming threshold test, used by gradient
//!   queuing's dequeue gate);
//! * [`Mailbox`] — a bounded receive buffer managed by two semaphores.
//!
//! # Examples
//!
//! ```
//! use ccube_collectives::{BinaryTree, Overlap};
//! use ccube_runtime::TreeAllReduceRuntime;
//!
//! let tree = BinaryTree::inorder(4).unwrap();
//! let rt = TreeAllReduceRuntime::new(vec![tree], Overlap::ReductionBroadcast, 4);
//! let inputs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 32]).collect();
//! let outputs = rt.run(inputs).unwrap();
//! // every rank holds the sum 0+1+2+3 = 6 in every element
//! assert!(outputs.iter().all(|o| o.iter().all(|&x| x == 6.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allreduce;
mod chained;
mod error;
mod mailbox;
pub mod protocol;
mod sync;
mod trainer;

pub use allreduce::{RingAllReduceRuntime, TreeAllReduceRuntime};
pub use chained::{ChainedRun, GradientQueue, LayerEvent};
pub use error::RuntimeError;
pub use mailbox::Mailbox;
pub use sync::{DeviceLock, DeviceSemaphore};
pub use trainer::{local_gradient, serial_reference, Trainer, TrainerConfig};

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::{
        ChainedRun, DeviceLock, DeviceSemaphore, GradientQueue, Mailbox, RingAllReduceRuntime,
        RuntimeError, Trainer, TrainerConfig, TreeAllReduceRuntime,
    };
}
