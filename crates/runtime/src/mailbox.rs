//! Bounded point-to-point mailboxes: the receive buffers of the
//! persistent-kernel protocol, managed by [`DeviceSemaphore`]s exactly as
//! the paper's §IV-B describes ("we implement semaphores … to manage the
//! receive buffers that are used for communication").

use crate::sync::DeviceSemaphore;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// A bounded FIFO channel between two worker loops.
///
/// `send` blocks while the buffer is full (`post` on the item
/// semaphore blocks at capacity); `recv` blocks while it is empty.
///
/// # Examples
///
/// ```
/// use ccube_runtime::Mailbox;
/// let mb: Mailbox<u32> = Mailbox::new(2);
/// mb.send(7);
/// assert_eq!(mb.recv(), 7);
/// ```
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: Mutex<VecDeque<T>>,
    items: DeviceSemaphore,
}

impl<T> Mailbox<T> {
    /// Creates a mailbox with room for `capacity` in-flight items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            items: DeviceSemaphore::new(0, capacity as i64),
        }
    }

    /// Delivers an item, blocking while the buffer is full.
    pub fn send(&self, item: T) {
        // Reserve a slot first (post blocks at capacity), then publish the
        // payload. The queue can momentarily hold fewer items than the
        // semaphore count observes, so recv spins on the queue after its
        // wait succeeds.
        self.items.post();
        self.queue.lock().push_back(item);
    }

    /// Takes the next item, blocking while the buffer is empty.
    pub fn recv(&self) -> T {
        self.items.wait();
        loop {
            if let Some(item) = self.queue.lock().pop_front() {
                return item;
            }
            std::thread::yield_now();
        }
    }

    /// Number of buffered items (racy snapshot).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True if no items are buffered (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_is_preserved() {
        let mb = Mailbox::new(16);
        for i in 0..10 {
            mb.send(i);
        }
        for i in 0..10 {
            assert_eq!(mb.recv(), i);
        }
    }

    #[test]
    fn concurrent_producer_consumer() {
        let mb: Arc<Mailbox<usize>> = Arc::new(Mailbox::new(4));
        std::thread::scope(|s| {
            let tx = Arc::clone(&mb);
            s.spawn(move || {
                for i in 0..1000 {
                    tx.send(i);
                }
            });
            for i in 0..1000 {
                assert_eq!(mb.recv(), i);
            }
        });
        assert!(mb.is_empty());
    }

    #[test]
    fn bounded_capacity_backpressures() {
        let mb: Arc<Mailbox<usize>> = Arc::new(Mailbox::new(1));
        std::thread::scope(|s| {
            let tx = Arc::clone(&mb);
            let t = s.spawn(move || {
                tx.send(1);
                tx.send(2); // blocks until the first is consumed
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert!(mb.len() <= 2);
            assert_eq!(mb.recv(), 1);
            assert_eq!(mb.recv(), 2);
            t.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Mailbox<u8> = Mailbox::new(0);
    }
}
