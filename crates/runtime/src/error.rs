//! Runtime error types.

use std::error::Error;
use std::fmt;

/// Errors from the threaded runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The number of input buffers does not match the rank count.
    RankCountMismatch {
        /// Ranks the runtime was built for.
        expected: usize,
        /// Input buffers supplied.
        got: usize,
    },
    /// Input buffers have differing lengths.
    RaggedInputs {
        /// Length of rank 0's buffer.
        first: usize,
        /// The offending rank.
        rank: usize,
        /// That rank's length.
        len: usize,
    },
    /// The layer-chunk table is inconsistent with the chunk count.
    InvalidLayerTable(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RankCountMismatch { expected, got } => {
                write!(f, "expected {expected} input buffers, got {got}")
            }
            RuntimeError::RaggedInputs { first, rank, len } => write!(
                f,
                "input buffers must share a length: rank 0 has {first}, rank {rank} has {len}"
            ),
            RuntimeError::InvalidLayerTable(msg) => {
                write!(f, "invalid layer-chunk table: {msg}")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::RankCountMismatch {
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('4'));
    }
}
