//! The executor protocol parameters, extracted so the static analyzer
//! models exactly what the runtime runs.
//!
//! The threaded executors synchronize through three mechanisms (paper
//! Fig. 9–11): bounded per-`(tree, edge)` [`Mailbox`](crate::Mailbox)es
//! between neighboring ranks, the `red_done` semaphore from each root's
//! reduction loop to its broadcast loop, and the gradient queue's
//! enqueue/dequeue semaphores. Deadlock-freedom therefore depends on the
//! mailbox capacities: a producer blocks once `capacity` messages are
//! in flight, and only the receiving worker's progress frees a slot.
//!
//! `ccube_collectives::analyze` rebuilds this wait-for structure
//! statically (lint `CC002`); the capacities it assumes must be the ones
//! the executors actually use, which is why they live here instead of as
//! literals inside the executors.

/// Receive-buffer capacity of each tree executor mailbox (one bounded
/// queue per `(tree, child)` uplink and downlink;
/// [`TreeAllReduceRuntime`](crate::TreeAllReduceRuntime) default,
/// overridable with `with_mailbox_capacity`).
pub const DEFAULT_TREE_MAILBOX_CAPACITY: usize = 4;

/// Receive-buffer capacity of each ring executor mailbox (one bounded
/// queue per ring edge, shared by the Reduce-Scatter and AllGather
/// phases; [`RingAllReduceRuntime`](crate::RingAllReduceRuntime)).
pub const DEFAULT_RING_MAILBOX_CAPACITY: usize = 2;
