//! Error types for topology construction and routing.

use crate::graph::GpuId;
use std::error::Error;
use std::fmt;

/// Errors produced when building topologies or resolving routes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A GPU id referenced a node outside the topology.
    UnknownGpu {
        /// The offending id.
        gpu: GpuId,
        /// Number of GPUs actually present.
        num_gpus: usize,
    },
    /// A channel was requested between a GPU and itself.
    SelfLoop(GpuId),
    /// No route (direct, detour, or host) exists between two GPUs.
    NoRoute {
        /// Source GPU.
        src: GpuId,
        /// Destination GPU.
        dst: GpuId,
    },
    /// A builder parameter was invalid (empty topology, zero radix, ...).
    InvalidParameter(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownGpu { gpu, num_gpus } => {
                write!(f, "unknown gpu {gpu} in topology with {num_gpus} gpus")
            }
            TopologyError::SelfLoop(gpu) => {
                write!(f, "channel endpoints must differ, got self-loop on {gpu}")
            }
            TopologyError::NoRoute { src, dst } => {
                write!(f, "no route from {src} to {dst}")
            }
            TopologyError::InvalidParameter(msg) => {
                write!(f, "invalid topology parameter: {msg}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        let e = TopologyError::NoRoute {
            src: GpuId(2),
            dst: GpuId(4),
        };
        assert_eq!(e.to_string(), "no route from gpu2 to gpu4");
        let e = TopologyError::SelfLoop(GpuId(1));
        assert!(e.to_string().contains("self-loop"));
    }
}
