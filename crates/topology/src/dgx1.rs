//! The NVIDIA DGX-1 (V100) hybrid mesh-cube topology.
//!
//! This is the 8-GPU system the paper uses for its proof of concept
//! (§V-A): each V100 has 6 NVLinks at 25 GB/s. The GPUs form two
//! fully-connected quads {0,1,2,3} and {4,5,6,7} plus four cross-quad
//! links, with some pairs connected by *two* NVLinks. The doubled pairs —
//! in particular GPU2–GPU3 and GPU6–GPU7 (paper Fig. 10) — are what make
//! the overlapped **double** tree possible: the two trees of the two-tree
//! algorithm would otherwise have to share a channel in opposite roles
//! (uplink of one tree = downlink of the other), which breaks overlap.
//!
//! Pairs in different quads without a direct cross link (e.g. GPU2→GPU4)
//! would fall back to the PCIe/host path; the paper's detour routes avoid
//! this by forwarding through an intermediate GPU (see
//! [`Router`](crate::Router)).

use crate::channel::ChannelClass;
use crate::error::TopologyError;
use crate::graph::{GpuId, Topology, TopologyBuilder};
use crate::units::{Bandwidth, Seconds};

/// Number of GPUs in a DGX-1.
pub const DGX1_NUM_GPUS: usize = 8;

/// Bidirectional NVLink pairs of the DGX-1 hybrid mesh-cube, with link
/// multiplicity. Each GPU has exactly 6 NVLinks.
///
/// Doubled pairs include GPU2–GPU3 and GPU6–GPU7, matching the paper's
/// Fig. 10 which relies on those extra channels for the 2-tree C-Cube.
const DGX1_LINKS: &[(u32, u32, usize)] = &[
    // quad {0,1,2,3}: fully connected
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (1, 2, 2),
    (1, 3, 1),
    (2, 3, 2),
    // quad {4,5,6,7}: fully connected (mirror of the first quad)
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 2),
    // cross-quad links
    (0, 4, 2),
    (1, 5, 2),
    (2, 6, 1),
    (3, 7, 1),
];

/// Configuration knobs for the DGX-1 model.
#[derive(Debug, Clone, PartialEq)]
pub struct Dgx1Config {
    /// Per-NVLink bandwidth. The V100 NVLink2 provides 25 GB/s per
    /// direction per link.
    pub nvlink_bandwidth: Bandwidth,
    /// Per-message NVLink latency (the α term).
    pub nvlink_latency: Seconds,
    /// Whether to also add the PCIe/host-bridge channels between all GPU
    /// pairs (the slow path the paper's detour routes avoid).
    pub include_host_bridge: bool,
    /// PCIe effective bandwidth (shared host path).
    pub host_bandwidth: Bandwidth,
    /// PCIe + host round latency.
    pub host_latency: Seconds,
}

impl Default for Dgx1Config {
    fn default() -> Self {
        Dgx1Config {
            nvlink_bandwidth: Bandwidth::gb_per_sec(25.0),
            nvlink_latency: Seconds::from_micros(1.5),
            include_host_bridge: true,
            // PCIe Gen3 x16 is ~16 GB/s raw but the through-host P2P path
            // achieves far less in practice; model it at 8 GB/s with a much
            // larger latency.
            host_bandwidth: Bandwidth::gb_per_sec(8.0),
            host_latency: Seconds::from_micros(10.0),
        }
    }
}

/// Builds the DGX-1 topology with default V100 parameters.
///
/// # Examples
///
/// ```
/// use ccube_topology::{dgx1, GpuId};
/// let topo = dgx1();
/// // Every V100 has exactly 6 NVLinks.
/// for g in 0..8 {
///     let nv = topo
///         .outgoing(GpuId(g))
///         .iter()
///         .filter(|&&c| topo.channel(c).class() == ccube_topology::ChannelClass::NvLink)
///         .count();
///     assert_eq!(nv, 6);
/// }
/// ```
pub fn dgx1() -> Topology {
    dgx1_with(&Dgx1Config::default()).expect("default DGX-1 config is valid")
}

/// Builds the DGX-1 topology with explicit parameters.
///
/// # Errors
///
/// Returns an error only if the configuration produces an invalid graph
/// (not possible with the fixed link table; kept for API symmetry).
pub fn dgx1_with(config: &Dgx1Config) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new("dgx1", DGX1_NUM_GPUS);
    for &(a, bb, mult) in DGX1_LINKS {
        for _ in 0..mult {
            b.bidirectional(
                GpuId(a),
                GpuId(bb),
                config.nvlink_bandwidth,
                config.nvlink_latency,
                ChannelClass::NvLink,
            )?;
        }
    }
    if config.include_host_bridge {
        // The host bridge gives all-to-all reachability through PCIe+CPU.
        for a in 0..DGX1_NUM_GPUS as u32 {
            for bb in (a + 1)..DGX1_NUM_GPUS as u32 {
                b.bidirectional(
                    GpuId(a),
                    GpuId(bb),
                    config.host_bandwidth,
                    config.host_latency,
                    ChannelClass::HostBridge,
                )?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvlink_degree(topo: &Topology, g: u32) -> usize {
        topo.outgoing(GpuId(g))
            .iter()
            .filter(|&&c| topo.channel(c).class() == ChannelClass::NvLink)
            .count()
    }

    #[test]
    fn every_gpu_has_six_nvlinks() {
        let topo = dgx1();
        for g in 0..8 {
            assert_eq!(nvlink_degree(&topo, g), 6, "gpu{g}");
        }
    }

    #[test]
    fn total_nvlink_channel_count() {
        let topo = dgx1();
        let nv = topo
            .channels()
            .iter()
            .filter(|c| c.class() == ChannelClass::NvLink)
            .count();
        // 24 bidirectional NVLinks -> 48 unidirectional channels.
        assert_eq!(nv, 48);
    }

    #[test]
    fn paper_fig10_doubled_pairs_exist() {
        let topo = dgx1();
        // GPU2-GPU3 and GPU6-GPU7 have two separate bidirectional channels
        // (paper §IV-A and footnote 5).
        for (a, b) in [(2, 3), (6, 7)] {
            let direct: Vec<_> = topo
                .channels_between(GpuId(a), GpuId(b))
                .into_iter()
                .filter(|&c| topo.channel(c).class() == ChannelClass::NvLink)
                .collect();
            assert_eq!(direct.len(), 2, "gpu{a}-gpu{b}");
        }
    }

    #[test]
    fn paper_fig10_missing_cross_links() {
        let topo = dgx1();
        // GPU2 and GPU4 are not directly connected by NVLink (paper's
        // detour example routes 2 -> 0 -> 4).
        let direct: Vec<_> = topo
            .channels_between(GpuId(2), GpuId(4))
            .into_iter()
            .filter(|&c| topo.channel(c).class() == ChannelClass::NvLink)
            .collect();
        assert!(direct.is_empty());
    }

    #[test]
    fn quads_are_fully_connected() {
        let topo = dgx1();
        for quad in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            for &a in &quad {
                for &b in &quad {
                    if a != b {
                        let nv = topo
                            .channels_between(GpuId(a), GpuId(b))
                            .into_iter()
                            .filter(|&c| topo.channel(c).class() == ChannelClass::NvLink)
                            .count();
                        assert!(nv >= 1, "gpu{a}-gpu{b} missing");
                    }
                }
            }
        }
    }

    #[test]
    fn host_bridge_gives_full_reachability() {
        let topo = dgx1();
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a != b {
                    assert!(topo.has_direct(GpuId(a), GpuId(b)));
                }
            }
        }
    }

    #[test]
    fn host_bridge_can_be_disabled() {
        let cfg = Dgx1Config {
            include_host_bridge: false,
            ..Dgx1Config::default()
        };
        let topo = dgx1_with(&cfg).unwrap();
        assert_eq!(topo.channels().len(), 48);
        assert!(!topo.has_direct(GpuId(2), GpuId(4)));
    }

    #[test]
    fn nvlink_aggregate_bandwidth_is_150_gbps() {
        // Paper §V-A: 6 NVLinks x 25 GB/s = 150 GB/s per GPU.
        let cfg = Dgx1Config {
            include_host_bridge: false,
            ..Dgx1Config::default()
        };
        let topo = dgx1_with(&cfg).unwrap();
        let bw = topo.injection_bandwidth(GpuId(0));
        assert!((bw.as_gb_per_sec() - 150.0).abs() < 1e-6);
    }
}
