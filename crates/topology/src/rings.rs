//! Edge-disjoint Hamiltonian ring discovery.
//!
//! NCCL's ring AllReduce on the DGX-1 does not run one ring — it
//! decomposes the NVLink graph into several edge-disjoint Hamiltonian
//! cycles and runs a ring on each (in both directions), which is how it
//! reaches the aggregate NVLink bandwidth. This module finds such a
//! decomposition by backtracking search over the link multiplicities;
//! the DGX-1's 24 NVLinks decompose into exactly three 8-link cycles.

use crate::channel::ChannelClass;
use crate::graph::{GpuId, Topology};
use std::collections::HashMap;

type Caps = HashMap<(u32, u32), u32>;

fn pair(a: GpuId, b: GpuId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Extracts the undirected NVLink multiplicities of a topology.
fn link_capacities(topo: &Topology) -> Caps {
    let mut caps: Caps = HashMap::new();
    for ch in topo.channels() {
        if ch.class() == ChannelClass::NvLink {
            *caps.entry(pair(ch.src(), ch.dst())).or_insert(0) += 1;
        }
    }
    // Each bidirectional link contributed two unidirectional channels.
    for v in caps.values_mut() {
        *v /= 2;
    }
    caps
}

/// Finds up to `count` Hamiltonian cycles that are pairwise edge-disjoint
/// (respecting link multiplicities: a doubled NVLink can carry two
/// cycles). Returns as many as exist, possibly fewer than requested.
///
/// Cycles start at `gpu0` and are returned as node sequences of length
/// `num_gpus` (the closing edge back to the start is implicit).
///
/// # Examples
///
/// ```
/// use ccube_topology::{dgx1, disjoint_rings};
/// let topo = dgx1();
/// let rings = disjoint_rings(&topo, 3);
/// // The DGX-1's 24 NVLinks decompose into three Hamiltonian cycles.
/// assert_eq!(rings.len(), 3);
/// ```
pub fn disjoint_rings(topo: &Topology, count: usize) -> Vec<Vec<GpuId>> {
    let n = topo.num_gpus();
    if n < 3 || count == 0 {
        return Vec::new();
    }
    let mut caps = link_capacities(topo);
    let mut best: Vec<Vec<GpuId>> = Vec::new();
    // Greedy-with-backtracking: find the largest k <= count for which a
    // disjoint set exists, preferring to keep every cycle found.
    for k in (1..=count).rev() {
        let mut caps_try = caps.clone();
        let mut acc = Vec::new();
        if solve(topo, &mut caps_try, k, &mut acc) {
            best = acc;
            caps = caps_try;
            break;
        }
    }
    let _ = caps;
    best
}

/// Tries to place `k` more disjoint cycles; on success extends `acc`.
fn solve(topo: &Topology, caps: &mut Caps, k: usize, acc: &mut Vec<Vec<GpuId>>) -> bool {
    if k == 0 {
        return true;
    }
    let n = topo.num_gpus();
    let mut path = vec![GpuId(0)];
    let mut visited = vec![false; n];
    visited[0] = true;
    extend_cycle(topo, caps, &mut path, &mut visited, k, acc)
}

fn extend_cycle(
    topo: &Topology,
    caps: &mut Caps,
    path: &mut Vec<GpuId>,
    visited: &mut Vec<bool>,
    k: usize,
    acc: &mut Vec<Vec<GpuId>>,
) -> bool {
    let n = topo.num_gpus();
    let cur = *path.last().expect("path never empty");
    if path.len() == n {
        // Close the cycle back to gpu0.
        let close = pair(cur, GpuId(0));
        if caps.get(&close).copied().unwrap_or(0) == 0 {
            return false;
        }
        *caps.get_mut(&close).expect("checked above") -= 1;
        acc.push(path.clone());
        if solve(topo, caps, k - 1, acc) {
            return true;
        }
        acc.pop();
        *caps.get_mut(&close).expect("restored") += 1;
        return false;
    }
    let mut nexts: Vec<GpuId> = topo
        .neighbors(cur)
        .into_iter()
        .filter(|&nb| !visited[nb.index()] && caps.get(&pair(cur, nb)).copied().unwrap_or(0) > 0)
        .collect();
    nexts.sort();
    for nb in nexts {
        let key = pair(cur, nb);
        *caps.get_mut(&key).expect("filtered above") -= 1;
        visited[nb.index()] = true;
        path.push(nb);
        if extend_cycle(topo, caps, path, visited, k, acc) {
            return true;
        }
        path.pop();
        visited[nb.index()] = false;
        *caps.get_mut(&key).expect("restored") += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgx1::dgx1;

    fn assert_valid_cycle(topo: &Topology, cycle: &[GpuId]) {
        assert_eq!(cycle.len(), topo.num_gpus());
        let mut seen = vec![false; topo.num_gpus()];
        for g in cycle {
            assert!(!seen[g.index()], "{g} repeated");
            seen[g.index()] = true;
        }
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            let direct = topo
                .channels_between(a, b)
                .into_iter()
                .any(|c| topo.channel(c).class() == ChannelClass::NvLink);
            assert!(direct, "{a}-{b} is not an NVLink");
        }
    }

    #[test]
    fn dgx1_decomposes_into_three_rings() {
        let topo = dgx1();
        let rings = disjoint_rings(&topo, 3);
        assert_eq!(rings.len(), 3);
        for r in &rings {
            assert_valid_cycle(&topo, r);
        }
    }

    #[test]
    fn rings_respect_link_multiplicities() {
        let topo = dgx1();
        let rings = disjoint_rings(&topo, 3);
        let mut used: Caps = HashMap::new();
        for r in &rings {
            for i in 0..r.len() {
                *used.entry(pair(r[i], r[(i + 1) % r.len()])).or_insert(0) += 1;
            }
        }
        let caps = link_capacities(&topo);
        for (k, &u) in &used {
            assert!(
                u <= caps.get(k).copied().unwrap_or(0),
                "pair {k:?} oversubscribed: {u}"
            );
        }
        // Three 8-link cycles consume all 24 NVLinks.
        let total: u32 = used.values().sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn requesting_more_rings_returns_what_exists() {
        let topo = dgx1();
        let rings = disjoint_rings(&topo, 10);
        assert_eq!(rings.len(), 3, "only three disjoint cycles exist");
    }

    #[test]
    fn tiny_topologies_yield_nothing() {
        use crate::graph::TopologyBuilder;
        use crate::units::{Bandwidth, Seconds};
        let mut b = TopologyBuilder::new("pair", 2);
        b.bidirectional(
            GpuId(0),
            GpuId(1),
            Bandwidth::gb_per_sec(25.0),
            Seconds::from_micros(1.0),
            ChannelClass::NvLink,
        )
        .unwrap();
        let topo = b.build().unwrap();
        assert!(disjoint_rings(&topo, 2).is_empty());
    }
}
