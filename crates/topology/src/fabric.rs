//! Switch/port-level fabric graph for the componentized network model.
//!
//! The base [`Topology`] abstracts the scale-out interconnect as NIC
//! channels into an ideal, non-blocking switch fabric. This module derives
//! the *explicit* fabric behind those channels: leaf switches with
//! ingress/egress ports per attached node, and — when the configured radix
//! is smaller than the node count — uplink ports toward a spine crossbar,
//! optionally oversubscribed. The simulator's `SwitchFabric` network model
//! schedules transfers on these ports instead of on plain channels, which
//! makes fan-in serialization and uplink congestion visible.
//!
//! Two derivations exist:
//!
//! * **Switched** — for all-NIC topologies built by
//!   [`hierarchical`](crate::hierarchical) / [`nvswitch`](crate::nvswitch):
//!   nodes are grouped onto leaf switches of `radix` endpoints each; an
//!   injection channel becomes an ingress port on the source's leaf, an
//!   ejection channel an egress port on the destination's leaf, and
//!   cross-leaf messages additionally occupy the two leaves' uplink ports.
//! * **Degenerate** — for direct topologies ([`dgx1`](crate::dgx1),
//!   [`torus2d`](crate::torus2d)): one switch per GPU and exactly one port
//!   per channel, so the fabric is structurally identical to the channel
//!   graph. This is what makes the passthrough-equivalence contract easy
//!   to state: with radix ≥ nodes every fabric degenerates to one port per
//!   channel with the channel's own bandwidth and latency.

use crate::channel::{ChannelClass, ChannelId};
use crate::graph::{GpuId, Topology};
use crate::units::{Bandwidth, Seconds};
use std::fmt;

/// Identifier of a switch in a [`FabricGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Identifier of a port in a [`FabricGraph`]. Dense, usable as an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

impl PortId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// The role a port plays on its switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Endpoint-facing receive side: traffic entering the switch from a
    /// node's injection channel.
    Ingress,
    /// Endpoint-facing transmit side: traffic leaving the switch onto a
    /// node's ejection channel.
    Egress,
    /// Leaf-to-spine transmit port (shared by all cross-leaf senders on
    /// the leaf).
    UplinkUp,
    /// Spine-to-leaf receive port (shared by all cross-leaf receivers on
    /// the leaf).
    UplinkDown,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::Ingress => write!(f, "in"),
            PortKind::Egress => write!(f, "out"),
            PortKind::UplinkUp => write!(f, "up"),
            PortKind::UplinkDown => write!(f, "down"),
        }
    }
}

/// A single unidirectional switch port: one schedulable resource in the
/// `SwitchFabric` network model.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricPort {
    id: PortId,
    switch: SwitchId,
    kind: PortKind,
    /// The topology channel this port carries, for endpoint ports; uplink
    /// ports carry traffic from many channels and have none.
    channel: Option<ChannelId>,
    /// For uplink ports: the uplink slot on the leaf (`0..k`). Endpoint
    /// ports have none.
    uplink: Option<u32>,
    bandwidth: Bandwidth,
    latency: Seconds,
}

impl FabricPort {
    /// The port's id within its fabric.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// The switch this port belongs to.
    pub fn switch(&self) -> SwitchId {
        self.switch
    }

    /// The port's role.
    pub fn kind(&self) -> PortKind {
        self.kind
    }

    /// The topology channel this port carries (endpoint ports only).
    pub fn channel(&self) -> Option<ChannelId> {
        self.channel
    }

    /// The uplink slot this port occupies on its leaf (uplink ports
    /// only): the up/down pair of slot `j` attaches to spine `j % S`.
    pub fn uplink(&self) -> Option<u32> {
        self.uplink
    }

    /// The port's peak bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The port's fixed per-message latency.
    pub fn latency(&self) -> Seconds {
        self.latency
    }

    /// A short, stable label for traces (e.g. `"sw0.inc3"`, `"sw2.up0"`).
    pub fn label(&self) -> String {
        match (self.kind, self.channel, self.uplink) {
            (k, Some(c), _) => format!("{}.{}c{}", self.switch, k, c.0),
            (k, None, Some(j)) => format!("{}.{}{}", self.switch, k, j),
            (k, None, None) => format!("{}.{}", self.switch, k),
        }
    }
}

/// A switch: a set of ports plus its endpoint radix.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSwitch {
    id: SwitchId,
    ports: Vec<PortId>,
    /// Nodes attached to this switch (empty for degenerate per-GPU
    /// switches with no NIC channels).
    nodes: Vec<GpuId>,
}

impl FabricSwitch {
    /// The switch's id within its fabric.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Ids of all ports on this switch, in creation order.
    pub fn ports(&self) -> &[PortId] {
        &self.ports
    }

    /// Nodes attached to this switch.
    pub fn nodes(&self) -> &[GpuId] {
        &self.nodes
    }
}

/// Configuration for deriving a [`FabricGraph`] from a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Endpoints per leaf switch. `None` places every node on one switch
    /// (the passthrough shape: no uplinks, one port per channel).
    pub radix: Option<usize>,
    /// Uplink oversubscription ratio: an uplink's bandwidth is the sum of
    /// its leaf's ingress bandwidths divided by this. `1.0` is a fully
    /// provisioned (rearrangeably non-blocking) fabric.
    pub oversubscription: f64,
    /// Extra fixed latency charged per uplink port traversal. The
    /// endpoint ports inherit their channel's latency, so zero here keeps
    /// end-to-end latency identical to the channel approximation.
    pub uplink_latency: Seconds,
    /// Number of spine switches behind the leaves. Uplink slot `j` of
    /// every leaf attaches to spine `j % spines`, so a cross-leaf message
    /// must use the same slot on both leaves to stay on one spine.
    pub spines: usize,
    /// Uplink up/down pairs per leaf (`k`). The leaf's aggregate uplink
    /// capacity is fixed by the oversubscription ratio and split evenly
    /// across the `k` slots, so `k = 1` reproduces the single-uplink
    /// fabric exactly and the end-to-end duration of a transfer is
    /// independent of which slot carries it.
    pub uplinks_per_leaf: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            radix: None,
            oversubscription: 1.0,
            uplink_latency: Seconds::ZERO,
            spines: 1,
            uplinks_per_leaf: 1,
        }
    }
}

impl FabricConfig {
    /// The passthrough configuration: one switch, no uplinks, zero extra
    /// latency. Under this shape the fabric must reproduce the channel
    /// approximation exactly.
    pub fn passthrough() -> Self {
        FabricConfig::default()
    }
}

/// The explicit switch/port-level graph behind a [`Topology`].
///
/// # Examples
///
/// ```
/// use ccube_topology::{hierarchical, FabricConfig, FabricGraph};
/// let topo = hierarchical(16);
/// // Passthrough: a single leaf switch, one port per NIC channel.
/// let fab = FabricGraph::from_topology(&topo, &FabricConfig::passthrough());
/// assert_eq!(fab.num_switches(), 1);
/// assert_eq!(fab.num_ports(), topo.channels().len());
/// // Radix 4: four leaves plus uplink ports toward the spine crossbar.
/// let cfg = FabricConfig { radix: Some(4), ..FabricConfig::default() };
/// let fab = FabricGraph::from_topology(&topo, &cfg);
/// assert_eq!(fab.num_switches(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FabricGraph {
    switches: Vec<FabricSwitch>,
    ports: Vec<FabricPort>,
    /// Base port path per channel, indexed by channel id.
    ports_of_channel: Vec<Vec<PortId>>,
    /// Leaf switch of each node (switched fabrics only; in degenerate
    /// fabrics node `i` maps to switch `i`).
    leaf_of_node: Vec<SwitchId>,
    /// Per-switch uplink transmit ports by slot, empty if the fabric has
    /// no spine level.
    uplink_up: Vec<Vec<PortId>>,
    /// Per-switch uplink receive ports by slot, empty if the fabric has
    /// no spine level.
    uplink_down: Vec<Vec<PortId>>,
    oversubscription: f64,
    spines: usize,
    uplinks_per_leaf: usize,
    switched: bool,
}

impl FabricGraph {
    /// Derives the fabric behind `topo` under `cfg`.
    ///
    /// All-NIC topologies (from [`hierarchical`](crate::hierarchical) /
    /// [`nvswitch`](crate::nvswitch), whose channel layout is
    /// injection `2i` / ejection `2i+1`) become leaf switches of
    /// `cfg.radix` endpoints with uplinks when more than one leaf exists;
    /// anything else becomes the degenerate one-port-per-channel fabric.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.oversubscription` is not positive, a requested
    /// radix is zero, or the spine/uplink counts are zero.
    pub fn from_topology(topo: &Topology, cfg: &FabricConfig) -> FabricGraph {
        assert!(
            cfg.oversubscription > 0.0 && cfg.oversubscription.is_finite(),
            "oversubscription ratio must be positive and finite"
        );
        if let Some(r) = cfg.radix {
            assert!(r > 0, "leaf radix must be positive");
        }
        assert!(cfg.spines > 0, "spine count must be positive");
        assert!(
            cfg.uplinks_per_leaf > 0,
            "uplinks per leaf must be positive"
        );
        if is_nic_layout(topo) {
            build_switched(topo, cfg)
        } else {
            build_degenerate(topo)
        }
    }

    /// All switches, indexed by [`SwitchId::index`].
    pub fn switches(&self) -> &[FabricSwitch] {
        &self.switches
    }

    /// All ports, indexed by [`PortId::index`].
    pub fn ports(&self) -> &[FabricPort] {
        &self.ports
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn port(&self, id: PortId) -> &FabricPort {
        &self.ports[id.index()]
    }

    /// The switch with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn switch(&self, id: SwitchId) -> &FabricSwitch {
        &self.switches[id.index()]
    }

    /// The leaf switch a node is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn leaf_of(&self, node: GpuId) -> SwitchId {
        self.leaf_of_node[node.index()]
    }

    /// The endpoint ports that carry `channel` (uplink ports excluded).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn ports_for_channel(&self, channel: ChannelId) -> &[PortId] {
        &self.ports_of_channel[channel.index()]
    }

    /// True if this fabric has an explicit spine level (uplink ports).
    pub fn has_uplinks(&self) -> bool {
        self.uplink_up.iter().any(|u| !u.is_empty())
    }

    /// The configured uplink oversubscription ratio.
    pub fn oversubscription(&self) -> f64 {
        self.oversubscription
    }

    /// Number of spine switches behind the leaves.
    pub fn num_spines(&self) -> usize {
        self.spines
    }

    /// Uplink up/down pairs per leaf (`k`); `1` for fabrics without an
    /// explicit spine level.
    pub fn uplinks_per_leaf(&self) -> usize {
        self.uplinks_per_leaf
    }

    /// The spine switch that uplink slot `uplink` attaches to.
    pub fn spine_of_uplink(&self, uplink: u32) -> u32 {
        uplink % self.spines.max(1) as u32
    }

    /// The leaf-to-spine transmit ports of `leaf`, by uplink slot (empty
    /// when the fabric has no spine level).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn uplinks_up(&self, leaf: SwitchId) -> &[PortId] {
        &self.uplink_up[leaf.index()]
    }

    /// The spine-to-leaf receive ports of `leaf`, by uplink slot (empty
    /// when the fabric has no spine level).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn uplinks_down(&self, leaf: SwitchId) -> &[PortId] {
        &self.uplink_down[leaf.index()]
    }

    /// Expands a transfer's channel path into the ordered port path it
    /// occupies in this fabric. Endpoint ports come from the channels
    /// themselves; when two consecutive channels attach to different leaf
    /// switches, one of the sender leaf's uplink-up ports and the
    /// receiver leaf's uplink-down port of the *same slot* are inserted
    /// between them (both attach to the same spine, and the spine
    /// crossbar itself is non-blocking and contributes no port).
    ///
    /// With `k > 1` uplinks per leaf the slot is chosen by hash striping
    /// on the crossing's source channel — the static default that the
    /// simulator's `Hash` uplink policy keeps and its adaptive policies
    /// revise at grant time. `k = 1` always picks slot 0, reproducing the
    /// single-uplink route exactly.
    ///
    /// # Panics
    ///
    /// Panics if any channel id is out of range.
    pub fn port_route(&self, path: &[ChannelId]) -> Vec<PortId> {
        let mut out = Vec::new();
        for (k, &c) in path.iter().enumerate() {
            out.extend_from_slice(&self.ports_of_channel[c.index()]);
            if !self.switched || k + 1 >= path.len() {
                continue;
            }
            let here = match self.ports_of_channel[c.index()].last() {
                Some(&p) => self.ports[p.index()].switch,
                None => continue,
            };
            let next = match self.ports_of_channel[path[k + 1].index()].first() {
                Some(&p) => self.ports[p.index()].switch,
                None => continue,
            };
            if here != next {
                let ups = &self.uplink_up[here.index()];
                let downs = &self.uplink_down[next.index()];
                if !ups.is_empty() && !downs.is_empty() {
                    // NIC-layout injection channels are `2i` for source
                    // node `i`, so striping on `c.0 / 2` spreads sources
                    // round-robin across the uplink slots.
                    let slot = (c.0 / 2) as usize % ups.len().min(downs.len());
                    out.push(ups[slot]);
                    out.push(downs[slot]);
                }
            }
        }
        out
    }

    /// True if every channel maps to exactly one port with the channel's
    /// own bandwidth and latency, and no uplinks exist — the structural
    /// precondition for the equivalence contract with the channel
    /// approximation.
    pub fn is_passthrough(&self, topo: &Topology) -> bool {
        if self.has_uplinks() || self.ports.len() != topo.channels().len() {
            return false;
        }
        topo.channels().iter().all(|ch| {
            let ports = self.ports_for_channel(ch.id());
            ports.len() == 1 && {
                let p = &self.ports[ports[0].index()];
                p.bandwidth == ch.bandwidth() && p.latency == ch.latency()
            }
        })
    }
}

impl fmt::Display for FabricGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fabric ({} switches, {} ports{})",
            self.switches.len(),
            self.ports.len(),
            if self.has_uplinks() {
                format!(", {}x oversub", self.oversubscription)
            } else {
                String::new()
            }
        )
    }
}

/// True if `topo` follows the hierarchical NIC channel layout: all
/// channels NIC-class, two per node, injection `2i` sourced at node `i`
/// and ejection `2i+1` sunk at node `i`.
fn is_nic_layout(topo: &Topology) -> bool {
    let n = topo.num_gpus();
    if topo.channels().len() != 2 * n {
        return false;
    }
    topo.channels().iter().enumerate().all(|(idx, ch)| {
        ch.class() == ChannelClass::Nic
            && if idx % 2 == 0 {
                ch.src().index() * 2 == idx
            } else {
                ch.dst().index() * 2 + 1 == idx
            }
    })
}

fn build_switched(topo: &Topology, cfg: &FabricConfig) -> FabricGraph {
    let n = topo.num_gpus();
    let radix = cfg.radix.unwrap_or(n).max(1);
    let num_leaves = n.div_ceil(radix);
    let mut ports: Vec<FabricPort> = Vec::new();
    let mut ports_of_channel: Vec<Vec<PortId>> = vec![Vec::new(); topo.channels().len()];
    let mut switches: Vec<FabricSwitch> = Vec::new();
    let mut leaf_of_node: Vec<SwitchId> = Vec::with_capacity(n);
    let mut uplink_up: Vec<Vec<PortId>> = Vec::with_capacity(num_leaves);
    let mut uplink_down: Vec<Vec<PortId>> = Vec::with_capacity(num_leaves);
    for leaf in 0..num_leaves {
        let sid = SwitchId(leaf as u32);
        let members: Vec<GpuId> = (leaf * radix..((leaf + 1) * radix).min(n))
            .map(|i| GpuId(i as u32))
            .collect();
        let mut sw_ports = Vec::new();
        let mut ingress_bw = 0.0f64;
        for &node in &members {
            leaf_of_node.push(sid);
            // Ingress port: carries the node's injection channel.
            let inj = ChannelId(node.0 * 2);
            let ch = topo.channel(inj);
            ingress_bw += ch.bandwidth().as_bytes_per_sec();
            let pid = PortId(ports.len() as u32);
            ports.push(FabricPort {
                id: pid,
                switch: sid,
                kind: PortKind::Ingress,
                channel: Some(inj),
                uplink: None,
                bandwidth: ch.bandwidth(),
                latency: ch.latency(),
            });
            ports_of_channel[inj.index()].push(pid);
            sw_ports.push(pid);
            // Egress port: carries the node's ejection channel.
            let ej = ChannelId(node.0 * 2 + 1);
            let ch = topo.channel(ej);
            let pid = PortId(ports.len() as u32);
            ports.push(FabricPort {
                id: pid,
                switch: sid,
                kind: PortKind::Egress,
                channel: Some(ej),
                uplink: None,
                bandwidth: ch.bandwidth(),
                latency: ch.latency(),
            });
            ports_of_channel[ej.index()].push(pid);
            sw_ports.push(pid);
        }
        if num_leaves > 1 {
            // Uplink pairs toward the spine switches. Fully provisioned,
            // the leaf's *aggregate* uplink capacity matches its aggregate
            // ingress bandwidth; oversubscription divides it down and the
            // `k` slots split it evenly, so the total is invariant in `k`
            // and slot choice never changes a transfer's serialization.
            let k = cfg.uplinks_per_leaf;
            let bw = Bandwidth::bytes_per_sec(
                (ingress_bw / (cfg.oversubscription * k as f64)).max(f64::MIN_POSITIVE),
            );
            let mut ups = Vec::with_capacity(k);
            let mut downs = Vec::with_capacity(k);
            for slot in 0..k as u32 {
                let up = PortId(ports.len() as u32);
                ports.push(FabricPort {
                    id: up,
                    switch: sid,
                    kind: PortKind::UplinkUp,
                    channel: None,
                    uplink: Some(slot),
                    bandwidth: bw,
                    latency: cfg.uplink_latency,
                });
                sw_ports.push(up);
                ups.push(up);
                let down = PortId(ports.len() as u32);
                ports.push(FabricPort {
                    id: down,
                    switch: sid,
                    kind: PortKind::UplinkDown,
                    channel: None,
                    uplink: Some(slot),
                    bandwidth: bw,
                    latency: cfg.uplink_latency,
                });
                sw_ports.push(down);
                downs.push(down);
            }
            uplink_up.push(ups);
            uplink_down.push(downs);
        } else {
            uplink_up.push(Vec::new());
            uplink_down.push(Vec::new());
        }
        switches.push(FabricSwitch {
            id: sid,
            ports: sw_ports,
            nodes: members,
        });
    }
    FabricGraph {
        switches,
        ports,
        ports_of_channel,
        leaf_of_node,
        uplink_up,
        uplink_down,
        oversubscription: cfg.oversubscription,
        spines: cfg.spines,
        uplinks_per_leaf: cfg.uplinks_per_leaf,
        switched: true,
    }
}

fn build_degenerate(topo: &Topology) -> FabricGraph {
    let n = topo.num_gpus();
    let mut ports = Vec::with_capacity(topo.channels().len());
    let mut ports_of_channel = vec![Vec::new(); topo.channels().len()];
    let mut switches: Vec<FabricSwitch> = (0..n)
        .map(|i| FabricSwitch {
            id: SwitchId(i as u32),
            ports: Vec::new(),
            nodes: vec![GpuId(i as u32)],
        })
        .collect();
    for ch in topo.channels() {
        // The port lives on the transmitting GPU's switch: a direct link's
        // single arbitration point is its send side.
        let sid = SwitchId(ch.src().0);
        let pid = PortId(ports.len() as u32);
        ports.push(FabricPort {
            id: pid,
            switch: sid,
            kind: PortKind::Egress,
            channel: Some(ch.id()),
            uplink: None,
            bandwidth: ch.bandwidth(),
            latency: ch.latency(),
        });
        ports_of_channel[ch.id().index()].push(pid);
        switches[sid.index()].ports.push(pid);
    }
    FabricGraph {
        switches,
        ports,
        ports_of_channel,
        leaf_of_node: (0..n).map(|i| SwitchId(i as u32)).collect(),
        uplink_up: vec![Vec::new(); n],
        uplink_down: vec![Vec::new(); n],
        oversubscription: 1.0,
        spines: 1,
        uplinks_per_leaf: 1,
        switched: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgx1::dgx1;
    use crate::hierarchical::{hierarchical, nic_path, nvswitch};
    use crate::torus::torus2d;

    #[test]
    fn passthrough_hierarchical_is_one_port_per_channel() {
        let topo = hierarchical(16);
        let fab = FabricGraph::from_topology(&topo, &FabricConfig::passthrough());
        assert_eq!(fab.num_switches(), 1);
        assert_eq!(fab.num_ports(), topo.channels().len());
        assert!(!fab.has_uplinks());
        assert!(fab.is_passthrough(&topo));
        // port_route == channel path, one port per channel, same order
        let path = nic_path(GpuId(3), GpuId(9));
        let route = fab.port_route(&path);
        assert_eq!(route.len(), 2);
        for (c, p) in path.iter().zip(&route) {
            assert_eq!(fab.port(*p).channel(), Some(*c));
        }
    }

    #[test]
    fn small_radix_builds_leaves_and_uplinks() {
        let topo = hierarchical(16);
        let cfg = FabricConfig {
            radix: Some(4),
            ..FabricConfig::default()
        };
        let fab = FabricGraph::from_topology(&topo, &cfg);
        assert_eq!(fab.num_switches(), 4);
        assert!(fab.has_uplinks());
        assert!(!fab.is_passthrough(&topo));
        // 16 nodes x 2 endpoint ports + 4 leaves x 2 uplink ports
        assert_eq!(fab.num_ports(), 40);
        assert_eq!(fab.leaf_of(GpuId(5)), SwitchId(1));
        // Cross-leaf message occupies ingress, both uplinks, egress.
        let route = fab.port_route(&nic_path(GpuId(0), GpuId(5)));
        assert_eq!(route.len(), 4);
        assert_eq!(fab.port(route[0]).kind(), PortKind::Ingress);
        assert_eq!(fab.port(route[1]).kind(), PortKind::UplinkUp);
        assert_eq!(fab.port(route[1]).switch(), SwitchId(0));
        assert_eq!(fab.port(route[2]).kind(), PortKind::UplinkDown);
        assert_eq!(fab.port(route[2]).switch(), SwitchId(1));
        assert_eq!(fab.port(route[3]).kind(), PortKind::Egress);
        // Intra-leaf message never leaves the leaf.
        let route = fab.port_route(&nic_path(GpuId(0), GpuId(3)));
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn oversubscription_divides_uplink_bandwidth() {
        let topo = hierarchical(16);
        let full = FabricConfig {
            radix: Some(4),
            ..FabricConfig::default()
        };
        let half = FabricConfig {
            radix: Some(4),
            oversubscription: 2.0,
            ..FabricConfig::default()
        };
        let f1 = FabricGraph::from_topology(&topo, &full);
        let f2 = FabricGraph::from_topology(&topo, &half);
        let up1 = f1
            .ports()
            .iter()
            .find(|p| p.kind() == PortKind::UplinkUp)
            .unwrap();
        let up2 = f2
            .ports()
            .iter()
            .find(|p| p.kind() == PortKind::UplinkUp)
            .unwrap();
        assert!(
            (up1.bandwidth().as_bytes_per_sec() / up2.bandwidth().as_bytes_per_sec() - 2.0).abs()
                < 1e-9
        );
        // Fully provisioned: uplink carries the leaf's aggregate ingress.
        let nic_bw = topo.channel(ChannelId(0)).bandwidth().as_bytes_per_sec();
        assert!((up1.bandwidth().as_bytes_per_sec() - 4.0 * nic_bw).abs() < 1e-3);
    }

    #[test]
    fn direct_topologies_are_degenerate() {
        for topo in [dgx1(), torus2d(4, 4)] {
            let fab = FabricGraph::from_topology(&topo, &FabricConfig::passthrough());
            assert_eq!(fab.num_switches(), topo.num_gpus());
            assert_eq!(fab.num_ports(), topo.channels().len());
            assert!(fab.is_passthrough(&topo));
            for ch in topo.channels() {
                let ports = fab.ports_for_channel(ch.id());
                assert_eq!(ports.len(), 1);
                let p = fab.port(ports[0]);
                assert_eq!(p.bandwidth(), ch.bandwidth());
                assert_eq!(p.latency(), ch.latency());
                assert_eq!(p.switch(), SwitchId(ch.src().0));
            }
        }
    }

    #[test]
    fn nvswitch_is_switched_nic_layout() {
        let topo = nvswitch(8);
        let fab = FabricGraph::from_topology(&topo, &FabricConfig::passthrough());
        assert_eq!(fab.num_switches(), 1);
        assert!(fab.is_passthrough(&topo));
    }

    #[test]
    fn radix_override_larger_than_nodes_is_passthrough() {
        let topo = hierarchical(8);
        let cfg = FabricConfig {
            radix: Some(64),
            ..FabricConfig::default()
        };
        let fab = FabricGraph::from_topology(&topo, &cfg);
        assert!(fab.is_passthrough(&topo));
    }

    #[test]
    fn labels_are_stable_and_readable() {
        let topo = hierarchical(4);
        let cfg = FabricConfig {
            radix: Some(2),
            ..FabricConfig::default()
        };
        let fab = FabricGraph::from_topology(&topo, &cfg);
        let labels: Vec<String> = fab.ports().iter().map(FabricPort::label).collect();
        assert!(labels.contains(&"sw0.inc0".to_string()));
        assert!(labels.contains(&"sw1.up0".to_string()));
        assert!(labels.contains(&"sw1.down0".to_string()));
    }

    #[test]
    fn multi_uplink_ports_split_leaf_capacity() {
        let topo = hierarchical(16);
        let one = FabricConfig {
            radix: Some(4),
            ..FabricConfig::default()
        };
        let two = FabricConfig {
            radix: Some(4),
            spines: 2,
            uplinks_per_leaf: 2,
            ..FabricConfig::default()
        };
        let f1 = FabricGraph::from_topology(&topo, &one);
        let f2 = FabricGraph::from_topology(&topo, &two);
        // 16 nodes x 2 endpoint ports + 4 leaves x 2 slots x 2 ports.
        assert_eq!(f2.num_ports(), 48);
        assert_eq!(f2.uplinks_per_leaf(), 2);
        assert_eq!(f2.num_spines(), 2);
        assert_eq!(f2.uplinks_up(SwitchId(0)).len(), 2);
        assert_eq!(f2.uplinks_down(SwitchId(3)).len(), 2);
        assert_eq!(f2.spine_of_uplink(0), 0);
        assert_eq!(f2.spine_of_uplink(1), 1);
        // Aggregate uplink capacity is invariant in k: each of the two
        // slots carries half the single uplink's bandwidth.
        let bw1 = f1.port(f1.uplinks_up(SwitchId(0))[0]).bandwidth();
        let bw2 = f2.port(f2.uplinks_up(SwitchId(0))[0]).bandwidth();
        assert!((bw1.as_bytes_per_sec() / bw2.as_bytes_per_sec() - 2.0).abs() < 1e-9);
        for p in f2.ports() {
            match p.kind() {
                PortKind::UplinkUp | PortKind::UplinkDown => assert!(p.uplink().is_some()),
                _ => assert_eq!(p.uplink(), None),
            }
        }
    }

    #[test]
    fn multi_uplink_routes_stripe_by_source_and_stay_on_one_spine() {
        let topo = hierarchical(16);
        let cfg = FabricConfig {
            radix: Some(4),
            spines: 2,
            uplinks_per_leaf: 2,
            ..FabricConfig::default()
        };
        let fab = FabricGraph::from_topology(&topo, &cfg);
        // Source node 0 -> slot 0, source node 1 -> slot 1.
        for (src, slot) in [(GpuId(0), 0), (GpuId(1), 1)] {
            let route = fab.port_route(&nic_path(src, GpuId(9)));
            assert_eq!(route.len(), 4);
            let up = fab.port(route[1]);
            let down = fab.port(route[2]);
            assert_eq!(up.kind(), PortKind::UplinkUp);
            assert_eq!(down.kind(), PortKind::UplinkDown);
            assert_eq!(up.uplink(), Some(slot));
            // Up and down legs share the slot, hence the spine.
            assert_eq!(up.uplink(), down.uplink());
        }
        // Intra-leaf traffic still bypasses the spine entirely.
        assert_eq!(fab.port_route(&nic_path(GpuId(0), GpuId(3))).len(), 2);
    }

    #[test]
    fn single_uplink_config_matches_legacy_shape() {
        let topo = hierarchical(16);
        let cfg = FabricConfig {
            radix: Some(4),
            ..FabricConfig::default()
        };
        let fab = FabricGraph::from_topology(&topo, &cfg);
        // k = 1 keeps the legacy port count and always picks slot 0.
        assert_eq!(fab.num_ports(), 40);
        assert_eq!(fab.uplinks_per_leaf(), 1);
        for src in 0..4 {
            let route = fab.port_route(&nic_path(GpuId(src), GpuId(9)));
            assert_eq!(fab.port(route[1]).uplink(), Some(0));
        }
    }

    #[test]
    #[should_panic(expected = "uplinks per leaf")]
    fn zero_uplinks_per_leaf_panics() {
        let topo = hierarchical(4);
        let cfg = FabricConfig {
            uplinks_per_leaf: 0,
            ..FabricConfig::default()
        };
        let _ = FabricGraph::from_topology(&topo, &cfg);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn non_positive_oversubscription_panics() {
        let topo = hierarchical(4);
        let cfg = FabricConfig {
            oversubscription: 0.0,
            ..FabricConfig::default()
        };
        let _ = FabricGraph::from_topology(&topo, &cfg);
    }
}
