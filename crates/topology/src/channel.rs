//! Unidirectional communication channels.

use crate::graph::GpuId;
use crate::units::{Bandwidth, ByteSize, Seconds};
use std::fmt;

/// Identifier of a single unidirectional channel within a [`Topology`].
///
/// Channel ids are dense indices assigned in insertion order by the
/// [`TopologyBuilder`], which makes them usable as array indices in the
/// simulator.
///
/// [`Topology`]: crate::Topology
/// [`TopologyBuilder`]: crate::TopologyBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The kind of physical medium a channel models.
///
/// The distinction matters for routing policy: the paper's detour routes
/// exist precisely to avoid [`ChannelClass::HostBridge`] (PCIe through the
/// CPU), which "can cause significant performance degradation" (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// A direct GPU-to-GPU link (NVLink in the DGX-1).
    NvLink,
    /// A NIC / switch port in a scale-out topology.
    Nic,
    /// The PCIe-through-host fallback path.
    HostBridge,
}

impl fmt::Display for ChannelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelClass::NvLink => write!(f, "nvlink"),
            ChannelClass::Nic => write!(f, "nic"),
            ChannelClass::HostBridge => write!(f, "host-bridge"),
        }
    }
}

/// A single **unidirectional** communication channel.
///
/// A bidirectional physical link is represented by two `Channel`s, one per
/// direction. This is deliberate: the paper's Observation #2 is that the
/// tree algorithm leaves the "downlink" direction idle during reduction, and
/// the overlapped tree fills it. Keeping directions as separate schedulable
/// resources lets the simulator reproduce that effect without special cases.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    id: ChannelId,
    src: GpuId,
    dst: GpuId,
    bandwidth: Bandwidth,
    latency: Seconds,
    class: ChannelClass,
}

impl Channel {
    pub(crate) fn new(
        id: ChannelId,
        src: GpuId,
        dst: GpuId,
        bandwidth: Bandwidth,
        latency: Seconds,
        class: ChannelClass,
    ) -> Self {
        Channel {
            id,
            src,
            dst,
            bandwidth,
            latency,
            class,
        }
    }

    /// The channel's id within its topology.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The transmitting endpoint.
    pub fn src(&self) -> GpuId {
        self.src
    }

    /// The receiving endpoint.
    pub fn dst(&self) -> GpuId {
        self.dst
    }

    /// The channel's peak bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The channel's fixed per-message latency (the α of α+βn).
    pub fn latency(&self) -> Seconds {
        self.latency
    }

    /// The physical medium class.
    pub fn class(&self) -> ChannelClass {
        self.class
    }

    /// Total occupancy time for a message of `bytes`: `α + β·n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccube_topology::{dgx1, ByteSize, GpuId};
    /// let topo = dgx1();
    /// let ch = &topo.channels()[0];
    /// let t = ch.occupancy(ByteSize::mib(1));
    /// assert!(t > ch.latency());
    /// ```
    pub fn occupancy(&self, bytes: ByteSize) -> Seconds {
        self.latency + self.bandwidth.transfer_time(bytes)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}->{} [{}] {}",
            self.id, self.src, self.dst, self.class, self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_alpha_plus_beta_n() {
        let ch = Channel::new(
            ChannelId(0),
            GpuId(0),
            GpuId(1),
            Bandwidth::gb_per_sec(25.0),
            Seconds::from_micros(1.5),
            ChannelClass::NvLink,
        );
        let t = ch.occupancy(ByteSize::new(25_000)); // 1 us of serialization
        assert!((t.as_micros() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats_are_informative() {
        let ch = Channel::new(
            ChannelId(3),
            GpuId(2),
            GpuId(3),
            Bandwidth::gb_per_sec(25.0),
            Seconds::from_micros(1.5),
            ChannelClass::NvLink,
        );
        let s = format!("{ch}");
        assert!(s.contains("ch3"));
        assert!(s.contains("gpu2"));
        assert!(s.contains("nvlink"));
    }
}
