//! Physical GPU interconnect topologies and static routing for C-Cube.
//!
//! This crate models the *physical* side of the paper "Logical/Physical
//! Topology-Aware Collective Communication in Deep Learning Training"
//! (HPCA 2023): the machine's actual inter-GPU channels, as opposed to the
//! *logical* topology (ring / tree) of the collective algorithm.
//!
//! The central type is [`Topology`], a directed multigraph of unidirectional
//! [`Channel`]s between [`GpuId`]s. Bidirectional links (e.g. NVLink) are
//! represented as two channels, one per direction — exactly the property the
//! paper's overlapped tree exploits (its Observation #2: the "downlink"
//! direction is idle during the reduction phase).
//!
//! Two concrete topologies are provided:
//!
//! * [`dgx1`] — the 8-GPU NVIDIA DGX-1 *hybrid mesh-cube* used for the
//!   paper's proof of concept, including its doubled NVLinks (GPU2–GPU3 and
//!   GPU6–GPU7 among others) that enable the overlapped double tree.
//! * [`hierarchical`] — an indirect, switch-based scale-out topology used
//!   for the paper's Fig. 14 scalability simulations.
//!
//! Routing ([`Router`]) provides *static* routes: direct NVLink where one
//! exists, otherwise a **detour route** through one intermediate GPU
//! (the paper's Section IV-A), and only as a last resort the slow
//! host/PCIe path the paper explicitly avoids.
//!
//! # Examples
//!
//! ```
//! use ccube_topology::{dgx1, GpuId, Router};
//!
//! let topo = dgx1();
//! assert_eq!(topo.num_gpus(), 8);
//! // GPU2 and GPU4 have no direct NVLink in the hybrid mesh-cube...
//! let nvlinks = topo
//!     .channels_between(GpuId(2), GpuId(4))
//!     .into_iter()
//!     .filter(|&c| topo.channel(c).class() == ccube_topology::ChannelClass::NvLink)
//!     .count();
//! assert_eq!(nvlinks, 0);
//! // ...so the router finds a detour through an intermediate GPU (GPU0).
//! let router = Router::new(&topo);
//! let route = router.route(GpuId(2), GpuId(4)).expect("route exists");
//! assert!(route.is_detour());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod dgx1;
mod error;
mod fabric;
mod graph;
mod hierarchical;
mod rings;
mod routing;
mod torus;
mod units;

pub use channel::{Channel, ChannelClass, ChannelId};
pub use dgx1::{dgx1, dgx1_with, Dgx1Config, DGX1_NUM_GPUS};
pub use error::TopologyError;
pub use fabric::{FabricConfig, FabricGraph, FabricPort, FabricSwitch, PortId, PortKind, SwitchId};
pub use graph::{GpuId, Topology, TopologyBuilder};
pub use hierarchical::{
    ejection_channel, hierarchical, hierarchical_with, injection_channel, nic_path, nvswitch,
    HierarchicalConfig,
};
pub use rings::disjoint_rings;
pub use routing::{Route, Router};
pub use torus::{torus2d, torus2d_with, TorusConfig};
pub use units::{Bandwidth, ByteSize, Seconds};

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::{
        dgx1, disjoint_rings, hierarchical, nvswitch, torus2d, Bandwidth, ByteSize, Channel,
        ChannelClass, ChannelId, FabricConfig, FabricGraph, GpuId, PortId, Route, Router, Seconds,
        SwitchId, Topology, TopologyBuilder,
    };
}
