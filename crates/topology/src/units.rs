//! Physical units used throughout the workspace.
//!
//! All three newtypes wrap `f64` and exist to keep bandwidths, byte counts
//! and times from being mixed up at API boundaries (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, in seconds.
///
/// `Seconds` is totally ordered; constructing a NaN value panics, which is
/// what makes the ordering total.
///
/// # Examples
///
/// ```
/// use ccube_topology::Seconds;
/// let t = Seconds::from_micros(2.0) + Seconds::from_micros(3.0);
/// assert_eq!(t, Seconds::from_micros(5.0));
/// assert!(t < Seconds::from_millis(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero time.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a time value from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan(), "Seconds must not be NaN");
        Seconds(secs)
    }

    /// Creates a time value from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// Creates a time value from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Creates a time value from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds::new(ns * 1e-9)
    }

    /// The raw number of seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// This time expressed in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// This time expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The larger of two times.
    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for Seconds {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Seconds {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are never NaN (checked at construction), so this is total.
        self.0.partial_cmp(&other.0).expect("Seconds is never NaN")
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.4} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.4} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.4} us", self.0 * 1e6)
        }
    }
}

/// Channel bandwidth, stored internally as bytes per second.
///
/// # Examples
///
/// ```
/// use ccube_topology::{Bandwidth, ByteSize, Seconds};
/// // A single NVLink in the DGX-1 provides 25 GB/s.
/// let bw = Bandwidth::gb_per_sec(25.0);
/// let t = bw.transfer_time(ByteSize::mib(100));
/// assert!(t > Seconds::from_millis(4.0) && t < Seconds::from_millis(4.3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Creates a bandwidth from decimal gigabytes per second (1 GB = 1e9 B).
    pub fn gb_per_sec(gb: f64) -> Self {
        Bandwidth::bytes_per_sec(gb * 1e9)
    }

    /// Creates a bandwidth from binary gibibytes per second.
    pub fn gib_per_sec(gib: f64) -> Self {
        Bandwidth::bytes_per_sec(gib * (1u64 << 30) as f64)
    }

    /// The raw bytes-per-second value.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// This bandwidth expressed in decimal GB/s.
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// The serialization time of `bytes` on this channel (no latency term).
    pub fn transfer_time(self, bytes: ByteSize) -> Seconds {
        Seconds::new(bytes.as_u64() as f64 / self.0)
    }

    /// The inverse bandwidth in seconds per byte — the β of the α+βn model.
    pub fn beta(self) -> f64 {
        1.0 / self.0
    }

    /// A bandwidth scaled by `factor` (e.g. the paper's "low bandwidth"
    /// configuration divides the effective AllReduce bandwidth by 4).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 * factor)
    }

    /// The smaller of two bandwidths (the bottleneck of a multi-hop path).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_per_sec())
    }
}

/// A number of bytes (message / chunk / parameter sizes).
///
/// # Examples
///
/// ```
/// use ccube_topology::ByteSize;
/// assert_eq!(ByteSize::mib(64).as_u64(), 64 * 1024 * 1024);
/// assert_eq!(ByteSize::kib(16) * 4, ByteSize::kib(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    pub fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size in binary kibibytes.
    pub fn kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Creates a size in binary mebibytes.
    pub fn mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Creates a size in binary gibibytes.
    pub fn gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `f64` (for cost-model arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// This size expressed in binary mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Splits this size into `parts` spans that differ by at most one byte
    /// and sum to the whole (earlier spans take the remainder).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn split(self, parts: usize) -> Vec<ByteSize> {
        assert!(parts > 0, "cannot split into zero parts");
        let parts_u64 = parts as u64;
        let base = self.0 / parts_u64;
        let rem = self.0 % parts_u64;
        (0..parts_u64)
            .map(|i| ByteSize(base + u64::from(i < rem)))
            .collect()
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.2} GiB", self.0 as f64 / (1u64 << 30) as f64)
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2} MiB", self.0 as f64 / (1u64 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_arithmetic_and_ordering() {
        let a = Seconds::from_micros(10.0);
        let b = Seconds::from_micros(5.0);
        assert_eq!(a + b, Seconds::from_micros(15.0));
        assert_eq!(a - b, b);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!((a * 2.0).as_micros() - 20.0 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn seconds_rejects_nan() {
        let _ = Seconds::new(f64::NAN);
    }

    #[test]
    fn seconds_display_scales() {
        assert_eq!(format!("{}", Seconds::new(2.5)), "2.5000 s");
        assert_eq!(format!("{}", Seconds::from_millis(2.5)), "2.5000 ms");
        assert_eq!(format!("{}", Seconds::from_micros(2.5)), "2.5000 us");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::gb_per_sec(25.0);
        let t = bw.transfer_time(ByteSize::new(25_000_000));
        assert!((t.as_secs_f64() - 1e-3).abs() < 1e-12);
        assert!((bw.beta() - 4e-11).abs() < 1e-22);
    }

    #[test]
    fn bandwidth_scaling_models_low_bw_config() {
        let high = Bandwidth::gb_per_sec(100.0);
        let low = high.scaled(0.25);
        assert!((low.as_gb_per_sec() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn bytesize_split_is_exact_and_balanced() {
        let total = ByteSize::new(1003);
        let parts = total.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().copied().sum::<ByteSize>(), total);
        let max = parts.iter().max().unwrap().as_u64();
        let min = parts.iter().min().unwrap().as_u64();
        assert!(max - min <= 1);
    }

    #[test]
    fn bytesize_display_scales() {
        assert_eq!(format!("{}", ByteSize::new(12)), "12 B");
        assert_eq!(format!("{}", ByteSize::kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", ByteSize::mib(64)), "64.00 MiB");
        assert_eq!(format!("{}", ByteSize::gib(1)), "1.00 GiB");
    }
}
