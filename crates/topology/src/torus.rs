//! 2-D torus topologies.
//!
//! Multi-GPU nodes and accelerator pods are also built as meshes and
//! tori (e.g. TPU pods); the paper's related work asks how such
//! "alternative physical topologies in large-scale systems can be
//! exploited for efficient collective communications". This generator
//! produces a `rows × cols` torus of direct bidirectional links so the
//! embedding/routing/simulation stack can answer that question for the
//! C-Cube algorithms: rings embed natively along torus rings, while the
//! double tree needs detours wherever tree edges jump non-neighbors.

use crate::channel::ChannelClass;
use crate::error::TopologyError;
use crate::graph::{GpuId, Topology, TopologyBuilder};
use crate::units::{Bandwidth, Seconds};

/// Configuration for [`torus2d_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct TorusConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Per-link bandwidth.
    pub link_bandwidth: Bandwidth,
    /// Per-message link latency.
    pub link_latency: Seconds,
}

impl Default for TorusConfig {
    fn default() -> Self {
        TorusConfig {
            rows: 4,
            cols: 4,
            link_bandwidth: Bandwidth::gb_per_sec(25.0),
            link_latency: Seconds::from_micros(1.5),
        }
    }
}

/// Builds a `rows × cols` 2-D torus with default NVLink-class links.
/// Node `(r, c)` is `GpuId(r * cols + c)` and connects to its four
/// wrap-around neighbors (degree 4; duplicate parallel links appear
/// when a dimension has length 2).
///
/// # Panics
///
/// Panics if either dimension is smaller than 2.
///
/// # Examples
///
/// ```
/// use ccube_topology::{torus2d, GpuId};
/// let topo = torus2d(4, 4);
/// assert_eq!(topo.num_gpus(), 16);
/// // every node has degree 4
/// assert_eq!(topo.outgoing(GpuId(5)).len(), 4);
/// ```
pub fn torus2d(rows: usize, cols: usize) -> Topology {
    torus2d_with(&TorusConfig {
        rows,
        cols,
        ..TorusConfig::default()
    })
    .expect("dimensions >= 2")
}

/// Builds a 2-D torus with explicit parameters.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if either dimension is
/// smaller than 2.
pub fn torus2d_with(cfg: &TorusConfig) -> Result<Topology, TopologyError> {
    if cfg.rows < 2 || cfg.cols < 2 {
        return Err(TopologyError::InvalidParameter(format!(
            "torus dimensions must be at least 2x2, got {}x{}",
            cfg.rows, cfg.cols
        )));
    }
    let id = |r: usize, c: usize| GpuId((r * cfg.cols + c) as u32);
    let mut b = TopologyBuilder::new(
        format!("torus{}x{}", cfg.rows, cfg.cols),
        cfg.rows * cfg.cols,
    );
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            // rightward and downward wrap links; the reverse directions
            // come from `bidirectional`.
            b.bidirectional(
                id(r, c),
                id(r, (c + 1) % cfg.cols),
                cfg.link_bandwidth,
                cfg.link_latency,
                ChannelClass::NvLink,
            )?;
            b.bidirectional(
                id(r, c),
                id((r + 1) % cfg.rows, c),
                cfg.link_bandwidth,
                cfg.link_latency,
                ChannelClass::NvLink,
            )?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Router;

    #[test]
    fn four_by_four_structure() {
        let topo = torus2d(4, 4);
        assert_eq!(topo.num_gpus(), 16);
        // 2 links per node added, bidirectional -> 4 channels per node
        assert_eq!(topo.channels().len(), 16 * 4);
        for g in 0..16u32 {
            assert_eq!(topo.neighbors(GpuId(g)).len(), 4);
        }
    }

    #[test]
    fn wraparound_links_exist() {
        let topo = torus2d(3, 4);
        // (0,0) <-> (0,3) via column wrap and (0,0) <-> (2,0) via row wrap
        assert!(topo.has_direct(GpuId(0), GpuId(3)));
        assert!(topo.has_direct(GpuId(0), GpuId(8)));
    }

    #[test]
    fn length_two_dimension_doubles_links() {
        let topo = torus2d(2, 3);
        // In a length-2 ring the wrap link coincides with the direct one,
        // producing a doubled pair (like the DGX-1's doubled NVLinks).
        let between = topo.channels_between(GpuId(0), GpuId(3));
        assert_eq!(between.len(), 2);
    }

    #[test]
    fn diagonal_pairs_need_detours() {
        let topo = torus2d(4, 4);
        let router = Router::without_host_fallback(&topo);
        // (0,0) -> (1,1) has no direct link but a one-hop detour exists.
        let r = router.route(GpuId(0), GpuId(5)).unwrap();
        assert!(r.is_detour());
        // (0,0) -> (2,2) is distance 4 on the torus; no single-hop detour
        // exists, so strict routing fails (the stack would need a longer
        // static route, which the DGX-1 never does).
        assert!(router.route(GpuId(0), GpuId(10)).is_err());
    }

    #[test]
    fn small_dimensions_rejected() {
        assert!(torus2d_with(&TorusConfig {
            rows: 1,
            cols: 4,
            ..TorusConfig::default()
        })
        .is_err());
    }

    #[test]
    fn torus_embeds_a_hamiltonian_ring() {
        let topo = torus2d(4, 4);
        let rings = crate::rings::disjoint_rings(&topo, 2);
        assert!(
            !rings.is_empty(),
            "a torus always contains Hamiltonian cycles"
        );
        assert_eq!(rings[0].len(), 16);
    }
}
