//! Indirect, switch-based scale-out topology for the Fig. 14 simulations.
//!
//! The paper's scalability study (§V-B3) "evaluate[s] a hierarchical,
//! indirect topology (i.e., intermediate switches) as the number of nodes
//! increases" with "constant interconnect bandwidth". We model each node
//! with one injection and one ejection NIC channel into an ideal switch
//! fabric; a point-to-point transfer occupies the sender's injection
//! channel and the receiver's ejection channel simultaneously. The switch
//! fabric itself is non-blocking, but the per-message latency grows with
//! the number of switch levels, `ceil(log_radix(P))`, which is what makes
//! latency matter at scale and favors the O(log P) tree algorithm.
//!
//! Channel-id layout: node `i`'s injection channel is `2*i`, its ejection
//! channel is `2*i + 1`; a transfer from `a` to `b` uses the path
//! `[inj(a), ej(b)]`.

use crate::channel::{ChannelClass, ChannelId};
use crate::error::TopologyError;
use crate::graph::{GpuId, Topology, TopologyBuilder};
use crate::units::{Bandwidth, Seconds};

/// Configuration for the hierarchical scale-out topology.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalConfig {
    /// Number of nodes (endpoints).
    pub num_nodes: usize,
    /// Per-node NIC bandwidth (constant regardless of scale — the paper
    /// assumes constant interconnect bandwidth in its Fig. 14 comparison).
    pub nic_bandwidth: Bandwidth,
    /// Base per-hop latency (one switch traversal).
    pub hop_latency: Seconds,
    /// Switch radix; latency grows with `ceil(log_radix(num_nodes))`.
    pub radix: usize,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            num_nodes: 16,
            nic_bandwidth: Bandwidth::gb_per_sec(25.0),
            hop_latency: Seconds::from_micros(1.5),
            radix: 16,
        }
    }
}

impl HierarchicalConfig {
    /// Number of switch levels messages traverse: `ceil(log_radix(P))`,
    /// at least 1.
    pub fn levels(&self) -> usize {
        if self.num_nodes <= 1 {
            return 1;
        }
        let mut levels = 0usize;
        let mut reach = 1usize;
        while reach < self.num_nodes {
            reach = reach.saturating_mul(self.radix);
            levels += 1;
        }
        levels.max(1)
    }

    /// End-to-end per-message latency: up through `levels` switches and
    /// back down (`2 * levels` hops).
    pub fn message_latency(&self) -> Seconds {
        self.hop_latency * (2 * self.levels()) as f64
    }
}

/// Builds a hierarchical topology with default parameters for `num_nodes`.
///
/// # Panics
///
/// Panics if `num_nodes` is zero.
///
/// # Examples
///
/// ```
/// use ccube_topology::hierarchical;
/// let topo = hierarchical(64);
/// assert_eq!(topo.num_gpus(), 64);
/// // one injection + one ejection channel per node
/// assert_eq!(topo.channels().len(), 128);
/// ```
pub fn hierarchical(num_nodes: usize) -> Topology {
    let cfg = HierarchicalConfig {
        num_nodes,
        ..HierarchicalConfig::default()
    };
    hierarchical_with(&cfg).expect("num_nodes must be positive")
}

/// Builds a hierarchical topology with explicit parameters.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] if `num_nodes < 2` or
/// `radix < 2`.
pub fn hierarchical_with(cfg: &HierarchicalConfig) -> Result<Topology, TopologyError> {
    if cfg.num_nodes < 2 {
        return Err(TopologyError::InvalidParameter(
            "hierarchical topology needs at least two nodes".into(),
        ));
    }
    if cfg.radix < 2 {
        return Err(TopologyError::InvalidParameter(format!(
            "switch radix must be at least 2, got {}",
            cfg.radix
        )));
    }
    // Half the end-to-end latency is charged on injection, half on ejection,
    // so a single transfer sees the full message latency.
    let half_latency = cfg.message_latency() * 0.5;
    let mut b = TopologyBuilder::new(format!("hier{}", cfg.num_nodes), cfg.num_nodes);
    // Only endpoint nodes exist in the graph (the switch fabric is
    // implicit), so each NIC channel nominally points at the node's ring
    // successor; routing never walks the graph here — paths come from
    // `nic_path`, which only needs the channel-id layout below.
    for i in 0..cfg.num_nodes {
        let node = GpuId(i as u32);
        let peer = GpuId(((i + 1) % cfg.num_nodes) as u32);
        // injection channel: id 2*i
        b.channel(
            node,
            peer,
            cfg.nic_bandwidth,
            half_latency,
            ChannelClass::Nic,
        )?;
        // ejection channel: id 2*i + 1
        b.channel(
            peer,
            node,
            cfg.nic_bandwidth,
            half_latency,
            ChannelClass::Nic,
        )?;
    }
    b.build()
}

/// The injection channel id of `node` in a [`hierarchical`] topology.
pub fn injection_channel(node: GpuId) -> ChannelId {
    ChannelId(node.0 * 2)
}

/// The ejection channel id of `node` in a [`hierarchical`] topology.
pub fn ejection_channel(node: GpuId) -> ChannelId {
    ChannelId(node.0 * 2 + 1)
}

/// The channel path a message from `src` to `dst` occupies in a
/// [`hierarchical`] topology: the sender's injection channel and the
/// receiver's ejection channel.
pub fn nic_path(src: GpuId, dst: GpuId) -> Vec<ChannelId> {
    vec![injection_channel(src), ejection_channel(dst)]
}

/// A DGX-2-like NVSwitch topology: `num_gpus` GPUs attached to a
/// non-blocking switch crossbar, each with the full aggregate NVLink
/// bandwidth (6 links × 25 GB/s on V100) behind a single switch hop.
///
/// The paper's related-work section leaves "how alternative physical
/// topologies … can be exploited for efficient collective
/// communications" open; this topology lets the experiments compare the
/// hybrid mesh-cube (with its detours and doubled links) against a flat
/// switch where every pair is one hop apart and per-GPU bandwidth is the
/// only constraint.
///
/// # Panics
///
/// Panics if `num_gpus < 2`.
///
/// # Examples
///
/// ```
/// use ccube_topology::nvswitch;
/// let topo = nvswitch(16);
/// assert_eq!(topo.num_gpus(), 16);
/// ```
pub fn nvswitch(num_gpus: usize) -> Topology {
    let cfg = HierarchicalConfig {
        num_nodes: num_gpus,
        // full V100 NVLink aggregate into the switch
        nic_bandwidth: Bandwidth::gb_per_sec(150.0),
        hop_latency: Seconds::from_micros(1.0),
        // single-level crossbar
        radix: num_gpus.max(2),
    };
    hierarchical_with(&cfg).expect("at least two gpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_grow_logarithmically() {
        let mk = |n| HierarchicalConfig {
            num_nodes: n,
            radix: 16,
            ..HierarchicalConfig::default()
        };
        assert_eq!(mk(2).levels(), 1);
        assert_eq!(mk(16).levels(), 1);
        assert_eq!(mk(17).levels(), 2);
        assert_eq!(mk(256).levels(), 2);
        assert_eq!(mk(257).levels(), 3);
    }

    #[test]
    fn message_latency_scales_with_levels() {
        let cfg = HierarchicalConfig {
            num_nodes: 256,
            radix: 16,
            hop_latency: Seconds::from_micros(1.0),
            ..HierarchicalConfig::default()
        };
        // 2 levels up + 2 down = 4 us
        assert!((cfg.message_latency().as_micros() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn channel_id_layout_matches_helpers() {
        let topo = hierarchical(8);
        for i in 0..8u32 {
            let inj = injection_channel(GpuId(i));
            let ej = ejection_channel(GpuId(i));
            assert_eq!(topo.channel(inj).src(), GpuId(i));
            assert_eq!(topo.channel(ej).dst(), GpuId(i));
        }
    }

    #[test]
    fn nic_path_has_two_channels() {
        let p = nic_path(GpuId(3), GpuId(5));
        assert_eq!(p, vec![ChannelId(6), ChannelId(11)]);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let cfg = HierarchicalConfig {
            num_nodes: 0,
            ..HierarchicalConfig::default()
        };
        assert!(hierarchical_with(&cfg).is_err());
        let cfg = HierarchicalConfig {
            num_nodes: 4,
            radix: 1,
            ..HierarchicalConfig::default()
        };
        assert!(hierarchical_with(&cfg).is_err());
    }

    #[test]
    fn single_node_topology_is_rejected() {
        let cfg = HierarchicalConfig {
            num_nodes: 1,
            ..HierarchicalConfig::default()
        };
        assert!(hierarchical_with(&cfg).is_err());
    }
}
