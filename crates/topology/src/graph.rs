//! The topology multigraph and its builder.

use crate::channel::{Channel, ChannelClass, ChannelId};
use crate::error::TopologyError;
use crate::units::{Bandwidth, Seconds};
use std::fmt;

/// Identifier of a GPU (or, in scale-out topologies, a node) in a topology.
///
/// # Examples
///
/// ```
/// use ccube_topology::GpuId;
/// let g = GpuId(3);
/// assert_eq!(g.index(), 3);
/// assert_eq!(format!("{g}"), "gpu3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl From<u32> for GpuId {
    fn from(v: u32) -> Self {
        GpuId(v)
    }
}

/// A physical interconnect topology: a directed multigraph of
/// unidirectional [`Channel`]s between GPUs.
///
/// Multi-edges are first-class: the DGX-1 connects some GPU pairs with two
/// NVLinks (e.g. GPU2–GPU3), which the paper exploits to run an overlapped
/// *double* tree. Query all parallel channels between a pair with
/// [`Topology::channels_between`].
///
/// Build instances with [`TopologyBuilder`], or use the ready-made
/// [`dgx1`](crate::dgx1) / [`hierarchical`](crate::hierarchical) factories.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    num_gpus: usize,
    channels: Vec<Channel>,
    /// Outgoing channel ids per GPU, in insertion order.
    outgoing: Vec<Vec<ChannelId>>,
    /// Incoming channel ids per GPU, in insertion order.
    incoming: Vec<Vec<ChannelId>>,
}

impl Topology {
    /// A human-readable topology name (e.g. `"dgx1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of GPUs (nodes) in the topology.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// All channels, indexed by [`ChannelId::index`].
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this topology.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Ids of channels leaving `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is not in the topology.
    pub fn outgoing(&self, gpu: GpuId) -> &[ChannelId] {
        &self.outgoing[gpu.index()]
    }

    /// Ids of channels arriving at `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is not in the topology.
    pub fn incoming(&self, gpu: GpuId) -> &[ChannelId] {
        &self.incoming[gpu.index()]
    }

    /// All parallel channels from `src` to `dst` (possibly empty).
    ///
    /// # Examples
    ///
    /// ```
    /// use ccube_topology::{dgx1, ChannelClass, GpuId};
    /// let topo = dgx1();
    /// // GPU2-GPU3 is one of the doubled NVLink pairs in the DGX-1.
    /// let nvlinks = topo
    ///     .channels_between(GpuId(2), GpuId(3))
    ///     .into_iter()
    ///     .filter(|&c| topo.channel(c).class() == ChannelClass::NvLink)
    ///     .count();
    /// assert_eq!(nvlinks, 2);
    /// ```
    pub fn channels_between(&self, src: GpuId, dst: GpuId) -> Vec<ChannelId> {
        self.outgoing
            .get(src.index())
            .map(|chs| {
                chs.iter()
                    .copied()
                    .filter(|&c| self.channel(c).dst() == dst)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True if at least one direct channel exists from `src` to `dst`.
    pub fn has_direct(&self, src: GpuId, dst: GpuId) -> bool {
        !self.channels_between(src, dst).is_empty()
    }

    /// True if `channels` is a contiguous hop chain from `src` to `dst`:
    /// non-empty, every id in range, the first hop leaves `src`, each hop
    /// starts where the previous one ended, and the last hop arrives at
    /// `dst`. This is the shape every GPU-to-GPU route must have; NIC
    /// routes in a [`hierarchical`](crate::hierarchical) topology follow
    /// the injection/ejection convention instead and are validated by
    /// endpoints only.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccube_topology::{dgx1, GpuId};
    /// let topo = dgx1();
    /// let hop = topo.channels_between(GpuId(2), GpuId(3))[0];
    /// assert!(topo.is_path(GpuId(2), GpuId(3), &[hop]));
    /// assert!(!topo.is_path(GpuId(3), GpuId(2), &[hop]));
    /// ```
    pub fn is_path(&self, src: GpuId, dst: GpuId, channels: &[ChannelId]) -> bool {
        if channels.is_empty() || channels.iter().any(|c| c.index() >= self.channels.len()) {
            return false;
        }
        let mut at = src;
        for &c in channels {
            let ch = self.channel(c);
            if ch.src() != at {
                return false;
            }
            at = ch.dst();
        }
        at == dst
    }

    /// Direct neighbors reachable from `gpu` (deduplicated, sorted).
    pub fn neighbors(&self, gpu: GpuId) -> Vec<GpuId> {
        let mut out: Vec<GpuId> = self.outgoing[gpu.index()]
            .iter()
            .map(|&c| self.channel(c).dst())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Aggregate outgoing bandwidth of `gpu` over non-host channels.
    pub fn injection_bandwidth(&self, gpu: GpuId) -> Bandwidth {
        let total: f64 = self.outgoing[gpu.index()]
            .iter()
            .map(|&c| self.channel(c))
            .filter(|ch| ch.class() != ChannelClass::HostBridge)
            .map(|ch| ch.bandwidth().as_bytes_per_sec())
            .sum();
        Bandwidth::bytes_per_sec(total.max(f64::MIN_POSITIVE))
    }

    /// Validates that a GPU id belongs to this topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownGpu`] if out of range.
    pub fn check_gpu(&self, gpu: GpuId) -> Result<(), TopologyError> {
        if gpu.index() < self.num_gpus {
            Ok(())
        } else {
            Err(TopologyError::UnknownGpu {
                gpu,
                num_gpus: self.num_gpus,
            })
        }
    }

    /// Renders the topology as Graphviz DOT (one edge per bidirectional
    /// link pair; unpaired channels appear as directed edges). Handy for
    /// eyeballing generated machines:
    /// `cargo run --bin ccube -- rings | dot -Tsvg`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccube_topology::dgx1;
    /// let dot = dgx1().to_dot();
    /// assert!(dot.starts_with("graph dgx1"));
    /// assert!(dot.contains("g2 -- g3"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::collections::HashMap;
        use std::fmt::Write as _;
        let mut out = String::new();
        let name: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let _ = writeln!(out, "graph {name} {{");
        let _ = writeln!(out, "  layout=circo;");
        // Count channels per undirected pair and class.
        let mut pairs: HashMap<(u32, u32, ChannelClass), usize> = HashMap::new();
        for ch in &self.channels {
            let (a, b) = if ch.src().0 <= ch.dst().0 {
                (ch.src().0, ch.dst().0)
            } else {
                (ch.dst().0, ch.src().0)
            };
            *pairs.entry((a, b, ch.class())).or_insert(0) += 1;
        }
        let mut keys: Vec<_> = pairs.keys().copied().collect();
        keys.sort_by_key(|&(a, b, _)| (a, b));
        for (a, b, class) in keys {
            let channels = pairs[&(a, b, class)];
            // two channels = one bidirectional link
            let links = channels.div_ceil(2);
            let style = match class {
                ChannelClass::NvLink => "solid",
                ChannelClass::Nic => "dashed",
                ChannelClass::HostBridge => "dotted",
            };
            for _ in 0..links {
                let _ = writeln!(out, "  g{a} -- g{b} [style={style}];");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} gpus, {} channels)",
            self.name,
            self.num_gpus,
            self.channels.len()
        )
    }
}

/// Builder for [`Topology`].
///
/// # Examples
///
/// ```
/// use ccube_topology::{TopologyBuilder, GpuId, Bandwidth, Seconds, ChannelClass};
///
/// # fn main() -> Result<(), ccube_topology::TopologyError> {
/// let mut b = TopologyBuilder::new("pair", 2);
/// b.bidirectional(
///     GpuId(0),
///     GpuId(1),
///     Bandwidth::gb_per_sec(25.0),
///     Seconds::from_micros(1.5),
///     ChannelClass::NvLink,
/// )?;
/// let topo = b.build()?;
/// assert_eq!(topo.channels().len(), 2); // one per direction
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    num_gpus: usize,
    channels: Vec<Channel>,
}

impl TopologyBuilder {
    /// Starts a topology with `num_gpus` nodes and no channels.
    pub fn new(name: impl Into<String>, num_gpus: usize) -> Self {
        TopologyBuilder {
            name: name.into(),
            num_gpus,
            channels: Vec::new(),
        }
    }

    fn check(&self, gpu: GpuId) -> Result<(), TopologyError> {
        if gpu.index() < self.num_gpus {
            Ok(())
        } else {
            Err(TopologyError::UnknownGpu {
                gpu,
                num_gpus: self.num_gpus,
            })
        }
    }

    /// Adds one unidirectional channel and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `src == dst`.
    pub fn channel(
        &mut self,
        src: GpuId,
        dst: GpuId,
        bandwidth: Bandwidth,
        latency: Seconds,
        class: ChannelClass,
    ) -> Result<ChannelId, TopologyError> {
        self.check(src)?;
        self.check(dst)?;
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        let id = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(id, src, dst, bandwidth, latency, class));
        Ok(id)
    }

    /// Adds a bidirectional link as two unidirectional channels and returns
    /// their ids as `(a_to_b, b_to_a)`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `a == b`.
    pub fn bidirectional(
        &mut self,
        a: GpuId,
        b: GpuId,
        bandwidth: Bandwidth,
        latency: Seconds,
        class: ChannelClass,
    ) -> Result<(ChannelId, ChannelId), TopologyError> {
        let ab = self.channel(a, b, bandwidth, latency, class)?;
        let ba = self.channel(b, a, bandwidth, latency, class)?;
        Ok((ab, ba))
    }

    /// Finalizes the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] for an empty topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.num_gpus == 0 {
            return Err(TopologyError::InvalidParameter(
                "topology must contain at least one gpu".into(),
            ));
        }
        let mut outgoing = vec![Vec::new(); self.num_gpus];
        let mut incoming = vec![Vec::new(); self.num_gpus];
        for ch in &self.channels {
            outgoing[ch.src().index()].push(ch.id());
            incoming[ch.dst().index()].push(ch.id());
        }
        Ok(Topology {
            name: self.name,
            num_gpus: self.num_gpus,
            channels: self.channels,
            outgoing,
            incoming,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nv() -> (Bandwidth, Seconds) {
        (Bandwidth::gb_per_sec(25.0), Seconds::from_micros(1.5))
    }

    fn triangle() -> Topology {
        let (bw, lat) = nv();
        let mut b = TopologyBuilder::new("tri", 3);
        b.bidirectional(GpuId(0), GpuId(1), bw, lat, ChannelClass::NvLink)
            .unwrap();
        b.bidirectional(GpuId(1), GpuId(2), bw, lat, ChannelClass::NvLink)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let topo = triangle();
        for (i, ch) in topo.channels().iter().enumerate() {
            assert_eq!(ch.id().index(), i);
        }
    }

    #[test]
    fn adjacency_is_consistent() {
        let topo = triangle();
        assert_eq!(topo.outgoing(GpuId(1)).len(), 2);
        assert_eq!(topo.incoming(GpuId(1)).len(), 2);
        assert_eq!(topo.neighbors(GpuId(1)), vec![GpuId(0), GpuId(2)]);
        assert!(topo.has_direct(GpuId(0), GpuId(1)));
        assert!(!topo.has_direct(GpuId(0), GpuId(2)));
    }

    #[test]
    fn multi_edges_are_preserved() {
        let (bw, lat) = nv();
        let mut b = TopologyBuilder::new("double", 2);
        b.bidirectional(GpuId(0), GpuId(1), bw, lat, ChannelClass::NvLink)
            .unwrap();
        b.bidirectional(GpuId(0), GpuId(1), bw, lat, ChannelClass::NvLink)
            .unwrap();
        let topo = b.build().unwrap();
        assert_eq!(topo.channels_between(GpuId(0), GpuId(1)).len(), 2);
        assert_eq!(topo.channels_between(GpuId(1), GpuId(0)).len(), 2);
        // neighbors() deduplicates
        assert_eq!(topo.neighbors(GpuId(0)), vec![GpuId(1)]);
    }

    #[test]
    fn self_loops_are_rejected() {
        let (bw, lat) = nv();
        let mut b = TopologyBuilder::new("x", 2);
        let err = b
            .channel(GpuId(0), GpuId(0), bw, lat, ChannelClass::NvLink)
            .unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop(GpuId(0)));
    }

    #[test]
    fn out_of_range_gpus_are_rejected() {
        let (bw, lat) = nv();
        let mut b = TopologyBuilder::new("x", 2);
        let err = b
            .channel(GpuId(0), GpuId(5), bw, lat, ChannelClass::NvLink)
            .unwrap_err();
        assert!(matches!(err, TopologyError::UnknownGpu { .. }));
    }

    #[test]
    fn empty_topology_is_rejected() {
        let err = TopologyBuilder::new("none", 0).build().unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter(_)));
    }

    #[test]
    fn injection_bandwidth_sums_links() {
        let topo = triangle();
        let bw = topo.injection_bandwidth(GpuId(1));
        assert!((bw.as_gb_per_sec() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn check_gpu_validates_range() {
        let topo = triangle();
        assert!(topo.check_gpu(GpuId(2)).is_ok());
        assert!(topo.check_gpu(GpuId(3)).is_err());
    }
}
