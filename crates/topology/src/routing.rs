//! Static routing with detour routes.
//!
//! Reproduces the paper's §IV-A routing policy on the DGX-1:
//!
//! 1. **Direct** — use an NVLink channel if one exists.
//! 2. **Detour** — otherwise, statically forward through one intermediate
//!    GPU that has direct NVLinks to both endpoints ("non-minimal
//!    communication through an intermediate GPU without routing through the
//!    host"). The intermediate GPU runs a forwarding kernel, which costs it
//!    some compute (paper Fig. 15 measures 3–4%).
//! 3. **Host bridge** — only if no single-hop detour exists, fall back to
//!    the PCIe/CPU path the paper avoids.
//!
//! Routes are *static*: the detour intermediate is chosen once
//! (deterministically, lowest current load then lowest id) and reused for
//! the whole collective, mirroring the paper's dedicated forwarding CUDA
//! kernels rather than per-packet adaptive routing.

use crate::channel::{ChannelClass, ChannelId};
use crate::error::TopologyError;
use crate::graph::{GpuId, Topology};
use crate::units::{ByteSize, Seconds};
use std::collections::HashMap;

/// A resolved route between two GPUs: the ordered channels a message
/// occupies, plus the forwarding GPU if the route is a detour.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    src: GpuId,
    dst: GpuId,
    channels: Vec<ChannelId>,
    via: Option<GpuId>,
    class: ChannelClass,
}

impl Route {
    /// Builds a direct single-channel route.
    pub fn direct(src: GpuId, dst: GpuId, channel: ChannelId, class: ChannelClass) -> Self {
        Route {
            src,
            dst,
            channels: vec![channel],
            via: None,
            class,
        }
    }

    /// Builds a detour route through `via`.
    pub fn detour(src: GpuId, dst: GpuId, via: GpuId, channels: Vec<ChannelId>) -> Self {
        Route {
            src,
            dst,
            channels,
            via: Some(via),
            class: ChannelClass::NvLink,
        }
    }

    /// Builds an explicit multi-channel route (used by scale-out NIC paths).
    pub fn multi(src: GpuId, dst: GpuId, channels: Vec<ChannelId>, class: ChannelClass) -> Self {
        Route {
            src,
            dst,
            channels,
            via: None,
            class,
        }
    }

    /// Source endpoint.
    pub fn src(&self) -> GpuId {
        self.src
    }

    /// Destination endpoint.
    pub fn dst(&self) -> GpuId {
        self.dst
    }

    /// The channels the route occupies, in hop order.
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// The forwarding GPU, if this is a detour route.
    pub fn via(&self) -> Option<GpuId> {
        self.via
    }

    /// True if this route forwards through an intermediate GPU.
    pub fn is_detour(&self) -> bool {
        self.via.is_some()
    }

    /// The medium class of the route (host-bridge routes are the slow path).
    pub fn class(&self) -> ChannelClass {
        self.class
    }

    /// Wormhole-style end-to-end time for `bytes` on an otherwise idle
    /// route: sum of per-hop latencies plus serialization at the
    /// bottleneck bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if a channel id does not belong to `topo`.
    pub fn occupancy(&self, topo: &Topology, bytes: ByteSize) -> Seconds {
        let mut alpha = Seconds::ZERO;
        let mut bottleneck = f64::INFINITY;
        for &c in &self.channels {
            let ch = topo.channel(c);
            alpha += ch.latency();
            bottleneck = bottleneck.min(ch.bandwidth().as_bytes_per_sec());
        }
        alpha + Seconds::new(bytes.as_f64() / bottleneck)
    }
}

/// Static route resolver over a [`Topology`].
///
/// The router tracks how many routes it has already allocated per channel
/// and per forwarding GPU, and load-balances new allocations across
/// parallel channels and detour candidates. This is how the DGX-1
/// embedding gives the two trees of the double-tree algorithm *different*
/// channels on doubled pairs such as GPU2–GPU3.
///
/// # Examples
///
/// ```
/// use ccube_topology::{dgx1, GpuId, Router};
/// let topo = dgx1();
/// let mut router = Router::new(&topo);
/// // Allocating the same directed pair twice uses both parallel NVLinks.
/// let a = router.allocate(GpuId(2), GpuId(3)).unwrap();
/// let b = router.allocate(GpuId(2), GpuId(3)).unwrap();
/// assert_ne!(a.channels()[0], b.channels()[0]);
/// ```
#[derive(Debug, Clone)]
pub struct Router<'a> {
    topo: &'a Topology,
    channel_load: Vec<u32>,
    forward_load: HashMap<GpuId, u32>,
    allow_host: bool,
    blocked: Vec<bool>,
}

impl<'a> Router<'a> {
    /// Creates a router over `topo` that permits host-bridge fallback.
    pub fn new(topo: &'a Topology) -> Self {
        Router {
            topo,
            channel_load: vec![0; topo.channels().len()],
            forward_load: HashMap::new(),
            allow_host: true,
            blocked: vec![false; topo.channels().len()],
        }
    }

    /// Marks `channel` unusable: no resolved route will traverse it.
    ///
    /// This is the re-routing entry point of the fault model — a link
    /// that is down for a fault epoch is blocked, and the usual
    /// direct → detour → host-bridge fallback picks the best surviving
    /// path, exactly as the paper's static routing would have at
    /// schedule-construction time.
    ///
    /// # Panics
    ///
    /// Panics if `channel` does not belong to the topology.
    pub fn block_channel(&mut self, channel: ChannelId) {
        self.blocked[channel.index()] = true;
    }

    /// True if `channel` was blocked with [`Router::block_channel`].
    pub fn is_blocked(&self, channel: ChannelId) -> bool {
        self.blocked[channel.index()]
    }

    /// Creates a router that refuses host-bridge routes (errors instead) —
    /// useful to assert that an embedding stays on NVLink + detours only.
    pub fn without_host_fallback(topo: &'a Topology) -> Self {
        Router {
            allow_host: false,
            ..Router::new(topo)
        }
    }

    /// The number of routes currently allocated on `channel`.
    pub fn load(&self, channel: ChannelId) -> u32 {
        self.channel_load[channel.index()]
    }

    /// Resolves a route without recording any allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoRoute`] when no path exists (or only a
    /// host path exists and the router was created with
    /// [`Router::without_host_fallback`]); [`TopologyError::UnknownGpu`]
    /// for out-of-range endpoints.
    pub fn route(&self, src: GpuId, dst: GpuId) -> Result<Route, TopologyError> {
        self.resolve(src, dst)
    }

    /// Resolves a route and records its channel / forwarding load so that
    /// subsequent allocations spread across parallel resources.
    ///
    /// # Errors
    ///
    /// Same as [`Router::route`].
    pub fn allocate(&mut self, src: GpuId, dst: GpuId) -> Result<Route, TopologyError> {
        let route = self.resolve(src, dst)?;
        for &c in route.channels() {
            self.channel_load[c.index()] += 1;
        }
        if let Some(via) = route.via() {
            *self.forward_load.entry(via).or_insert(0) += 1;
        }
        Ok(route)
    }

    fn resolve(&self, src: GpuId, dst: GpuId) -> Result<Route, TopologyError> {
        self.topo.check_gpu(src)?;
        self.topo.check_gpu(dst)?;
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }

        // 1. Direct NVLink / NIC channel, least-loaded first.
        if let Some(c) = self.best_direct(src, dst) {
            return Ok(Route::direct(src, dst, c, self.topo.channel(c).class()));
        }

        // 2. Single-intermediate detour over direct (non-host) channels.
        if let Some((via, c1, c2)) = self.best_detour(src, dst) {
            return Ok(Route::detour(src, dst, via, vec![c1, c2]));
        }

        // 3. Host bridge fallback.
        if self.allow_host {
            if let Some(c) = self.best_host(src, dst) {
                return Ok(Route::direct(src, dst, c, ChannelClass::HostBridge));
            }
        }

        Err(TopologyError::NoRoute { src, dst })
    }

    /// The least-loaded direct non-host channel from `src` to `dst`.
    fn best_direct(&self, src: GpuId, dst: GpuId) -> Option<ChannelId> {
        self.topo
            .channels_between(src, dst)
            .into_iter()
            .filter(|&c| !self.blocked[c.index()])
            .filter(|&c| self.topo.channel(c).class() != ChannelClass::HostBridge)
            .min_by_key(|&c| (self.channel_load[c.index()], c))
    }

    fn best_host(&self, src: GpuId, dst: GpuId) -> Option<ChannelId> {
        self.topo
            .channels_between(src, dst)
            .into_iter()
            .filter(|&c| !self.blocked[c.index()])
            .filter(|&c| self.topo.channel(c).class() == ChannelClass::HostBridge)
            .min_by_key(|&c| (self.channel_load[c.index()], c))
    }

    /// The best single-hop detour: minimizes (total channel load,
    /// forwarding load, intermediate id) for determinism.
    fn best_detour(&self, src: GpuId, dst: GpuId) -> Option<(GpuId, ChannelId, ChannelId)> {
        let mut best: Option<(u32, u32, GpuId, ChannelId, ChannelId)> = None;
        for via in self.topo.neighbors(src) {
            if via == dst {
                continue;
            }
            let (Some(c1), Some(c2)) = (self.best_direct(src, via), self.best_direct(via, dst))
            else {
                continue;
            };
            let load = self.channel_load[c1.index()] + self.channel_load[c2.index()];
            let fwd = self.forward_load.get(&via).copied().unwrap_or(0);
            let cand = (load, fwd, via, c1, c2);
            let better = match &best {
                None => true,
                Some((bl, bf, bv, _, _)) => (load, fwd, via) < (*bl, *bf, *bv),
            };
            if better {
                best = Some(cand);
            }
        }
        best.map(|(_, _, via, c1, c2)| (via, c1, c2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgx1::dgx1;

    #[test]
    fn direct_route_on_connected_pair() {
        let topo = dgx1();
        let router = Router::new(&topo);
        let r = router.route(GpuId(0), GpuId(1)).unwrap();
        assert!(!r.is_detour());
        assert_eq!(r.channels().len(), 1);
        assert_eq!(r.class(), ChannelClass::NvLink);
    }

    #[test]
    fn detour_route_avoids_host_on_dgx1() {
        let topo = dgx1();
        let router = Router::new(&topo);
        // Paper's example: GPU2 -> GPU4 via intermediate (GPU0 or GPU6).
        let r = router.route(GpuId(2), GpuId(4)).unwrap();
        assert!(r.is_detour());
        assert_eq!(r.channels().len(), 2);
        let via = r.via().unwrap();
        assert!(via == GpuId(0) || via == GpuId(6), "via was {via}");
        // Both hops are NVLink, never host bridge.
        for &c in r.channels() {
            assert_eq!(topo.channel(c).class(), ChannelClass::NvLink);
        }
    }

    #[test]
    fn allocation_spreads_over_parallel_links() {
        let topo = dgx1();
        let mut router = Router::new(&topo);
        let a = router.allocate(GpuId(6), GpuId(7)).unwrap();
        let b = router.allocate(GpuId(6), GpuId(7)).unwrap();
        assert_ne!(a.channels()[0], b.channels()[0]);
        assert_eq!(router.load(a.channels()[0]), 1);
        assert_eq!(router.load(b.channels()[0]), 1);
    }

    #[test]
    fn allocation_spreads_detours_across_intermediates() {
        let topo = dgx1();
        let mut router = Router::new(&topo);
        let a = router.allocate(GpuId(2), GpuId(4)).unwrap();
        let b = router.allocate(GpuId(2), GpuId(4)).unwrap();
        // The second detour should not stack on the exact same channels.
        assert_ne!(a.channels(), b.channels());
    }

    #[test]
    fn without_host_fallback_errors_when_detour_impossible() {
        use crate::channel::ChannelClass;
        use crate::graph::TopologyBuilder;
        use crate::units::{Bandwidth, Seconds};
        // A 3-node chain 0-1, plus isolated node 2 reachable only by host.
        let mut b = TopologyBuilder::new("chain", 3);
        b.bidirectional(
            GpuId(0),
            GpuId(1),
            Bandwidth::gb_per_sec(25.0),
            Seconds::from_micros(1.0),
            ChannelClass::NvLink,
        )
        .unwrap();
        b.bidirectional(
            GpuId(0),
            GpuId(2),
            Bandwidth::gb_per_sec(8.0),
            Seconds::from_micros(10.0),
            ChannelClass::HostBridge,
        )
        .unwrap();
        let topo = b.build().unwrap();

        let strict = Router::without_host_fallback(&topo);
        assert!(matches!(
            strict.route(GpuId(1), GpuId(2)),
            Err(TopologyError::NoRoute { .. })
        ));

        let lax = Router::new(&topo);
        // 1 -> 2 has no NVLink and no all-NVLink detour, so the host path
        // via the 0-2 bridge is unreachable from 1 directly... there is no
        // 1->2 channel at all, so even lax routing fails.
        assert!(lax.route(GpuId(1), GpuId(2)).is_err());
        // 0 -> 2 exists only via host bridge.
        let r = lax.route(GpuId(0), GpuId(2)).unwrap();
        assert_eq!(r.class(), ChannelClass::HostBridge);
    }

    #[test]
    fn blocking_the_doubled_pair_forces_a_detour() {
        let topo = dgx1();
        let mut router = Router::new(&topo);
        // GPU2-GPU3 is a doubled NVLink pair: blocking one channel falls
        // back to its parallel twin, blocking both forces a detour.
        let direct = router.route(GpuId(2), GpuId(3)).unwrap();
        assert!(!direct.is_detour());
        let twins = topo.channels_between(GpuId(2), GpuId(3));
        let nv: Vec<ChannelId> = twins
            .into_iter()
            .filter(|&c| topo.channel(c).class() == ChannelClass::NvLink)
            .collect();
        assert_eq!(nv.len(), 2, "2-3 is a doubled pair");
        router.block_channel(nv[0]);
        assert!(router.is_blocked(nv[0]));
        let second = router.route(GpuId(2), GpuId(3)).unwrap();
        assert!(!second.is_detour());
        assert_eq!(second.channels(), &[nv[1]]);
        router.block_channel(nv[1]);
        let rerouted = router.route(GpuId(2), GpuId(3)).unwrap();
        assert!(rerouted.is_detour(), "both twins down must detour");
        assert!(!rerouted.channels().contains(&nv[0]));
        assert!(!rerouted.channels().contains(&nv[1]));
    }

    #[test]
    fn blocking_everything_leaves_no_route() {
        let topo = dgx1();
        let mut router = Router::new(&topo);
        for c in topo.channels() {
            router.block_channel(c.id());
        }
        assert!(matches!(
            router.route(GpuId(0), GpuId(1)),
            Err(TopologyError::NoRoute { .. })
        ));
    }

    #[test]
    fn self_route_is_rejected() {
        let topo = dgx1();
        let router = Router::new(&topo);
        assert!(matches!(
            router.route(GpuId(3), GpuId(3)),
            Err(TopologyError::SelfLoop(_))
        ));
    }

    #[test]
    fn route_occupancy_accumulates_hops() {
        let topo = dgx1();
        let router = Router::new(&topo);
        let direct = router.route(GpuId(0), GpuId(1)).unwrap();
        let detour = router.route(GpuId(2), GpuId(4)).unwrap();
        let n = ByteSize::mib(4);
        let td = direct.occupancy(&topo, n);
        let tv = detour.occupancy(&topo, n);
        // Detour pays one extra hop of latency but the same bottleneck
        // serialization, so it is slower but only by the latency term.
        assert!(tv > td);
        assert!(tv - td < Seconds::from_micros(2.0));
    }

    #[test]
    fn all_dgx1_pairs_route_without_host() {
        let topo = dgx1();
        let router = Router::without_host_fallback(&topo);
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a != b {
                    let r = router.route(GpuId(a), GpuId(b)).unwrap();
                    assert!(r.channels().len() <= 2);
                }
            }
        }
    }
}
