//! Benchmark support for the C-Cube reproduction.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `figures` — one benchmark group per figure of the paper's
//!   evaluation, each running the corresponding
//!   [`ccube::experiments`] driver (the same code that regenerates the
//!   figure's data series);
//! * `micro` — microbenchmarks of the substrates: schedule construction,
//!   discrete-event simulation, the threaded AllReduce runtime, and the
//!   device-side synchronization primitives;
//! * `ablations` — design-choice sweeps called out in `DESIGN.md`: chunk
//!   count sensitivity, detour vs host-bridge routing, rank placement,
//!   channel arbitration, and single vs double tree.
//!
//! This library crate only hosts small shared helpers.

#![forbid(unsafe_code)]

use ccube_collectives::Rank;
use ccube_topology::{disjoint_rings, Topology};

/// The NCCL-style ring orders for a topology: every disjoint Hamiltonian
/// cycle, forward and reversed.
pub fn bidirectional_ring_orders(topo: &Topology, max_cycles: usize) -> Vec<Vec<Rank>> {
    let mut orders = Vec::new();
    for cycle in disjoint_rings(topo, max_cycles) {
        let fwd: Vec<Rank> = cycle.iter().map(|g| Rank(g.0)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        orders.push(fwd);
        orders.push(rev);
    }
    orders
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_yields_six_ring_orders() {
        let topo = ccube_topology::dgx1();
        let orders = bidirectional_ring_orders(&topo, 3);
        assert_eq!(orders.len(), 6);
    }
}
