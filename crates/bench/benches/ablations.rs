//! Ablation benchmarks for the design choices `DESIGN.md` calls out.
//!
//! Each group isolates one decision and sweeps its alternatives, timing
//! the *simulated communication* (reported via the returned makespans;
//! Criterion times the simulation itself, the printed CSV-like summaries
//! from `paper_figures` carry the modeled times):
//!
//! * chunk count K (the Eq. 4 optimum vs too-coarse / too-fine);
//! * detour routes vs the PCIe host bridge (what the paper avoided);
//! * rank placement (physical-topology-aware vs identity);
//! * channel arbitration (FIFO head-of-line vs chunk priority);
//! * one vs two trees.

use ccube_bench::bidirectional_ring_orders;
use ccube_collectives::cost::{k_opt, CostParams};
use ccube_collectives::{
    ring_allreduce_multi, tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Embedding,
    Overlap,
};
use ccube_sim::{simulate, SimOptions};
use ccube_topology::{dgx1, ByteSize};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dgx1_c1_makespan(k: usize, placement_aware: bool, opts: &SimOptions) -> f64 {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(64), k),
        Overlap::ReductionBroadcast,
    );
    let e = if placement_aware {
        Embedding::dgx1_double_tree(&topo, &s).unwrap()
    } else {
        Embedding::identity(&topo, &s).unwrap()
    };
    simulate(&topo, &s, &e, opts)
        .unwrap()
        .makespan()
        .as_secs_f64()
}

fn ablation_chunk_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_chunk_count");
    let kopt = k_opt(&CostParams::nvlink(), 8, ByteSize::mib(64)).div_ceil(2) * 2;
    for k in [2usize, 8, kopt, kopt * 8] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(dgx1_c1_makespan(k, true, &SimOptions::default())))
        });
    }
    g.finish();
}

fn ablation_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_placement");
    for (name, aware) in [("topology_aware", true), ("identity", false)] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(dgx1_c1_makespan(64, aware, &SimOptions::default())))
        });
    }
    g.finish();
}

fn ablation_detour_vs_host(c: &mut Criterion) {
    // The same double tree embedded with NVLink detours vs falling back
    // to the PCIe host bridge for the missing cross-quad links.
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).unwrap();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(64), 64),
        Overlap::ReductionBroadcast,
    );
    let detour = Embedding::dgx1_double_tree(&topo, &s).unwrap();
    let host = Embedding::identity_with_host(&topo, &s).unwrap();
    let mut g = c.benchmark_group("ablation_detour_vs_host");
    g.bench_function("nvlink_detours", |b| {
        b.iter(|| black_box(simulate(&topo, &s, &detour, &SimOptions::default()).unwrap()))
    });
    g.bench_function("host_bridge", |b| {
        b.iter(|| black_box(simulate(&topo, &s, &host, &SimOptions::default()).unwrap()))
    });
    g.finish();
}

fn ablation_arbitration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_arbitration");
    g.bench_function("fifo_hol", |b| {
        b.iter(|| black_box(dgx1_c1_makespan(64, true, &SimOptions::default())))
    });
    g.bench_function("chunk_priority", |b| {
        b.iter(|| black_box(dgx1_c1_makespan(64, true, &SimOptions::scale_out())))
    });
    g.finish();
}

fn ablation_tree_count(c: &mut Criterion) {
    let topo = dgx1();
    let mut g = c.benchmark_group("ablation_tree_count");
    let chunking = Chunking::even(ByteSize::mib(64), 64);
    let single_tree = BinaryTree::inorder(8).unwrap();
    let single = tree_allreduce(
        std::slice::from_ref(&single_tree),
        &chunking,
        Overlap::ReductionBroadcast,
    );
    let es = Embedding::identity(&topo, &single).unwrap();
    g.bench_function("single_tree", |b| {
        b.iter(|| black_box(simulate(&topo, &single, &es, &SimOptions::default()).unwrap()))
    });
    let dt = DoubleBinaryTree::new(8).unwrap();
    let double = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
    let ed = Embedding::dgx1_double_tree(&topo, &double).unwrap();
    g.bench_function("double_tree", |b| {
        b.iter(|| black_box(simulate(&topo, &double, &ed, &SimOptions::default()).unwrap()))
    });
    g.finish();
}

fn ablation_ring_count(c: &mut Criterion) {
    let topo = dgx1();
    let mut g = c.benchmark_group("ablation_ring_count");
    let all_orders = bidirectional_ring_orders(&topo, 3);
    for rings in [1usize, 2, 6] {
        let orders = all_orders[..rings].to_vec();
        let s = ring_allreduce_multi(ByteSize::mib(64), &orders);
        let e = Embedding::identity(&topo, &s).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(rings), &rings, |b, _| {
            b.iter(|| black_box(simulate(&topo, &s, &e, &SimOptions::default()).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_chunk_count, ablation_placement, ablation_detour_vs_host,
              ablation_arbitration, ablation_tree_count, ablation_ring_count
}
criterion_main!(ablations);
