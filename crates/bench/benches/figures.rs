//! One benchmark group per figure of the paper's evaluation.
//!
//! Each benchmark runs the experiment driver that regenerates that
//! figure's data (at a reduced sweep where the full one would dominate
//! the run), so `cargo bench` both times the pipeline and re-validates
//! that every figure still produces data.

use ccube::experiments::{fig01, fig03, fig04, fig12, fig13, fig14, fig15, fig16, fig17};
use ccube_topology::ByteSize;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig01(c: &mut Criterion) {
    c.bench_function("fig01_allreduce_ratio", |b| {
        b.iter(|| black_box(fig01::run()))
    });
}

fn bench_fig03(c: &mut Criterion) {
    c.bench_function("fig03_granularity", |b| b.iter(|| black_box(fig03::run())));
}

fn bench_fig04(c: &mut Criterion) {
    c.bench_function("fig04_ring_vs_tree", |b| b.iter(|| black_box(fig04::run())));
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_comm_overlap", |b| {
        b.iter(|| black_box(fig12::run_with(&[ByteSize::mib(16), ByteSize::mib(64)])))
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_overall", |b| {
        b.iter(|| black_box(fig13::run_with(&[16, 64])))
    });
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14_scaleout", |b| {
        b.iter(|| {
            black_box(fig14::run_with(
                &[8, 32],
                &[ByteSize::kib(16), ByteSize::mib(1)],
            ))
        })
    });
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_detour", |b| b.iter(|| black_box(fig15::run())));
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16_patterns", |b| b.iter(|| black_box(fig16::run())));
}

fn bench_fig17(c: &mut Criterion) {
    c.bench_function("fig17_resnet_layers", |b| {
        b.iter(|| black_box(fig17::run(64)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig01, bench_fig03, bench_fig04, bench_fig12, bench_fig13,
              bench_fig14, bench_fig15, bench_fig16, bench_fig17
}
criterion_main!(figures);
