//! Sweep-executor and DES hot-path benchmark.
//!
//! Not a criterion harness: this bench measures wall-clock scaling of
//! the parallel sweep executor against its serial output (which the
//! golden tests prove bit-identical) plus the single-run kernel rates
//! with tracing on and off, and writes the numbers to
//! `BENCH_sweep.json` at the repository root so the results are
//! machine-readable.
//!
//! ```text
//! cargo bench -p ccube-bench --bench sweep
//! ```

use ccube::experiments::fig14;
use ccube_collectives::{ring_allreduce, Embedding};
use ccube_sim::{simulate, FabricSpec, SimOptions};
use ccube_topology::{hierarchical, ByteSize, Seconds};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// [`System`] with a call counter: the per-point allocation figures in
/// the `prep_cache` block come from deltas of [`ALLOCS`]. Bench binary
/// only — the library crates stay `forbid(unsafe_code)`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed by one serial pass over the fig14 grid.
fn grid_allocs(ps: &[usize], ns: &[ByteSize]) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    std::hint::black_box(fig14::run_with_threads(ps, ns, 1));
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Median wall-clock seconds of `reps` runs of `f`.
fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn json_f(x: f64) -> String {
    format!("{x:.6}")
}

fn main() {
    // `cargo bench` passes --bench; an explicit --quick shrinks the reps
    // for smoke runs.
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 5 };

    // --- Sweep scaling: the Fig. 14 grid, serial vs parallel. ---------
    let ps = [4usize, 8, 16, 32, 64];
    let ns = [ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(16)];
    let points = ps.len() * ns.len();
    let serial_rows = fig14::run_with_threads(&ps, &ns, 1);

    let t_serial = median_secs(reps, || {
        assert_eq!(fig14::run_with_threads(&ps, &ns, 1).len(), points);
    });
    println!(
        "sweep fig14 grid  {points} points  serial          {:>8.1} ms  {:>8.1} points/s",
        t_serial * 1e3,
        points as f64 / t_serial
    );

    let mut parallel_json = Vec::new();
    for threads in [2usize, 4, 8] {
        let t = median_secs(reps, || {
            let rows = fig14::run_with_threads(&ps, &ns, threads);
            assert_eq!(rows, serial_rows, "parallel sweep diverged from serial");
        });
        let speedup = t_serial / t;
        println!(
            "sweep fig14 grid  {points} points  {threads} workers  {:>8.1} ms  {:>8.1} points/s  x{speedup:.2}",
            t * 1e3,
            points as f64 / t
        );
        parallel_json.push(format!(
            "{{\"threads\":{threads},\"secs\":{},\"points_per_sec\":{},\"speedup_vs_serial\":{}}}",
            json_f(t),
            json_f(points as f64 / t),
            json_f(speedup)
        ));
    }

    // --- Preparation cache: cold vs warm over the same grid. ----------
    // Cold disables the cache (every point re-lowers and re-gates, the
    // pre-PR behaviour); warm runs with the cache primed. One counted
    // pass each also records heap allocations per point.
    ccube_sim::set_prep_cache_enabled(false);
    let t_prep_cold = median_secs(reps, || {
        assert_eq!(fig14::run_with_threads(&ps, &ns, 1).len(), points);
    });
    let cold_allocs = grid_allocs(&ps, &ns) / points as u64;
    ccube_sim::set_prep_cache_enabled(true);
    ccube_sim::reset_prep_cache();
    let warm_rows = fig14::run_with_threads(&ps, &ns, 1); // prime
    assert_eq!(warm_rows, serial_rows, "prep cache changed sweep results");
    let misses = ccube_sim::prep_cache_stats().misses;
    let t_prep_warm = median_secs(reps, || {
        assert_eq!(fig14::run_with_threads(&ps, &ns, 1).len(), points);
    });
    let warm_allocs = grid_allocs(&ps, &ns) / points as u64;
    let hits = ccube_sim::prep_cache_stats().hits;
    println!(
        "prep fig14 grid  {points} points  cache off  {:>8.1} ms  {:>8.1} points/s  {cold_allocs} allocs/pt",
        t_prep_cold * 1e3,
        points as f64 / t_prep_cold
    );
    println!(
        "prep fig14 grid  {points} points  cache warm {:>8.1} ms  {:>8.1} points/s  {warm_allocs} allocs/pt  x{:.2}",
        t_prep_warm * 1e3,
        points as f64 / t_prep_warm,
        t_prep_cold / t_prep_warm
    );

    // --- Kernel rate: one large scale-out run, trace on vs off. -------
    let p = 64;
    let topo = hierarchical(p);
    let s = ring_allreduce(p, ByteSize::mib(16));
    let e = Embedding::nic(&topo, &s).unwrap();
    let traced = SimOptions::scale_out();
    let untraced = SimOptions::scale_out().without_trace();
    let events = simulate(&topo, &s, &e, &traced)
        .unwrap()
        .stats()
        .events_processed;

    let t_on = median_secs(reps, || {
        std::hint::black_box(simulate(&topo, &s, &e, &traced).unwrap());
    });
    let t_off = median_secs(reps, || {
        std::hint::black_box(simulate(&topo, &s, &e, &untraced).unwrap());
    });
    println!(
        "kernel hier64 ring  {events} events  trace on   {:>8.1} ms  {:>10.0} events/s",
        t_on * 1e3,
        events as f64 / t_on
    );
    println!(
        "kernel hier64 ring  {events} events  trace off  {:>8.1} ms  {:>10.0} events/s  x{:.2}",
        t_off * 1e3,
        events as f64 / t_off,
        t_on / t_off
    );

    // --- Switch-fabric rate: the same run on the componentized model. -
    // Passthrough processes the same event count as the approximation
    // (the equivalence contract); the split fabric adds uplink hops, so
    // its events/sec is the agent-layer overhead figure.
    let passthrough = SimOptions::scale_out().without_trace().with_network(
        ccube_sim::NetworkModel::SwitchFabric(FabricSpec::passthrough()),
    );
    let split = SimOptions::scale_out().without_trace().with_network(
        ccube_sim::NetworkModel::SwitchFabric(FabricSpec {
            radix: Some(8),
            oversubscription: 2.0,
            uplink_latency: Seconds::from_micros(1.0),
            ..FabricSpec::passthrough()
        }),
    );
    let split_events = simulate(&topo, &s, &e, &split)
        .unwrap()
        .stats()
        .events_processed;
    let t_pass = median_secs(reps, || {
        std::hint::black_box(simulate(&topo, &s, &e, &passthrough).unwrap());
    });
    let t_split = median_secs(reps, || {
        std::hint::black_box(simulate(&topo, &s, &e, &split).unwrap());
    });
    println!(
        "fabric hier64 ring  {events} events  passthrough {:>7.1} ms  {:>10.0} events/s  x{:.2} vs approx",
        t_pass * 1e3,
        events as f64 / t_pass,
        t_off / t_pass
    );
    println!(
        "fabric hier64 ring  {split_events} events  radix8/2:1  {:>7.1} ms  {:>10.0} events/s",
        t_split * 1e3,
        split_events as f64 / t_split
    );

    // --- Policy-search bound pruning: DES runs paid with and without
    // the certified lower bounds (surviving rows provably identical).
    let full_start = Instant::now();
    let full = ccube::experiments::policy_search::run_full(1);
    let t_search_full = full_start.elapsed().as_secs_f64();
    let bounded_start = Instant::now();
    let bounded = ccube::experiments::policy_search::run_bounded();
    let t_search_bounded = bounded_start.elapsed().as_secs_f64();
    assert!(
        bounded.rows.iter().all(|r| full.rows.contains(r)),
        "bounded search rows diverged from the full grid"
    );
    println!(
        "search bound-pruning  {} candidates  full {} sims {:>6.2} s  bounded {} sims {:>6.2} s",
        bounded.candidates,
        full.rows.len(),
        t_search_full,
        bounded.simulated,
        t_search_bounded
    );

    // --- Machine-readable record at the repository root. --------------
    // The host block makes the "no speedup on a 1-core box" caveat
    // self-documenting: speedups are meaningless without the
    // parallelism the run actually had available.
    let json = format!(
        "{{\n  \"host\": {{\n    \"available_parallelism\": {},\n    \"sweep_workers\": {},\n    \"threads_benchmarked\": [1,2,4,8]\n  }},\n  \"sweep\": {{\n    \"grid\": \"fig14 {}x{}\",\n    \"points\": {},\n    \"serial_secs\": {},\n    \"serial_points_per_sec\": {},\n    \"parallel\": [{}]\n  }},\n  \"prep_cache\": {{\n    \"grid\": \"fig14 serial\",\n    \"cold_secs\": {},\n    \"cold_points_per_sec\": {},\n    \"cold_allocs_per_point\": {},\n    \"warm_secs\": {},\n    \"warm_points_per_sec\": {},\n    \"warm_allocs_per_point\": {},\n    \"speedup_warm_vs_cold\": {},\n    \"misses_first_pass\": {},\n    \"hits_after_priming\": {}\n  }},\n  \"kernel\": {{\n    \"workload\": \"hier64 ring 16MiB\",\n    \"events\": {},\n    \"trace_on_secs\": {},\n    \"trace_on_events_per_sec\": {},\n    \"trace_off_secs\": {},\n    \"trace_off_events_per_sec\": {},\n    \"speedup_trace_off\": {}\n  }},\n  \"fabric\": {{\n    \"workload\": \"hier64 ring 16MiB\",\n    \"passthrough_events\": {},\n    \"passthrough_secs\": {},\n    \"passthrough_events_per_sec\": {},\n    \"split_spec\": \"radix 8, oversubscription 2.0, uplink 1us\",\n    \"split_events\": {},\n    \"split_secs\": {},\n    \"split_events_per_sec\": {}\n  }},\n  \"bound_pruning\": {{\n    \"grid\": \"policy_search\",\n    \"candidates\": {},\n    \"simulated_full\": {},\n    \"simulated_bounded\": {},\n    \"skipped_by_bound\": {},\n    \"full_secs\": {},\n    \"bounded_secs\": {},\n    \"rows_identical\": true\n  }}\n}}\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        ccube_sim::available_threads(),
        ps.len(),
        ns.len(),
        points,
        json_f(t_serial),
        json_f(points as f64 / t_serial),
        parallel_json.join(","),
        json_f(t_prep_cold),
        json_f(points as f64 / t_prep_cold),
        cold_allocs,
        json_f(t_prep_warm),
        json_f(points as f64 / t_prep_warm),
        warm_allocs,
        json_f(t_prep_cold / t_prep_warm),
        misses,
        hits,
        events,
        json_f(t_on),
        json_f(events as f64 / t_on),
        json_f(t_off),
        json_f(events as f64 / t_off),
        json_f(t_on / t_off),
        events,
        json_f(t_pass),
        json_f(events as f64 / t_pass),
        split_events,
        json_f(t_split),
        json_f(split_events as f64 / t_split),
        bounded.candidates,
        full.rows.len(),
        bounded.simulated,
        bounded.skipped.len(),
        json_f(t_search_full),
        json_f(t_search_bounded)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
