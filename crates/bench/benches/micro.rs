//! Microbenchmarks of the substrates: schedule builders, the symbolic
//! verifier, the discrete-event engine, the threaded runtime, and the
//! device-side synchronization primitives.

use ccube_collectives::cost::CostParams;
use ccube_collectives::{
    ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap,
};
use ccube_runtime::{DeviceSemaphore, RingAllReduceRuntime, TreeAllReduceRuntime};
use ccube_sim::{simulate, SimOptions};
use ccube_topology::{dgx1, hierarchical, ByteSize};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_schedule_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_build");
    for p in [8usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("ring", p), &p, |b, &p| {
            b.iter(|| black_box(ring_allreduce(p, ByteSize::mib(64))))
        });
        g.bench_with_input(
            BenchmarkId::new("overlapped_double_tree", p),
            &p,
            |b, &p| {
                let dt = DoubleBinaryTree::new(p).unwrap();
                let chunking = Chunking::even(ByteSize::mib(64), 64);
                b.iter(|| {
                    black_box(tree_allreduce(
                        dt.trees(),
                        &chunking,
                        Overlap::ReductionBroadcast,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_verifier(c: &mut Criterion) {
    let dt = DoubleBinaryTree::new(32).unwrap();
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(32), 32),
        Overlap::ReductionBroadcast,
    );
    c.bench_function("verify_check_allreduce_p32_k32", |b| {
        b.iter(|| ccube_collectives::verify::check_allreduce(black_box(&s)).unwrap())
    });
}

fn bench_des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_simulate");
    // DGX-1 overlapped double tree
    {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(64), 64),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        g.throughput(Throughput::Elements(s.transfers().len() as u64));
        g.bench_function("dgx1_c1_k64", |b| {
            b.iter(|| black_box(simulate(&topo, &s, &e, &SimOptions::default()).unwrap()))
        });
    }
    // scale-out ring, the transfer-count heavy case
    {
        let p = 64;
        let topo = hierarchical(p);
        let s = ring_allreduce(p, ByteSize::mib(16));
        let e = Embedding::nic(&topo, &s).unwrap();
        g.throughput(Throughput::Elements(s.transfers().len() as u64));
        g.bench_function("hier64_ring", |b| {
            b.iter(|| black_box(simulate(&topo, &s, &e, &SimOptions::scale_out()).unwrap()))
        });
    }
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    use ccube_sim::Kernel;
    use ccube_topology::Seconds;
    let mut g = c.benchmark_group("des_kernel");
    // Raw event-queue churn: schedule+pop N events with interleaved
    // times, the hot loop every engine in the workspace now runs on.
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut k: Kernel<u64> = Kernel::new();
                for i in 0..n {
                    // Deterministic scatter of times so pops reorder.
                    let t = (i * 2_654_435_761) % n;
                    k.schedule(Seconds::from_micros(t as f64), i, i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = k.pop() {
                    acc = acc.wrapping_add(e);
                }
                black_box(acc)
            })
        });
    }
    // Steady-state hold: a self-rescheduling event population of 1024,
    // the pattern of a long-running co-simulation.
    g.bench_function("reschedule_1k_x32", |b| {
        b.iter(|| {
            let mut k: Kernel<u64> = Kernel::new();
            for i in 0..1024u64 {
                k.schedule(Seconds::from_micros(i as f64), i, i);
            }
            for _ in 0..32 * 1024 {
                let (now, e) = k.pop().unwrap();
                k.schedule(now + Seconds::from_micros(1.0 + (e % 7) as f64), e, e);
            }
            black_box(k.stats().events_processed)
        })
    });
    g.finish();
}

fn bench_threaded_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_runtime");
    g.sample_size(10);
    let dt = DoubleBinaryTree::new(8).unwrap();
    let rt = TreeAllReduceRuntime::new(dt.trees().to_vec(), Overlap::ReductionBroadcast, 16);
    let inputs: Vec<Vec<f32>> = (0..8).map(|r| vec![r as f32; 1 << 16]).collect();
    g.throughput(Throughput::Bytes((8 * (1 << 16) * 4) as u64));
    g.bench_function("tree_cc_8x64k_f32", |b| {
        b.iter(|| black_box(rt.run(inputs.clone()).unwrap()))
    });
    let ring = RingAllReduceRuntime::new(8);
    g.bench_function("ring_8x64k_f32", |b| {
        b.iter(|| black_box(ring.run(inputs.clone()).unwrap()))
    });
    g.finish();
}

fn bench_sync_primitives(c: &mut Criterion) {
    c.bench_function("semaphore_post_wait_pair", |b| {
        let s = DeviceSemaphore::counting(0);
        b.iter(|| {
            s.post();
            s.wait();
        })
    });
    c.bench_function("semaphore_check_satisfied", |b| {
        let s = DeviceSemaphore::counting(64);
        b.iter(|| s.check(black_box(64)))
    });
}

fn bench_system_cosim(c: &mut Criterion) {
    use ccube::pipeline::TrainingPipeline;
    use ccube::systemjob::build_iteration_job;
    use ccube_sim::simulate_system;
    let pipeline = TrainingPipeline::dgx1(&ccube_dnn::resnet50(), 64);
    let job = build_iteration_job(&pipeline, Overlap::ReductionBroadcast, &[1.0; 8]);
    let topo = dgx1();
    let e = Embedding::dgx1_double_tree(&topo, &job.schedule).unwrap();
    c.bench_function("system_cosim_resnet50_iteration", |b| {
        b.iter(|| black_box(simulate_system(&topo, &job, &e, &SimOptions::default()).unwrap()))
    });
}

fn bench_primitives(c: &mut Criterion) {
    use ccube_collectives::primitives;
    let tree = ccube_collectives::BinaryTree::inorder(64).unwrap();
    let chunking = Chunking::even(ByteSize::mib(64), 32);
    c.bench_function("build_tree_broadcast_p64_k32", |b| {
        b.iter(|| {
            black_box(primitives::tree_broadcast(
                std::slice::from_ref(&tree),
                &chunking,
            ))
        })
    });
    c.bench_function("fit_params_5_samples", |b| {
        use ccube_collectives::cost::fit_params;
        let truth = CostParams::nvlink();
        let samples: Vec<(ByteSize, ccube_topology::Seconds)> = [16u64, 64, 256, 1024, 4096]
            .iter()
            .map(|&k| {
                let n = ByteSize::kib(k);
                (n, truth.step_time(n))
            })
            .collect();
        b.iter(|| black_box(fit_params(&samples).unwrap()))
    });
}

fn bench_cost_models(c: &mut Criterion) {
    let params = CostParams::nvlink();
    c.bench_function("cost_model_full_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in [2usize, 8, 64, 512] {
                for n in [ByteSize::kib(16), ByteSize::mib(64)] {
                    acc += ccube_collectives::cost::t_tree(&params, p, n).as_secs_f64();
                    acc += ccube_collectives::cost::t_overlapped(&params, p, n).as_secs_f64();
                    acc += ccube_collectives::cost::t_ring(&params, p, n).as_secs_f64();
                }
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_schedule_builders, bench_verifier, bench_kernel, bench_des_engine,
              bench_threaded_runtime, bench_sync_primitives, bench_cost_models,
              bench_system_cosim, bench_primitives
}
criterion_main!(micro);
