//! ZFNet (Zeiler & Fergus, 2014) built conv-by-conv.

use crate::layer::Layer;
use crate::model::NetworkModel;

/// Builds the ZFNet profile for 224×224 inputs: the five-convolution
/// AlexNet-style network with a 7×7/2 stem, plus three fully connected
/// layers — ≈62 M parameters.
///
/// ZFNet is the "simple CNN architecture" of the paper's evaluation
/// (§V-A); its small convolutional compute relative to its
/// fully-connected-heavy gradient traffic makes it the workload where
/// the ring can still beat C-Cube at small batch sizes (Fig. 13).
///
/// # Examples
///
/// ```
/// use ccube_dnn::zfnet;
/// let net = zfnet();
/// assert_eq!(net.layers().len(), 8);
/// ```
pub fn zfnet() -> NetworkModel {
    let layers = vec![
        // conv1: 7x7/2, 96 channels (224 -> 112, then 3x3/2 pool -> 55ish;
        // we track the conv resolutions).
        Layer::conv("conv1", 224, 224, 3, 96, 7, 2),
        // conv2: 5x5/2, 256 channels on the pooled 55x55 map.
        Layer::conv("conv2", 55, 55, 96, 256, 5, 2),
        // conv3-5: 3x3/1 on the pooled 13x13 map.
        Layer::conv("conv3", 13, 13, 256, 384, 3, 1),
        Layer::conv("conv4", 13, 13, 384, 384, 3, 1),
        Layer::conv("conv5", 13, 13, 384, 256, 3, 1),
        // classifier over the pooled 6x6x256 = 9216 features.
        Layer::fully_connected("fc6", 9216, 4096),
        Layer::fully_connected("fc7", 4096, 4096),
        Layer::fully_connected("fc8", 4096, 1000),
    ];
    NetworkModel::new("zfnet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_alexnet_class() {
        let params = zfnet().total_params() as f64;
        // AlexNet-family networks have ~60-65 M parameters.
        assert!((58e6..=68e6).contains(&params), "got {:.1} M", params / 1e6);
    }

    #[test]
    fn compute_is_light_relative_to_vgg() {
        let zf = zfnet().total_flops();
        let vgg = crate::vgg::vgg16().total_flops();
        assert!(vgg > 5 * zf);
    }

    #[test]
    fn fc_holds_most_parameters() {
        let net = zfnet();
        let fc: u64 = net.layers()[5..].iter().map(Layer::params).sum();
        assert!(fc as f64 / net.total_params() as f64 > 0.85);
    }
}
