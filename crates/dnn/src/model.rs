//! A whole network's profile and its layer-chunk bookkeeping.

use crate::compute::ComputeModel;
use crate::layer::Layer;
use ccube_topology::{ByteSize, Seconds};
use std::fmt;

/// An entire network as an ordered list of [`Layer`]s (layer 0 is the
/// input-side layer — the one whose gradients the *next* iteration's
/// forward pass needs first).
///
/// # Examples
///
/// ```
/// use ccube_dnn::{resnet50, ComputeModel};
/// use ccube_topology::ByteSize;
///
/// let net = resnet50();
/// let table = net.layer_chunk_table(ByteSize::mib(1));
/// // one entry per layer, non-decreasing — this is the paper's
/// // Layer-Chunk Table of Fig. 9
/// assert_eq!(table.len(), net.layers().len());
/// assert!(table.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkModel {
    name: String,
    layers: Vec<Layer>,
}

impl NetworkModel {
    /// Creates a network from its ordered layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        NetworkModel {
            name: name.into(),
            layers,
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Total gradient bytes (f32).
    pub fn total_param_bytes(&self) -> ByteSize {
        ByteSize::new(self.total_params() * 4)
    }

    /// Total per-sample forward FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(Layer::flops_fwd).sum()
    }

    /// Forward time of the whole network for a mini-batch.
    pub fn fwd_time(&self, batch: usize, compute: &ComputeModel) -> Seconds {
        compute.time(self.total_flops().saturating_mul(batch as u64))
    }

    /// Backward time (≈2× forward).
    pub fn bwd_time(&self, batch: usize, compute: &ComputeModel) -> Seconds {
        compute.time(2 * self.total_flops().saturating_mul(batch as u64))
    }

    /// Per-layer forward times for a mini-batch, in layer order.
    pub fn layer_fwd_times(&self, batch: usize, compute: &ComputeModel) -> Vec<Seconds> {
        self.layers
            .iter()
            .map(|l| l.fwd_time(batch, compute))
            .collect()
    }

    /// Per-layer gradient sizes, in layer order.
    pub fn layer_param_bytes(&self) -> Vec<ByteSize> {
        self.layers.iter().map(Layer::param_bytes).collect()
    }

    /// The **Layer-Chunk Table** (paper Fig. 9): for each layer, the
    /// *exclusive* upper chunk index covering its gradients when the
    /// contiguous gradient buffer is cut into `chunk_bytes` chunks in
    /// layer order. Layer `i` may start its next-iteration forward pass
    /// once chunks `0 .. table[i]` have been dequeued.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn layer_chunk_table(&self, chunk_bytes: ByteSize) -> Vec<usize> {
        assert!(chunk_bytes.as_u64() > 0, "chunk size must be positive");
        let mut cum = 0u64;
        let mut table = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            cum += layer.param_bytes().as_u64();
            table.push(cum.div_ceil(chunk_bytes.as_u64()) as usize);
        }
        table
    }

    /// Number of chunks covering the whole gradient buffer at the given
    /// chunk size.
    pub fn num_chunks(&self, chunk_bytes: ByteSize) -> usize {
        self.total_param_bytes()
            .as_u64()
            .div_ceil(chunk_bytes.as_u64()) as usize
    }
}

impl fmt::Display for NetworkModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.1} M params, {:.1} GFLOPs)",
            self.name,
            self.layers.len(),
            self.total_params() as f64 / 1e6,
            self.total_flops() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn tiny() -> NetworkModel {
        NetworkModel::new(
            "tiny",
            vec![
                Layer::new("a", LayerKind::Conv, 100, 1000),
                Layer::new("b", LayerKind::Conv, 200, 500),
                Layer::new("c", LayerKind::FullyConnected, 50, 100),
            ],
        )
    }

    #[test]
    fn totals_sum_layers() {
        let n = tiny();
        assert_eq!(n.total_params(), 350);
        assert_eq!(n.total_flops(), 1600);
        assert_eq!(n.total_param_bytes(), ByteSize::new(1400));
    }

    #[test]
    fn layer_chunk_table_is_cumulative() {
        let n = tiny();
        // chunk = 400 bytes; layer bytes are 400, 800, 200 (cum 400, 1200, 1400)
        let table = n.layer_chunk_table(ByteSize::new(400));
        assert_eq!(table, vec![1, 3, 4]);
        assert_eq!(n.num_chunks(ByteSize::new(400)), 4);
    }

    #[test]
    fn chunk_table_handles_sub_chunk_layers() {
        let n = tiny();
        // giant chunks: everything inside chunk 0
        let table = n.layer_chunk_table(ByteSize::mib(1));
        assert_eq!(table, vec![1, 1, 1]);
    }

    #[test]
    fn fwd_time_scales_with_batch() {
        let n = tiny();
        let c = ComputeModel::new(1e9, 1.0);
        let t1 = n.fwd_time(1, &c);
        let t8 = n.fwd_time(8, &c);
        assert!((t8.as_secs_f64() - 8.0 * t1.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_is_rejected() {
        let _ = NetworkModel::new("none", vec![]);
    }
}
