//! Sequence models (GNMT, Transformer) for the Fig. 1 workload suite.
//!
//! The paper's Fig. 1 includes the MLPerf translation workloads. Their
//! AllReduce traffic is fixed by their parameter counts, so we build the
//! published architectures layer by layer — an 8+8-layer GNMT with
//! 1024-unit LSTMs and the "big" Transformer (d=1024, FFN 4096, 6+6
//! layers) — and let [`workloads`](crate::workloads) derive gradient
//! bytes from them instead of quoting constants.

use crate::layer::{Layer, LayerKind};
use crate::model::NetworkModel;

/// Default sequence length used to convert per-token FLOPs into
/// per-sample compute.
const SEQ_LEN: u64 = 50;

/// An LSTM layer: 4 gates of `(input + hidden + 1) × hidden` parameters,
/// with per-sample FLOPs over `SEQ_LEN = 50` tokens.
pub fn lstm(name: impl Into<String>, input: u64, hidden: u64) -> Layer {
    let params = 4 * hidden * (input + hidden + 1);
    let flops = 2 * params * SEQ_LEN;
    Layer::new(name, LayerKind::Recurrent, params, flops)
}

/// A multi-head self/cross-attention block: Q, K, V and output
/// projections (`4·d² + 4·d` parameters).
pub fn attention(name: impl Into<String>, d_model: u64) -> Layer {
    let params = 4 * d_model * d_model + 4 * d_model;
    // projections + the seq x seq attention matmuls
    let flops = 2 * params * SEQ_LEN + 4 * SEQ_LEN * SEQ_LEN * d_model;
    Layer::new(name, LayerKind::Attention, params, flops)
}

/// A position-wise feed-forward block (`d → d_ff → d`, with biases).
pub fn feed_forward(name: impl Into<String>, d_model: u64, d_ff: u64) -> Layer {
    let params = d_model * d_ff + d_ff + d_ff * d_model + d_model;
    let flops = 2 * params * SEQ_LEN;
    Layer::new(name, LayerKind::FullyConnected, params, flops)
}

/// An embedding table (`vocab × d`); gradient traffic counts it fully
/// (dense-gradient AllReduce, as the MLPerf reference implementations
/// do for the shared embedding).
pub fn embedding(name: impl Into<String>, vocab: u64, d_model: u64) -> Layer {
    // lookup compute is negligible next to the matmuls
    Layer::new(
        name,
        LayerKind::Embedding,
        vocab * d_model,
        2 * d_model * SEQ_LEN,
    )
}

/// The GNMT translation model of the MLPerf suite: shared 32k-vocab
/// embedding, 8 encoder LSTM layers (first bidirectional) and 8 decoder
/// LSTM layers with attention, 1024 hidden units — ≈210 M parameters.
///
/// # Examples
///
/// ```
/// use ccube_dnn::gnmt;
/// let net = gnmt();
/// let m = net.total_params() as f64 / 1e6;
/// assert!((150.0..260.0).contains(&m), "{m} M");
/// ```
pub fn gnmt() -> NetworkModel {
    let d = 1024;
    let vocab = 32_000;
    let mut layers = vec![embedding("embed", vocab, d)];
    // encoder: layer 0 bidirectional (two LSTMs), then 7 unidirectional
    layers.push(lstm("enc0_fwd", d, d));
    layers.push(lstm("enc0_bwd", d, d));
    // layer 1 consumes the concatenated bidirectional output
    layers.push(lstm("enc1", 2 * d, d));
    for i in 2..8 {
        layers.push(lstm(format!("enc{i}"), d, d));
    }
    // decoder: 8 layers, first with attention context concatenated
    layers.push(attention("dec_attn", d));
    layers.push(lstm("dec0", 2 * d, d));
    for i in 1..8 {
        layers.push(lstm(format!("dec{i}"), d, d));
    }
    // output projection to the vocabulary
    layers.push(Layer::fully_connected("proj", d, vocab));
    NetworkModel::new("gnmt", layers)
}

/// The "big" Transformer of the MLPerf suite: d=1024, FFN 4096, 16
/// heads, 6 encoder + 6 decoder layers, shared 33k-vocab embedding —
/// ≈210 M parameters.
///
/// # Examples
///
/// ```
/// use ccube_dnn::transformer_big;
/// let net = transformer_big();
/// let m = net.total_params() as f64 / 1e6;
/// assert!((180.0..240.0).contains(&m), "{m} M");
/// ```
pub fn transformer_big() -> NetworkModel {
    let d = 1024;
    let d_ff = 4096;
    let vocab = 33_000;
    let mut layers = vec![embedding("embed", vocab, d)];
    for i in 0..6 {
        layers.push(attention(format!("enc{i}_attn"), d));
        layers.push(feed_forward(format!("enc{i}_ffn"), d, d_ff));
    }
    for i in 0..6 {
        layers.push(attention(format!("dec{i}_self"), d));
        layers.push(attention(format!("dec{i}_cross"), d));
        layers.push(feed_forward(format!("dec{i}_ffn"), d, d_ff));
    }
    NetworkModel::new("transformer-big", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_parameter_count() {
        // 4 gates x (1024 + 1024 + 1) x 1024 = 8.39 M
        let l = lstm("l", 1024, 1024);
        assert_eq!(l.params(), 4 * 1024 * (1024 + 1024 + 1));
    }

    #[test]
    fn gnmt_is_translation_scale() {
        let net = gnmt();
        let m = net.total_params() as f64 / 1e6;
        // MLPerf GNMT reference lands around 160-220 M parameters
        // (depending on vocab/config).
        assert!((150.0..260.0).contains(&m), "{m} M");
        assert!(net.layers().len() >= 19);
    }

    #[test]
    fn transformer_big_matches_published_scale() {
        let net = transformer_big();
        let m = net.total_params() as f64 / 1e6;
        // Vaswani et al. "big": ~213 M parameters.
        assert!((180.0..240.0).contains(&m), "{m} M");
    }

    #[test]
    fn attention_params_are_4d_squared() {
        let a = attention("a", 512);
        assert_eq!(a.params(), 4 * 512 * 512 + 4 * 512);
    }

    #[test]
    fn tensor_decomposition_covers_new_kinds() {
        for layer in [
            lstm("l", 64, 64),
            attention("a", 64),
            embedding("e", 100, 64),
        ] {
            let total: u64 = layer.tensor_bytes().iter().map(|b| b.as_u64()).sum();
            assert_eq!(total, layer.param_bytes().as_u64(), "{}", layer.name());
        }
    }
}
