//! A single network layer's analytical profile.

use crate::compute::ComputeModel;
use ccube_topology::{ByteSize, Seconds};
use std::fmt;

/// The architectural kind of a layer (affects nothing numerically; kept
/// for reporting and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution (parameters = k·k·cin·cout (+BN), FLOPs over the
    /// output feature map).
    Conv,
    /// Fully connected (parameters = in·out + out).
    FullyConnected,
    /// Recurrent (LSTM gate matrices).
    Recurrent,
    /// Multi-head attention (Q/K/V/O projections).
    Attention,
    /// Embedding table.
    Embedding,
    /// Pooling / activation — no parameters, negligible FLOPs tracked.
    Pool,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv => write!(f, "conv"),
            LayerKind::FullyConnected => write!(f, "fc"),
            LayerKind::Recurrent => write!(f, "lstm"),
            LayerKind::Attention => write!(f, "attn"),
            LayerKind::Embedding => write!(f, "embed"),
            LayerKind::Pool => write!(f, "pool"),
        }
    }
}

/// One layer of a [`NetworkModel`](crate::NetworkModel): its name, kind,
/// parameter count and per-sample forward FLOPs.
///
/// # Examples
///
/// ```
/// use ccube_dnn::{Layer, LayerKind};
/// let l = Layer::conv("conv1", 224, 224, 3, 64, 7, 2);
/// assert_eq!(l.kind(), LayerKind::Conv);
/// // 7*7*3*64 weights + 2*64 batch-norm parameters
/// assert_eq!(l.params(), 7 * 7 * 3 * 64 + 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    params: u64,
    flops_fwd: u64,
    /// For conv layers: output channels (batch-norm tensor length).
    bn_channels: u64,
    /// For fully connected layers: bias length.
    bias_len: u64,
}

impl Layer {
    /// Creates a layer from explicit parameter and FLOP counts.
    pub fn new(name: impl Into<String>, kind: LayerKind, params: u64, flops_fwd: u64) -> Self {
        Layer {
            name: name.into(),
            kind,
            params,
            flops_fwd,
            bn_channels: 0,
            bias_len: 0,
        }
    }

    /// Creates a 2-D convolution layer (with batch-norm parameters) on an
    /// `h`×`w` input with `cin` channels, producing `cout` channels with
    /// a `k`×`k` kernel and the given stride (same padding).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn conv(
        name: impl Into<String>,
        h: u64,
        w: u64,
        cin: u64,
        cout: u64,
        k: u64,
        stride: u64,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        let (oh, ow) = (h.div_ceil(stride), w.div_ceil(stride));
        let params = k * k * cin * cout + 2 * cout; // weights + BN scale/shift
        let flops = 2 * k * k * cin * cout * oh * ow;
        let mut layer = Layer::new(name, LayerKind::Conv, params, flops);
        layer.bn_channels = cout;
        layer
    }

    /// Creates a fully connected layer (`input`→`output`, with bias).
    pub fn fully_connected(name: impl Into<String>, input: u64, output: u64) -> Self {
        let mut layer = Layer::new(
            name,
            LayerKind::FullyConnected,
            input * output + output,
            2 * input * output,
        );
        layer.bias_len = output;
        layer
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's kind.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Number of trainable parameters.
    pub fn params(&self) -> u64 {
        self.params
    }

    /// Gradient bytes communicated for this layer (f32 gradients).
    pub fn param_bytes(&self) -> ByteSize {
        ByteSize::new(self.params * 4)
    }

    /// The layer's gradient *tensors* as the framework sees them: a conv
    /// layer contributes its weight tensor plus the two batch-norm
    /// tensors; a fully connected layer its weight plus bias. Layer-wise
    /// AllReduce (paper Fig. 3) launches one collective per tensor.
    pub fn tensor_bytes(&self) -> Vec<ByteSize> {
        match self.kind {
            LayerKind::Conv => {
                // params = weights + 2*cout (BN scale + shift)
                let cout = self.bn_channels;
                let weights = self.params - 2 * cout;
                vec![
                    ByteSize::new(weights * 4),
                    ByteSize::new(cout * 4),
                    ByteSize::new(cout * 4),
                ]
            }
            LayerKind::FullyConnected => {
                // params = in*out + out (bias)
                let bias = self.bias_len;
                vec![
                    ByteSize::new((self.params - bias) * 4),
                    ByteSize::new(bias * 4),
                ]
            }
            LayerKind::Recurrent | LayerKind::Attention => {
                // gate/projection matrices plus a bias-sized remainder;
                // reported as a 4-way weight split (the framework sees
                // one tensor per gate/projection)
                self.param_bytes().split(4)
            }
            LayerKind::Embedding => vec![self.param_bytes()],
            LayerKind::Pool => vec![ByteSize::ZERO],
        }
    }

    /// Per-sample forward FLOPs.
    pub fn flops_fwd(&self) -> u64 {
        self.flops_fwd
    }

    /// Forward time for a mini-batch on `compute`.
    pub fn fwd_time(&self, batch: usize, compute: &ComputeModel) -> Seconds {
        compute.time(self.flops_fwd.saturating_mul(batch as u64))
    }

    /// Backward time for a mini-batch: gradient w.r.t. inputs plus
    /// gradient w.r.t. weights ≈ 2× the forward FLOPs.
    pub fn bwd_time(&self, batch: usize, compute: &ComputeModel) -> Seconds {
        compute.time(2 * self.flops_fwd.saturating_mul(batch as u64))
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} params, {} MFLOPs",
            self.name,
            self.kind,
            self.params,
            self.flops_fwd / 1_000_000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_math() {
        // 3x3 conv, 64->128 channels on 56x56, stride 1
        let l = Layer::conv("c", 56, 56, 64, 128, 3, 1);
        assert_eq!(l.params(), 3 * 3 * 64 * 128 + 256);
        assert_eq!(l.flops_fwd(), 2 * 3 * 3 * 64 * 128 * 56 * 56);
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let s1 = Layer::conv("s1", 56, 56, 64, 64, 3, 1);
        let s2 = Layer::conv("s2", 56, 56, 64, 64, 3, 2);
        assert_eq!(s1.params(), s2.params());
        assert_eq!(s1.flops_fwd(), 4 * s2.flops_fwd());
    }

    #[test]
    fn fully_connected_math() {
        let l = Layer::fully_connected("fc", 4096, 1000);
        assert_eq!(l.params(), 4096 * 1000 + 1000);
        assert_eq!(l.flops_fwd(), 2 * 4096 * 1000);
    }

    #[test]
    fn backward_is_twice_forward() {
        let l = Layer::conv("c", 14, 14, 256, 256, 3, 1);
        let c = ComputeModel::v100();
        let f = l.fwd_time(32, &c);
        let b = l.bwd_time(32, &c);
        assert!((b.as_secs_f64() / f.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tensor_bytes_partition_params() {
        let conv = Layer::conv("c", 56, 56, 64, 128, 3, 1);
        let tensors = conv.tensor_bytes();
        assert_eq!(tensors.len(), 3);
        let sum: u64 = tensors.iter().map(|b| b.as_u64()).sum();
        assert_eq!(sum, conv.param_bytes().as_u64());
        assert_eq!(tensors[1], tensors[2]); // BN scale == shift

        let fc = Layer::fully_connected("fc", 4096, 1000);
        let tensors = fc.tensor_bytes();
        assert_eq!(tensors.len(), 2);
        let sum: u64 = tensors.iter().map(|b| b.as_u64()).sum();
        assert_eq!(sum, fc.param_bytes().as_u64());
        assert_eq!(tensors[1].as_u64(), 1000 * 4);
    }

    #[test]
    fn param_bytes_are_f32() {
        let l = Layer::fully_connected("fc", 10, 10);
        assert_eq!(l.param_bytes().as_u64(), (10 * 10 + 10) * 4);
    }
}
