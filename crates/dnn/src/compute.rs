//! The device compute model (FLOPs → time).

use ccube_topology::Seconds;
use std::fmt;

/// Converts FLOP counts into execution time for a GPU-like device.
///
/// The model is deliberately simple — `time = flops / (peak × efficiency)`
/// — because the paper's results are ratios (normalized performance,
/// speedups); the absolute throughput only scales the time axis.
///
/// # Examples
///
/// ```
/// use ccube_dnn::ComputeModel;
/// let c = ComputeModel::v100();
/// let t = c.time(5_500_000_000_000); // ~5.5 TFLOP
/// assert!(t.as_secs_f64() > 0.5 && t.as_secs_f64() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    peak_flops: f64,
    efficiency: f64,
}

impl ComputeModel {
    /// Creates a compute model from a peak FLOP/s rate and an achieved
    /// efficiency in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `peak_flops` is not positive or `efficiency` is outside
    /// `(0, 1]`.
    pub fn new(peak_flops: f64, efficiency: f64) -> Self {
        assert!(peak_flops > 0.0, "peak flops must be positive");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        ComputeModel {
            peak_flops,
            efficiency,
        }
    }

    /// A V100-like device: 15.7 TFLOP/s FP32 peak at 35% achieved
    /// efficiency (typical for real CNN layers).
    pub fn v100() -> Self {
        ComputeModel::new(15.7e12, 0.35)
    }

    /// Achieved FLOP/s.
    pub fn achieved_flops(&self) -> f64 {
        self.peak_flops * self.efficiency
    }

    /// Time to execute `flops` floating-point operations.
    pub fn time(&self, flops: u64) -> Seconds {
        Seconds::new(flops as f64 / self.achieved_flops())
    }

    /// This model slowed by a multiplicative factor in `(0, 1]` — used to
    /// charge detour-forwarding occupancy to intermediate GPUs (Fig. 15).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `(0, 1]`.
    #[must_use]
    pub fn slowed(&self, factor: f64) -> ComputeModel {
        ComputeModel::new(self.peak_flops, self.efficiency * factor)
    }
}

impl fmt::Display for ComputeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} TFLOP/s @ {:.0}% -> {:.1} TFLOP/s achieved",
            self.peak_flops / 1e12,
            self.efficiency * 100.0,
            self.achieved_flops() / 1e12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_linear_in_flops() {
        let c = ComputeModel::new(1e12, 0.5);
        let t1 = c.time(1_000_000_000);
        let t2 = c.time(2_000_000_000);
        assert!((t2.as_secs_f64() - 2.0 * t1.as_secs_f64()).abs() < 1e-15);
        assert!((t1.as_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slowed_reduces_throughput() {
        let c = ComputeModel::v100();
        let s = c.slowed(0.9);
        assert!(s.time(1_000_000) > c.time(1_000_000));
    }

    #[test]
    #[should_panic(expected = "efficiency must be in")]
    fn rejects_zero_efficiency() {
        let _ = ComputeModel::new(1e12, 0.0);
    }
}
