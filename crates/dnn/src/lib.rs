//! Analytical DNN workload models for C-Cube.
//!
//! The paper evaluates C-Cube on CUDA/cuDNN implementations of ZFNet,
//! VGG-16 and ResNet-50 (§V-A). We have no GPUs, so this crate supplies
//! the quantity those networks contribute to the evaluation: the
//! **per-layer profile** — parameter bytes (gradient traffic) and
//! forward/backward compute time — built analytically from the published
//! layer shapes.
//!
//! * [`resnet50`], [`vgg16`], [`zfnet`] — the three evaluation networks,
//!   constructed conv-by-conv; parameter totals match the published
//!   counts (≈25.6 M / ≈138.4 M / ≈62.4 M).
//! * [`ComputeModel`] converts per-layer FLOPs into time on a V100-like
//!   device; absolute times only scale the plots, never the ratios.
//! * [`workloads`] — MLPerf-like workload profiles for the paper's Fig. 1
//!   (AllReduce share of execution time).
//! * [`patterns`] — the three synthetic communication/computation
//!   patterns of Fig. 16 (Case 1–3), used to show when chaining helps
//!   and when "bubbles" appear.
//!
//! ResNet-50's profile also exhibits the trend of the paper's Fig. 17:
//! later layers carry more parameters but less computation, which is why
//! chaining communication with the *forward* pass of the next iteration
//! works so well for CNNs.
//!
//! # Examples
//!
//! ```
//! use ccube_dnn::{resnet50, ComputeModel};
//!
//! let net = resnet50();
//! // ≈ 25.6 M parameters, as published.
//! assert!((net.total_params() as f64 - 25.6e6).abs() < 0.5e6);
//! let compute = ComputeModel::v100();
//! let fwd = net.fwd_time(64, &compute);
//! let bwd = net.bwd_time(64, &compute);
//! assert!(bwd > fwd);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compute;
mod layer;
mod model;
pub mod patterns;
mod resnet;
pub mod seq;
mod vgg;
pub mod workloads;
mod zfnet;

pub use compute::ComputeModel;
pub use layer::{Layer, LayerKind};
pub use model::NetworkModel;
pub use resnet::resnet50;
pub use seq::{gnmt, transformer_big};
pub use vgg::vgg16;
pub use zfnet::zfnet;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::{
        gnmt, resnet50, transformer_big, vgg16, zfnet, ComputeModel, Layer, LayerKind, NetworkModel,
    };
}
