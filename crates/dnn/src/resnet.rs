//! ResNet-50 (He et al., 2016) built conv-by-conv.

use crate::layer::Layer;
use crate::model::NetworkModel;

/// Builds the ResNet-50 profile for 224×224 inputs.
///
/// Four bottleneck stages of [3, 4, 6, 3] blocks with widths
/// (64→256, 128→512, 256→1024, 512→2048) on feature maps of
/// 56/28/14/7 pixels, plus the 7×7 stem and the 1000-way classifier —
/// ≈25.6 M parameters and ≈4 GFLOPs per sample, matching the published
/// network.
///
/// The returned layer order is input-side first, which is the order the
/// gradient buffer is chunked in for gradient queuing. The profile shows
/// the Fig. 17 trend: parameters grow with depth while per-layer compute
/// shrinks — the pattern (Case 1 of Fig. 16) that makes forward-pass
/// chaining effective.
///
/// # Examples
///
/// ```
/// use ccube_dnn::resnet50;
/// let net = resnet50();
/// assert_eq!(net.name(), "resnet50");
/// assert!(net.layers().len() > 50);
/// ```
pub fn resnet50() -> NetworkModel {
    let mut layers = Vec::new();
    // Stem: 7x7/2 conv, 64 channels (224 -> 112), then 3x3/2 max pool
    // (112 -> 56, no parameters, omitted).
    layers.push(Layer::conv("conv1", 224, 224, 3, 64, 7, 2));

    // (blocks, in_channels, mid_channels, out_channels, spatial)
    let stages: [(usize, u64, u64, u64, u64); 4] = [
        (3, 64, 64, 256, 56),
        (4, 256, 128, 512, 28),
        (6, 512, 256, 1024, 14),
        (3, 1024, 512, 2048, 7),
    ];

    for (si, &(blocks, cin_stage, mid, cout, size)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let first = b == 0;
            let cin = if first { cin_stage } else { cout };
            // The first block of stages 2-4 downsamples: its 3x3 conv has
            // stride 2 and its input map is twice the stage size.
            let (in_size, stride) = if first && si > 0 {
                (size * 2, 2)
            } else {
                (size, 1)
            };
            let tag = |part: &str| format!("s{}b{}_{}", si + 1, b + 1, part);
            // 1x1 reduce operates on the input resolution.
            layers.push(Layer::conv(tag("1x1a"), in_size, in_size, cin, mid, 1, 1));
            // 3x3 (possibly strided) brings the map to the stage size.
            layers.push(Layer::conv(
                tag("3x3"),
                in_size,
                in_size,
                mid,
                mid,
                3,
                stride,
            ));
            // 1x1 expand at the stage resolution.
            layers.push(Layer::conv(tag("1x1b"), size, size, mid, cout, 1, 1));
            if first {
                // Projection shortcut.
                layers.push(Layer::conv(
                    tag("down"),
                    in_size,
                    in_size,
                    cin,
                    cout,
                    1,
                    stride,
                ));
            }
        }
    }

    // Global average pool (no params), then the classifier.
    layers.push(Layer::fully_connected("fc", 2048, 1000));

    NetworkModel::new("resnet50", layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeModel;

    #[test]
    fn parameter_count_matches_published() {
        let net = resnet50();
        let params = net.total_params() as f64;
        // torchvision resnet50: 25,557,032 parameters.
        assert!(
            (params - 25.56e6).abs() < 0.6e6,
            "got {:.2} M",
            params / 1e6
        );
    }

    #[test]
    fn flops_match_published() {
        let net = resnet50();
        // Published "4.1 GFLOPs" counts multiply-accumulates; our model
        // counts multiply and add separately, so compare MACs.
        let gmacs = net.total_flops() as f64 / 2e9;
        assert!((3.6..=4.6).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn layer_count_is_conv_stack_plus_fc() {
        let net = resnet50();
        // 1 stem + 16 blocks x 3 convs + 4 downsamples + 1 fc = 54
        assert_eq!(net.layers().len(), 54);
    }

    #[test]
    fn fig17_trend_params_up_compute_down() {
        // Compare the first half of the network against the second half:
        // parameters grow with depth, per-layer compute shrinks.
        let net = resnet50();
        let layers = net.layers();
        let half = layers.len() / 2;
        let params_front: u64 = layers[..half].iter().map(Layer::params).sum();
        let params_back: u64 = layers[half..].iter().map(Layer::params).sum();
        assert!(params_back > 2 * params_front);
        let flops_front: u64 = layers[..half].iter().map(Layer::flops_fwd).sum();
        let flops_back: u64 = layers[half..].iter().map(Layer::flops_fwd).sum();
        assert!(flops_front as f64 > 0.8 * flops_back as f64);
    }

    #[test]
    fn per_layer_times_sum_to_total() {
        let net = resnet50();
        let c = ComputeModel::v100();
        let sum: f64 = net
            .layer_fwd_times(64, &c)
            .iter()
            .map(|t| t.as_secs_f64())
            .sum();
        let total = net.fwd_time(64, &c).as_secs_f64();
        assert!((sum - total).abs() / total < 1e-9);
    }
}
