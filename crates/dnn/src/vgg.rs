//! VGG-16 (Simonyan & Zisserman, 2015) built conv-by-conv.

use crate::layer::Layer;
use crate::model::NetworkModel;

/// Builds the VGG-16 profile for 224×224 inputs: thirteen 3×3
/// convolutions in five blocks plus three fully connected layers —
/// ≈138.4 M parameters and ≈15.5 GFLOPs per sample.
///
/// VGG-16 is the backbone of the Single Stage Detector workload that
/// tops the paper's Fig. 1 AllReduce-share chart; its enormous fully
/// connected layers at the *end* of the network give it the steepest
/// Case-1 communication pattern of the three evaluation networks.
///
/// # Examples
///
/// ```
/// use ccube_dnn::vgg16;
/// let net = vgg16();
/// assert!((net.total_params() as f64 - 138.4e6).abs() < 1.5e6);
/// ```
pub fn vgg16() -> NetworkModel {
    let mut layers = Vec::new();
    // (block, convs, channels, spatial size of the block input)
    let blocks: [(usize, usize, u64, u64); 5] = [
        (1, 2, 64, 224),
        (2, 2, 128, 112),
        (3, 3, 256, 56),
        (4, 3, 512, 28),
        (5, 3, 512, 14),
    ];
    let mut cin = 3u64;
    for &(block, convs, channels, size) in &blocks {
        for c in 0..convs {
            layers.push(Layer::conv(
                format!("conv{block}_{}", c + 1),
                size,
                size,
                cin,
                channels,
                3,
                1,
            ));
            cin = channels;
        }
        // 2x2 max pool after each block (no parameters).
    }
    // 7x7x512 = 25088 flattened features.
    layers.push(Layer::fully_connected("fc6", 25088, 4096));
    layers.push(Layer::fully_connected("fc7", 4096, 4096));
    layers.push(Layer::fully_connected("fc8", 4096, 1000));

    NetworkModel::new("vgg16", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_published() {
        let net = vgg16();
        let params = net.total_params() as f64;
        // torchvision vgg16: 138,357,544 parameters.
        assert!(
            (params - 138.36e6).abs() < 1.5e6,
            "got {:.2} M",
            params / 1e6
        );
    }

    #[test]
    fn flops_match_published() {
        // Published "15.5 GFLOPs" counts multiply-accumulates.
        let gmacs = vgg16().total_flops() as f64 / 2e9;
        assert!((14.0..=17.0).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn layer_count() {
        assert_eq!(vgg16().layers().len(), 16);
    }

    #[test]
    fn fc_layers_dominate_parameters() {
        // The Case-1 pattern at its most extreme: the last three layers
        // hold the overwhelming majority of the parameters.
        let net = vgg16();
        let fc_params: u64 = net.layers()[13..].iter().map(Layer::params).sum();
        assert!(fc_params as f64 / net.total_params() as f64 > 0.85);
    }
}
