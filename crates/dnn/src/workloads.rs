//! MLPerf-like workload profiles for the paper's Fig. 1.
//!
//! The paper's Fig. 1 measures, on an 8-GPU DGX-1 running PyTorch with
//! NCCL, what fraction of execution time AllReduce takes for the MLPerf
//! suite — from ≈10% (Neural Collaborative Filtering, whose
//! embedding-table work dwarfs its dense gradients) up to ≈60% (Single
//! Stage Detector on a VGG backbone).
//!
//! We cannot rerun those framework measurements, so each workload is
//! recorded as a *profile*: gradient bytes per iteration, per-GPU
//! compute time per iteration, and how many AllReduce invocations the
//! framework issues (PyTorch DDP buckets gradients rather than doing a
//! single one-shot call). The AllReduce time is then computed with the
//! same α+β machinery as everything else, using a framework-level
//! effective bandwidth. Compute times are per-iteration magnitudes
//! consistent with published MLPerf v0.7-era DGX-1 runs; they set the
//! *ratios* of Fig. 1, which is the figure's point.

use ccube_collectives::cost::{t_ring, CostParams};
use ccube_topology::{Bandwidth, ByteSize, Seconds};
use std::fmt;

/// One workload's communication/computation profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: &'static str,
    grad_bytes: ByteSize,
    compute_per_iter: Seconds,
    invocations: usize,
}

impl Workload {
    /// Creates a workload profile.
    ///
    /// # Panics
    ///
    /// Panics if `invocations` is zero.
    pub fn new(
        name: &'static str,
        grad_bytes: ByteSize,
        compute_per_iter: Seconds,
        invocations: usize,
    ) -> Self {
        assert!(invocations > 0, "at least one allreduce invocation");
        Workload {
            name,
            grad_bytes,
            compute_per_iter,
            invocations,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Gradient bytes AllReduced per iteration.
    pub fn grad_bytes(&self) -> ByteSize {
        self.grad_bytes
    }

    /// Per-GPU compute time per iteration (forward + backward + optimizer).
    pub fn compute_per_iter(&self) -> Seconds {
        self.compute_per_iter
    }

    /// Number of AllReduce invocations the framework issues per iteration.
    pub fn invocations(&self) -> usize {
        self.invocations
    }

    /// AllReduce time per iteration under `env`.
    pub fn allreduce_time(&self, env: &FrameworkEnv) -> Seconds {
        let per_call = ByteSize::new(self.grad_bytes.as_u64() / self.invocations as u64);
        let mut total = Seconds::ZERO;
        for _ in 0..self.invocations {
            total += env.launch_overhead + t_ring(&env.params, env.num_gpus, per_call);
        }
        total
    }

    /// The Fig. 1 quantity: AllReduce time as a fraction of total
    /// execution time.
    pub fn allreduce_ratio(&self, env: &FrameworkEnv) -> f64 {
        let comm = self.allreduce_time(env).as_secs_f64();
        comm / (comm + self.compute_per_iter.as_secs_f64())
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} grads, {} compute/iter)",
            self.name, self.grad_bytes, self.compute_per_iter
        )
    }
}

/// The framework-level communication environment of the Fig. 1
/// measurement: NCCL ring through PyTorch on an 8-GPU DGX-1.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkEnv {
    /// α/β of the framework-visible AllReduce path.
    pub params: CostParams,
    /// Per-invocation launch overhead (kernel launch + DDP bookkeeping).
    pub launch_overhead: Seconds,
    /// Number of GPUs (8 for the DGX-1).
    pub num_gpus: usize,
}

impl Default for FrameworkEnv {
    fn default() -> Self {
        FrameworkEnv {
            // Framework-visible effective bandwidth is far below the
            // 150 GB/s NVLink aggregate: bucketing, stream sync, and the
            // single-ring NCCL path on small buckets.
            params: CostParams::new(Seconds::from_micros(8.0), Bandwidth::gb_per_sec(18.0)),
            launch_overhead: Seconds::from_micros(25.0),
            num_gpus: 8,
        }
    }
}

/// The MLPerf-like suite of the paper's Fig. 1, as (profile) rows.
///
/// Gradient sizes are derived from the layer-shape models where this
/// crate has them (ResNet-50, GNMT, Transformer) and quoted from the
/// published architectures otherwise; compute times are per-iteration
/// magnitudes from MLPerf v0.7-era 8-GPU DGX-1 runs.
///
/// # Examples
///
/// ```
/// use ccube_dnn::workloads::{mlperf_suite, FrameworkEnv};
/// let env = FrameworkEnv::default();
/// for w in mlperf_suite() {
///     let r = w.allreduce_ratio(&env);
///     assert!(r > 0.03 && r < 0.75, "{}: {r}", w.name());
/// }
/// ```
pub fn mlperf_suite() -> Vec<Workload> {
    // Gradient sizes derived from the layer-shape models where we have
    // them (f32 gradients).
    let resnet_grads = crate::resnet50().total_param_bytes();
    let gnmt_grads = crate::gnmt().total_param_bytes();
    let transformer_grads = crate::transformer_big().total_param_bytes();
    vec![
        // Single Stage Detector: VGG-16 backbone gradients, small per-GPU
        // batch, light per-iteration compute -> the ~60% outlier.
        Workload::new(
            "single_stage_detector",
            ByteSize::mib(100),
            Seconds::from_millis(10.0),
            40,
        ),
        // Mask R-CNN: ResNet-50 backbone + heads, heavier compute.
        Workload::new(
            "mask_rcnn",
            ByteSize::mib(170),
            Seconds::from_millis(95.0),
            70,
        ),
        // ResNet-50 classification at batch 64/GPU (derived gradients).
        Workload::new(
            "image_classification",
            resnet_grads,
            Seconds::from_millis(105.0),
            40,
        ),
        // GNMT translation: recurrent compute over the derived ~210 M
        // parameters.
        Workload::new("gnmt", gnmt_grads, Seconds::from_millis(380.0), 120),
        // Transformer "big": derived ~213 M parameters.
        Workload::new(
            "transformer",
            transformer_grads,
            Seconds::from_millis(340.0),
            100,
        ),
        // Neural Collaborative Filtering: huge embedding compute/memory
        // work per iteration, tiny dense gradients -> ~10%.
        Workload::new("ncf", ByteSize::mib(55), Seconds::from_millis(52.0), 20),
        // MiniGo reinforcement learning: small net, inference-heavy loop.
        Workload::new("minigo", ByteSize::mib(23), Seconds::from_millis(18.0), 12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_has_the_highest_ratio() {
        let env = FrameworkEnv::default();
        let suite = mlperf_suite();
        let ssd = suite
            .iter()
            .find(|w| w.name() == "single_stage_detector")
            .unwrap()
            .allreduce_ratio(&env);
        for w in &suite {
            assert!(ssd >= w.allreduce_ratio(&env), "{} beats ssd", w.name());
        }
        // Fig. 1: "up to 60%".
        assert!((0.5..0.72).contains(&ssd), "ssd ratio {ssd}");
    }

    #[test]
    fn ncf_is_near_ten_percent() {
        let env = FrameworkEnv::default();
        let ncf = mlperf_suite()
            .iter()
            .find(|w| w.name() == "ncf")
            .unwrap()
            .allreduce_ratio(&env);
        assert!((0.05..0.20).contains(&ncf), "ncf ratio {ncf}");
    }

    #[test]
    fn every_workload_is_at_least_a_few_percent() {
        // Fig. 1's takeaway: collective communication is ~10% even for
        // the memory-bound workloads and much more for CNNs.
        let env = FrameworkEnv::default();
        for w in mlperf_suite() {
            let r = w.allreduce_ratio(&env);
            assert!(r > 0.04, "{}: {r}", w.name());
        }
    }

    #[test]
    fn more_invocations_cost_more() {
        let env = FrameworkEnv::default();
        let few = Workload::new("x", ByteSize::mib(100), Seconds::from_millis(50.0), 1);
        let many = Workload::new("y", ByteSize::mib(100), Seconds::from_millis(50.0), 100);
        assert!(many.allreduce_time(&env) > few.allreduce_time(&env));
    }
}
