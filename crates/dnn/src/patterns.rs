//! Synthetic communication/computation patterns (paper Fig. 16).
//!
//! C-Cube chains communication with the *next iteration's forward pass*,
//! so its benefit depends on how per-layer compute and gradient size are
//! distributed across depth:
//!
//! * **Case 1** — compute shrinks and gradient size grows with depth
//!   (the common CNN shape, cf. Fig. 17): early layers' long forward
//!   computation hides the later layers' communication. Chaining is
//!   maximally effective.
//! * **Case 2** — compute *grows* with depth: forward layers finish
//!   before their successors' gradients arrive, creating "bubbles".
//! * **Case 3** — gradient size shrinks with depth (heavy early
//!   communication): the first chunk's turnaround is pushed back, so
//!   even the first forward layer starts late.

use ccube_topology::{ByteSize, Seconds};
use std::fmt;

/// A synthetic per-layer profile: forward time and gradient bytes per
/// layer, input-side first.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    name: &'static str,
    fwd_times: Vec<Seconds>,
    grad_bytes: Vec<ByteSize>,
}

impl Pattern {
    /// Creates a pattern from per-layer forward times and gradient sizes.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors are empty or differ in length.
    pub fn new(name: &'static str, fwd_times: Vec<Seconds>, grad_bytes: Vec<ByteSize>) -> Self {
        assert!(!fwd_times.is_empty(), "pattern needs at least one layer");
        assert_eq!(
            fwd_times.len(),
            grad_bytes.len(),
            "forward times and gradient sizes must align"
        );
        Pattern {
            name,
            fwd_times,
            grad_bytes,
        }
    }

    /// The pattern's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.fwd_times.len()
    }

    /// Per-layer forward times, input-side first.
    pub fn fwd_times(&self) -> &[Seconds] {
        &self.fwd_times
    }

    /// Per-layer gradient sizes, input-side first.
    pub fn grad_bytes(&self) -> &[ByteSize] {
        &self.grad_bytes
    }

    /// Total gradient bytes.
    pub fn total_grad_bytes(&self) -> ByteSize {
        self.grad_bytes.iter().copied().sum()
    }

    /// Total forward time.
    pub fn total_fwd_time(&self) -> Seconds {
        self.fwd_times.iter().fold(Seconds::ZERO, |acc, &t| acc + t)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {} grads, {} fwd)",
            self.name,
            self.num_layers(),
            self.total_grad_bytes(),
            self.total_fwd_time()
        )
    }
}

const LAYERS: usize = 5;

/// The magnitudes are chosen so total communication time is comparable
/// to total forward time (as in the paper's Fig. 16 diagrams): forward
/// layers of 1–5 ms against gradient slabs of 30–270 MiB. Only then do
/// the three distributions behave differently — with communication far
/// lighter than compute every case chains perfectly.
fn fwd_decreasing() -> Vec<Seconds> {
    (0..LAYERS)
        .map(|i| Seconds::from_millis((LAYERS - i) as f64))
        .collect()
}

fn fwd_increasing() -> Vec<Seconds> {
    (0..LAYERS)
        .map(|i| Seconds::from_millis((i + 1) as f64))
        .collect()
}

fn grads_increasing() -> Vec<ByteSize> {
    (0..LAYERS)
        .map(|i| ByteSize::mib(30 + i as u64 * 60))
        .collect()
}

fn grads_decreasing() -> Vec<ByteSize> {
    (0..LAYERS)
        .map(|i| ByteSize::mib(30 + (LAYERS - 1 - i) as u64 * 60))
        .collect()
}

/// Case 1 of Fig. 16: forward compute decreasing with depth, gradient
/// size increasing — the friendly CNN shape.
pub fn case1() -> Pattern {
    Pattern::new("case1_cnn_like", fwd_decreasing(), grads_increasing())
}

/// Case 2 of Fig. 16: forward compute *increasing* with depth — bubbles
/// appear because forward layers outrun the arriving gradients.
pub fn case2() -> Pattern {
    Pattern::new(
        "case2_compute_inverted",
        fwd_increasing(),
        grads_increasing(),
    )
}

/// Case 3 of Fig. 16: gradient size decreasing with depth (heavy early
/// communication) — the first chunk's turnaround is pushed back.
pub fn case3() -> Pattern {
    Pattern::new("case3_comm_inverted", fwd_decreasing(), grads_decreasing())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_share_totals() {
        // The three cases are controlled comparisons: same total compute
        // and same total communication, only the distribution differs.
        let (c1, c2, c3) = (case1(), case2(), case3());
        assert_eq!(c1.total_grad_bytes(), c2.total_grad_bytes());
        assert_eq!(c1.total_grad_bytes(), c3.total_grad_bytes());
        assert_eq!(c1.total_fwd_time(), c2.total_fwd_time());
        assert_eq!(c1.total_fwd_time(), c3.total_fwd_time());
    }

    #[test]
    fn case1_compute_decreases_grads_increase() {
        let p = case1();
        assert!(p.fwd_times().windows(2).all(|w| w[0] >= w[1]));
        assert!(p.grad_bytes().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn case2_compute_increases() {
        let p = case2();
        assert!(p.fwd_times().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn case3_grads_decrease() {
        let p = case3();
        assert!(p.grad_bytes().windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        let _ = Pattern::new(
            "bad",
            vec![Seconds::from_millis(1.0)],
            vec![ByteSize::mib(1), ByteSize::mib(2)],
        );
    }
}
