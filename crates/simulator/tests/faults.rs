//! End-to-end tests of the fault-injection engine: no-op guarantees,
//! forced detours on the DGX-1's doubled pairs, NIC stalls on the
//! scale-out fabric, boundary rescaling, replay determinism over sampled
//! plans, and shrinking of failing plans to 1-minimal reproducers.

use ccube_collectives::{
    ring_allreduce, tree_allreduce, verify, Chunking, DoubleBinaryTree, Embedding, Overlap,
    Schedule,
};
use ccube_sim::{
    forever, simulate_faulted, simulate_system_faulted, FaultEvent, FaultModel, FaultPlan,
    SimError, SimOptions, SimRng, SystemJob, TraceRecord,
};
use ccube_topology::{
    dgx1, hierarchical, ByteSize, ChannelClass, ChannelId, GpuId, Seconds, Topology,
};
use proptest::prelude::*;

fn compute_less(schedule: Schedule) -> SystemJob {
    SystemJob {
        schedule,
        compute: vec![],
        transfer_gates: vec![],
    }
}

/// The C1 configuration: overlapped double tree on the DGX-1.
fn c1(topo: &Topology) -> (Schedule, Embedding) {
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(16), 16),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(topo, &s).expect("embeds");
    (s, e)
}

#[test]
fn empty_plan_is_bit_identical_to_the_healthy_engine() {
    let topo = dgx1();
    let (s, e) = c1(&topo);
    let opts = SimOptions::default();
    let healthy =
        ccube_sim::simulate_system(&topo, &compute_less(s.clone()), &e, &opts).expect("runs");
    let faulted = simulate_faulted(&topo, &s, &e, &opts, &FaultPlan::empty()).expect("runs");
    assert_eq!(healthy, faulted, "empty plan must be a literal no-op");
}

#[test]
fn downing_the_doubled_nvlink_pair_forces_the_documented_detour() {
    let topo = dgx1();
    // The GPU2–GPU3 pair is doubled (paper Fig. 10): both 2→3 NVLinks
    // must go down before the router falls back to a detour.
    let twins: Vec<ChannelId> = topo
        .channels_between(GpuId(2), GpuId(3))
        .into_iter()
        .filter(|&c| topo.channel(c).class() == ChannelClass::NvLink)
        .collect();
    assert_eq!(twins.len(), 2, "GPU2-GPU3 is a doubled pair");

    let s = ring_allreduce(8, ByteSize::mib(8));
    let e = Embedding::identity(&topo, &s).expect("embeds");
    let opts = SimOptions::default();
    let healthy = simulate_faulted(&topo, &s, &e, &opts, &FaultPlan::empty()).expect("runs");
    // The healthy ring sends 2->3 over a direct NVLink: no detour hops
    // for those transfers (cross-quad hops like 3->4 do detour).
    let direct_pairs: Vec<_> = s
        .transfers()
        .iter()
        .filter(|t| t.src == ccube_collectives::Rank(2) && t.dst == ccube_collectives::Rank(3))
        .map(|t| t.id)
        .collect();
    assert!(!direct_pairs.is_empty());
    assert!(detour_vias_of(&healthy.trace, &direct_pairs).is_empty());

    let plan = FaultPlan::new(
        twins
            .iter()
            .map(|&c| FaultEvent::LinkDown {
                channel: c,
                from: Seconds::ZERO,
                until: forever(),
            })
            .collect(),
    )
    .expect("valid plan");
    let r = simulate_faulted(&topo, &s, &e, &opts, &plan).expect("host bridge keeps dgx1 routable");

    assert!(r.stats.reroutes_taken >= 1, "2->3 traffic must re-route");
    assert_eq!(r.stats.faults_injected, 2);
    assert!(
        r.makespan >= healthy.makespan,
        "detours cannot beat the healthy ring: {} < {}",
        r.makespan,
        healthy.makespan
    );
    // The dead channels never carried traffic and were down for the
    // whole run.
    for &c in &twins {
        assert!(r.channel_busy[c.index()].is_zero());
        assert_eq!(r.stats.channel_downtime[c.index()], r.makespan);
    }
    // Every 2->3 transfer now forwards through a quad-mate with direct
    // NVLinks to both endpoints — never through GPU2/GPU3 themselves.
    let vias = detour_vias_of(&r.trace, &direct_pairs);
    assert!(!vias.is_empty(), "the fallback route is a detour");
    for via in vias {
        assert_ne!(via, GpuId(2));
        assert_ne!(via, GpuId(3));
        let leg = |a: GpuId, b: GpuId| {
            topo.channels_between(a, b)
                .into_iter()
                .any(|c| topo.channel(c).class() == ChannelClass::NvLink)
        };
        assert!(leg(GpuId(2), via) && leg(via, GpuId(3)), "bad via {via}");
    }
    let reroutes = r
        .trace
        .records()
        .filter(|rec| matches!(rec, TraceRecord::Reroute { .. }))
        .count() as u64;
    assert_eq!(reroutes, r.stats.reroutes_taken);
}

fn detour_vias_of(
    trace: &ccube_sim::SimTrace,
    ids: &[ccube_collectives::TransferId],
) -> Vec<GpuId> {
    trace
        .records()
        .filter_map(|rec| match rec {
            TraceRecord::DetourHop { id, via, .. } if ids.contains(id) => Some(*via),
            _ => None,
        })
        .collect()
}

#[test]
fn nic_flaps_stall_until_repair_and_permanent_downs_are_unroutable() {
    let topo = hierarchical(4);
    let s = ring_allreduce(4, ByteSize::mib(1));
    let e = Embedding::nic(&topo, &s).expect("embeds");
    let opts = SimOptions::scale_out();
    let healthy = simulate_faulted(&topo, &s, &e, &opts, &FaultPlan::empty()).expect("runs");

    // Node 0's injection NIC (channel 2*0) flaps for half the healthy
    // run: the ring stalls, then resumes — no re-route exists on the
    // flat fabric, so the makespan stretches but the run completes.
    let inj0 = ChannelId(0);
    let flap = FaultPlan::new(vec![FaultEvent::LinkDown {
        channel: inj0,
        from: Seconds::ZERO,
        until: healthy.makespan * 0.5,
    }])
    .expect("valid");
    let r = simulate_faulted(&topo, &s, &e, &opts, &flap).expect("finishes after repair");
    assert!(r.makespan > healthy.makespan);
    assert_eq!(r.stats.reroutes_taken, 0, "NIC paths never re-route");

    // Permanently severed, the same NIC makes the ring unroutable, with
    // the stuck endpoint named in the error.
    let dead = FaultPlan::new(vec![FaultEvent::LinkDown {
        channel: inj0,
        from: Seconds::ZERO,
        until: forever(),
    }])
    .expect("valid");
    match simulate_faulted(&topo, &s, &e, &opts, &dead) {
        Err(SimError::Unroutable { src, .. }) => assert_eq!(src, GpuId(0)),
        other => panic!("expected Unroutable, got {other:?}"),
    }
}

#[test]
fn degradation_windows_rescale_in_flight_transfers() {
    let topo = dgx1();
    let s = ring_allreduce(8, ByteSize::mib(8));
    let e = Embedding::identity(&topo, &s).expect("embeds");
    let opts = SimOptions::default();
    let healthy = simulate_faulted(&topo, &s, &e, &opts, &FaultPlan::empty()).expect("runs");

    let nv01 = topo
        .channels_between(GpuId(0), GpuId(1))
        .into_iter()
        .find(|&c| topo.channel(c).class() == ChannelClass::NvLink)
        .expect("0-1 NVLink exists");
    let plan = FaultPlan::new(vec![FaultEvent::Degraded {
        channel: nv01,
        from: Seconds::ZERO,
        until: forever(),
        rate: 0.5,
    }])
    .expect("valid");
    let r = simulate_faulted(&topo, &s, &e, &opts, &plan).expect("runs");
    assert!(r.makespan > healthy.makespan);
    assert_eq!(r.stats.time_degraded, r.makespan, "degraded the whole run");
    assert_eq!(r.stats.reroutes_taken, 0, "degradation does not re-route");
}

#[test]
fn a_mid_run_straggler_rescales_running_compute() {
    let topo = dgx1();
    let s = ring_allreduce(8, ByteSize::kib(64));
    let e = Embedding::identity(&topo, &s).expect("embeds");
    let job = SystemJob {
        schedule: s,
        compute: vec![ccube_sim::ComputeTask {
            id: ccube_sim::ComputeTaskId(0),
            gpu: GpuId(0),
            duration: Seconds::from_millis(1.0),
            deps_compute: vec![],
            deps_transfers: vec![],
            label: "bwd".into(),
        }],
        transfer_gates: vec![],
    };
    // The task starts at t=0; a 2x straggler window opens at 0.5 ms, so
    // the remaining half runs at half speed: 0.5 + 0.5 * 2 = 1.5 ms.
    let plan = FaultPlan::new(vec![FaultEvent::Straggler {
        gpu: GpuId(0),
        from: Seconds::from_millis(0.5),
        until: forever(),
        slowdown: 2.0,
    }])
    .expect("valid");
    let r = simulate_system_faulted(&topo, &job, &e, &SimOptions::default(), &plan).expect("runs");
    assert!(
        (r.compute_complete[0].as_millis() - 1.5).abs() < 1e-9,
        "got {}",
        r.compute_complete[0]
    );
}

#[test]
fn failing_plans_shrink_to_one_minimal_reproducers() {
    let topo = hierarchical(4);
    let s = ring_allreduce(4, ByteSize::mib(1));
    let e = Embedding::nic(&topo, &s).expect("embeds");
    let opts = SimOptions::scale_out();

    // A noisy plan: one genuinely fatal event (permanent down of node
    // 0's injection NIC) buried among harmless flaps, degradations and
    // stragglers.
    let noise = |i: u32| -> Vec<FaultEvent> {
        vec![
            FaultEvent::LinkDown {
                channel: ChannelId(2 * i),
                from: Seconds::from_micros(5.0),
                until: Seconds::from_micros(9.0),
            },
            FaultEvent::Degraded {
                channel: ChannelId(2 * i + 1),
                from: Seconds::ZERO,
                until: Seconds::from_micros(40.0),
                rate: 0.75,
            },
            FaultEvent::Straggler {
                gpu: GpuId(i),
                from: Seconds::ZERO,
                until: Seconds::from_micros(20.0),
                slowdown: 1.25,
            },
        ]
    };
    let mut events = noise(1);
    events.push(FaultEvent::LinkDown {
        channel: ChannelId(0),
        from: Seconds::ZERO,
        until: forever(),
    });
    events.extend(noise(2));
    events.extend(noise(3));
    let plan = FaultPlan::new(events).expect("valid");

    let fails = |p: &FaultPlan| {
        matches!(
            simulate_faulted(&topo, &s, &e, &opts, p),
            Err(SimError::Unroutable { .. })
        )
    };
    assert!(fails(&plan));
    let minimal = plan.shrink(fails);
    assert_eq!(minimal.len(), 1, "one event explains the failure");
    assert_eq!(
        minimal.events()[0],
        FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: Seconds::ZERO,
            until: forever(),
        }
    );
    // 1-minimality: the empty plan passes.
    assert!(!fails(&FaultPlan::empty()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sampled fault schedule either completes a verified-correct
    /// AllReduce or fails with a typed `Unroutable`; replaying the same
    /// plan yields a bit-identical report.
    #[test]
    fn sampled_plans_complete_or_are_typed_unroutable(
        seed in 0u64..10_000,
        severity in 1u32..4,
    ) {
        let topo = dgx1();
        let (s, e) = c1(&topo);
        verify::check_allreduce(&s).expect("C1 is a correct AllReduce");
        let opts = SimOptions::default();
        let job = compute_less(s.clone());
        let healthy = simulate_system_faulted(&topo, &job, &e, &opts, &FaultPlan::empty())
            .expect("healthy run");
        let model = FaultModel::severity(severity, healthy.makespan);
        let plan = FaultPlan::sample(&model, &topo, &SimRng::new(seed));

        let first = simulate_system_faulted(&topo, &job, &e, &opts, &plan);
        let replay = simulate_system_faulted(&topo, &job, &e, &opts, &plan);
        match (&first, &replay) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b, "replay must be bit-identical");
                prop_assert_eq!(a.transfer_complete.len(), s.transfers().len());
                prop_assert!(a.makespan > Seconds::ZERO);
                prop_assert!(a.stats.faults_injected <= plan.len() as u64);
            }
            (Err(SimError::Unroutable { .. }), Err(SimError::Unroutable { .. })) => {}
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
}
