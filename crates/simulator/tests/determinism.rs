//! Determinism properties of the DES kernel and the engines built on it.
//!
//! The kernel's total event order `(time, key, seq)` makes every run a
//! pure function of its inputs: simulating the same schedule twice must
//! produce **bit-identical** reports — timings, busy intervals, traces
//! and counters included ([`SimReport`] derives `PartialEq` precisely so
//! this can be asserted wholesale).

use ccube_collectives::{
    ring_allreduce, tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Embedding, Overlap,
};
use ccube_sim::{simulate, Arbitration, Kernel, SimOptions, SimReport};
use ccube_topology::{dgx1, hierarchical, ByteSize, Topology};
use proptest::prelude::*;

fn overlap_strategy() -> impl Strategy<Value = Overlap> {
    prop_oneof![Just(Overlap::None), Just(Overlap::ReductionBroadcast)]
}

fn arbitration_strategy() -> impl Strategy<Value = Arbitration> {
    prop_oneof![Just(Arbitration::FifoHol), Just(Arbitration::ChunkPriority)]
}

/// Runs the same simulation twice and demands bit-identical reports.
fn assert_deterministic(
    topo: &Topology,
    schedule: &ccube_collectives::Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
) -> SimReport {
    let a = simulate(topo, schedule, embedding, opts).expect("first run");
    let b = simulate(topo, schedule, embedding, opts).expect("second run");
    assert_eq!(a, b, "two runs of the same inputs diverged");
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulate_is_deterministic_on_dgx1(
        p in 2usize..=8,
        kib in 1u64..2048,
        k in 1usize..24,
        overlap in overlap_strategy(),
        arbitration in arbitration_strategy(),
        use_tree in 0usize..2,
    ) {
        let topo = dgx1();
        let opts = SimOptions { arbitration, ..SimOptions::default() };
        let n = ByteSize::kib(kib);
        let (s, e) = if use_tree == 1 {
            let tree = BinaryTree::inorder(p).unwrap();
            let s = tree_allreduce(
                std::slice::from_ref(&tree),
                &Chunking::even(n, k),
                overlap,
            );
            let e = Embedding::identity(&topo, &s).unwrap();
            (s, e)
        } else {
            let s = ring_allreduce(p, n);
            let e = Embedding::identity(&topo, &s).unwrap();
            (s, e)
        };
        let report = assert_deterministic(&topo, &s, &e, &opts);
        prop_assert!(report.makespan() > ccube_topology::Seconds::ZERO);
    }

    #[test]
    fn simulate_is_deterministic_on_hierarchical(
        p in 2usize..32,
        kib in 1u64..2048,
        k in 2usize..24,
        overlap in overlap_strategy(),
        arbitration in arbitration_strategy(),
        use_double_tree in 0usize..2,
    ) {
        let topo = hierarchical(p);
        let opts = SimOptions { arbitration, ..SimOptions::default() };
        let n = ByteSize::kib(kib);
        let (s, e) = if use_double_tree == 1 && p >= 2 {
            match DoubleBinaryTree::new(p) {
                Ok(dt) => {
                    let s = tree_allreduce(dt.trees(), &Chunking::even(n, k), overlap);
                    let e = Embedding::nic(&topo, &s).unwrap();
                    (s, e)
                }
                Err(_) => {
                    let s = ring_allreduce(p, n);
                    let e = Embedding::nic(&topo, &s).unwrap();
                    (s, e)
                }
            }
        } else {
            let s = ring_allreduce(p, n);
            let e = Embedding::nic(&topo, &s).unwrap();
            (s, e)
        };
        // Shared NIC channels are where arbitration actually bites, so
        // this exercises the contended paths of the pool.
        let report = assert_deterministic(&topo, &s, &e, &opts);
        prop_assert!(report.makespan() > ccube_topology::Seconds::ZERO);
    }

    #[test]
    fn kernel_pops_any_event_set_in_total_order(
        times in prop::collection::vec(0u64..1000, 1..64),
        seed in 0u64..1024,
    ) {
        // Whatever the insertion order, events pop sorted by
        // (time, key, seq) — replaying the same set twice gives the same
        // sequence.
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut kernel: Kernel<usize> = Kernel::with_seed(seed);
            for (i, &t) in times.iter().enumerate() {
                let at = ccube_topology::Seconds::from_micros(t as f64);
                kernel.schedule(at, t % 7, i);
            }
            let mut popped = Vec::new();
            while let Some((at, ev)) = kernel.pop() {
                popped.push((at, ev));
            }
            prop_assert_eq!(popped.len(), times.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "clock went backwards");
            }
            runs.push(popped);
        }
        prop_assert_eq!(&runs[0], &runs[1]);
    }
}
