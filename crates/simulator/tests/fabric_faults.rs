//! Fault tolerance of the multi-uplink spine/leaf fabric: adaptive
//! failover onto surviving uplinks, stall-until-repair when diversity
//! is exhausted, typed `Unroutable` on permanent total severance, and
//! the validation edges of fabric-native fault targets.

use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap, Schedule};
use ccube_sim::{
    forever, simulate_system, simulate_system_faulted, FabricSpec, FaultEvent, FaultPlan,
    NetworkModel, SimError, SimOptions, SimRng, SystemJob, TraceRecord, UplinkPolicy,
};
use ccube_topology::{hierarchical, ByteSize, ChannelId, Seconds};
use proptest::prelude::*;

fn compute_less(schedule: Schedule) -> SystemJob {
    SystemJob {
        schedule,
        compute: vec![],
        transfer_gates: vec![],
    }
}

/// A radix-4 spine/leaf spec over `hierarchical(16)`: 4 leaves with
/// `uplinks` slots each, total uplink capacity held constant so the
/// healthy makespan is invariant in `uplinks`.
fn spec(uplinks: usize, policy: UplinkPolicy) -> FabricSpec {
    FabricSpec {
        radix: Some(4),
        spines: uplinks.max(1),
        uplinks,
        uplink_policy: policy,
        ..FabricSpec::default()
    }
}

fn opts_for(uplinks: usize, policy: UplinkPolicy) -> SimOptions {
    SimOptions::scale_out().with_network(NetworkModel::SwitchFabric(spec(uplinks, policy)))
}

/// The C1 double tree on `hierarchical(16)`: its cross-leaf edges have
/// both even and odd source nodes, so hash striping spreads them over
/// both uplink slots (a unidirectional ring would put every leaf
/// crossing on one slot and leave the other idle).
fn setup() -> (ccube_topology::Topology, SystemJob, Embedding) {
    let topo = hierarchical(16);
    let dt = DoubleBinaryTree::new(16).expect("16 ranks");
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(8), 16),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    (topo, compute_less(s), e)
}

#[test]
fn two_uplinks_fail_over_and_beat_the_single_uplink_fabric() {
    let (topo, job, e) = setup();
    let one = opts_for(1, UplinkPolicy::Failover);
    let two = opts_for(2, UplinkPolicy::Failover);
    let healthy1 = simulate_system(&topo, &job, &e, &one).expect("healthy 1-uplink");
    let healthy2 = simulate_system(&topo, &job, &e, &two).expect("healthy 2-uplink");

    // Slot 0 of every leaf down for most of the healthy run — valid on
    // both fabrics (every leaf has a slot 0).
    let window = healthy1.makespan * 0.75;
    let plan = FaultPlan::new(
        (0..4)
            .map(|leaf| FaultEvent::UplinkDown {
                leaf,
                uplink: 0,
                from: Seconds::ZERO,
                until: window,
            })
            .collect(),
    )
    .expect("valid plan");

    let r1 = simulate_system_faulted(&topo, &job, &e, &one, &plan).expect("1-uplink recovers");
    let r2 = simulate_system_faulted(&topo, &job, &e, &two, &plan).expect("2-uplink recovers");

    // One uplink: no diversity, every crossing stalls out the window.
    assert_eq!(r1.stats.failovers, 0, "k=1 has nowhere to fail over");
    assert!(r1.makespan > healthy1.makespan);
    // Two uplinks: slot-0 traffic moves to slot 1 and the run recovers.
    assert!(r2.stats.failovers >= 1, "k=2 must record failover reroutes");
    // Slowdown (faulted over own healthy makespan) is the cross-fabric
    // comparable: the 2-uplink fabric must degrade strictly less.
    let slow1 = r1.makespan.as_secs_f64() / healthy1.makespan.as_secs_f64();
    let slow2 = r2.makespan.as_secs_f64() / healthy2.makespan.as_secs_f64();
    assert!(
        slow2 < slow1,
        "failover must strictly beat the stalled single-uplink fabric: {slow2} vs {slow1}"
    );
    // Every recorded failover appears in the trace.
    let traced = r2
        .trace
        .records()
        .filter(|rec| matches!(rec, TraceRecord::Failover { .. }))
        .count() as u64;
    assert_eq!(traced, r2.stats.failovers);
    // Replay is bit-identical.
    let again = simulate_system_faulted(&topo, &job, &e, &two, &plan).expect("replay");
    assert_eq!(r2, again);
}

#[test]
fn hash_policy_stalls_until_repair_instead_of_failing_over() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Hash);
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
    let plan = FaultPlan::new(vec![FaultEvent::UplinkDown {
        leaf: 0,
        uplink: 0,
        from: Seconds::ZERO,
        until: healthy.makespan * 0.5,
    }])
    .expect("valid");
    let r = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("completes");
    assert_eq!(r.stats.failovers, 0, "hash striping never revises");
    assert!(r.makespan > healthy.makespan, "striped traffic stalls");
}

#[test]
fn switch_down_takes_a_whole_spine_and_failover_recovers() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Failover);
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
    // Spine 0 serves slot 0 of every leaf (2 spines, slot j -> spine j).
    let plan = FaultPlan::new(vec![FaultEvent::SwitchDown {
        spine: 0,
        from: Seconds::ZERO,
        until: healthy.makespan * 0.75,
    }])
    .expect("valid");
    let r = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("recovers");
    assert!(r.stats.failovers >= 1, "spine loss must trigger failover");
    // Per-uplink busy time is reported: 2 slots x 2 legs x 4 leaves.
    assert_eq!(r.stats.uplink_busy.len(), 16);
    // Surviving-spine ports carried traffic during the outage.
    assert!(r.stats.uplink_busy.iter().any(|b| !b.is_zero()));
}

#[test]
fn permanent_total_severance_is_unroutable_not_deadlock() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Failover);
    // Both slots of leaf 0 permanently down: exhausted diversity.
    let plan = FaultPlan::new(
        (0..2)
            .map(|slot| FaultEvent::UplinkDown {
                leaf: 0,
                uplink: slot,
                from: Seconds::ZERO,
                until: forever(),
            })
            .collect(),
    )
    .expect("valid");
    match simulate_system_faulted(&topo, &job, &e, &opts, &plan) {
        Err(SimError::Unroutable { .. }) => {}
        other => panic!("expected Unroutable, got {other:?}"),
    }
}

#[test]
fn forever_fault_on_the_last_surviving_uplink_is_unroutable() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Failover);
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
    // Slot 0 dies at t=0 and repairs late; slot 1 — the last survivor
    // while slot 0 is out — dies forever mid-run. After slot 0 repairs
    // the fabric is routable again, so the run completes; but if slot 0
    // is ALSO permanent, it cannot.
    let transient_then_fatal = |slot0_until: Seconds| {
        FaultPlan::new(vec![
            FaultEvent::UplinkDown {
                leaf: 0,
                uplink: 0,
                from: Seconds::ZERO,
                until: slot0_until,
            },
            FaultEvent::UplinkDown {
                leaf: 0,
                uplink: 1,
                from: healthy.makespan * 0.25,
                until: forever(),
            },
        ])
        .expect("valid")
    };
    let recovers = transient_then_fatal(healthy.makespan * 0.5);
    let r = simulate_system_faulted(&topo, &job, &e, &opts, &recovers)
        .expect("slot 0 repair restores routability");
    assert!(r.makespan >= healthy.makespan);
    let fatal = transient_then_fatal(forever());
    match simulate_system_faulted(&topo, &job, &e, &opts, &fatal) {
        Err(SimError::Unroutable { .. }) => {}
        other => panic!("expected Unroutable, got {other:?}"),
    }
}

#[test]
fn overlapping_uplink_windows_on_one_slot_compose_like_counters() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Hash);
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
    let m = healthy.makespan;
    // Two overlapping windows on the same slot: the port is down until
    // the LATER repair, equivalent to one merged window.
    let overlapping = FaultPlan::new(vec![
        FaultEvent::UplinkDown {
            leaf: 0,
            uplink: 0,
            from: Seconds::ZERO,
            until: m * 0.4,
        },
        FaultEvent::UplinkDown {
            leaf: 0,
            uplink: 0,
            from: m * 0.2,
            until: m * 0.6,
        },
    ])
    .expect("valid");
    let merged = FaultPlan::new(vec![FaultEvent::UplinkDown {
        leaf: 0,
        uplink: 0,
        from: Seconds::ZERO,
        until: m * 0.6,
    }])
    .expect("valid");
    let a = simulate_system_faulted(&topo, &job, &e, &opts, &overlapping).expect("runs");
    let b = simulate_system_faulted(&topo, &job, &e, &opts, &merged).expect("runs");
    assert_eq!(
        a.makespan, b.makespan,
        "overlapping windows must compose to their union"
    );
}

#[test]
fn uplink_and_link_down_overlap_on_the_same_leaf_without_deadlock() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Failover);
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
    let m = healthy.makespan;
    // An uplink outage on leaf 0 overlapping a NIC link flap on node 0
    // (which lives on leaf 0): two independent fault mechanisms on the
    // same corner of the fabric, both transient.
    let plan = FaultPlan::new(vec![
        FaultEvent::UplinkDown {
            leaf: 0,
            uplink: 0,
            from: Seconds::ZERO,
            until: m * 0.5,
        },
        FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: m * 0.25,
            until: m * 0.75,
        },
    ])
    .expect("valid");
    let r = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("completes");
    assert!(r.makespan > healthy.makespan);
    let again = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("replay");
    assert_eq!(r, again, "mixed fault kinds must replay bit-identically");
}

#[test]
fn repair_exactly_at_the_horizon_boundary_completes() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Hash);
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
    // The repair lands exactly on the healthy makespan: stalled traffic
    // resumes at that instant and the run still terminates.
    let plan = FaultPlan::new(vec![FaultEvent::UplinkDown {
        leaf: 0,
        uplink: 0,
        from: Seconds::ZERO,
        until: healthy.makespan,
    }])
    .expect("valid");
    let r = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("completes");
    assert!(r.makespan >= healthy.makespan);
}

#[test]
fn fabric_targets_are_rejected_under_the_channel_approximation() {
    let (topo, job, e) = setup();
    let plan = FaultPlan::new(vec![FaultEvent::UplinkDown {
        leaf: 0,
        uplink: 0,
        from: Seconds::ZERO,
        until: forever(),
    }])
    .expect("valid as a plan");
    match simulate_system_faulted(&topo, &job, &e, &SimOptions::scale_out(), &plan) {
        Err(SimError::FaultPlanInvalid(msg)) => {
            assert!(msg.contains("switch-fabric"), "got: {msg}")
        }
        other => panic!("expected FaultPlanInvalid, got {other:?}"),
    }
}

#[test]
fn out_of_range_fabric_targets_are_rejected() {
    let (topo, job, e) = setup();
    let opts = opts_for(2, UplinkPolicy::Hash);
    let cases = [
        FaultEvent::UplinkDown {
            leaf: 99,
            uplink: 0,
            from: Seconds::ZERO,
            until: forever(),
        },
        FaultEvent::UplinkDown {
            leaf: 0,
            uplink: 2,
            from: Seconds::ZERO,
            until: forever(),
        },
        FaultEvent::SwitchDown {
            spine: 2,
            from: Seconds::ZERO,
            until: forever(),
        },
    ];
    for ev in cases {
        let plan = FaultPlan::new(vec![ev]).expect("structurally valid");
        match simulate_system_faulted(&topo, &job, &e, &opts, &plan) {
            Err(SimError::FaultPlanInvalid(_)) => {}
            other => panic!("expected FaultPlanInvalid for {ev:?}, got {other:?}"),
        }
    }
}

#[test]
fn sampled_uplink_plans_are_pure_functions_of_the_seed() {
    let rng = SimRng::new(0xF0);
    let a = FaultPlan::sample_uplinks(
        4,
        2,
        Seconds::from_micros(500.0),
        Seconds::from_micros(200.0),
        Seconds::from_micros(2_000.0),
        &rng,
    );
    let b = FaultPlan::sample_uplinks(
        4,
        2,
        Seconds::from_micros(500.0),
        Seconds::from_micros(200.0),
        Seconds::from_micros(2_000.0),
        &rng,
    );
    assert_eq!(a.events(), b.events());
    assert!(!a.is_empty(), "these rates produce outages");
    // Sampling with fewer slots yields a prefix-compatible plan: every
    // event targets slot 0, so it is valid on ANY fabric.
    let narrow = FaultPlan::sample_uplinks(
        4,
        1,
        Seconds::from_micros(500.0),
        Seconds::from_micros(200.0),
        Seconds::from_micros(2_000.0),
        &rng,
    );
    assert!(narrow
        .events()
        .iter()
        .all(|e| matches!(e, FaultEvent::UplinkDown { uplink: 0, .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No sampled k-uplink fault plan deadlocks the fabric engine: every
    /// run either completes (all transient windows eventually repair) or
    /// is impossible — and with finite windows, impossibility is ruled
    /// out, so completion is guaranteed and replayable, converging to a
    /// makespan no better than the no-fault run.
    #[test]
    fn sampled_uplink_plans_never_deadlock_and_converge_after_repair(
        seed in 0u64..5_000,
        uplinks in 1usize..4,
        policy_ix in 0usize..3,
    ) {
        let policy = [UplinkPolicy::Hash, UplinkPolicy::LeastQueued, UplinkPolicy::Failover]
            [policy_ix];
        let (topo, job, e) = setup();
        let opts = opts_for(uplinks, policy);
        let healthy = simulate_system(&topo, &job, &e, &opts).expect("healthy");
        let plan = FaultPlan::sample_uplinks(
            4,
            uplinks,
            healthy.makespan * 0.5,
            healthy.makespan * 0.25,
            healthy.makespan,
            &SimRng::new(seed),
        );
        let first = simulate_system_faulted(&topo, &job, &e, &opts, &plan);
        match first {
            Ok(r) => {
                // Transient faults only: the run converges after repair.
                prop_assert!(r.makespan >= healthy.makespan - Seconds::new(1e-12));
                prop_assert_eq!(r.transfer_complete.len(), healthy.transfer_complete.len());
                let replay = simulate_system_faulted(&topo, &job, &e, &opts, &plan)
                    .expect("replay outcome matches");
                prop_assert_eq!(r, replay, "seed {} must replay bit-identically", seed);
            }
            Err(SimError::Deadlock { .. }) => {
                prop_assert!(false, "a transient uplink plan must never deadlock");
            }
            Err(e) => prop_assert!(false, "unexpected error: {:?}", e),
        }
    }
}
