//! Equivalence contract of the preparation cache and the reusable
//! arena: every `simulate*` engine must produce **bit-identical**
//! reports with the cache warm, cold, or disabled (`--no-prep-cache`),
//! and repeated runs on a thread's recycled arena must replay exactly.
//!
//! The cache-enable switch is process-global, so every test that
//! toggles it holds a shared lock; the caches and counters themselves
//! are thread-local (one per test thread), so tests never share state.

use ccube_collectives::{
    lower_schedule, ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Embedding,
    LinkTiming, Overlap, PreparedLowering, Schedule,
};
use ccube_sim::{
    prep_cache_stats, reset_prep_cache, set_prep_cache_enabled, simulate, simulate_faulted,
    simulate_system, FabricSpec, FaultEvent, FaultPlan, HopMode, SimOptions, SystemJob,
};
use ccube_topology::{dgx1, hierarchical, ByteSize, ChannelId, Seconds, Topology};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that flip the global cache switch.
fn flag_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the cache disabled, restoring it afterwards even on
/// panic.
fn with_cache_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_prep_cache_enabled(true);
        }
    }
    let _restore = Restore;
    set_prep_cache_enabled(false);
    f()
}

/// The C1 configuration: overlapped double tree on the DGX-1.
fn c1(topo: &Topology, bytes: ByteSize, k: usize) -> (Schedule, Embedding) {
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(bytes, k),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(topo, &s).expect("embeds");
    (s, e)
}

#[test]
fn cached_runs_are_bit_identical_to_uncached_runs() {
    let _guard = flag_lock();
    let topo = dgx1();
    let opts = SimOptions::default();
    // A grid that shares structure across points (same schedule shape,
    // different payloads) so the second and third points are cache hits.
    let grid = [ByteSize::mib(1), ByteSize::mib(4), ByteSize::mib(16)];

    reset_prep_cache();
    let cached: Vec<_> = grid
        .iter()
        .map(|&n| {
            let (s, e) = c1(&topo, n, 16);
            simulate(&topo, &s, &e, &opts).expect("cached run")
        })
        .collect();
    let stats = prep_cache_stats();
    assert_eq!(stats.misses, 1, "one structure, lowered cold once");
    assert_eq!(stats.hits, 2, "the other two points hit the cache");

    let cold: Vec<_> = with_cache_disabled(|| {
        grid.iter()
            .map(|&n| {
                let (s, e) = c1(&topo, n, 16);
                simulate(&topo, &s, &e, &opts).expect("cold run")
            })
            .collect()
    });
    assert_eq!(cached, cold, "cache on/off must be bit-identical");
}

#[test]
fn ring_and_low_bandwidth_points_round_trip_the_cache() {
    let _guard = flag_lock();
    let topo = dgx1();
    reset_prep_cache();
    // Same structure under two different LinkTimings (high/low
    // bandwidth): the second point rescales the cached routes.
    let s = ring_allreduce(8, ByteSize::mib(64));
    let e = Embedding::identity(&topo, &s).expect("embeds");
    let hi = simulate(&topo, &s, &e, &SimOptions::default()).expect("hi");
    let lo = simulate(&topo, &s, &e, &SimOptions::low_bandwidth()).expect("lo");
    assert_eq!(prep_cache_stats().misses, 1);
    assert_eq!(prep_cache_stats().hits, 1);

    let (hi2, lo2) = with_cache_disabled(|| {
        (
            simulate(&topo, &s, &e, &SimOptions::default()).expect("hi cold"),
            simulate(&topo, &s, &e, &SimOptions::low_bandwidth()).expect("lo cold"),
        )
    });
    assert_eq!(hi, hi2);
    assert_eq!(lo, lo2);
}

#[test]
fn fabric_runs_are_bit_identical_with_cache_toggled() {
    let _guard = flag_lock();
    let topo = hierarchical(16);
    let s = ring_allreduce(16, ByteSize::mib(8));
    let e = Embedding::nic(&topo, &s).expect("embeds");
    for hop_mode in [HopMode::CutThrough, HopMode::StoreForward] {
        let spec = FabricSpec {
            radix: Some(4),
            oversubscription: 2.0,
            uplink_latency: Seconds::from_micros(1.0),
            hop_mode,
            ..FabricSpec::default()
        };
        let opts =
            SimOptions::scale_out().with_network(ccube_sim::NetworkModel::SwitchFabric(spec));
        reset_prep_cache();
        let warm1 = simulate(&topo, &s, &e, &opts).expect("warm 1");
        let warm2 = simulate(&topo, &s, &e, &opts).expect("warm 2");
        assert_eq!(warm1, warm2, "repeat point must replay exactly");
        assert!(prep_cache_stats().hits >= 1, "second run must hit");
        let cold = with_cache_disabled(|| simulate(&topo, &s, &e, &opts).expect("cold"));
        assert_eq!(warm1, cold, "fabric cache on/off must be bit-identical");
    }
}

#[test]
fn faulted_runs_are_bit_identical_with_cache_toggled() {
    let _guard = flag_lock();
    let topo = dgx1();
    let (s, e) = c1(&topo, ByteSize::mib(16), 16);
    let opts = SimOptions::default();
    let plan = FaultPlan::new(vec![
        FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: Seconds::ZERO,
            until: Seconds::from_millis(1.0),
        },
        FaultEvent::Degraded {
            channel: ChannelId(3),
            from: Seconds::from_micros(50.0),
            until: Seconds::from_millis(2.0),
            rate: 0.5,
        },
    ])
    .expect("valid plan");
    reset_prep_cache();
    let warm1 = simulate_faulted(&topo, &s, &e, &opts, &plan).expect("warm 1");
    let warm2 = simulate_faulted(&topo, &s, &e, &opts, &plan).expect("warm 2");
    assert_eq!(warm1, warm2, "faulted replay on a warm cache diverged");
    let cold = with_cache_disabled(|| simulate_faulted(&topo, &s, &e, &opts, &plan).expect("cold"));
    assert_eq!(warm1, cold, "faulted cache on/off must be bit-identical");
}

#[test]
fn system_runs_share_the_cache_with_the_network_engine() {
    let _guard = flag_lock();
    let topo = dgx1();
    let (s, e) = c1(&topo, ByteSize::mib(4), 8);
    let opts = SimOptions::default();
    let job = SystemJob {
        schedule: s.clone(),
        compute: vec![],
        transfer_gates: vec![],
    };
    reset_prep_cache();
    let _net = simulate(&topo, &s, &e, &opts).expect("net");
    let warm = simulate_system(&topo, &job, &e, &opts).expect("system warm");
    let stats = prep_cache_stats();
    assert_eq!(stats.misses, 1, "system engine reuses the network prep");
    assert_eq!(stats.hits, 1);
    let cold =
        with_cache_disabled(|| simulate_system(&topo, &job, &e, &opts).expect("system cold"));
    assert_eq!(warm, cold);
}

#[test]
fn arena_reuse_replays_bit_identically_across_many_runs() {
    // No flag toggles here — this pins the reusable-kernel half of the
    // contract: the thread's arena is recycled on every call, and a
    // hundred interleaved heterogeneous runs must each replay exactly.
    let topo = dgx1();
    let ring = ring_allreduce(8, ByteSize::mib(2));
    let er = Embedding::identity(&topo, &ring).expect("embeds");
    let (tree, et) = c1(&topo, ByteSize::mib(2), 8);
    let opts = SimOptions::default();
    let ring0 = simulate(&topo, &ring, &er, &opts).expect("ring 0");
    let tree0 = simulate(&topo, &tree, &et, &opts).expect("tree 0");
    for i in 0..50 {
        let r = simulate(&topo, &ring, &er, &opts).expect("ring i");
        let t = simulate(&topo, &tree, &et, &opts).expect("tree i");
        assert_eq!(ring0, r, "ring diverged on arena reuse, iteration {i}");
        assert_eq!(tree0, t, "tree diverged on arena reuse, iteration {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached-and-rescaled `TransferSpec`s are `assert_eq!` (exact float
    /// bits) to freshly lowered ones, across random schedule shapes,
    /// payloads, and timing knobs on both substrate topologies.
    #[test]
    fn prepared_lowering_rescales_bit_identically(
        p in 2usize..=8,
        kib in 1u64..4096,
        k in 1usize..24,
        scale_thousandths in 1u64..4000,
        fwd_ns in 0u64..10_000,
        use_tree in 0usize..2,
        use_hier in 0usize..2,
    ) {
        let topo = if use_hier == 1 { hierarchical(p) } else { dgx1() };
        let n = ByteSize::kib(kib);
        let (s, e) = if use_tree == 1 {
            let tree = ccube_collectives::BinaryTree::inorder(p).unwrap();
            let s = tree_allreduce(
                std::slice::from_ref(&tree),
                &Chunking::even(n, k),
                Overlap::None,
            );
            let e = if use_hier == 1 {
                Embedding::nic(&topo, &s).unwrap()
            } else {
                Embedding::identity(&topo, &s).unwrap()
            };
            (s, e)
        } else {
            let s = ring_allreduce(p, n);
            let e = if use_hier == 1 {
                Embedding::nic(&topo, &s).unwrap()
            } else {
                Embedding::identity(&topo, &s).unwrap()
            };
            (s, e)
        };
        let timing = LinkTiming {
            bandwidth_scale: scale_thousandths as f64 / 1000.0,
            forwarding_latency: Seconds::new(fwd_ns as f64 * 1e-9),
        };
        let fresh = lower_schedule(&s, &e, &topo, &timing).unwrap();
        let prepared = PreparedLowering::new(&s, &e, &topo).unwrap();
        let rescaled = prepared.lower(&s, &timing);
        prop_assert_eq!(fresh, rescaled);
    }

    /// Repeated faulted runs on the recycled arena replay bit-identically
    /// under sampled fault plans (the `Simulation::reset` half of the
    /// proptest satellite: the fabric engine drives `Simulation`, and the
    /// fault engine exercises reroutes + rescales over the shared pool).
    #[test]
    fn faulted_replay_is_bit_identical_on_reuse(
        seed in 0u64..512,
        kib in 64u64..2048,
        k in 1usize..12,
    ) {
        let topo = dgx1();
        let (s, e) = c1(&topo, ByteSize::kib(kib), k.max(1));
        let model = ccube_sim::FaultModel::severity(2, Seconds::from_millis(1.0));
        let plan = FaultPlan::sample(&model, &topo, &ccube_sim::SimRng::new(seed));
        let opts = SimOptions::default();
        let a = simulate_faulted(&topo, &s, &e, &opts, &plan).unwrap();
        let b = simulate_faulted(&topo, &s, &e, &opts, &plan).unwrap();
        prop_assert_eq!(a, b);
    }
}
