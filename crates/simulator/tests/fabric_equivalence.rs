//! Cross-model equivalence and behavior of the switch-fabric network
//! model: a passthrough [`NetworkModel::SwitchFabric`] must reproduce
//! the channel approximation within 1e-9 on every engine, a split
//! fabric must arbitrate ports deterministically, oversubscribed
//! uplinks must stall traffic, and faulted runs must replay
//! bit-identically.

use ccube_collectives::{
    ring_allreduce, tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap, Schedule,
};
use ccube_sim::{
    simulate, simulate_system, simulate_system_faulted, FabricSpec, FaultEvent, FaultModel,
    FaultPlan, HopMode, NetworkModel, SimOptions, SimReport, SimRng, SystemJob,
};
use ccube_topology::{dgx1, hierarchical, torus2d, ByteSize, ChannelId, Seconds, Topology};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn switch(opts: &SimOptions) -> SimOptions {
    opts.with_network(NetworkModel::SwitchFabric(FabricSpec::passthrough()))
}

fn compute_less(schedule: Schedule) -> SystemJob {
    SystemJob {
        schedule,
        compute: vec![],
        transfer_gates: vec![],
    }
}

/// Asserts the two reports agree within `TOL` on everything the paper
/// measures: per-transfer start/complete, makespan, turnaround, and
/// per-channel busy time. Also requires identical kernel event counts —
/// the passthrough fabric performs the same operation sequence, not
/// just the same arithmetic.
fn assert_reports_match(approx: &SimReport, fabric: &SimReport, what: &str) {
    assert_eq!(
        approx.timings().len(),
        fabric.timings().len(),
        "{what}: transfer count"
    );
    for (i, (a, f)) in approx.timings().iter().zip(fabric.timings()).enumerate() {
        let ds = (a.start - f.start).as_secs_f64().abs();
        let dc = (a.complete - f.complete).as_secs_f64().abs();
        assert!(
            ds < TOL && dc < TOL,
            "{what}: transfer {i} diverges: approx [{:?}, {:?}] vs fabric [{:?}, {:?}]",
            a.start,
            a.complete,
            f.start,
            f.complete
        );
    }
    let dm = (approx.makespan() - fabric.makespan()).as_secs_f64().abs();
    assert!(dm < TOL, "{what}: makespan diverges by {dm}");
    let dt = (approx.turnaround() - fabric.turnaround())
        .as_secs_f64()
        .abs();
    assert!(dt < TOL, "{what}: turnaround diverges by {dt}");
    assert_eq!(
        approx.channel_busy().len(),
        fabric.channel_busy().len(),
        "{what}: channel count"
    );
    for (c, (a, f)) in approx
        .channel_busy()
        .iter()
        .zip(fabric.channel_busy())
        .enumerate()
    {
        let d = (*a - *f).as_secs_f64().abs();
        assert!(d < TOL, "{what}: channel {c} busy diverges by {d}");
    }
    assert_eq!(
        approx.stats().events_processed,
        fabric.stats().events_processed,
        "{what}: the passthrough fabric must process the same events"
    );
    assert_eq!(
        approx.stats().force_starts,
        fabric.stats().force_starts,
        "{what}: force-start count"
    );
}

fn c1_dgx1() -> (Topology, Schedule, Embedding) {
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(16), 16),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeds");
    (topo, s, e)
}

#[test]
fn passthrough_fabric_matches_channel_approx_on_dgx1() {
    let (topo, s, e) = c1_dgx1();
    let opts = SimOptions::default();
    let approx = simulate(&topo, &s, &e, &opts).expect("approx runs");
    let fabric = simulate(&topo, &s, &e, &switch(&opts)).expect("fabric runs");
    assert_reports_match(&approx, &fabric, "dgx1/C1");
    // The passthrough fabric still reports its port-level view.
    assert_eq!(fabric.stats().port_busy.len(), topo.channels().len());
    assert!(approx.stats().port_busy.is_empty());
}

#[test]
fn passthrough_fabric_matches_channel_approx_on_hier16() {
    let topo = hierarchical(16);
    let opts = SimOptions::scale_out();
    for (name, s) in [
        ("ring", ring_allreduce(16, ByteSize::mib(64))),
        ("c1", {
            let dt = DoubleBinaryTree::new(16).expect("16 ranks");
            tree_allreduce(
                dt.trees(),
                &Chunking::even(ByteSize::mib(64), 64),
                Overlap::ReductionBroadcast,
            )
        }),
    ] {
        let e = Embedding::nic(&topo, &s).expect("nic embedding");
        let approx = simulate(&topo, &s, &e, &opts).expect("approx runs");
        let fabric = simulate(&topo, &s, &e, &switch(&opts)).expect("fabric runs");
        assert_reports_match(&approx, &fabric, &format!("hier16/{name}"));
    }
}

#[test]
fn passthrough_fabric_matches_in_the_system_engine() {
    let (topo, s, e) = c1_dgx1();
    let opts = SimOptions::default();
    let job = compute_less(s);
    let approx = simulate_system(&topo, &job, &e, &opts).expect("approx runs");
    let fabric = simulate_system(&topo, &job, &e, &switch(&opts)).expect("fabric runs");
    assert_eq!(approx.makespan, fabric.makespan, "system engine makespan");
    assert_eq!(
        approx.transfer_complete, fabric.transfer_complete,
        "system engine completion"
    );
    for (a, f) in approx.channel_busy.iter().zip(&fabric.channel_busy) {
        assert!((*a - *f).as_secs_f64().abs() < TOL);
    }
}

#[test]
fn passthrough_fabric_matches_in_the_fault_engine() {
    let (topo, s, e) = c1_dgx1();
    let opts = SimOptions::default();
    let job = compute_less(s);
    // A mid-flight degradation window on a channel the schedule uses.
    let plan = FaultPlan::new(vec![FaultEvent::Degraded {
        channel: ChannelId(0),
        from: Seconds::from_micros(50.0),
        until: Seconds::from_micros(400.0),
        rate: 0.25,
    }])
    .expect("valid plan");
    let approx = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("approx runs");
    let fabric =
        simulate_system_faulted(&topo, &job, &e, &switch(&opts), &plan).expect("fabric runs");
    assert!(
        (approx.makespan - fabric.makespan).as_secs_f64().abs() < TOL,
        "faulted makespan diverges: {:?} vs {:?}",
        approx.makespan,
        fabric.makespan
    );
    assert_eq!(approx.stats.faults_injected, fabric.stats.faults_injected);
    assert_eq!(approx.stats.reroutes_taken, fabric.stats.reroutes_taken);
}

#[test]
fn fault_replay_is_bit_identical_under_the_switch_fabric() {
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(16));
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    let opts = switch(&SimOptions::scale_out());
    let job = compute_less(s);
    let rng = SimRng::new(0xFAB);
    let model = FaultModel::severity(2, Seconds::from_micros(5_000.0));
    for i in 0..4u64 {
        let plan = FaultPlan::sample(&model, &topo, &rng.fork(i));
        let a = simulate_system_faulted(&topo, &job, &e, &opts, &plan);
        let b = simulate_system_faulted(&topo, &job, &e, &opts, &plan);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "plan {i} must replay bit-identically"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("plan {i}: divergent outcomes {x:?} vs {y:?}"),
        }
    }
}

#[test]
fn transient_nic_outage_stalls_but_replays_deterministically() {
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(16));
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    let opts = switch(&SimOptions::scale_out());
    let job = compute_less(s.clone());
    let healthy = simulate_system(&topo, &job, &e, &opts).expect("runs");
    // Down node 3's injection channel for a window: its port rejects
    // grants, traffic stalls, and the run still completes.
    let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
        channel: ChannelId(6),
        from: Seconds::from_micros(10.0),
        until: Seconds::from_micros(2_000.0),
    }])
    .expect("valid plan");
    let a = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("runs");
    let b = simulate_system_faulted(&topo, &job, &e, &opts, &plan).expect("runs");
    assert_eq!(a, b, "faulted port outage must replay bit-identically");
    assert!(
        a.makespan >= healthy.makespan,
        "an outage cannot speed the collective up"
    );
    assert!(a.stats.faults_injected >= 1);
}

#[test]
fn split_fabric_routes_cross_leaf_traffic_through_uplinks() {
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(64));
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    let base = SimOptions::scale_out();
    let passthrough = simulate(&topo, &s, &e, &switch(&base)).expect("runs");
    let split_spec = FabricSpec {
        radix: Some(4),
        ..FabricSpec::passthrough()
    };
    let split = simulate(
        &topo,
        &s,
        &e,
        &base.with_network(NetworkModel::SwitchFabric(split_spec)),
    )
    .expect("runs");
    // Two leaves of four nodes: 16 endpoint ports plus two uplink pairs.
    assert_eq!(split.stats().port_busy.len(), topo.channels().len() + 4);
    let uplink_busy: f64 = split.stats().port_busy[topo.channels().len()..]
        .iter()
        .map(|b| b.as_secs_f64())
        .sum();
    assert!(
        uplink_busy > 0.0,
        "cross-leaf ring traffic must occupy the uplink ports"
    );
    // A fully-provisioned (1:1) uplink with zero latency adds no
    // serialization beyond the endpoint bottleneck, so the split fabric
    // cannot be faster than passthrough and should be close to it.
    assert!(split.makespan() >= passthrough.makespan() - Seconds::new(TOL));
}

#[test]
fn oversubscribed_uplinks_stall_cross_leaf_traffic() {
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(64));
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    let base = SimOptions::scale_out();
    let mk = |oversub: f64| {
        let spec = FabricSpec {
            radix: Some(4),
            oversubscription: oversub,
            ..FabricSpec::passthrough()
        };
        simulate(
            &topo,
            &s,
            &e,
            &base.with_network(NetworkModel::SwitchFabric(spec)),
        )
        .expect("runs")
        .makespan()
    };
    let provisioned = mk(1.0);
    let oversub = mk(8.0);
    assert!(
        oversub > provisioned,
        "8:1 oversubscription must slow the ring: {provisioned:?} vs {oversub:?}"
    );
}

#[test]
fn store_and_forward_is_never_faster_than_cut_through() {
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(16));
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    let base = SimOptions::scale_out();
    let mk = |mode: HopMode| {
        let spec = FabricSpec {
            radix: Some(4),
            hop_mode: mode,
            ..FabricSpec::passthrough()
        };
        simulate(
            &topo,
            &s,
            &e,
            &base.with_network(NetworkModel::SwitchFabric(spec)),
        )
        .expect("runs")
        .makespan()
    };
    let ct = mk(HopMode::CutThrough);
    let sf = mk(HopMode::StoreForward);
    assert!(
        sf >= ct,
        "store-and-forward pays one serialization per hop: {ct:?} vs {sf:?}"
    );
}

#[test]
fn switch_queue_depth_is_tracked_per_switch() {
    let topo = hierarchical(8);
    let s = ring_allreduce(8, ByteSize::mib(64));
    let e = Embedding::nic(&topo, &s).expect("nic embedding");
    let spec = FabricSpec {
        radix: Some(2),
        oversubscription: 8.0,
        ..FabricSpec::passthrough()
    };
    let report = simulate(
        &topo,
        &s,
        &e,
        &SimOptions::scale_out().with_network(NetworkModel::SwitchFabric(spec)),
    )
    .expect("runs");
    // Four leaves of two nodes each.
    assert_eq!(report.stats().switch_queue_depth.len(), 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The equivalence contract holds across random scale-out shapes
    /// and chunkings, in both engine entry points.
    #[test]
    fn passthrough_equivalence_holds_on_random_hierarchies(
        p in 2usize..10,
        chunks in 1usize..6,
        mib in prop_oneof![Just(1u64), Just(4u64), Just(16u64)],
    ) {
        let topo = hierarchical(p);
        let n = ByteSize::mib(mib);
        let s = ring_allreduce(p, n);
        let s = if chunks > 1 {
            let dt = DoubleBinaryTree::new(p);
            match dt {
                Ok(dt) => tree_allreduce(
                    dt.trees(),
                    &Chunking::even(n, chunks * 2),
                    Overlap::ReductionBroadcast,
                ),
                Err(_) => s,
            }
        } else {
            s
        };
        let e = Embedding::nic(&topo, &s).expect("nic embedding");
        let opts = SimOptions::scale_out();
        let approx = simulate(&topo, &s, &e, &opts).expect("approx runs");
        let fabric = simulate(&topo, &s, &e, &switch(&opts)).expect("fabric runs");
        assert_reports_match(&approx, &fabric, &format!("hier{p}/k{chunks}"));
    }

    /// Direct-link topologies derive a degenerate (switchless) fabric;
    /// the contract must hold there too.
    #[test]
    fn passthrough_equivalence_holds_on_direct_topologies(
        rows in 2usize..4,
        cols in 2usize..4,
        mib in prop_oneof![Just(1u64), Just(8u64)],
    ) {
        let topo = torus2d(rows, cols);
        let p = rows * cols;
        let s = ring_allreduce(p, ByteSize::mib(mib));
        let e = Embedding::identity(&topo, &s).expect("identity embedding");
        let opts = SimOptions::default();
        let approx = simulate(&topo, &s, &e, &opts).expect("approx runs");
        let fabric = simulate(&topo, &s, &e, &switch(&opts)).expect("fabric runs");
        assert_reports_match(&approx, &fabric, &format!("torus{rows}x{cols}"));
    }
}
