//! Determinism of the parallel sweep executor.
//!
//! [`sweep`] promises that the output is bit-identical to a serial run
//! regardless of the worker count — these tests exercise that promise
//! on real simulations (not just toy closures) and pin down the RNG
//! forking rule that makes seeded sweeps order-independent.

use ccube_collectives::{ring_allreduce, Embedding};
use ccube_sim::kernel::SimRng;
use ccube_sim::sweep::{sweep, sweep_seeded};
use ccube_sim::{simulate, SimOptions, SimReport};
use ccube_topology::{dgx1, ByteSize};
use proptest::prelude::*;

/// A small but real sweep: ring AllReduce on DGX-1 over a grid of
/// message sizes, with and without tracing.
fn simulate_point(kib: u64, traced: bool) -> SimReport {
    let topo = dgx1();
    let schedule = ring_allreduce(8, ByteSize::kib(kib));
    let emb = Embedding::identity(&topo, &schedule).unwrap();
    let opts = if traced {
        SimOptions::default()
    } else {
        SimOptions::default().without_trace()
    };
    simulate(&topo, &schedule, &emb, &opts).unwrap()
}

#[test]
fn parallel_simulation_sweep_is_bit_identical_to_serial() {
    let points: Vec<u64> = (1..=48).map(|i| i * 37).collect();
    let serial = sweep(&points, 1, |_, &kib| simulate_point(kib, true));
    for threads in [2, 3, 8] {
        let parallel = sweep(&points, threads, |_, &kib| simulate_point(kib, true));
        assert_eq!(serial, parallel, "{threads} workers diverged from serial");
    }
}

#[test]
fn trace_off_fast_path_preserves_timings() {
    let points: Vec<u64> = (1..=16).map(|i| i * 91).collect();
    let traced = sweep(&points, 4, |_, &kib| simulate_point(kib, true));
    let untraced = sweep(&points, 4, |_, &kib| simulate_point(kib, false));
    for (a, b) in traced.iter().zip(&untraced) {
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.timings(), b.timings());
        assert_eq!(a.stats(), b.stats());
        assert!(b.trace().records().next().is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forked streams are a pure function of `(seed, index)`: the order
    /// in which forks are taken — and how many draws other forks make —
    /// never changes a fork's output.
    #[test]
    fn fork_streams_are_independent_of_execution_order(
        seed in 0u64..u64::MAX,
        indices in prop::collection::vec(0u64..1024, 1..32),
        draws in prop::collection::vec(1usize..16, 1..32),
    ) {
        let draw_stream = |i: u64, n: usize| -> Vec<u64> {
            let mut rng = SimRng::new(seed).fork(i);
            (0..n).map(|_| rng.next_u64()).collect()
        };

        // Reference: fork each index in ascending order, one draw each.
        let mut indices = indices;
        indices.sort_unstable();
        indices.dedup();
        let reference: Vec<Vec<u64>> =
            indices.iter().map(|&i| draw_stream(i, 1)).collect();

        // Same forks taken in reverse, with varying draw counts per
        // stream: the first draw of each stream must be unchanged.
        for (pos, &i) in indices.iter().enumerate().rev() {
            let n = draws[pos % draws.len()];
            let stream = draw_stream(i, n);
            prop_assert_eq!(stream[0], reference[pos][0]);
        }

        // Distinct indices get distinct streams (splitmix64 is a
        // bijection, so first draws of distinct forks never collide).
        let mut firsts: Vec<u64> = reference.iter().map(|s| s[0]).collect();
        firsts.sort_unstable();
        firsts.dedup();
        prop_assert_eq!(firsts.len(), indices.len());
    }

    /// `sweep_seeded` hands every point the same fork no matter how many
    /// workers run the sweep.
    #[test]
    fn seeded_sweep_is_worker_count_invariant(
        seed in 0u64..u64::MAX,
        len in 1usize..128,
        threads in 2usize..12,
    ) {
        let points: Vec<usize> = (0..len).collect();
        let draw = |_: usize, _: &usize, mut rng: SimRng| rng.next_u64();
        let serial = sweep_seeded(&points, seed, 1, draw);
        let parallel = sweep_seeded(&points, seed, threads, draw);
        prop_assert_eq!(serial, parallel);
    }
}
