//! Cross-engine equivalence: the DES agrees with the paper's closed
//! forms where their assumptions coincide, and the two engines built on
//! the shared kernel agree with each other exactly.

use ccube_collectives::cost::{t_overlapped_chunked, t_tree_chunked, CostParams};
use ccube_collectives::{
    ring_allreduce, tree_allreduce, BinaryTree, Chunking, DoubleBinaryTree, Embedding, Overlap,
    Schedule,
};
use ccube_sim::system::{simulate_system, SystemJob};
use ccube_sim::{simulate, SimOptions};
use ccube_topology::{dgx1, ByteSize, ChannelClass, Topology, TopologyBuilder};

/// A topology with one dedicated channel per logical edge of `schedule`
/// (per direction), every channel priced at the closed form's α/β — the
/// contention-free regime Eq. 3/6/7 assume.
fn dedicated_channels(schedule: &Schedule, params: &CostParams) -> Topology {
    let mut b = TopologyBuilder::new("dedicated", schedule.num_ranks());
    let mut seen = std::collections::HashSet::new();
    for (src, dst, _tree) in schedule.logical_edges() {
        if seen.insert((src, dst)) {
            b.channel(
                ccube_topology::GpuId(src.0),
                ccube_topology::GpuId(dst.0),
                params.bandwidth(),
                params.alpha(),
                ChannelClass::NvLink,
            )
            .expect("valid edge");
        }
    }
    b.build().expect("valid topology")
}

/// On a contention-free embedding, the single-tree DES must match the
/// chunked closed forms (Eq. 3 per phase; Eq. 6/7 are their optima)
/// within the 3% cross-validation tolerance documented in DESIGN.md —
/// the closed form idealizes the pipeline's fill/drain at `log P` steps,
/// the DES executes the exact dependency graph.
#[test]
fn single_tree_des_matches_closed_form() {
    let params = CostParams::nvlink();
    let p = 8;
    let n = ByteSize::mib(64);
    let k = 64;
    for (overlap, closed) in [
        (Overlap::None, t_tree_chunked(&params, p, n, k)),
        (
            Overlap::ReductionBroadcast,
            t_overlapped_chunked(&params, p, n, k),
        ),
    ] {
        let tree = BinaryTree::inorder(p).unwrap();
        let s = tree_allreduce(std::slice::from_ref(&tree), &Chunking::even(n, k), overlap);
        let topo = dedicated_channels(&s, &params);
        let e = Embedding::identity(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let sim = report.makespan().as_secs_f64();
        let model = closed.as_secs_f64();
        let rel = (sim - model).abs() / model;
        assert!(
            rel < 0.03,
            "{overlap:?}: DES {sim:.6}s vs closed form {model:.6}s ({:.2}% off)",
            rel * 100.0
        );
        // "Contention-free" means no two *edges* share a channel; chunks
        // of the same edge still pipeline behind each other, which is
        // exactly the serialization term the closed form prices — so the
        // queue-wait counter must have seen that pipelining.
        assert!(report.stats().total_queue_wait() > ccube_topology::Seconds::ZERO);
    }
}

/// With no compute tasks, `simulate_system` is the same machine as
/// `simulate` — same lowering, same pool, same kernel — so their
/// per-transfer completion times must agree **exactly**, not just within
/// a tolerance.
#[test]
fn system_engine_with_zero_compute_equals_network_engine_exactly() {
    let topo = dgx1();
    let cases: Vec<(Schedule, Embedding)> = {
        let ring = ring_allreduce(8, ByteSize::mib(16));
        let ring_e = Embedding::identity(&topo, &ring).unwrap();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let tree = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(32), 16),
            Overlap::ReductionBroadcast,
        );
        let tree_e = Embedding::dgx1_double_tree(&topo, &tree).unwrap();
        vec![(ring, ring_e), (tree, tree_e)]
    };
    for (s, e) in cases {
        let opts = SimOptions::default();
        let net = simulate(&topo, &s, &e, &opts).unwrap();
        let job = SystemJob {
            schedule: s.clone(),
            compute: vec![],
            transfer_gates: vec![],
        };
        let sys = simulate_system(&topo, &job, &e, &opts).unwrap();
        assert_eq!(net.makespan(), sys.makespan, "{}", s.algorithm());
        for (i, timing) in net.timings().iter().enumerate() {
            assert_eq!(
                timing.complete,
                sys.transfer_complete[i],
                "transfer {i} of {}",
                s.algorithm()
            );
        }
        assert_eq!(net.channel_busy(), &sys.channel_busy[..]);
    }
}
