//! Simulator error types.

use ccube_collectives::EdgeKey;
use ccube_topology::GpuId;
use std::error::Error;
use std::fmt;

/// Errors produced while simulating a schedule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The embedding is missing a route for a logical edge the schedule
    /// uses.
    MissingRoute(EdgeKey),
    /// A route references a channel that does not exist in the topology.
    UnknownChannel {
        /// The offending edge.
        edge: EdgeKey,
        /// The channel index that was out of range.
        channel_index: usize,
    },
    /// The event loop stalled with transfers outstanding (a dependency
    /// cycle or an impossible resource requirement).
    Deadlock {
        /// Number of transfers that never ran.
        remaining: usize,
    },
    /// A transfer's channels went down permanently and no surviving
    /// route — direct, detour, or host bridge — connects its endpoints.
    Unroutable {
        /// The sending GPU.
        src: GpuId,
        /// The receiving GPU.
        dst: GpuId,
    },
    /// A fault plan failed validation (an event with a non-positive
    /// window, a degrade rate outside (0, 1], a straggler slowdown below
    /// 1, or a channel/GPU outside the topology).
    FaultPlanInvalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingRoute(edge) => {
                write!(f, "embedding has no route for logical edge {edge}")
            }
            SimError::UnknownChannel {
                edge,
                channel_index,
            } => write!(
                f,
                "route for {edge} references unknown channel index {channel_index}"
            ),
            SimError::Deadlock { remaining } => {
                write!(
                    f,
                    "simulation deadlocked with {remaining} transfers outstanding"
                )
            }
            SimError::Unroutable { src, dst } => {
                write!(
                    f,
                    "no surviving route from {src} to {dst} under the injected faults"
                )
            }
            SimError::FaultPlanInvalid(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl Error for SimError {}

impl From<ccube_collectives::LowerError> for SimError {
    fn from(e: ccube_collectives::LowerError) -> Self {
        use ccube_collectives::LowerError;
        match e {
            LowerError::MissingRoute(edge) => SimError::MissingRoute(edge),
            LowerError::UnknownChannel {
                edge,
                channel_index,
            } => SimError::UnknownChannel {
                edge,
                channel_index,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::{Rank, TreeIndex};

    #[test]
    fn display_is_informative() {
        let e = SimError::MissingRoute(EdgeKey {
            src: Rank(0),
            dst: Rank(1),
            tree: TreeIndex(0),
        });
        assert!(e.to_string().contains("r0->r1"));
        let d = SimError::Deadlock { remaining: 3 };
        assert!(d.to_string().contains('3'));
    }

    #[test]
    fn fault_variant_displays_are_informative() {
        let u = SimError::Unroutable {
            src: GpuId(2),
            dst: GpuId(4),
        };
        let text = u.to_string();
        assert!(text.contains("gpu2") && text.contains("gpu4"), "{text}");
        assert!(text.contains("route"));
        let p = SimError::FaultPlanInvalid("until must exceed from".into());
        assert!(p.to_string().contains("invalid fault plan"));
        assert!(p.to_string().contains("until must exceed from"));
    }
}
