//! The network engine: a thin scheduler over the DES kernel.
//!
//! [`simulate`] no longer owns an event loop of its own. The schedule is
//! lowered once ([`ccube_collectives::lower_schedule`]) into physical
//! [`TransferSpec`](ccube_collectives::TransferSpec)s, channel
//! exclusivity and arbitration live in
//! [`ChannelPool`](crate::resource::ChannelPool), and event ordering is
//! the [`Kernel`](crate::kernel::Kernel)'s: completions pop in
//! `(time, transfer id, sequence)` order, reproducing the historical
//! engine's tie-break exactly, so results are bit-identical to the
//! pre-kernel implementation.

use crate::error::SimError;
use crate::fabric::NetworkModel;
use crate::kernel::Kernel;
use crate::report::{SimReport, SimStats, TransferTiming};
use crate::resource::ChannelPool;
use crate::trace::{SimTrace, TraceRecord};
use ccube_collectives::{Embedding, LinkTiming, Schedule, TransferSpec};
use ccube_topology::{Seconds, Topology};
use std::cell::RefCell;
use std::collections::HashMap;

/// How a busy channel picks its next transfer when several are waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Strict head-of-line FIFO in readiness order. Models a single
    /// hardware queue per channel; appropriate when every logical edge
    /// has its own channel (the DGX-1 embedding).
    #[default]
    FifoHol,
    /// Lowest chunk id first (ties by transfer id). Models the fair
    /// arbitration between the reduction and broadcast persistent
    /// kernels sharing a NIC: the in-order collective always prefers the
    /// oldest chunk, so an early chunk's broadcast is never starved
    /// behind a backlog of later reduction sends. Used for the
    /// shared-NIC scale-out topology (Fig. 14).
    ChunkPriority,
}

/// Tunables of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Multiplier on every channel's bandwidth. The paper's
    /// "low-bandwidth" configuration (modeling PCIe-class interconnect by
    /// cutting the AllReduce kernel's thread count 4×) corresponds to
    /// `0.25`; the default `1.0` is the "high-bandwidth" NVLink setting.
    pub bandwidth_scale: f64,
    /// Extra per-hop processing latency charged to detour routes (the
    /// forwarding kernel's store-and-forward cost on the intermediate
    /// GPU).
    pub forwarding_latency: Seconds,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
    /// Ring capacity of the structured trace each run records. `0`
    /// disables tracing entirely ([`SimTrace::disabled`]): the engines
    /// skip all per-event ring-buffer bookkeeping, which is the fast
    /// path for sweeps and searches that only read timings and
    /// counters. Tracing never affects simulated timings either way.
    pub trace_capacity: usize,
    /// Which network model the engines run: the NIC-channel
    /// approximation (default, bit-identical to the historical engines)
    /// or the explicit switch fabric with NIC/switch agents and per-port
    /// queues.
    pub network: NetworkModel,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            bandwidth_scale: 1.0,
            forwarding_latency: Seconds::from_micros(0.5),
            arbitration: Arbitration::FifoHol,
            trace_capacity: SimTrace::DEFAULT_CAPACITY,
            network: NetworkModel::ChannelApprox,
        }
    }
}

impl SimOptions {
    /// The paper's low-bandwidth configuration (bandwidth scaled to ¼).
    pub fn low_bandwidth() -> Self {
        SimOptions {
            bandwidth_scale: 0.25,
            ..SimOptions::default()
        }
    }

    /// Options for shared-NIC scale-out runs: chunk-priority arbitration.
    pub fn scale_out() -> Self {
        SimOptions {
            arbitration: Arbitration::ChunkPriority,
            ..SimOptions::default()
        }
    }

    /// The same options with tracing disabled — the fast path for
    /// sweeps and searches that only read the report's timings and
    /// counters. Results are bit-identical to a traced run; only the
    /// report's [`SimTrace`] comes back empty.
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.trace_capacity = 0;
        self
    }

    /// The same options running `network` instead of the default
    /// channel approximation.
    #[must_use]
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// The run's trace sink: a bounded ring pre-allocated for an
    /// `expected` record count (engines bound their event population
    /// from the lowered spec count so the ring never regrows mid-run),
    /// or the disabled no-op trace when `trace_capacity` is 0.
    pub(crate) fn make_trace_for(&self, expected: usize) -> SimTrace {
        if self.trace_capacity == 0 {
            SimTrace::disabled()
        } else {
            SimTrace::bounded_for(self.trace_capacity, expected)
        }
    }

    /// The link-timing subset of the options, for lowering.
    pub(crate) fn link_timing(&self) -> LinkTiming {
        LinkTiming {
            bandwidth_scale: self.bandwidth_scale,
            forwarding_latency: self.forwarding_latency,
        }
    }
}

/// The reusable per-thread simulation state of [`simulate`]: the channel
/// pool, event heap, and dependency tables are drained ([`Kernel::reset`],
/// [`ChannelPool::reset`]) and reused across runs — a sweep calls
/// `simulate` once per grid point — instead of reallocated every time.
/// Reuse is observationally invisible: every run starts from a reset
/// state identical to freshly constructed components, so results are
/// bit-identical to the allocate-per-run engine (covered by the
/// `prep_equivalence` suite).
struct SimArena {
    pool: ChannelPool,
    kernel: Kernel<u32>,
    deps_remaining: Vec<u32>,
    dependents: Vec<Vec<u32>>,
    started: Vec<u32>,
}

impl Default for SimArena {
    fn default() -> Self {
        SimArena {
            pool: ChannelPool::new(0, Arbitration::FifoHol),
            kernel: Kernel::new(),
            deps_remaining: Vec::new(),
            dependents: Vec::new(),
            started: Vec::new(),
        }
    }
}

thread_local! {
    static ARENA: RefCell<SimArena> = RefCell::new(SimArena::default());
}

/// Shared start bookkeeping: stamps timings, schedules the completion
/// event (tie-break key = transfer id, the historical order), and
/// records the trace entry.
fn begin_transfer(
    tid: u32,
    now: Seconds,
    specs: &[TransferSpec],
    timings: &mut [TransferTiming],
    kernel: &mut Kernel<u32>,
    trace: &mut SimTrace,
) {
    let t = tid as usize;
    timings[t].start = now;
    let finish = now + specs[t].duration;
    timings[t].complete = finish;
    kernel.schedule(finish, u64::from(tid), tid);
    trace.push(TraceRecord::TransferStart {
        id: specs[t].id,
        at: now,
    });
}

/// Simulates `schedule` over `topo` using the routes in `embedding`.
///
/// Timing model per transfer: it occupies every channel of its route
/// simultaneously (wormhole switching) for
/// `Σ per-hop latency + bytes / (bottleneck bandwidth × bandwidth_scale)`,
/// plus [`SimOptions::forwarding_latency`] per intermediate hop. Channels
/// are exclusive and served in FIFO order of transfer readiness; a
/// transfer starts only when all of its schedule dependencies have
/// completed *and* all of its channels are free.
///
/// # Errors
///
/// Returns [`SimError::MissingRoute`] if the embedding lacks a route for
/// a logical edge, [`SimError::UnknownChannel`] for out-of-range channel
/// ids, and [`SimError::Deadlock`] if the event loop stalls.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
/// use ccube_sim::{simulate, SimOptions};
/// use ccube_topology::{dgx1, ByteSize};
///
/// let topo = dgx1();
/// let dt = DoubleBinaryTree::new(8).unwrap();
/// let chunking = Chunking::even(ByteSize::mib(64), 32);
/// let baseline = tree_allreduce(dt.trees(), &chunking, Overlap::None);
/// let overlapped = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
/// let eb = Embedding::dgx1_double_tree(&topo, &baseline).unwrap();
/// let eo = Embedding::dgx1_double_tree(&topo, &overlapped).unwrap();
/// let tb = simulate(&topo, &baseline, &eb, &SimOptions::default()).unwrap();
/// let to = simulate(&topo, &overlapped, &eo, &SimOptions::default()).unwrap();
/// // The overlapped tree (C1) finishes well before the baseline (B).
/// assert!(to.makespan() < tb.makespan());
/// ```
pub fn simulate(
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    if let NetworkModel::SwitchFabric(spec) = opts.network {
        return crate::fabric::simulate_fabric(topo, schedule, embedding, opts, &spec);
    }
    ARENA.with(|arena| simulate_channel(topo, schedule, embedding, opts, &mut arena.borrow_mut()))
}

/// The channel-approximation engine proper, running on the thread's
/// reusable [`SimArena`].
fn simulate_channel(
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
    arena: &mut SimArena,
) -> Result<SimReport, SimError> {
    let transfers = schedule.transfers();
    let n = transfers.len();
    let num_channels = topo.channels().len();

    // The analyzer's structural gate (debug builds: malformed DAG,
    // missing/invalid routes) and the lowering both run through the
    // preparation cache — a structure seen before skips straight to the
    // cached routes. Conflicted-but-valid embeddings are deliberately
    // NOT gated: the extension studies simulate them on purpose to
    // measure the cost of the conflicts.
    let prep = crate::prep::gate_and_lower(topo, schedule, embedding, &opts.link_timing())?;
    let specs: &[TransferSpec] = &prep.specs;

    let SimArena {
        pool,
        kernel,
        deps_remaining,
        dependents,
        started,
    } = arena;

    // Dependency bookkeeping stays with the scheduler; resources and
    // arbitration live in the pool.
    deps_remaining.clear();
    deps_remaining.extend(transfers.iter().map(|t| t.deps.len() as u32));
    dependents.truncate(n);
    for v in dependents.iter_mut() {
        v.clear();
    }
    dependents.resize_with(n, Vec::new);
    for t in transfers {
        for d in &t.deps {
            dependents[d.index()].push(t.id.0);
        }
    }

    pool.reset(num_channels, opts.arbitration);
    pool.reserve_tasks(n);
    for s in specs {
        pool.add_task_path(&s.path, (s.chunk.0, s.id.0));
    }
    // Channels are exclusive, so at most one completion event per
    // channel is ever in flight.
    kernel.reset(0);
    kernel.reserve(num_channels.min(n));
    // Start + end + one grant per hop is the dominant record shape; 4×
    // the transfer count covers single-hop runs exactly and keeps
    // multi-hop ones to at most a couple of ring regrows.
    let mut trace = opts.make_trace_for(n.saturating_mul(4));
    let mut timings = vec![
        TransferTiming {
            start: Seconds::ZERO,
            complete: Seconds::ZERO,
        };
        n
    ];
    let mut forwarding_busy: HashMap<ccube_topology::GpuId, Seconds> = HashMap::new();

    // Seed: transfers with no dependencies are ready at t=0.
    for tid in 0..n as u32 {
        if deps_remaining[tid as usize] == 0 && pool.mark_ready(tid, Seconds::ZERO, &mut trace) {
            begin_transfer(tid, Seconds::ZERO, specs, &mut timings, kernel, &mut trace);
        }
    }

    let mut remaining = n;
    while remaining > 0 {
        let Some((now, tid)) = kernel.pop() else {
            // Nothing in flight but transfers remain: priority
            // reservations can starve each other in a cycle; break the
            // stall by force-starting the best startable ready transfer.
            let now = kernel.now();
            match pool.force_start(now, &mut trace) {
                Some(t) => {
                    begin_transfer(t, now, specs, &mut timings, kernel, &mut trace);
                    continue;
                }
                None => return Err(SimError::Deadlock { remaining }),
            }
        };
        let t = tid as usize;
        remaining -= 1;
        pool.complete(tid, now);
        trace.push(TraceRecord::TransferEnd {
            id: specs[t].id,
            at: now,
        });
        if let Some(via) = specs[t].via {
            *forwarding_busy.entry(via).or_insert(Seconds::ZERO) += specs[t].duration;
            trace.push(TraceRecord::DetourHop {
                id: specs[t].id,
                via,
                at: now,
            });
        }

        // Unblock dependents before serving the freed channels — the
        // historical order, which lets a dependent claim a channel its
        // own completion just released ahead of the waiter queue.
        for &dep in &dependents[t] {
            let d = dep as usize;
            deps_remaining[d] -= 1;
            if deps_remaining[d] == 0 && pool.mark_ready(dep, now, &mut trace) {
                begin_transfer(dep, now, specs, &mut timings, kernel, &mut trace);
            }
        }

        started.clear();
        pool.serve(tid, now, &mut trace, started);
        for &s in started.iter() {
            begin_transfer(s, now, specs, &mut timings, kernel, &mut trace);
        }
    }

    // Derive per-(rank, chunk) completion and per-chunk completion.
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    let mut done_at = vec![vec![Seconds::ZERO; k]; p];
    let mut chunk_complete = vec![Seconds::ZERO; k];
    let mut makespan = Seconds::ZERO;
    for t in transfers {
        let finish = timings[t.id.index()].complete;
        let cell = &mut done_at[t.dst.index()][t.chunk.index()];
        *cell = (*cell).max(finish);
        let cc = &mut chunk_complete[t.chunk.index()];
        *cc = (*cc).max(finish);
        makespan = makespan.max(finish);
    }

    let kstats = kernel.stats();
    let stats = SimStats {
        events_scheduled: kstats.events_scheduled,
        events_processed: kstats.events_processed,
        max_event_queue_depth: kstats.max_queue_depth,
        max_channel_queue_depth: pool.max_waiting(),
        queue_wait: pool.queue_wait().to_vec(),
        force_starts: pool.force_starts(),
        ..SimStats::default()
    };
    let channel_busy = pool.busy().to_vec();

    Ok(SimReport {
        num_ranks: p,
        num_chunks: k,
        timings,
        done_at,
        chunk_complete,
        makespan,
        channel_busy,
        channel_intervals: pool.take_intervals(),
        forwarding_busy,
        trace,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::{
        ring_allreduce, tree_allreduce, BinaryTree, ChunkId, Chunking, DoubleBinaryTree, Overlap,
        Rank,
    };
    use ccube_topology::{dgx1, ByteSize};

    fn dgx1_ring_report(bytes: ByteSize) -> SimReport {
        let topo = dgx1();
        let s = ring_allreduce(8, bytes);
        let e = Embedding::identity(&topo, &s).unwrap();
        simulate(&topo, &s, &e, &SimOptions::default()).unwrap()
    }

    #[test]
    fn ring_makespan_matches_alpha_beta_model() {
        // On an uncongested embedding the DES must agree with Eq. 2 up to
        // the detour latency corrections.
        let n = ByteSize::mib(64);
        let report = dgx1_ring_report(n);
        // Ring on DGX-1: some hops are detours (ring 0->1->...->7->0 is
        // not fully connected), so allow a modest margin over the model.
        let params = ccube_collectives::cost::CostParams::nvlink();
        let model = ccube_collectives::cost::t_ring(&params, 8, n);
        let ratio = report.makespan() / model;
        assert!(
            ratio > 0.9 && ratio < 1.3,
            "sim/model ratio {ratio} out of range (sim {}, model {})",
            report.makespan(),
            model
        );
    }

    #[test]
    fn overlap_beats_baseline_on_dgx1() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(64), 64);
        let b = tree_allreduce(dt.trees(), &chunking, Overlap::None);
        let o = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let eb = Embedding::dgx1_double_tree(&topo, &b).unwrap();
        let eo = Embedding::dgx1_double_tree(&topo, &o).unwrap();
        let tb = simulate(&topo, &b, &eb, &SimOptions::default()).unwrap();
        let to = simulate(&topo, &o, &eo, &SimOptions::default()).unwrap();
        let speedup = tb.makespan() / to.makespan();
        assert!(
            speedup > 1.4 && speedup < 2.1,
            "C1 over B speedup {speedup} out of expected band"
        );
        // Turnaround improves far more than makespan (Fig. 14b).
        let turn = tb.turnaround() / to.turnaround();
        assert!(turn > 4.0, "turnaround speedup {turn}");
    }

    #[test]
    fn low_bandwidth_slows_the_collective_about_4x() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        let hi = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let lo = simulate(&topo, &s, &e, &SimOptions::low_bandwidth()).unwrap();
        let ratio = lo.makespan() / hi.makespan();
        assert!(ratio > 3.0 && ratio < 4.1, "ratio={ratio}");
    }

    #[test]
    fn done_at_is_bounded_by_chunk_complete() {
        let report = dgx1_ring_report(ByteSize::mib(8));
        for r in 0..report.num_ranks() {
            for c in 0..report.num_chunks() {
                assert!(
                    report.done_at(Rank(r as u32), ChunkId(c as u32))
                        <= report.chunk_complete(ChunkId(c as u32))
                );
            }
        }
        assert_eq!(
            report.makespan(),
            report.chunk_completions().iter().copied().max().unwrap()
        );
    }

    #[test]
    fn tree_chunks_complete_in_order() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(32), 32);
        let o = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let eo = Embedding::dgx1_double_tree(&topo, &o).unwrap();
        let report = simulate(&topo, &o, &eo, &SimOptions::default()).unwrap();
        assert!(report.chunks_in_order(2));
    }

    #[test]
    fn forwarding_busy_appears_on_detour_gpus() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(32), 16);
        let s = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        assert!(
            !report.forwarding_busy().is_empty(),
            "double tree on DGX-1 must use detours"
        );
    }

    #[test]
    // In debug builds the static gate catches the missing routes before
    // lowering; in release the `Err` path below is what callers see.
    #[cfg_attr(debug_assertions, should_panic(expected = "CC007"))]
    fn missing_route_is_reported() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(1));
        // Embed a different schedule so the ring's edges are absent.
        let tree = BinaryTree::inorder(8).unwrap();
        let other = tree_allreduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::mib(1), 4),
            Overlap::None,
        );
        let e = Embedding::identity(&topo, &other).unwrap();
        assert!(matches!(
            simulate(&topo, &s, &e, &SimOptions::default()),
            Err(SimError::MissingRoute(_))
        ));
    }

    #[test]
    fn single_tree_sim_agrees_with_unit_step_shape() {
        // With alpha == 0-ish and equal chunks, completion order from the
        // DES must match the unit-step executor's ordering.
        let topo = dgx1();
        let tree = BinaryTree::inorder(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(16), 8);
        let s = tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::identity(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let steps = ccube_collectives::verify::execute_steps(
            &s,
            ccube_collectives::verify::ChannelKeying::PerTree,
        )
        .unwrap();
        // first chunk completes first in both
        let des_first = report
            .chunk_completions()
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .unwrap()
            .0;
        let step_first = steps
            .chunk_complete_step
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .unwrap()
            .0;
        assert_eq!(des_first, step_first);
    }

    #[test]
    fn trace_and_stats_are_populated() {
        let report = dgx1_ring_report(ByteSize::mib(8));
        let starts = report
            .trace()
            .records()
            .filter(|r| matches!(r, TraceRecord::TransferStart { .. }))
            .count();
        let ends = report
            .trace()
            .records()
            .filter(|r| matches!(r, TraceRecord::TransferEnd { .. }))
            .count();
        assert_eq!(starts, ends);
        assert!(starts > 0);
        let stats = report.stats();
        assert_eq!(stats.events_processed, starts as u64);
        assert!(stats.max_event_queue_depth > 0);
        // The ring on DGX-1 contends, so someone waited somewhere.
        assert!(report.stats().total_queue_wait() > Seconds::ZERO);
        // Busy intervals sum to the busy counters.
        for (ci, ivs) in report.channel_intervals().iter().enumerate() {
            let total = ivs
                .iter()
                .fold(Seconds::ZERO, |acc, iv| acc + iv.duration());
            let diff = (total.as_secs_f64() - report.channel_busy()[ci].as_secs_f64()).abs();
            assert!(diff < 1e-12, "channel {ci}: {total} vs busy");
        }
    }
}
