//! The discrete-event engine.

use crate::error::SimError;
use crate::report::{SimReport, TransferTiming};
use ccube_collectives::{EdgeKey, Embedding, Schedule};
use ccube_topology::{Seconds, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// How a busy channel picks its next transfer when several are waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Strict head-of-line FIFO in readiness order. Models a single
    /// hardware queue per channel; appropriate when every logical edge
    /// has its own channel (the DGX-1 embedding).
    #[default]
    FifoHol,
    /// Lowest chunk id first (ties by transfer id). Models the fair
    /// arbitration between the reduction and broadcast persistent
    /// kernels sharing a NIC: the in-order collective always prefers the
    /// oldest chunk, so an early chunk's broadcast is never starved
    /// behind a backlog of later reduction sends. Used for the
    /// shared-NIC scale-out topology (Fig. 14).
    ChunkPriority,
}

/// Tunables of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Multiplier on every channel's bandwidth. The paper's
    /// "low-bandwidth" configuration (modeling PCIe-class interconnect by
    /// cutting the AllReduce kernel's thread count 4×) corresponds to
    /// `0.25`; the default `1.0` is the "high-bandwidth" NVLink setting.
    pub bandwidth_scale: f64,
    /// Extra per-hop processing latency charged to detour routes (the
    /// forwarding kernel's store-and-forward cost on the intermediate
    /// GPU).
    pub forwarding_latency: Seconds,
    /// Channel arbitration policy.
    pub arbitration: Arbitration,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            bandwidth_scale: 1.0,
            forwarding_latency: Seconds::from_micros(0.5),
            arbitration: Arbitration::FifoHol,
        }
    }
}

impl SimOptions {
    /// The paper's low-bandwidth configuration (bandwidth scaled to ¼).
    pub fn low_bandwidth() -> Self {
        SimOptions {
            bandwidth_scale: 0.25,
            ..SimOptions::default()
        }
    }

    /// Options for shared-NIC scale-out runs: chunk-priority arbitration.
    pub fn scale_out() -> Self {
        SimOptions {
            arbitration: Arbitration::ChunkPriority,
            ..SimOptions::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting on dependencies.
    Blocked,
    /// Dependencies met, waiting for channels.
    Ready,
    /// Occupying its channels.
    Running,
    /// Finished.
    Done,
}

/// Simulates `schedule` over `topo` using the routes in `embedding`.
///
/// Timing model per transfer: it occupies every channel of its route
/// simultaneously (wormhole switching) for
/// `Σ per-hop latency + bytes / (bottleneck bandwidth × bandwidth_scale)`,
/// plus [`SimOptions::forwarding_latency`] per intermediate hop. Channels
/// are exclusive and served in FIFO order of transfer readiness; a
/// transfer starts only when all of its schedule dependencies have
/// completed *and* all of its channels are free.
///
/// # Errors
///
/// Returns [`SimError::MissingRoute`] if the embedding lacks a route for
/// a logical edge, [`SimError::UnknownChannel`] for out-of-range channel
/// ids, and [`SimError::Deadlock`] if the event loop stalls.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
/// use ccube_sim::{simulate, SimOptions};
/// use ccube_topology::{dgx1, ByteSize};
///
/// let topo = dgx1();
/// let dt = DoubleBinaryTree::new(8).unwrap();
/// let chunking = Chunking::even(ByteSize::mib(64), 32);
/// let baseline = tree_allreduce(dt.trees(), &chunking, Overlap::None);
/// let overlapped = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
/// let eb = Embedding::dgx1_double_tree(&topo, &baseline).unwrap();
/// let eo = Embedding::dgx1_double_tree(&topo, &overlapped).unwrap();
/// let tb = simulate(&topo, &baseline, &eb, &SimOptions::default()).unwrap();
/// let to = simulate(&topo, &overlapped, &eo, &SimOptions::default()).unwrap();
/// // The overlapped tree (C1) finishes well before the baseline (B).
/// assert!(to.makespan() < tb.makespan());
/// ```
pub fn simulate(
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    let transfers = schedule.transfers();
    let n = transfers.len();
    let num_channels = topo.channels().len();

    // Resolve each transfer's physical path and duration.
    let mut paths: Vec<&[ccube_topology::ChannelId]> = Vec::with_capacity(n);
    let mut durations: Vec<Seconds> = Vec::with_capacity(n);
    let mut via_gpu: Vec<Option<ccube_topology::GpuId>> = Vec::with_capacity(n);
    let mut route_cache: HashMap<EdgeKey, usize> = HashMap::new();
    for t in transfers {
        let key = EdgeKey {
            src: t.src,
            dst: t.dst,
            tree: t.tree,
        };
        let route = embedding.route(&key).ok_or(SimError::MissingRoute(key))?;
        for &c in route.channels() {
            if c.index() >= num_channels {
                return Err(SimError::UnknownChannel {
                    edge: key,
                    channel_index: c.index(),
                });
            }
        }
        route_cache.entry(key).or_insert_with(|| route.channels().len());
        let mut alpha = Seconds::ZERO;
        let mut bottleneck = f64::INFINITY;
        for &c in route.channels() {
            let ch = topo.channel(c);
            alpha += ch.latency();
            bottleneck = bottleneck.min(ch.bandwidth().as_bytes_per_sec());
        }
        if route.is_detour() {
            alpha += opts.forwarding_latency;
        }
        let serialization =
            Seconds::new(t.bytes.as_f64() / (bottleneck * opts.bandwidth_scale));
        paths.push(route.channels());
        durations.push(alpha + serialization);
        via_gpu.push(route.via());
    }

    // Dependency bookkeeping.
    let mut deps_remaining: Vec<u32> = transfers.iter().map(|t| t.deps.len() as u32).collect();
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in transfers {
        for d in &t.deps {
            dependents[d.index()].push(t.id.0);
        }
    }

    let mut state = vec![State::Blocked; n];
    let mut channel_free = vec![true; num_channels];
    let mut pending: Vec<VecDeque<u32>> = vec![VecDeque::new(); num_channels];
    let mut timings = vec![
        TransferTiming {
            start: Seconds::ZERO,
            complete: Seconds::ZERO,
        };
        n
    ];
    let mut channel_busy = vec![Seconds::ZERO; num_channels];
    let mut forwarding_busy: HashMap<ccube_topology::GpuId, Seconds> = HashMap::new();

    // Event queue of completions, ordered by time then transfer id.
    let mut events: BinaryHeap<Reverse<(Seconds, u32)>> = BinaryHeap::new();
    let mut remaining = n;

    // Priority key: lowest chunk id first, ties broken by transfer id.
    let key = |t: usize| (transfers[t].chunk, t as u32);

    // Attempts to start a ready transfer; returns true if started. With
    // chunk-priority arbitration a transfer also yields to any waiting
    // transfer of an older chunk on any channel of its path (the freed
    // channel is implicitly *reserved* for the older chunk).
    let try_start = |tid: usize,
                     now: Seconds,
                     force: bool,
                     state: &mut Vec<State>,
                     channel_free: &mut Vec<bool>,
                     pending: &mut Vec<VecDeque<u32>>,
                     timings: &mut Vec<TransferTiming>,
                     events: &mut BinaryHeap<Reverse<(Seconds, u32)>>|
     -> bool {
        if state[tid] != State::Ready {
            return false;
        }
        let path = paths[tid];
        let channels_free = path.iter().all(|c| channel_free[c.index()]);
        let priority_ok = force
            || match opts.arbitration {
                Arbitration::FifoHol => true,
                Arbitration::ChunkPriority => path.iter().all(|c| {
                    pending[c.index()].iter().all(|&w| {
                        let w = w as usize;
                        w == tid || state[w] != State::Ready || key(w) >= key(tid)
                    })
                }),
            };
        if !(channels_free && priority_ok) {
            // Queue on every channel of the path so any future release
            // re-attempts the start.
            for c in path {
                if !pending[c.index()].contains(&(tid as u32)) {
                    pending[c.index()].push_back(tid as u32);
                }
            }
            return false;
        }
        for c in path {
            channel_free[c.index()] = false;
            if let Some(pos) = pending[c.index()].iter().position(|&x| x == tid as u32) {
                pending[c.index()].remove(pos);
            }
        }
        state[tid] = State::Running;
        timings[tid].start = now;
        let finish = now + durations[tid];
        timings[tid].complete = finish;
        events.push(Reverse((finish, tid as u32)));
        true
    };

    // Seed: transfers with no dependencies are ready at t=0.
    for tid in 0..n {
        if deps_remaining[tid] == 0 {
            state[tid] = State::Ready;
        }
    }
    for tid in 0..n {
        if state[tid] == State::Ready {
            try_start(
                tid,
                Seconds::ZERO,
                false,
                &mut state,
                &mut channel_free,
                &mut pending,
                &mut timings,
                &mut events,
            );
        }
    }

    let mut sim_now = Seconds::ZERO;
    while remaining > 0 {
        let Some(Reverse((now, tid32))) = events.pop() else {
            // Nothing in flight but transfers remain: priority
            // reservations can starve each other in a cycle; break the
            // stall by force-starting the best startable ready transfer.
            let mut ready: Vec<usize> = (0..n).filter(|&t| state[t] == State::Ready).collect();
            ready.sort_by_key(|&t| key(t));
            let started = ready.into_iter().any(|t| {
                try_start(
                    t,
                    sim_now,
                    true,
                    &mut state,
                    &mut channel_free,
                    &mut pending,
                    &mut timings,
                    &mut events,
                )
            });
            if !started {
                return Err(SimError::Deadlock { remaining });
            }
            continue;
        };
        let tid = tid32 as usize;
        sim_now = now;
        debug_assert_eq!(state[tid], State::Running);
        state[tid] = State::Done;
        remaining -= 1;

        // Release channels and account busy time.
        for c in paths[tid] {
            channel_free[c.index()] = true;
            channel_busy[c.index()] += durations[tid];
        }
        if let Some(via) = via_gpu[tid] {
            let entry = forwarding_busy.entry(via).or_insert(Seconds::ZERO);
            *entry += durations[tid];
        }

        // Unblock dependents.
        let deps = std::mem::take(&mut dependents[tid]);
        for &dep in &deps {
            let d = dep as usize;
            deps_remaining[d] -= 1;
            if deps_remaining[d] == 0 {
                state[d] = State::Ready;
                try_start(
                    d,
                    now,
                    false,
                    &mut state,
                    &mut channel_free,
                    &mut pending,
                    &mut timings,
                    &mut events,
                );
            }
        }

        // Serve the queues of the released channels.
        for c in paths[tid] {
            let ci = c.index();
            match opts.arbitration {
                Arbitration::FifoHol => {
                    // Strict head-of-line FIFO in readiness order.
                    while let Some(&head) = pending[ci].front() {
                        let h = head as usize;
                        match state[h] {
                            State::Ready => {
                                if try_start(
                                    h,
                                    now,
                                    false,
                                    &mut state,
                                    &mut channel_free,
                                    &mut pending,
                                    &mut timings,
                                    &mut events,
                                ) {
                                    continue;
                                }
                                // Head is ready but another channel of its
                                // path is busy; it stays queued here and
                                // there.
                                break;
                            }
                            State::Running | State::Done => {
                                // Started via another channel's queue.
                                pending[ci].pop_front();
                            }
                            State::Blocked => break,
                        }
                    }
                }
                Arbitration::ChunkPriority => {
                    // Oldest waiting chunk first; if it cannot start yet
                    // (another channel of its path is busy), the channel
                    // idles, reserved for it.
                    loop {
                        pending[ci].retain(|&t| state[t as usize] == State::Ready);
                        let best = pending[ci]
                            .iter()
                            .copied()
                            .min_by_key(|&t| key(t as usize));
                        let Some(t) = best else { break };
                        if !try_start(
                            t as usize,
                            now,
                            false,
                            &mut state,
                            &mut channel_free,
                            &mut pending,
                            &mut timings,
                            &mut events,
                        ) {
                            break;
                        }
                    }
                }
            }
        }
    }

    if remaining > 0 {
        return Err(SimError::Deadlock { remaining });
    }

    // Derive per-(rank, chunk) completion and per-chunk completion.
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    let mut done_at = vec![vec![Seconds::ZERO; k]; p];
    let mut chunk_complete = vec![Seconds::ZERO; k];
    let mut makespan = Seconds::ZERO;
    for t in transfers {
        let finish = timings[t.id.index()].complete;
        let cell = &mut done_at[t.dst.index()][t.chunk.index()];
        *cell = (*cell).max(finish);
        let cc = &mut chunk_complete[t.chunk.index()];
        *cc = (*cc).max(finish);
        makespan = makespan.max(finish);
    }

    Ok(SimReport {
        num_ranks: p,
        num_chunks: k,
        timings,
        done_at,
        chunk_complete,
        makespan,
        channel_busy,
        forwarding_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::{
        ring_allreduce, tree_allreduce, BinaryTree, ChunkId, Chunking, DoubleBinaryTree,
        Overlap, Rank,
    };
    use ccube_topology::{dgx1, ByteSize};

    fn dgx1_ring_report(bytes: ByteSize) -> SimReport {
        let topo = dgx1();
        let s = ring_allreduce(8, bytes);
        let e = Embedding::identity(&topo, &s).unwrap();
        simulate(&topo, &s, &e, &SimOptions::default()).unwrap()
    }

    #[test]
    fn ring_makespan_matches_alpha_beta_model() {
        // On an uncongested embedding the DES must agree with Eq. 2 up to
        // the detour latency corrections.
        let n = ByteSize::mib(64);
        let report = dgx1_ring_report(n);
        // Ring on DGX-1: some hops are detours (ring 0->1->...->7->0 is
        // not fully connected), so allow a modest margin over the model.
        let params = ccube_collectives::cost::CostParams::nvlink();
        let model = ccube_collectives::cost::t_ring(&params, 8, n);
        let ratio = report.makespan() / model;
        assert!(
            ratio > 0.9 && ratio < 1.3,
            "sim/model ratio {ratio} out of range (sim {}, model {})",
            report.makespan(),
            model
        );
    }

    #[test]
    fn overlap_beats_baseline_on_dgx1() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(64), 64);
        let b = tree_allreduce(dt.trees(), &chunking, Overlap::None);
        let o = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let eb = Embedding::dgx1_double_tree(&topo, &b).unwrap();
        let eo = Embedding::dgx1_double_tree(&topo, &o).unwrap();
        let tb = simulate(&topo, &b, &eb, &SimOptions::default()).unwrap();
        let to = simulate(&topo, &o, &eo, &SimOptions::default()).unwrap();
        let speedup = tb.makespan() / to.makespan();
        assert!(
            speedup > 1.4 && speedup < 2.1,
            "C1 over B speedup {speedup} out of expected band"
        );
        // Turnaround improves far more than makespan (Fig. 14b).
        let turn = tb.turnaround() / to.turnaround();
        assert!(turn > 4.0, "turnaround speedup {turn}");
    }

    #[test]
    fn low_bandwidth_slows_the_collective_about_4x() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        let hi = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let lo = simulate(&topo, &s, &e, &SimOptions::low_bandwidth()).unwrap();
        let ratio = lo.makespan() / hi.makespan();
        assert!(ratio > 3.0 && ratio < 4.1, "ratio={ratio}");
    }

    #[test]
    fn done_at_is_bounded_by_chunk_complete() {
        let report = dgx1_ring_report(ByteSize::mib(8));
        for r in 0..report.num_ranks() {
            for c in 0..report.num_chunks() {
                assert!(
                    report.done_at(Rank(r as u32), ChunkId(c as u32))
                        <= report.chunk_complete(ChunkId(c as u32))
                );
            }
        }
        assert_eq!(
            report.makespan(),
            report
                .chunk_completions()
                .iter()
                .copied()
                .max()
                .unwrap()
        );
    }

    #[test]
    fn tree_chunks_complete_in_order() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(32), 32);
        let o = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let eo = Embedding::dgx1_double_tree(&topo, &o).unwrap();
        let report = simulate(&topo, &o, &eo, &SimOptions::default()).unwrap();
        assert!(report.chunks_in_order(2));
    }

    #[test]
    fn forwarding_busy_appears_on_detour_gpus() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(32), 16);
        let s = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        assert!(
            !report.forwarding_busy().is_empty(),
            "double tree on DGX-1 must use detours"
        );
    }

    #[test]
    fn missing_route_is_reported() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(1));
        // Embed a different schedule so the ring's edges are absent.
        let tree = BinaryTree::inorder(8).unwrap();
        let other = tree_allreduce(
            std::slice::from_ref(&tree),
            &Chunking::even(ByteSize::mib(1), 4),
            Overlap::None,
        );
        let e = Embedding::identity(&topo, &other).unwrap();
        assert!(matches!(
            simulate(&topo, &s, &e, &SimOptions::default()),
            Err(SimError::MissingRoute(_))
        ));
    }

    #[test]
    fn single_tree_sim_agrees_with_unit_step_shape() {
        // With alpha == 0-ish and equal chunks, completion order from the
        // DES must match the unit-step executor's ordering.
        let topo = dgx1();
        let tree = BinaryTree::inorder(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(16), 8);
        let s = tree_allreduce(
            std::slice::from_ref(&tree),
            &chunking,
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::identity(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let steps =
            ccube_collectives::verify::execute_steps(&s, ccube_collectives::verify::ChannelKeying::PerTree)
                .unwrap();
        // first chunk completes first in both
        let des_first = report
            .chunk_completions()
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .unwrap()
            .0;
        let step_first = steps
            .chunk_complete_step
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| s)
            .unwrap()
            .0;
        assert_eq!(des_first, step_first);
    }
}
