//! Unified compute + communication co-simulation.
//!
//! The paper's scale-out study notes that ASTRA-sim "did not have ability
//! to provide detailed modeling of compute in deep learning", so
//! "overlapping compute with communication and gradient queuing could not
//! be modeled" there — the authors had to fall back to turnaround time as
//! a proxy (§V-B3). This module removes that limitation for the
//! reproduction: a [`SystemJob`] carries both the collective's transfers
//! and per-GPU **compute tasks**, with dependencies in *both* directions
//! (communication gated on backward compute, forward layers gated on
//! chunk deliveries), and [`simulate_system`] executes everything through
//! the shared [`Kernel`]:
//!
//! * channels behave exactly as in [`simulate`](crate::simulate) — the
//!   same [`ChannelPool`] arbitration,
//!   honoring [`SimOptions::arbitration`](crate::engine::SimOptions::arbitration);
//! * each GPU is one exclusive [`ComputeStream`]
//!   — at most one compute task runs on it at a time, in readiness order
//!   (a single compute stream, like the paper's implementation).
//!
//! Event ordering matches the historical co-simulator: completions pop
//! in `(time, node id, transfer-before-compute)` order.

use crate::error::SimError;
use crate::kernel::Kernel;
use crate::report::SimStats;
use crate::resource::{ChannelPool, ComputeStream};
use crate::trace::{SimTrace, TraceRecord};
use ccube_collectives::{Embedding, Schedule, TransferId, TransferSpec};
use ccube_topology::{ChannelId, GpuId, Seconds, Topology};
use std::collections::HashMap;

/// Identifier of a compute task within a [`SystemJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComputeTaskId(pub u32);

impl ComputeTaskId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One compute task: a kernel occupying its GPU's compute stream for a
/// fixed duration, gated on other compute tasks and/or transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeTask {
    /// The task's id (its index in the job's compute list).
    pub id: ComputeTaskId,
    /// The GPU whose compute stream the task occupies.
    pub gpu: GpuId,
    /// Execution time.
    pub duration: Seconds,
    /// Compute tasks that must finish first.
    pub deps_compute: Vec<ComputeTaskId>,
    /// Transfers that must finish first (e.g. the chunk deliveries a
    /// forward layer's dequeue gate waits on).
    pub deps_transfers: Vec<TransferId>,
    /// A label for reporting ("bwd", "fwd L3", ...).
    pub label: String,
}

/// A co-simulation job: a collective schedule plus compute tasks, plus
/// extra communication→compute gates.
#[derive(Debug, Clone)]
pub struct SystemJob {
    /// The communication transfers.
    pub schedule: Schedule,
    /// The compute tasks.
    pub compute: Vec<ComputeTask>,
    /// Extra dependencies: transfer `t` may not start before compute task
    /// `c` finishes (e.g. the one-shot AllReduce waits for backward).
    pub transfer_gates: Vec<(TransferId, ComputeTaskId)>,
}

/// The result of a co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Completion time of every transfer, by transfer id.
    pub transfer_complete: Vec<Seconds>,
    /// Completion time of every compute task, by task id.
    pub compute_complete: Vec<Seconds>,
    /// Total wall-clock time.
    pub makespan: Seconds,
    /// Per-GPU compute busy time.
    pub gpu_busy: HashMap<GpuId, Seconds>,
    /// Per-channel communication busy time, by channel id.
    pub channel_busy: Vec<Seconds>,
    /// The structured trace recorded during the run.
    pub trace: SimTrace,
    /// The run's counters.
    pub stats: SimStats,
}

impl SystemReport {
    /// Compute utilization of a GPU over the makespan.
    pub fn gpu_utilization(&self, gpu: GpuId) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.gpu_busy
            .get(&gpu)
            .map(|b| *b / self.makespan)
            .unwrap_or(0.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Transfer(u32),
    Compute(u32),
}

struct SystemState<'a> {
    specs: &'a [TransferSpec],
    compute: &'a [ComputeTask],
    pool: ChannelPool,
    streams: HashMap<GpuId, ComputeStream>,
    kernel: Kernel<Node>,
    trace: SimTrace,
    ready: Vec<bool>,
}

impl SystemState<'_> {
    /// Historical event tie-break: node id major, transfers before
    /// compute at equal ids (the old `(time, id, is_compute)` tuple).
    fn event_key(node: Node) -> u64 {
        match node {
            Node::Transfer(i) => u64::from(i) << 1,
            Node::Compute(i) => (u64::from(i) << 1) | 1,
        }
    }

    fn begin_transfer(&mut self, tid: u32, now: Seconds) {
        let finish = now + self.specs[tid as usize].duration;
        self.kernel.schedule(
            finish,
            Self::event_key(Node::Transfer(tid)),
            Node::Transfer(tid),
        );
        self.trace.push(TraceRecord::TransferStart {
            id: self.specs[tid as usize].id,
            at: now,
        });
    }

    fn begin_compute(&mut self, cid: u32, now: Seconds) {
        let task = &self.compute[cid as usize];
        let scaled = self.streams[&task.gpu].scale(task.duration);
        let finish = now + scaled;
        self.kernel.schedule(
            finish,
            Self::event_key(Node::Compute(cid)),
            Node::Compute(cid),
        );
        self.trace.push(TraceRecord::ComputeStart {
            id: cid,
            gpu: task.gpu,
            at: now,
        });
    }

    fn mark_ready(&mut self, node: Node, now: Seconds, nt: usize) {
        match node {
            Node::Transfer(i) => {
                self.ready[i as usize] = true;
                if self.pool.mark_ready(i, now, &mut self.trace) {
                    self.ready[i as usize] = false;
                    self.begin_transfer(i, now);
                }
            }
            Node::Compute(i) => {
                let me = nt + i as usize;
                self.ready[me] = true;
                let gpu = self.compute[i as usize].gpu;
                let started = self
                    .streams
                    .get_mut(&gpu)
                    .expect("gpu stream exists")
                    .acquire(i);
                if started {
                    self.ready[me] = false;
                    self.begin_compute(i, now);
                }
            }
        }
    }
}

/// Runs a [`SystemJob`] over a topology/embedding: one shared kernel for
/// both the transfers (channel-exclusive, arbitrated by
/// [`SimOptions::arbitration`](crate::engine::SimOptions::arbitration)) and the compute tasks (one exclusive
/// compute stream per GPU).
///
/// # Errors
///
/// Returns the same errors as [`simulate`](crate::simulate), plus
/// [`SimError::Deadlock`] for cyclic compute/transfer gating.
pub fn simulate_system(
    topo: &Topology,
    job: &SystemJob,
    embedding: &Embedding,
    opts: &crate::engine::SimOptions,
) -> Result<SystemReport, SimError> {
    simulate_system_with_slowdowns(topo, job, embedding, opts, &HashMap::new())
}

/// [`simulate_system`] with per-GPU compute slowdown factors (≥ 1.0):
/// every compute task on a listed GPU runs `factor`× longer. Models the
/// forwarding-occupancy tax detour GPUs pay (Fig. 15).
///
/// # Errors
///
/// As [`simulate_system`].
///
/// # Panics
///
/// Panics if any factor is below 1.0.
pub fn simulate_system_with_slowdowns(
    topo: &Topology,
    job: &SystemJob,
    embedding: &Embedding,
    opts: &crate::engine::SimOptions,
    slowdowns: &HashMap<GpuId, f64>,
) -> Result<SystemReport, SimError> {
    let transfers = job.schedule.transfers();
    let nt = transfers.len();
    let nc = job.compute.len();
    let num_channels = topo.channels().len();

    // Same structural gate as `simulate` (DAG + route validity only),
    // and the same lowering — both through the preparation cache.
    let prep = crate::prep::gate_and_lower(topo, &job.schedule, embedding, &opts.link_timing())?;

    // Under the switch-fabric model transfers occupy port paths (with
    // any uplink hops) instead of channels, and durations follow the
    // fabric's port bandwidths/latencies — that path rewrites durations,
    // so it clones the cached specs; the channel approximation shares
    // them untouched.
    let fabric = crate::fabric::FabricMap::for_options(topo, opts);
    let owned: Vec<TransferSpec>;
    let mut res_paths: Option<Vec<Vec<ChannelId>>> = None;
    let specs: &[TransferSpec] = match &fabric {
        Some(f) => {
            let timing = opts.link_timing();
            let mut cloned = (*prep.specs).clone();
            res_paths = Some(
                cloned
                    .iter_mut()
                    .map(|s| {
                        s.duration = f.duration(&s.path, s.bytes, s.via.is_some(), &timing);
                        f.resource_path(&s.path)
                    })
                    .collect(),
            );
            owned = cloned;
            &owned
        }
        None => &prep.specs,
    };

    // Unified dependency counts and reverse edges over both node kinds.
    let node_count = nt + nc;
    let idx = |n: Node| -> usize {
        match n {
            Node::Transfer(i) => i as usize,
            Node::Compute(i) => nt + i as usize,
        }
    };
    let mut deps_remaining = vec![0u32; node_count];
    let mut dependents: Vec<Vec<Node>> = vec![Vec::new(); node_count];
    for t in transfers {
        deps_remaining[t.id.index()] += t.deps.len() as u32;
        for d in &t.deps {
            dependents[idx(Node::Transfer(d.0))].push(Node::Transfer(t.id.0));
        }
    }
    for (tid, cid) in &job.transfer_gates {
        deps_remaining[tid.index()] += 1;
        dependents[idx(Node::Compute(cid.0))].push(Node::Transfer(tid.0));
    }
    for c in &job.compute {
        let me = idx(Node::Compute(c.id.0));
        deps_remaining[me] += (c.deps_compute.len() + c.deps_transfers.len()) as u32;
        for d in &c.deps_compute {
            dependents[idx(Node::Compute(d.0))].push(Node::Compute(c.id.0));
        }
        for d in &c.deps_transfers {
            dependents[idx(Node::Transfer(d.0))].push(Node::Compute(c.id.0));
        }
    }

    let num_resources = fabric.as_ref().map_or(num_channels, |f| f.num_ports());
    let mut pool = ChannelPool::new(num_resources, opts.arbitration);
    pool.reserve_tasks(nt);
    match res_paths {
        Some(paths) => {
            for (s, path) in specs.iter().zip(paths) {
                pool.add_task(path, (s.chunk.0, s.id.0));
            }
        }
        None => {
            for s in specs {
                pool.add_task_path(&s.path, (s.chunk.0, s.id.0));
            }
        }
    }
    let mut streams: HashMap<GpuId, ComputeStream> = HashMap::new();
    for c in &job.compute {
        streams.entry(c.gpu).or_insert_with(|| {
            ComputeStream::with_slowdown(slowdowns.get(&c.gpu).copied().unwrap_or(1.0))
        });
    }

    // Exclusive channels plus one running compute kernel per stream
    // bound the number of in-flight completion events.
    let in_flight = (num_resources + streams.len()).min(node_count);
    let mut st = SystemState {
        specs,
        compute: &job.compute,
        pool,
        streams,
        kernel: Kernel::with_capacity(in_flight),
        trace: opts.make_trace_for(nt.saturating_mul(4) + nc.saturating_mul(2)),
        ready: vec![false; node_count],
    };

    let mut done = vec![false; node_count];
    let mut transfer_complete = vec![Seconds::ZERO; nt];
    let mut compute_complete = vec![Seconds::ZERO; nc];
    let mut remaining = node_count;

    // Seed: nodes with no dependencies are ready at t=0, transfers first
    // (the historical seeding order).
    for t in transfers {
        if deps_remaining[t.id.index()] == 0 {
            st.mark_ready(Node::Transfer(t.id.0), Seconds::ZERO, nt);
        }
    }
    for c in &job.compute {
        if deps_remaining[nt + c.id.index()] == 0 {
            st.mark_ready(Node::Compute(c.id.0), Seconds::ZERO, nt);
        }
    }

    let mut makespan = Seconds::ZERO;
    let mut started = Vec::new();
    while let Some((now, node)) = st.kernel.pop() {
        makespan = makespan.max(now);
        let me = idx(node);
        done[me] = true;
        remaining -= 1;

        // Release the resource and record the completion.
        match node {
            Node::Transfer(i) => {
                let ti = i as usize;
                transfer_complete[ti] = now;
                st.pool.complete(i, now);
                st.trace.push(TraceRecord::TransferEnd {
                    id: specs[ti].id,
                    at: now,
                });
                if let Some(via) = specs[ti].via {
                    st.trace.push(TraceRecord::DetourHop {
                        id: specs[ti].id,
                        via,
                        at: now,
                    });
                }
            }
            Node::Compute(i) => {
                let ci = i as usize;
                compute_complete[ci] = now;
                let task = &job.compute[ci];
                st.trace.push(TraceRecord::ComputeEnd {
                    id: i,
                    gpu: task.gpu,
                    at: now,
                });
            }
        }

        // Unblock dependents before serving freed resources — the
        // historical order.
        let deps = std::mem::take(&mut dependents[me]);
        for dep in deps {
            let di = idx(dep);
            deps_remaining[di] -= 1;
            if deps_remaining[di] == 0 {
                st.mark_ready(dep, now, nt);
            }
        }

        // Serve the freed resource's waiters.
        match node {
            Node::Transfer(i) => {
                started.clear();
                st.pool.serve(i, now, &mut st.trace, &mut started);
                for &s in &started {
                    st.ready[s as usize] = false;
                    st.begin_transfer(s, now);
                }
            }
            Node::Compute(i) => {
                let task = &job.compute[i as usize];
                let scaled = st.streams[&task.gpu].scale(task.duration);
                let next = st
                    .streams
                    .get_mut(&task.gpu)
                    .expect("gpu stream exists")
                    .release(scaled);
                if let Some(h) = next {
                    st.ready[nt + h as usize] = false;
                    st.begin_compute(h, now);
                }
            }
        }
    }

    if remaining > 0 {
        return Err(SimError::Deadlock { remaining });
    }

    let gpu_busy: HashMap<GpuId, Seconds> = st
        .streams
        .iter()
        .filter(|(_, s)| s.busy() > Seconds::ZERO)
        .map(|(&g, s)| (g, s.busy()))
        .collect();
    let kstats = st.kernel.stats();
    let max_stream_waiting = st
        .streams
        .values()
        .map(|s| s.max_waiting())
        .max()
        .unwrap_or(0);
    // Per-port quantities fold back to channels under the fabric model;
    // the raw per-port busy vector stays visible in the stats.
    let (channel_busy, queue_wait, port_busy) = match &fabric {
        Some(f) => (
            f.channel_values(st.pool.busy(), num_channels),
            f.channel_values(st.pool.queue_wait(), num_channels),
            st.pool.busy().to_vec(),
        ),
        None => (
            st.pool.busy().to_vec(),
            st.pool.queue_wait().to_vec(),
            Vec::new(),
        ),
    };
    let stats = SimStats {
        events_scheduled: kstats.events_scheduled,
        events_processed: kstats.events_processed,
        max_event_queue_depth: kstats.max_queue_depth,
        max_channel_queue_depth: st.pool.max_waiting().max(max_stream_waiting),
        queue_wait,
        force_starts: st.pool.force_starts(),
        port_busy,
        ..SimStats::default()
    };

    Ok(SystemReport {
        transfer_complete,
        compute_complete,
        makespan,
        gpu_busy,
        channel_busy,
        trace: st.trace,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimOptions;
    use ccube_collectives::{ring_allreduce, Chunking, Embedding, Rank};
    use ccube_topology::{dgx1, ByteSize};

    fn compute_only_job(schedule: Schedule) -> SystemJob {
        SystemJob {
            schedule,
            compute: vec![],
            transfer_gates: vec![],
        }
    }

    #[test]
    fn transfers_alone_match_the_network_engine() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(16));
        let e = Embedding::identity(&topo, &s).unwrap();
        let net = crate::engine::simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let sys = simulate_system(
            &topo,
            &compute_only_job(s.clone()),
            &e,
            &SimOptions::default(),
        )
        .unwrap();
        let rel = (sys.makespan.as_secs_f64() - net.makespan().as_secs_f64()).abs()
            / net.makespan().as_secs_f64();
        assert!(
            rel < 1e-9,
            "system {} vs network {}",
            sys.makespan,
            net.makespan()
        );
    }

    #[test]
    fn compute_serializes_per_gpu() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        // Two independent 1 ms tasks on the same GPU must serialize; on
        // different GPUs they run concurrently.
        let mk = |id: u32, gpu: u32| ComputeTask {
            id: ComputeTaskId(id),
            gpu: ccube_topology::GpuId(gpu),
            duration: Seconds::from_millis(1.0),
            deps_compute: vec![],
            deps_transfers: vec![],
            label: format!("t{id}"),
        };
        let same = SystemJob {
            schedule: s.clone(),
            compute: vec![mk(0, 0), mk(1, 0)],
            transfer_gates: vec![],
        };
        let diff = SystemJob {
            schedule: s,
            compute: vec![mk(0, 0), mk(1, 1)],
            transfer_gates: vec![],
        };
        let r_same = simulate_system(&topo, &same, &e, &SimOptions::default()).unwrap();
        let r_diff = simulate_system(&topo, &diff, &e, &SimOptions::default()).unwrap();
        let last_same = r_same
            .compute_complete
            .iter()
            .cloned()
            .fold(Seconds::ZERO, Seconds::max);
        let last_diff = r_diff
            .compute_complete
            .iter()
            .cloned()
            .fold(Seconds::ZERO, Seconds::max);
        assert!((last_same.as_millis() - 2.0).abs() < 1e-9, "{last_same}");
        assert!((last_diff.as_millis() - 1.0).abs() < 1e-9, "{last_diff}");
    }

    #[test]
    fn transfer_gates_delay_communication() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        // Gate every zero-dep transfer on a 2 ms "backward" task.
        let gates: Vec<(TransferId, ComputeTaskId)> = s
            .transfers()
            .iter()
            .filter(|t| t.deps.is_empty())
            .map(|t| (t.id, ComputeTaskId(0)))
            .collect();
        let job = SystemJob {
            schedule: s,
            compute: vec![ComputeTask {
                id: ComputeTaskId(0),
                gpu: ccube_topology::GpuId(0),
                duration: Seconds::from_millis(2.0),
                deps_compute: vec![],
                deps_transfers: vec![],
                label: "bwd".into(),
            }],
            transfer_gates: gates,
        };
        let r = simulate_system(&topo, &job, &e, &SimOptions::default()).unwrap();
        // No transfer may finish before the gate opens at 2 ms.
        assert!(r
            .transfer_complete
            .iter()
            .all(|&t| t > Seconds::from_millis(2.0)));
    }

    #[test]
    fn compute_gated_on_transfers_waits_for_them() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(8));
        let e = Embedding::identity(&topo, &s).unwrap();
        // A "forward layer" on rank 3 gated on every transfer delivering
        // to rank 3.
        let deps: Vec<TransferId> = s
            .transfers()
            .iter()
            .filter(|t| t.dst == Rank(3))
            .map(|t| t.id)
            .collect();
        let job = SystemJob {
            schedule: s,
            compute: vec![ComputeTask {
                id: ComputeTaskId(0),
                gpu: ccube_topology::GpuId(3),
                duration: Seconds::from_micros(10.0),
                deps_compute: vec![],
                deps_transfers: deps.clone(),
                label: "fwd".into(),
            }],
            transfer_gates: vec![],
        };
        let r = simulate_system(&topo, &job, &e, &SimOptions::default()).unwrap();
        let last_delivery = deps
            .iter()
            .map(|d| r.transfer_complete[d.index()])
            .fold(Seconds::ZERO, Seconds::max);
        assert!(r.compute_complete[0] >= last_delivery);
        assert!(r.gpu_utilization(ccube_topology::GpuId(3)) > 0.0);
    }

    #[test]
    fn cyclic_gating_is_a_deadlock() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        let first = s.transfers()[0].id;
        // compute waits on the first transfer AND gates it: a cycle.
        let job = SystemJob {
            schedule: s,
            compute: vec![ComputeTask {
                id: ComputeTaskId(0),
                gpu: ccube_topology::GpuId(0),
                duration: Seconds::from_millis(1.0),
                deps_compute: vec![],
                deps_transfers: vec![first],
                label: "cyclic".into(),
            }],
            transfer_gates: vec![(first, ComputeTaskId(0))],
        };
        assert!(matches!(
            simulate_system(&topo, &job, &e, &SimOptions::default()),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn unused_chunking_is_fine() {
        // Smoke: the job builder types compose with tree schedules too.
        use ccube_collectives::{tree_allreduce, DoubleBinaryTree, Overlap};
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(8), 8),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let r = simulate_system(&topo, &compute_only_job(s), &e, &SimOptions::default()).unwrap();
        assert!(r.makespan > Seconds::ZERO);
    }

    #[test]
    fn slowdowns_stretch_compute_on_listed_gpus_only() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        let mk = |id: u32, gpu: u32| ComputeTask {
            id: ComputeTaskId(id),
            gpu: ccube_topology::GpuId(gpu),
            duration: Seconds::from_millis(1.0),
            deps_compute: vec![],
            deps_transfers: vec![],
            label: format!("t{id}"),
        };
        let job = SystemJob {
            schedule: s,
            compute: vec![mk(0, 0), mk(1, 1)],
            transfer_gates: vec![],
        };
        let mut slow = HashMap::new();
        slow.insert(ccube_topology::GpuId(1), 1.5);
        let r =
            simulate_system_with_slowdowns(&topo, &job, &e, &SimOptions::default(), &slow).unwrap();
        assert!((r.compute_complete[0].as_millis() - 1.0).abs() < 1e-9);
        assert!((r.compute_complete[1].as_millis() - 1.5).abs() < 1e-9);
        // The trace saw both compute tasks.
        let compute_events = r
            .trace
            .records()
            .filter(|rec| matches!(rec, TraceRecord::ComputeStart { .. }))
            .count();
        assert_eq!(compute_events, 2);
    }
}
