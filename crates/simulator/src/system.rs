//! Unified compute + communication co-simulation.
//!
//! The paper's scale-out study notes that ASTRA-sim "did not have ability
//! to provide detailed modeling of compute in deep learning", so
//! "overlapping compute with communication and gradient queuing could not
//! be modeled" there — the authors had to fall back to turnaround time as
//! a proxy (§V-B3). This module removes that limitation for the
//! reproduction: a [`SystemJob`] carries both the collective's transfers
//! and per-GPU **compute tasks**, with dependencies in *both* directions
//! (communication gated on backward compute, forward layers gated on
//! chunk deliveries), and [`simulate_system`] executes everything in one
//! event loop:
//!
//! * channels behave exactly as in [`simulate`](crate::simulate)
//!   (exclusive, FIFO, wormhole timing);
//! * each GPU is one exclusive compute resource — at most one compute
//!   task runs on it at a time, in readiness order (a single compute
//!   stream, like the paper's implementation).

use crate::error::SimError;
use ccube_collectives::{EdgeKey, Embedding, Schedule, TransferId};
use ccube_topology::{GpuId, Seconds, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Identifier of a compute task within a [`SystemJob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComputeTaskId(pub u32);

impl ComputeTaskId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One compute task: a kernel occupying its GPU's compute stream for a
/// fixed duration, gated on other compute tasks and/or transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeTask {
    /// The task's id (its index in the job's compute list).
    pub id: ComputeTaskId,
    /// The GPU whose compute stream the task occupies.
    pub gpu: GpuId,
    /// Execution time.
    pub duration: Seconds,
    /// Compute tasks that must finish first.
    pub deps_compute: Vec<ComputeTaskId>,
    /// Transfers that must finish first (e.g. the chunk deliveries a
    /// forward layer's dequeue gate waits on).
    pub deps_transfers: Vec<TransferId>,
    /// A label for reporting ("bwd", "fwd L3", ...).
    pub label: String,
}

/// A co-simulation job: a collective schedule plus compute tasks, plus
/// extra communication→compute gates.
#[derive(Debug, Clone)]
pub struct SystemJob {
    /// The communication transfers.
    pub schedule: Schedule,
    /// The compute tasks.
    pub compute: Vec<ComputeTask>,
    /// Extra dependencies: transfer `t` may not start before compute task
    /// `c` finishes (e.g. the one-shot AllReduce waits for backward).
    pub transfer_gates: Vec<(TransferId, ComputeTaskId)>,
}

/// The result of a co-simulation.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Completion time of every transfer, by transfer id.
    pub transfer_complete: Vec<Seconds>,
    /// Completion time of every compute task, by task id.
    pub compute_complete: Vec<Seconds>,
    /// Total wall-clock time.
    pub makespan: Seconds,
    /// Per-GPU compute busy time.
    pub gpu_busy: HashMap<GpuId, Seconds>,
}

impl SystemReport {
    /// Compute utilization of a GPU over the makespan.
    pub fn gpu_utilization(&self, gpu: GpuId) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.gpu_busy
            .get(&gpu)
            .map(|b| *b / self.makespan)
            .unwrap_or(0.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Transfer(u32),
    Compute(u32),
}

/// Runs a [`SystemJob`] over a topology/embedding: one event loop for
/// both the transfers (channel-exclusive, FIFO) and the compute tasks
/// (one exclusive compute stream per GPU).
///
/// # Errors
///
/// Returns the same errors as [`simulate`](crate::simulate), plus
/// [`SimError::Deadlock`] for cyclic compute/transfer gating.
pub fn simulate_system(
    topo: &Topology,
    job: &SystemJob,
    embedding: &Embedding,
    opts: &crate::engine::SimOptions,
) -> Result<SystemReport, SimError> {
    let transfers = job.schedule.transfers();
    let nt = transfers.len();
    let nc = job.compute.len();
    let num_channels = topo.channels().len();

    // Resolve transfer paths/durations exactly as the network engine does.
    let mut paths: Vec<&[ccube_topology::ChannelId]> = Vec::with_capacity(nt);
    let mut t_durations: Vec<Seconds> = Vec::with_capacity(nt);
    for t in transfers {
        let key = EdgeKey {
            src: t.src,
            dst: t.dst,
            tree: t.tree,
        };
        let route = embedding.route(&key).ok_or(SimError::MissingRoute(key))?;
        let mut alpha = Seconds::ZERO;
        let mut bottleneck = f64::INFINITY;
        for &c in route.channels() {
            if c.index() >= num_channels {
                return Err(SimError::UnknownChannel {
                    edge: key,
                    channel_index: c.index(),
                });
            }
            let ch = topo.channel(c);
            alpha += ch.latency();
            bottleneck = bottleneck.min(ch.bandwidth().as_bytes_per_sec());
        }
        if route.is_detour() {
            alpha += opts.forwarding_latency;
        }
        paths.push(route.channels());
        t_durations
            .push(alpha + Seconds::new(t.bytes.as_f64() / (bottleneck * opts.bandwidth_scale)));
    }

    // Unified dependency counts and reverse edges.
    let node_count = nt + nc;
    let idx = |n: Node| -> usize {
        match n {
            Node::Transfer(i) => i as usize,
            Node::Compute(i) => nt + i as usize,
        }
    };
    let mut deps_remaining = vec![0u32; node_count];
    let mut dependents: Vec<Vec<Node>> = vec![Vec::new(); node_count];
    for t in transfers {
        deps_remaining[t.id.index()] += t.deps.len() as u32;
        for d in &t.deps {
            dependents[idx(Node::Transfer(d.0))].push(Node::Transfer(t.id.0));
        }
    }
    for (tid, cid) in &job.transfer_gates {
        deps_remaining[tid.index()] += 1;
        dependents[idx(Node::Compute(cid.0))].push(Node::Transfer(tid.0));
    }
    for c in &job.compute {
        let me = idx(Node::Compute(c.id.0));
        deps_remaining[me] += (c.deps_compute.len() + c.deps_transfers.len()) as u32;
        for d in &c.deps_compute {
            dependents[idx(Node::Compute(d.0))].push(Node::Compute(c.id.0));
        }
        for d in &c.deps_transfers {
            dependents[idx(Node::Transfer(d.0))].push(Node::Compute(c.id.0));
        }
    }

    // Resources.
    let mut channel_free = vec![true; num_channels];
    let mut channel_waiters: Vec<VecDeque<u32>> = vec![VecDeque::new(); num_channels];
    let mut gpu_free: HashMap<GpuId, bool> = HashMap::new();
    let mut gpu_waiters: HashMap<GpuId, VecDeque<u32>> = HashMap::new();
    for c in &job.compute {
        gpu_free.entry(c.gpu).or_insert(true);
        gpu_waiters.entry(c.gpu).or_default();
    }

    let mut ready = vec![false; node_count];
    let mut done = vec![false; node_count];
    let mut transfer_complete = vec![Seconds::ZERO; nt];
    let mut compute_complete = vec![Seconds::ZERO; nc];
    let mut gpu_busy: HashMap<GpuId, Seconds> = HashMap::new();
    let mut remaining = node_count;

    // (finish_time, node) completions.
    let mut events: BinaryHeap<Reverse<(Seconds, u32, bool)>> = BinaryHeap::new();
    // encode: (time, id, is_compute)

    // Try starting a ready node; enqueue as waiter otherwise.
    macro_rules! try_start {
        ($node:expr, $now:expr) => {{
            match $node {
                Node::Transfer(i) => {
                    let ti = i as usize;
                    if ready[ti] && paths[ti].iter().all(|c| channel_free[c.index()]) {
                        for c in paths[ti] {
                            channel_free[c.index()] = false;
                        }
                        ready[ti] = false;
                        events.push(Reverse(($now + t_durations[ti], i, false)));
                    } else if ready[ti] {
                        for c in paths[ti] {
                            if !channel_waiters[c.index()].contains(&i) {
                                channel_waiters[c.index()].push_back(i);
                            }
                        }
                    }
                }
                Node::Compute(i) => {
                    let ci = i as usize;
                    let me = nt + ci;
                    let gpu = job.compute[ci].gpu;
                    if ready[me] && gpu_free[&gpu] {
                        *gpu_free.get_mut(&gpu).expect("gpu known") = false;
                        ready[me] = false;
                        events.push(Reverse(($now + job.compute[ci].duration, i, true)));
                    } else if ready[me] {
                        let q = gpu_waiters.get_mut(&gpu).expect("gpu known");
                        if !q.contains(&i) {
                            q.push_back(i);
                        }
                    }
                }
            }
        }};
    }

    // Seed.
    for t in transfers {
        if deps_remaining[t.id.index()] == 0 {
            ready[t.id.index()] = true;
            try_start!(Node::Transfer(t.id.0), Seconds::ZERO);
        }
    }
    for c in &job.compute {
        let me = nt + c.id.index();
        if deps_remaining[me] == 0 {
            ready[me] = true;
            try_start!(Node::Compute(c.id.0), Seconds::ZERO);
        }
    }

    let mut makespan = Seconds::ZERO;
    while let Some(Reverse((now, id, is_compute))) = events.pop() {
        makespan = makespan.max(now);
        let node = if is_compute {
            Node::Compute(id)
        } else {
            Node::Transfer(id)
        };
        let me = idx(node);
        done[me] = true;
        remaining -= 1;

        // Release the resource and record.
        match node {
            Node::Transfer(i) => {
                let ti = i as usize;
                transfer_complete[ti] = now;
                for c in paths[ti] {
                    channel_free[c.index()] = true;
                }
            }
            Node::Compute(i) => {
                let ci = i as usize;
                compute_complete[ci] = now;
                let gpu = job.compute[ci].gpu;
                *gpu_free.get_mut(&gpu).expect("gpu known") = true;
                *gpu_busy.entry(gpu).or_insert(Seconds::ZERO) += job.compute[ci].duration;
            }
        }

        // Unblock dependents.
        let deps = std::mem::take(&mut dependents[me]);
        for dep in deps {
            let di = idx(dep);
            deps_remaining[di] -= 1;
            if deps_remaining[di] == 0 {
                ready[di] = true;
                try_start!(dep, now);
            }
        }

        // Serve freed resources (FIFO, head-of-line).
        match node {
            Node::Transfer(i) => {
                for c in paths[i as usize] {
                    let ci = c.index();
                    while let Some(&head) = channel_waiters[ci].front() {
                        let hi = head as usize;
                        if done[hi] || (!ready[hi]) {
                            channel_waiters[ci].pop_front();
                            continue;
                        }
                        if paths[hi].iter().all(|cc| channel_free[cc.index()]) {
                            channel_waiters[ci].pop_front();
                            try_start!(Node::Transfer(head), now);
                            continue;
                        }
                        break;
                    }
                }
            }
            Node::Compute(i) => {
                let gpu = job.compute[i as usize].gpu;
                loop {
                    // Pop the next live waiter while holding the queue
                    // borrow, then start it after releasing the borrow.
                    let head = {
                        let q = gpu_waiters.get_mut(&gpu).expect("gpu known");
                        while let Some(&h) = q.front() {
                            let me2 = nt + h as usize;
                            if done[me2] || !ready[me2] {
                                q.pop_front();
                            } else {
                                break;
                            }
                        }
                        if gpu_free[&gpu] {
                            q.pop_front()
                        } else {
                            None
                        }
                    };
                    let Some(h) = head else { break };
                    try_start!(Node::Compute(h), now);
                }
            }
        }
    }

    if remaining > 0 {
        return Err(SimError::Deadlock { remaining });
    }

    Ok(SystemReport {
        transfer_complete,
        compute_complete,
        makespan,
        gpu_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimOptions;
    use ccube_collectives::{ring_allreduce, Chunking, Embedding, Rank};
    use ccube_topology::{dgx1, ByteSize};

    fn compute_only_job(schedule: Schedule) -> SystemJob {
        SystemJob {
            schedule,
            compute: vec![],
            transfer_gates: vec![],
        }
    }

    #[test]
    fn transfers_alone_match_the_network_engine() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(16));
        let e = Embedding::identity(&topo, &s).unwrap();
        let net = crate::engine::simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let sys = simulate_system(
            &topo,
            &compute_only_job(s.clone()),
            &e,
            &SimOptions::default(),
        )
        .unwrap();
        let rel = (sys.makespan.as_secs_f64() - net.makespan().as_secs_f64()).abs()
            / net.makespan().as_secs_f64();
        assert!(rel < 1e-9, "system {} vs network {}", sys.makespan, net.makespan());
    }

    #[test]
    fn compute_serializes_per_gpu() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        // Two independent 1 ms tasks on the same GPU must serialize; on
        // different GPUs they run concurrently.
        let mk = |id: u32, gpu: u32| ComputeTask {
            id: ComputeTaskId(id),
            gpu: ccube_topology::GpuId(gpu),
            duration: Seconds::from_millis(1.0),
            deps_compute: vec![],
            deps_transfers: vec![],
            label: format!("t{id}"),
        };
        let same = SystemJob {
            schedule: s.clone(),
            compute: vec![mk(0, 0), mk(1, 0)],
            transfer_gates: vec![],
        };
        let diff = SystemJob {
            schedule: s,
            compute: vec![mk(0, 0), mk(1, 1)],
            transfer_gates: vec![],
        };
        let r_same = simulate_system(&topo, &same, &e, &SimOptions::default()).unwrap();
        let r_diff = simulate_system(&topo, &diff, &e, &SimOptions::default()).unwrap();
        let last_same = r_same.compute_complete.iter().cloned().fold(Seconds::ZERO, Seconds::max);
        let last_diff = r_diff.compute_complete.iter().cloned().fold(Seconds::ZERO, Seconds::max);
        assert!((last_same.as_millis() - 2.0).abs() < 1e-9, "{last_same}");
        assert!((last_diff.as_millis() - 1.0).abs() < 1e-9, "{last_diff}");
    }

    #[test]
    fn transfer_gates_delay_communication() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        // Gate every zero-dep transfer on a 2 ms "backward" task.
        let gates: Vec<(TransferId, ComputeTaskId)> = s
            .transfers()
            .iter()
            .filter(|t| t.deps.is_empty())
            .map(|t| (t.id, ComputeTaskId(0)))
            .collect();
        let job = SystemJob {
            schedule: s,
            compute: vec![ComputeTask {
                id: ComputeTaskId(0),
                gpu: ccube_topology::GpuId(0),
                duration: Seconds::from_millis(2.0),
                deps_compute: vec![],
                deps_transfers: vec![],
                label: "bwd".into(),
            }],
            transfer_gates: gates,
        };
        let r = simulate_system(&topo, &job, &e, &SimOptions::default()).unwrap();
        // No transfer may finish before the gate opens at 2 ms.
        assert!(r
            .transfer_complete
            .iter()
            .all(|&t| t > Seconds::from_millis(2.0)));
    }

    #[test]
    fn compute_gated_on_transfers_waits_for_them() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(8));
        let e = Embedding::identity(&topo, &s).unwrap();
        // A "forward layer" on rank 3 gated on every transfer delivering
        // to rank 3.
        let deps: Vec<TransferId> = s
            .transfers()
            .iter()
            .filter(|t| t.dst == Rank(3))
            .map(|t| t.id)
            .collect();
        let job = SystemJob {
            schedule: s,
            compute: vec![ComputeTask {
                id: ComputeTaskId(0),
                gpu: ccube_topology::GpuId(3),
                duration: Seconds::from_micros(10.0),
                deps_compute: vec![],
                deps_transfers: deps.clone(),
                label: "fwd".into(),
            }],
            transfer_gates: vec![],
        };
        let r = simulate_system(&topo, &job, &e, &SimOptions::default()).unwrap();
        let last_delivery = deps
            .iter()
            .map(|d| r.transfer_complete[d.index()])
            .fold(Seconds::ZERO, Seconds::max);
        assert!(r.compute_complete[0] >= last_delivery);
        assert!(r.gpu_utilization(ccube_topology::GpuId(3)) > 0.0);
    }

    #[test]
    fn cyclic_gating_is_a_deadlock() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::kib(64));
        let e = Embedding::identity(&topo, &s).unwrap();
        let first = s.transfers()[0].id;
        // compute waits on the first transfer AND gates it: a cycle.
        let job = SystemJob {
            schedule: s,
            compute: vec![ComputeTask {
                id: ComputeTaskId(0),
                gpu: ccube_topology::GpuId(0),
                duration: Seconds::from_millis(1.0),
                deps_compute: vec![],
                deps_transfers: vec![first],
                label: "cyclic".into(),
            }],
            transfer_gates: vec![(first, ComputeTaskId(0))],
        };
        assert!(matches!(
            simulate_system(&topo, &job, &e, &SimOptions::default()),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn unused_chunking_is_fine() {
        // Smoke: the job builder types compose with tree schedules too.
        use ccube_collectives::{tree_allreduce, DoubleBinaryTree, Overlap};
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let s = tree_allreduce(
            dt.trees(),
            &Chunking::even(ByteSize::mib(8), 8),
            Overlap::ReductionBroadcast,
        );
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let r = simulate_system(&topo, &compute_only_job(s), &e, &SimOptions::default()).unwrap();
        assert!(r.makespan > Seconds::ZERO);
    }
}
