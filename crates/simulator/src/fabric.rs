//! The componentized switch-fabric network model.
//!
//! The historical engines approximate the scale-out interconnect as
//! plain channels in a [`ChannelPool`] — an ideal, non-blocking switch.
//! This module adds the explicit alternative: a [`NetworkModel`] selects
//! between that approximation ([`NetworkModel::ChannelApprox`], the
//! default, bit-identical to the historical behavior) and
//! [`NetworkModel::SwitchFabric`], which schedules transfers on the
//! port-level [`FabricGraph`] derived from the topology: explicit
//! `NicAgent` and `SwitchAgent` components on the
//! [`Simulation`] layer, per-port queues with
//! the same FIFO / chunk-priority arbitration, configurable leaf radix
//! and uplink oversubscription, and per-hop cut-through or
//! store-and-forward latency.
//!
//! **Equivalence contract**: under a passthrough fabric (no leaf split,
//! zero uplink latency, [`HopMode::CutThrough`]) every channel maps to
//! exactly one port with the channel's own bandwidth and latency, the
//! fabric engine performs the same pool operations in the same kernel
//! order as the channel engine, and the results agree with
//! [`simulate`](crate::simulate) to floating-point noise (well within
//! the 1e-9 the cross-model tests assert).

use crate::engine::SimOptions;
use crate::error::SimError;
use crate::kernel::{Component, ComponentId, Ctx, Simulation};
use crate::report::{SimReport, SimStats, TransferTiming};
use crate::resource::ChannelPool;
use crate::trace::{BusyInterval, SimTrace, TraceRecord};
use ccube_collectives::{Embedding, LinkTiming, Schedule, TransferSpec};
use ccube_topology::{
    ByteSize, ChannelId, FabricConfig, FabricGraph, GpuId, PortId, PortKind, Seconds, SwitchId,
    Topology,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Per-hop latency accounting of the switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HopMode {
    /// Cut-through switching: a transfer occupies its whole port path at
    /// once (wormhole, like the channel approximation) and pays the sum
    /// of port latencies plus one serialization at the bottleneck port.
    #[default]
    CutThrough,
    /// Store-and-forward switching: each port is held in sequence for a
    /// full per-hop serialization (`port latency + bytes / port
    /// bandwidth`), so a message crossing `h` ports pays `h`
    /// serializations — but releases each port as soon as its hop is
    /// done, letting fan-in traffic interleave hop by hop.
    StoreForward,
}

/// How a transfer's uplink slot is (re)chosen when a leaf has more than
/// one uplink toward the spines.
///
/// The static default baked into cached port routes is hash striping by
/// source node ([`FabricGraph::port_route`]); the adaptive policies
/// revise that choice per transfer at grant time from the live per-port
/// state. Adaptive revision applies under [`HopMode::CutThrough`] (where
/// a transfer owns its whole port path and the up/down pair can move
/// jointly); store-and-forward hops keep the static striping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UplinkPolicy {
    /// Keep the static hash-striped slot. Zero adaptivity: a downed
    /// uplink stalls its striped traffic until repair. With one uplink
    /// per leaf every policy degenerates to this.
    #[default]
    Hash,
    /// Score every surviving slot by live occupancy plus waiter-queue
    /// depth of its up/down pair and move on strict improvement
    /// (smallest slot wins ties).
    LeastQueued,
    /// Keep the assigned slot while it is alive; when a fault downs it,
    /// move to the first surviving slot (scanning upward, wrapping).
    Failover,
}

impl UplinkPolicy {
    /// Stable lowercase label (CSV columns, CLI round-trip).
    pub fn label(&self) -> &'static str {
        match self {
            UplinkPolicy::Hash => "hash",
            UplinkPolicy::LeastQueued => "least-queued",
            UplinkPolicy::Failover => "failover",
        }
    }
}

/// Configuration of the [`NetworkModel::SwitchFabric`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricSpec {
    /// Endpoints per leaf switch (`None`: all nodes on one leaf — the
    /// passthrough shape).
    pub radix: Option<usize>,
    /// Uplink oversubscription ratio (see
    /// [`FabricConfig::oversubscription`]).
    pub oversubscription: f64,
    /// Extra fixed latency per uplink port traversal.
    pub uplink_latency: Seconds,
    /// Per-hop latency accounting.
    pub hop_mode: HopMode,
    /// Number of spine switches behind the leaves (uplink slot `j`
    /// attaches to spine `j % spines`).
    pub spines: usize,
    /// Uplink up/down pairs per leaf. The leaf's aggregate uplink
    /// capacity is split evenly across them, so `1` reproduces the
    /// single-uplink fabric exactly.
    pub uplinks: usize,
    /// How transfers are steered across the uplink slots.
    pub uplink_policy: UplinkPolicy,
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec {
            radix: None,
            oversubscription: 1.0,
            uplink_latency: Seconds::ZERO,
            hop_mode: HopMode::CutThrough,
            spines: 1,
            uplinks: 1,
            uplink_policy: UplinkPolicy::Hash,
        }
    }
}

impl FabricSpec {
    /// The passthrough configuration, under which the fabric must
    /// reproduce the channel approximation (the equivalence contract).
    pub fn passthrough() -> Self {
        FabricSpec::default()
    }

    /// The topology-side derivation config.
    pub(crate) fn fabric_config(&self) -> FabricConfig {
        FabricConfig {
            radix: self.radix,
            oversubscription: self.oversubscription,
            uplink_latency: self.uplink_latency,
            spines: self.spines,
            uplinks_per_leaf: self.uplinks,
        }
    }
}

/// Which network model an engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NetworkModel {
    /// The historical NIC-channel approximation: channels are ideal,
    /// exclusive resources; the switch between them is non-blocking and
    /// invisible. Default — bit-identical to the pre-refactor engines.
    #[default]
    ChannelApprox,
    /// The explicit switch fabric: transfers are scheduled on the ports
    /// of the derived [`FabricGraph`], with switch/NIC agents, per-port
    /// queues, and uplink contention.
    SwitchFabric(FabricSpec),
}

/// The channel→port mapping layer the engines share: the dedicated
/// fabric engine below uses it directly, and the system/fault engines
/// keep their channel-level scheduling logic but size their
/// [`ChannelPool`] over fabric ports and occupy port paths, so uplink
/// contention and fan-in serialization shape timings there too.
pub(crate) struct FabricMap {
    /// The derived port graph, shared through the preparation cache so
    /// repeated runs on the same `(topology, fabric spec)` reuse it.
    pub(crate) graph: Rc<FabricGraph>,
    pub(crate) hop_mode: HopMode,
    pub(crate) policy: UplinkPolicy,
}

impl FabricMap {
    /// The mapping for `opts.network`, or `None` under `ChannelApprox`.
    pub(crate) fn for_options(topo: &Topology, opts: &SimOptions) -> Option<FabricMap> {
        match opts.network {
            NetworkModel::ChannelApprox => None,
            NetworkModel::SwitchFabric(spec) => Some(FabricMap {
                graph: crate::prep::fabric_graph_for(topo, &spec),
                hop_mode: spec.hop_mode,
                policy: spec.uplink_policy,
            }),
        }
    }

    /// Number of schedulable port resources.
    pub(crate) fn num_ports(&self) -> usize {
        self.graph.num_ports()
    }

    /// A channel path expanded to the port path it occupies, with port
    /// ids cast to the pool's resource indices.
    pub(crate) fn resource_path(&self, channels: &[ChannelId]) -> Vec<ChannelId> {
        self.graph
            .port_route(channels)
            .into_iter()
            .map(|p| ChannelId(p.0))
            .collect()
    }

    /// End-to-end duration of a transfer over `channels` in this fabric.
    /// Cut-through mirrors `lower_schedule`'s wormhole model over the
    /// port path (so a passthrough fabric reproduces it exactly);
    /// store-and-forward sums one serialization per port.
    pub(crate) fn duration(
        &self,
        channels: &[ChannelId],
        bytes: ByteSize,
        detour: bool,
        timing: &LinkTiming,
    ) -> Seconds {
        self.duration_on(&self.graph.port_route(channels), bytes, detour, timing)
    }

    /// [`FabricMap::duration`] over an already-expanded port route —
    /// callers holding the cached `lower_to_ports` expansion skip the
    /// second route computation.
    pub(crate) fn duration_on(
        &self,
        route: &[PortId],
        bytes: ByteSize,
        detour: bool,
        timing: &LinkTiming,
    ) -> Seconds {
        match self.hop_mode {
            HopMode::CutThrough => {
                let mut alpha = Seconds::ZERO;
                let mut bottleneck = f64::INFINITY;
                for &p in route {
                    let port = self.graph.port(p);
                    alpha += port.latency();
                    bottleneck = bottleneck.min(port.bandwidth().as_bytes_per_sec());
                }
                if detour {
                    alpha += timing.forwarding_latency;
                }
                alpha + Seconds::new(bytes.as_f64() / (bottleneck * timing.bandwidth_scale))
            }
            HopMode::StoreForward => {
                let mut total = Seconds::ZERO;
                for &p in route {
                    let port = self.graph.port(p);
                    total += port.latency()
                        + Seconds::new(
                            bytes.as_f64()
                                / (port.bandwidth().as_bytes_per_sec() * timing.bandwidth_scale),
                        );
                }
                if detour {
                    total += timing.forwarding_latency;
                }
                total
            }
        }
    }

    /// Folds a per-port quantity back to per-channel (each channel's
    /// endpoint ports summed; uplink ports, having no channel, are
    /// visible only in the per-port view).
    pub(crate) fn channel_values(&self, per_port: &[Seconds], num_channels: usize) -> Vec<Seconds> {
        let mut out = vec![Seconds::ZERO; num_channels];
        for (pi, port) in self.graph.ports().iter().enumerate() {
            if let Some(c) = port.channel() {
                out[c.index()] += per_port[pi];
            }
        }
        out
    }
}

/// Revises the uplink slots of an expanded port path (given as pool
/// resource indices) under `policy`, from the pool's live down/free/
/// queue-depth state. Each adjacent `(uplink-up, uplink-down)` pair is
/// rescored independently; both legs move jointly so the route stays on
/// one spine. Slot substitution never changes a cut-through duration —
/// the slots of a leaf are homogeneous by construction — so callers can
/// keep their cached timings. Returns the revised path and the first
/// revised uplink-up port, or `None` if every crossing keeps its slot
/// (including when no surviving slot exists: exhausted diversity
/// degrades to stall-until-repair, never to an invalid route).
pub(crate) fn choose_uplinks(
    graph: &FabricGraph,
    pool: &ChannelPool,
    path: &[ChannelId],
    policy: UplinkPolicy,
) -> Option<(Vec<ChannelId>, ChannelId)> {
    if policy == UplinkPolicy::Hash {
        return None;
    }
    let mut out: Option<Vec<ChannelId>> = None;
    let mut moved_to: Option<ChannelId> = None;
    let mut i = 0;
    while i + 1 < path.len() {
        let up = graph.port(PortId(path[i].0));
        let down = graph.port(PortId(path[i + 1].0));
        let cur = match (up.kind(), down.kind(), up.uplink(), down.uplink()) {
            (PortKind::UplinkUp, PortKind::UplinkDown, Some(a), Some(b)) if a == b => a as usize,
            _ => {
                i += 1;
                continue;
            }
        };
        let ups = graph.uplinks_up(up.switch());
        let downs = graph.uplinks_down(down.switch());
        let k = ups.len().min(downs.len());
        let alive = |s: usize| {
            !pool.is_link_down(ChannelId(ups[s].0)) && !pool.is_link_down(ChannelId(downs[s].0))
        };
        let chosen = match policy {
            UplinkPolicy::Hash => cur,
            UplinkPolicy::Failover => {
                if alive(cur) {
                    cur
                } else {
                    (1..k)
                        .map(|d| (cur + d) % k)
                        .find(|&s| alive(s))
                        .unwrap_or(cur)
                }
            }
            UplinkPolicy::LeastQueued => {
                let score = |s: usize| {
                    let u = ChannelId(ups[s].0);
                    let d = ChannelId(downs[s].0);
                    pool.waiting_on(u)
                        + pool.waiting_on(d)
                        + usize::from(!pool.is_free(u))
                        + usize::from(!pool.is_free(d))
                };
                let best = (0..k).filter(|&s| alive(s)).min_by_key(|&s| (score(s), s));
                match best {
                    Some(b) if !alive(cur) || score(b) < score(cur) => b,
                    _ => cur,
                }
            }
        };
        if chosen != cur {
            let revised = out.get_or_insert_with(|| path.to_vec());
            revised[i] = ChannelId(ups[chosen].0);
            revised[i + 1] = ChannelId(downs[chosen].0);
            if moved_to.is_none() {
                moved_to = Some(ChannelId(ups[chosen].0));
            }
        }
        i += 2;
    }
    out.map(|p| (p, moved_to.expect("a revised path has a revised slot")))
}

/// One schedulable unit of a transfer in the fabric engine: the whole
/// port path under cut-through, a single port under store-and-forward.
#[derive(Debug, Clone, Copy)]
struct HopTask {
    transfer: u32,
    /// The next hop of the same transfer, if any.
    next: Option<u32>,
    first: bool,
    last: bool,
    duration: Seconds,
    /// The component its completion event is addressed to: the
    /// destination's [`NicAgent`] for final hops, the owning switch's
    /// [`SwitchAgent`] otherwise.
    owner: ComponentId,
}

/// A hop-completion event, addressed to the hop's owner agent.
#[derive(Debug, Clone, Copy)]
struct HopDone(u32);

/// The shared state both agent kinds operate on: the port pool, the hop
/// graph, dependency bookkeeping, timings, and the trace. Agents hold it
/// behind `Rc<RefCell>` — the simulation is single-threaded and the
/// borrow never nests (handlers emit through [`Ctx`], never by invoking
/// other components directly).
struct FabricCore {
    pool: ChannelPool,
    /// The port graph, for adaptive uplink revision at grant time.
    graph: Rc<FabricGraph>,
    /// Revision policy; [`UplinkPolicy::Hash`] means never revise.
    policy: UplinkPolicy,
    /// Whether grant-time revision is active (an adaptive policy under
    /// cut-through; store-and-forward keeps the static striping).
    adaptive: bool,
    failovers: u64,
    hops: Vec<HopTask>,
    /// First hop of each transfer, indexed by transfer id.
    first_hop: Vec<u32>,
    /// Destination GPU of each transfer (where its last hop delivers).
    dst_node: Vec<GpuId>,
    deps_remaining: Vec<u32>,
    dependents: Vec<Vec<u32>>,
    specs: Vec<TransferSpec>,
    timings: Vec<TransferTiming>,
    trace: SimTrace,
    forwarding_busy: HashMap<GpuId, Seconds>,
    remaining: usize,
    /// Switch owning each port, for queue-depth accounting.
    switch_of_port: Vec<u32>,
    /// Per-switch high-water mark of port waiter-queue depth.
    switch_queue_depth: Vec<usize>,
    /// Hop completions awaiting emission by the caller after a core
    /// call: `(hop, owner, finish time)`.
    to_schedule: Vec<(u32, ComponentId, Seconds)>,
    started: Vec<u32>,
}

impl FabricCore {
    /// Starts hop `h` at `now`: stamps transfer timings on first/last
    /// hops and queues its completion for emission.
    fn begin_hop(&mut self, h: u32, now: Seconds) {
        let hop = self.hops[h as usize];
        let t = hop.transfer as usize;
        if hop.first {
            self.timings[t].start = now;
            self.trace.push(TraceRecord::TransferStart {
                id: self.specs[t].id,
                at: now,
            });
        }
        let finish = now + hop.duration;
        if hop.last {
            self.timings[t].complete = finish;
        }
        self.to_schedule.push((h, hop.owner, finish));
    }

    /// Declares hop `h` ready; starts it if its ports are free, records
    /// the congestion it observed otherwise. Under an adaptive uplink
    /// policy the hop's uplink slots are rescored first, from the live
    /// queue depths at this instant — the grant-time choice.
    fn try_ready_hop(&mut self, h: u32, now: Seconds) {
        if self.adaptive {
            if let Some((revised, port)) =
                choose_uplinks(&self.graph, &self.pool, self.pool.path(h), self.policy)
            {
                self.pool.reroute(h, revised);
                self.failovers += 1;
                self.trace.push(TraceRecord::Failover {
                    id: self.specs[self.hops[h as usize].transfer as usize].id,
                    port,
                    at: now,
                });
            }
        }
        if self.pool.mark_ready(h, now, &mut self.trace) {
            self.begin_hop(h, now);
        } else {
            self.note_queue_depth(h);
        }
    }

    /// Samples the waiter-queue depth of `h`'s ports into the per-switch
    /// high-water marks.
    fn note_queue_depth(&mut self, h: u32) {
        for i in 0..self.pool.path(h).len() {
            let port = self.pool.path(h)[i];
            let depth = self.pool.waiting_on(port);
            let s = self.switch_of_port[port.index()] as usize;
            if depth > self.switch_queue_depth[s] {
                self.switch_queue_depth[s] = depth;
            }
        }
    }

    /// Handles the completion of hop `h` at `now`: releases its ports,
    /// advances the transfer (next hop, or final delivery + dependency
    /// fan-out), then serves the freed ports — the same
    /// unblock-before-serve order as the channel engine.
    fn hop_done(&mut self, h: u32, now: Seconds) {
        let hop = self.hops[h as usize];
        self.pool.complete(h, now);
        if hop.last {
            let t = hop.transfer as usize;
            self.remaining -= 1;
            self.trace.push(TraceRecord::TransferEnd {
                id: self.specs[t].id,
                at: now,
            });
            if let Some(via) = self.specs[t].via {
                *self.forwarding_busy.entry(via).or_insert(Seconds::ZERO) += self.specs[t].duration;
                self.trace.push(TraceRecord::DetourHop {
                    id: self.specs[t].id,
                    via,
                    at: now,
                });
            }
            let deps = std::mem::take(&mut self.dependents[t]);
            for &dep in &deps {
                let d = dep as usize;
                self.deps_remaining[d] -= 1;
                if self.deps_remaining[d] == 0 {
                    self.try_ready_hop(self.first_hop[d], now);
                }
            }
        } else {
            let next = hop.next.expect("non-final hop has a successor");
            self.try_ready_hop(next, now);
        }
        let mut started = std::mem::take(&mut self.started);
        started.clear();
        self.pool.serve(h, now, &mut self.trace, &mut started);
        for &s in &started {
            self.begin_hop(s, now);
        }
        self.started = started;
    }
}

/// Emits every queued hop completion through `ctx`, keyed by hop id so
/// equal-time completions pop in hop order — which under cut-through is
/// transfer order, the channel engine's tie-break.
fn flush_emissions(core: &Rc<RefCell<FabricCore>>, ctx: &mut Ctx<'_, HopDone>) {
    let now = ctx.now();
    let mut sched = {
        let mut c = core.borrow_mut();
        std::mem::take(&mut c.to_schedule)
    };
    for &(hop, owner, finish) in &sched {
        ctx.emit_keyed(owner, finish - now, u64::from(hop), HopDone(hop));
    }
    sched.clear();
    core.borrow_mut().to_schedule = sched;
}

/// Schedules every queued completion directly on the simulation (used
/// outside handler context: seeding and force-starts).
fn flush_direct(core: &Rc<RefCell<FabricCore>>, sim: &mut Simulation<HopDone>) {
    let mut sched = {
        let mut c = core.borrow_mut();
        std::mem::take(&mut c.to_schedule)
    };
    for &(hop, owner, finish) in &sched {
        sim.emit_keyed(finish, owner, u64::from(hop), HopDone(hop));
    }
    sched.clear();
    core.borrow_mut().to_schedule = sched;
}

/// The endpoint component of one node: final hops of transfers destined
/// to the node deliver here (under cut-through every hop is final, so
/// NIC agents see all traffic).
struct NicAgent {
    node: GpuId,
    core: Rc<RefCell<FabricCore>>,
}

impl Component<HopDone> for NicAgent {
    fn on_event(&mut self, event: HopDone, ctx: &mut Ctx<'_, HopDone>) {
        {
            let mut core = self.core.borrow_mut();
            let hop = core.hops[event.0 as usize];
            debug_assert!(hop.last, "NIC agents only receive final hops");
            debug_assert_eq!(
                core.dst_node[hop.transfer as usize], self.node,
                "final hop delivered to the wrong NIC"
            );
            core.hop_done(event.0, ctx.now());
        }
        flush_emissions(&self.core, ctx);
    }
}

/// The component of one switch: store-and-forward hops that end on the
/// switch's ports complete here before being handed to the next hop.
struct SwitchAgent {
    switch: SwitchId,
    core: Rc<RefCell<FabricCore>>,
}

impl Component<HopDone> for SwitchAgent {
    fn on_event(&mut self, event: HopDone, ctx: &mut Ctx<'_, HopDone>) {
        {
            let mut core = self.core.borrow_mut();
            let hop = core.hops[event.0 as usize];
            debug_assert!(!hop.last, "final hops belong to NIC agents");
            let last_port = *core.pool.path(event.0).last().expect("non-empty hop path");
            debug_assert_eq!(
                core.switch_of_port[last_port.index()],
                self.switch.0,
                "hop completed on a foreign switch"
            );
            core.hop_done(event.0, ctx.now());
        }
        flush_emissions(&self.core, ctx);
    }
}

/// Extracts the busy time of every uplink port from a per-port busy
/// vector, in port-id order — the [`SimStats::uplink_busy`] view shared
/// by the fabric and fault engines.
pub(crate) fn uplink_busy_of(graph: &FabricGraph, port_busy: &[Seconds]) -> Vec<Seconds> {
    graph
        .ports()
        .iter()
        .filter(|p| p.uplink().is_some())
        .map(|p| port_busy[p.id().index()])
        .collect()
}

/// [`simulate`](crate::simulate) on the explicit switch fabric: the
/// dispatch target for [`NetworkModel::SwitchFabric`].
pub(crate) fn simulate_fabric(
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
    spec: &FabricSpec,
) -> Result<SimReport, SimError> {
    let transfers = schedule.transfers();
    let n = transfers.len();
    let num_channels = topo.channels().len();
    let map = FabricMap {
        graph: crate::prep::fabric_graph_for(topo, spec),
        hop_mode: spec.hop_mode,
        policy: spec.uplink_policy,
    };
    let num_ports = map.num_ports();
    let num_gpus = topo.num_gpus();
    let num_switches = map.graph.num_switches();

    // Same structural gate as the channel engine, and the same lowering
    // — both through the preparation cache. The fabric engine rewrites
    // per-spec durations to the port model, so it clones the cached
    // specs; the port-path expansion is cached per fabric spec too.
    let prep = crate::prep::gate_and_lower(topo, schedule, embedding, &opts.link_timing())?;
    let mut specs = (*prep.specs).clone();

    // Debug builds cross-check the physical analyzer's hard gate: a
    // schedule/embedding that lowers cleanly must also have a port path
    // for every channel it uses (CC018 and the analyzer's view of
    // CC007/CC008 agree with the engine's own expansion below).
    #[cfg(debug_assertions)]
    {
        let gate = ccube_collectives::gate_physical(schedule, embedding, topo, &map.graph);
        debug_assert!(
            gate.is_clean(),
            "schedule/embedding failed the physical gate:\n{gate}"
        );
    }

    let port_paths = crate::prep::ports_for(&prep, spec, &map.graph);

    let deps_remaining: Vec<u32> = transfers.iter().map(|t| t.deps.len() as u32).collect();
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in transfers {
        for d in &t.deps {
            dependents[d.index()].push(t.id.0);
        }
    }

    // Decompose each transfer into hop tasks over the port pool. Hop ids
    // are dense in transfer order, so under cut-through (one hop per
    // transfer) hop id == transfer id, and both the kernel tie-break and
    // the arbitration keys coincide with the channel engine's.
    let mut pool = ChannelPool::new(num_ports, opts.arbitration);
    let num_hops = match spec.hop_mode {
        HopMode::CutThrough => n,
        HopMode::StoreForward => port_paths.iter().map(Vec::len).sum(),
    };
    pool.reserve_tasks(num_hops);
    let mut hops: Vec<HopTask> = Vec::with_capacity(num_hops);
    let mut first_hop: Vec<u32> = Vec::with_capacity(n);
    let mut dst_node: Vec<GpuId> = Vec::with_capacity(n);
    let timing = opts.link_timing();
    for (t, s) in specs.iter_mut().enumerate() {
        let route = &port_paths[t];
        debug_assert!(!route.is_empty(), "transfer with an empty port route");
        let dst = topo.channel(*s.path.last().expect("non-empty path")).dst();
        dst_node.push(dst);
        let nic_owner = ComponentId(dst.0);
        first_hop.push(hops.len() as u32);
        s.duration = map.duration_on(route, s.bytes, s.via.is_some(), &timing);
        match spec.hop_mode {
            HopMode::CutThrough => {
                let hid = pool.add_task(
                    route.iter().map(|p| ChannelId(p.0)).collect(),
                    (s.chunk.0, s.id.0),
                );
                debug_assert_eq!(hid as usize, hops.len());
                hops.push(HopTask {
                    transfer: t as u32,
                    next: None,
                    first: true,
                    last: true,
                    duration: s.duration,
                    owner: nic_owner,
                });
            }
            HopMode::StoreForward => {
                let nh = route.len();
                for (k, &p) in route.iter().enumerate() {
                    let port = map.graph.port(p);
                    let mut dur = port.latency()
                        + Seconds::new(
                            s.bytes.as_f64()
                                / (port.bandwidth().as_bytes_per_sec() * timing.bandwidth_scale),
                        );
                    let last = k + 1 == nh;
                    if last && s.via.is_some() {
                        dur += timing.forwarding_latency;
                    }
                    let hid = pool.add_task(vec![ChannelId(p.0)], (s.chunk.0, hops.len() as u32));
                    hops.push(HopTask {
                        transfer: t as u32,
                        next: (!last).then_some(hid + 1),
                        first: k == 0,
                        last,
                        duration: dur,
                        owner: if last {
                            nic_owner
                        } else {
                            ComponentId(num_gpus as u32 + port.switch().0)
                        },
                    });
                }
            }
        }
    }

    let core = Rc::new(RefCell::new(FabricCore {
        pool,
        graph: Rc::clone(&map.graph),
        policy: spec.uplink_policy,
        adaptive: spec.uplink_policy != UplinkPolicy::Hash && spec.hop_mode == HopMode::CutThrough,
        failovers: 0,
        hops,
        first_hop,
        dst_node,
        deps_remaining,
        dependents,
        specs,
        timings: vec![
            TransferTiming {
                start: Seconds::ZERO,
                complete: Seconds::ZERO,
            };
            n
        ],
        trace: opts.make_trace_for(num_hops.saturating_mul(4)),
        forwarding_busy: HashMap::new(),
        remaining: n,
        switch_of_port: map.graph.ports().iter().map(|p| p.switch().0).collect(),
        switch_queue_depth: vec![0; num_switches],
        to_schedule: Vec::new(),
        started: Vec::new(),
    }));

    let mut sim: Simulation<HopDone> = Simulation::with_seed(0);
    for g in 0..num_gpus {
        sim.add_component(NicAgent {
            node: GpuId(g as u32),
            core: Rc::clone(&core),
        });
    }
    for s in 0..num_switches {
        sim.add_component(SwitchAgent {
            switch: SwitchId(s as u32),
            core: Rc::clone(&core),
        });
    }

    // Seed: transfers with no dependencies are ready at t = 0.
    {
        let mut c = core.borrow_mut();
        for tid in 0..n {
            if c.deps_remaining[tid] == 0 {
                let h = c.first_hop[tid];
                c.try_ready_hop(h, Seconds::ZERO);
            }
        }
    }
    flush_direct(&core, &mut sim);

    loop {
        if core.borrow().remaining == 0 {
            break;
        }
        if !sim.step() {
            // Queue drained with transfers outstanding: break a
            // chunk-priority reservation stall, or report deadlock.
            let now = sim.now();
            let forced = {
                let mut c = core.borrow_mut();
                let mut trace = std::mem::take(&mut c.trace);
                let forced = c.pool.force_start(now, &mut trace);
                c.trace = trace;
                if let Some(h) = forced {
                    c.begin_hop(h, now);
                }
                forced
            };
            if forced.is_none() {
                let remaining = core.borrow().remaining;
                return Err(SimError::Deadlock { remaining });
            }
            flush_direct(&core, &mut sim);
        }
    }

    let kstats = sim.stats();
    drop(sim); // the agents' Rc clones die here, leaving `core` unique
    let mut c = core.borrow_mut();
    let failovers = c.failovers;
    let timings = std::mem::take(&mut c.timings);
    let trace = std::mem::take(&mut c.trace);
    let forwarding_busy = std::mem::take(&mut c.forwarding_busy);
    let switch_queue_depth = std::mem::take(&mut c.switch_queue_depth);
    let pool = std::mem::replace(&mut c.pool, ChannelPool::new(1, opts.arbitration));
    drop(c);

    // Derive per-(rank, chunk) completion, as in the channel engine.
    let p = schedule.num_ranks();
    let k = schedule.chunking().num_chunks();
    let mut done_at = vec![vec![Seconds::ZERO; k]; p];
    let mut chunk_complete = vec![Seconds::ZERO; k];
    let mut makespan = Seconds::ZERO;
    for t in transfers {
        let finish = timings[t.id.index()].complete;
        let cell = &mut done_at[t.dst.index()][t.chunk.index()];
        *cell = (*cell).max(finish);
        let cc = &mut chunk_complete[t.chunk.index()];
        *cc = (*cc).max(finish);
        makespan = makespan.max(finish);
    }

    // Fold per-port quantities back to channels (endpoint ports are 1:1
    // with channels; uplink ports appear only in the port-level stats).
    let port_busy = pool.busy().to_vec();
    let queue_wait = map.channel_values(pool.queue_wait(), num_channels);
    let channel_busy = map.channel_values(&port_busy, num_channels);
    let max_channel_queue_depth = pool.max_waiting();
    let force_starts = pool.force_starts();
    let mut channel_intervals: Vec<Vec<BusyInterval>> = vec![Vec::new(); num_channels];
    for (pi, intervals) in pool.into_intervals().into_iter().enumerate() {
        if let Some(ch) = map.graph.ports()[pi].channel() {
            channel_intervals[ch.index()] = intervals;
        }
    }

    let uplink_busy = uplink_busy_of(&map.graph, &port_busy);
    let stats = SimStats {
        events_scheduled: kstats.events_scheduled,
        events_processed: kstats.events_processed,
        max_event_queue_depth: kstats.max_queue_depth,
        max_channel_queue_depth,
        queue_wait,
        force_starts,
        port_busy,
        switch_queue_depth,
        failovers,
        uplink_busy,
        ..SimStats::default()
    };

    Ok(SimReport {
        num_ranks: p,
        num_chunks: k,
        timings,
        done_at,
        chunk_complete,
        makespan,
        channel_busy,
        channel_intervals,
        forwarding_busy,
        trace,
        stats,
    })
}
