//! Fault-plan severance analysis: classifies every window of a
//! [`FaultPlan`] as reroutable, stall-until-repair, or permanently
//! severed — *statically*, without running the fault engine.
//!
//! The fault engine ([`simulate_faulted`](crate::simulate_faulted))
//! discovers a fatal plan by replaying it; this pass reads the plan
//! against the statically lowered routes and the fabric graph and
//! reports, per event, what the engine's recovery machinery could do
//! (diagnostic series shared with `ccube_collectives::analyze`):
//!
//! * `CC021` (Info) — every affected transfer has a surviving fallback:
//!   the channel router finds a detour/host-bridge route, or an
//!   adaptive uplink policy has a surviving slot to fail over to.
//! * `CC022` (Warn) — no fallback while down (structural NIC path, no
//!   surviving route, hash-striped uplink traffic, or exhausted slot
//!   diversity), but the outage is finite: traffic stalls until repair.
//! * `CC023` (Error) — the same, but the outage is permanent: the
//!   engine would drain [`SimError::Unroutable`](crate::SimError).
//!
//! The classification mirrors the engine's recovery rules exactly —
//! NIC-class paths are structural and never re-routed; channel reroutes
//! run a [`Router`] with every concurrently-down channel blocked;
//! uplink failover needs a non-`Hash` policy and a surviving slot
//! (checked against every overlapping uplink/spine outage). It is
//! evaluated against the *statically lowered* routes: a plan whose
//! windows only matter after a chain of prior reroutes may classify
//! conservatively, and a window that outlives all traffic may flag a
//! severance the engine never hits. The shipped guarantee, asserted by
//! the consistency suite, is one-directional: whenever the engine
//! reports `Unroutable`, this pass reports a `CC023`.
//!
//! Degraded-bandwidth and straggler windows never block progress and
//! produce no finding.

use crate::engine::SimOptions;
use crate::fabric::{NetworkModel, UplinkPolicy};
use crate::faults::{FaultEvent, FaultPlan};
use ccube_collectives::analyze::{LintCode, LintReport, Span};
use ccube_collectives::{lower_schedule, Embedding, LowerError, Schedule, TransferSpec};
use ccube_topology::{
    ChannelClass, ChannelId, FabricGraph, PortKind, Router, Seconds, SwitchId, Topology,
};
use std::collections::BTreeSet;

/// Inclusive-exclusive window overlap.
fn overlaps(f1: Seconds, u1: Seconds, f2: Seconds, u2: Seconds) -> bool {
    f1 < u2 && f2 < u1
}

/// Renders a fault window for messages.
fn window(from: Seconds, until: Seconds) -> String {
    if until.as_secs_f64().is_infinite() {
        format!("from {from} permanently")
    } else {
        format!("in [{from}, {until})")
    }
}

/// The uplink slots of `leaf` that are down at some point of the
/// `[from, until)` window, from every overlapping uplink/spine event.
fn down_slots(
    plan: &FaultPlan,
    graph: &FabricGraph,
    leaf: u32,
    from: Seconds,
    until: Seconds,
) -> BTreeSet<usize> {
    let k = graph.uplinks_per_leaf();
    let mut out = BTreeSet::new();
    for e in plan.events() {
        if !overlaps(from, until, e.from(), e.until()) {
            continue;
        }
        match *e {
            FaultEvent::UplinkDown {
                leaf: l, uplink, ..
            } if l == leaf => {
                out.insert(uplink as usize);
            }
            FaultEvent::SwitchDown { spine, .. } => {
                for slot in 0..k {
                    if graph.spine_of_uplink(slot as u32) == spine {
                        out.insert(slot);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Spec indices whose static port route uses the up or down port of
/// uplink `slot` on `leaf`, plus the set of leaves their crossings
/// touch through any of `slots`.
fn uplink_users(
    specs: &[TransferSpec],
    graph: &FabricGraph,
    hits: &dyn Fn(&ccube_topology::FabricPort) -> bool,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        if s.path.is_empty() {
            continue;
        }
        let route = graph.port_route(&s.path);
        if route.iter().any(|&p| hits(graph.port(p))) {
            out.push(i);
        }
    }
    out
}

/// Statically classifies every window of `plan` against the lowered
/// routes of `(schedule, embedding, topo)` under `opts` (whose network
/// model decides whether uplink/spine events have a fabric to act on).
///
/// See the module docs for the exact classification rules and the
/// one-directional consistency guarantee with the fault engine.
///
/// # Examples
///
/// ```
/// use ccube_collectives::analyze::LintCode;
/// use ccube_sim::faults::{forever, FaultEvent, FaultPlan};
/// use ccube_sim::{severance, SimOptions};
/// use ccube_collectives::{ring_allreduce, Embedding};
/// use ccube_topology::{hierarchical, ByteSize, ChannelId, Seconds};
///
/// let topo = hierarchical(8);
/// let s = ring_allreduce(8, ByteSize::mib(4));
/// let e = Embedding::nic(&topo, &s).unwrap();
/// // A NIC injection channel down forever: structural, no reroute.
/// let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
///     channel: ChannelId(0),
///     from: Seconds::ZERO,
///     until: forever(),
/// }])
/// .unwrap();
/// let report = severance::analyze_severance(&plan, &topo, &s, &e, &SimOptions::default());
/// assert!(report
///     .diagnostics()
///     .iter()
///     .any(|d| d.code == LintCode::FaultSevered));
/// ```
pub fn analyze_severance(
    plan: &FaultPlan,
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
) -> LintReport {
    let mut report = LintReport::default();
    let specs = match lower_schedule(schedule, embedding, topo, &opts.link_timing()) {
        Ok(specs) => specs,
        Err(err) => {
            match err {
                LowerError::MissingRoute(edge) => report.push(
                    LintCode::MissingRoute,
                    format!("embedding has no route for logical edge {edge}"),
                    Span {
                        edges: vec![edge],
                        ..Span::default()
                    },
                ),
                LowerError::UnknownChannel {
                    edge,
                    channel_index,
                } => report.push(
                    LintCode::InvalidRoute,
                    format!("route for {edge} references unknown channel index {channel_index}"),
                    Span {
                        edges: vec![edge],
                        ..Span::default()
                    },
                ),
            }
            return report.finish();
        }
    };
    let fabric = match &opts.network {
        NetworkModel::SwitchFabric(spec) => Some((
            FabricGraph::from_topology(topo, &spec.fabric_config()),
            spec.uplink_policy,
        )),
        NetworkModel::ChannelApprox => None,
    };

    for e in plan.events() {
        match *e {
            FaultEvent::Degraded { .. } | FaultEvent::Straggler { .. } => {
                // Slows traffic, never blocks it: no severance finding.
            }
            FaultEvent::LinkDown {
                channel,
                from,
                until,
            } => {
                link_down_lints(
                    &mut report,
                    plan,
                    topo,
                    schedule,
                    embedding,
                    &specs,
                    channel,
                    from,
                    until,
                );
            }
            FaultEvent::UplinkDown {
                leaf,
                uplink,
                from,
                until,
            } => {
                let Some((graph, policy)) = &fabric else {
                    continue;
                };
                let users = uplink_users(&specs, graph, &|p| {
                    matches!(p.kind(), PortKind::UplinkUp | PortKind::UplinkDown)
                        && p.switch() == SwitchId(leaf)
                        && p.uplink() == Some(uplink)
                });
                if users.is_empty() {
                    continue;
                }
                let k = graph.uplinks_per_leaf();
                let down = down_slots(plan, graph, leaf, from, until);
                let survivors: Vec<usize> = (0..k).filter(|s| !down.contains(s)).collect();
                let adaptive = *policy != UplinkPolicy::Hash;
                let span = Span {
                    transfers: users.iter().map(|&i| specs[i].id).collect(),
                    ..Span::default()
                };
                let w = window(from, until);
                if adaptive && !survivors.is_empty() {
                    report.push(
                        LintCode::FaultReroutable,
                        format!(
                            "uplink {uplink} on sw{leaf} down {w}: {} crossings fail over to \
                             surviving slot(s) {survivors:?} under the {} policy",
                            users.len(),
                            policy.label()
                        ),
                        span,
                    );
                } else {
                    let why = if adaptive {
                        "no surviving uplink slot".to_string()
                    } else {
                        format!("hash striping pins them to slot {uplink}")
                    };
                    if until.as_secs_f64().is_infinite() {
                        report.push(
                            LintCode::FaultSevered,
                            format!(
                                "uplink {uplink} on sw{leaf} down {w}: {} crossings are severed \
                                 ({why}); the fault engine drains Unroutable",
                                users.len()
                            ),
                            span,
                        );
                    } else {
                        report.push(
                            LintCode::FaultStall,
                            format!(
                                "uplink {uplink} on sw{leaf} down {w}: {} crossings stall until \
                                 repair ({why})",
                                users.len()
                            ),
                            span,
                        );
                    }
                }
            }
            FaultEvent::SwitchDown { spine, from, until } => {
                let Some((graph, policy)) = &fabric else {
                    continue;
                };
                let k = graph.uplinks_per_leaf();
                let spine_slots: BTreeSet<usize> = (0..k)
                    .filter(|&s| graph.spine_of_uplink(s as u32) == spine)
                    .collect();
                if spine_slots.is_empty() {
                    continue;
                }
                let users = uplink_users(&specs, graph, &|p| {
                    matches!(p.kind(), PortKind::UplinkUp | PortKind::UplinkDown)
                        && p.uplink()
                            .is_some_and(|u| spine_slots.contains(&(u as usize)))
                });
                if users.is_empty() {
                    continue;
                }
                // A leaf survives if it keeps at least one slot that is
                // neither on this spine nor downed by an overlapping
                // event.
                let hit_leaves: BTreeSet<u32> = users
                    .iter()
                    .flat_map(|&i| {
                        graph
                            .port_route(&specs[i].path)
                            .into_iter()
                            .filter(|&p| {
                                matches!(
                                    graph.port(p).kind(),
                                    PortKind::UplinkUp | PortKind::UplinkDown
                                )
                            })
                            .map(|p| graph.port(p).switch().0)
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let all_survive = hit_leaves.iter().all(|&leaf| {
                    let down = down_slots(plan, graph, leaf, from, until);
                    (0..k).any(|s| !down.contains(&s))
                });
                let adaptive = *policy != UplinkPolicy::Hash;
                let span = Span {
                    transfers: users.iter().map(|&i| specs[i].id).collect(),
                    ..Span::default()
                };
                let w = window(from, until);
                if adaptive && all_survive {
                    report.push(
                        LintCode::FaultReroutable,
                        format!(
                            "spine {spine} down {w}: {} crossings fail over off slot(s) \
                             {spine_slots:?} under the {} policy",
                            users.len(),
                            policy.label()
                        ),
                        span,
                    );
                } else {
                    let why = if adaptive {
                        "a leaf loses every uplink slot".to_string()
                    } else {
                        "hash striping cannot leave the downed spine".to_string()
                    };
                    if until.as_secs_f64().is_infinite() {
                        report.push(
                            LintCode::FaultSevered,
                            format!(
                                "spine {spine} down {w}: {} crossings are severed ({why}); \
                                 the fault engine drains Unroutable",
                                users.len()
                            ),
                            span,
                        );
                    } else {
                        report.push(
                            LintCode::FaultStall,
                            format!(
                                "spine {spine} down {w}: {} crossings stall until repair ({why})",
                                users.len()
                            ),
                            span,
                        );
                    }
                }
            }
        }
    }
    report.finish()
}

/// Classifies one `LinkDown` window: mirrors the engine's
/// `reroute_pass` (structural NIC paths wait; everything else asks a
/// [`Router`] with every concurrently-down channel blocked).
#[allow(clippy::too_many_arguments)]
fn link_down_lints(
    report: &mut LintReport,
    plan: &FaultPlan,
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    specs: &[TransferSpec],
    channel: ChannelId,
    from: Seconds,
    until: Seconds,
) {
    let users: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.path.contains(&channel))
        .map(|(i, _)| i)
        .collect();
    if users.is_empty() {
        return;
    }
    let mut router = Router::new(topo);
    for e in plan.events() {
        if let FaultEvent::LinkDown { channel: c, .. } = *e {
            if overlaps(from, until, e.from(), e.until()) {
                router.block_channel(c);
            }
        }
    }
    let transfers = schedule.transfers();
    let mut stuck: Vec<usize> = Vec::new();
    let mut structural = 0usize;
    for &i in &users {
        if specs[i]
            .path
            .iter()
            .any(|&c| topo.channel(c).class() == ChannelClass::Nic)
        {
            structural += 1;
            stuck.push(i);
            continue;
        }
        let src = embedding.gpu_of(transfers[i].src);
        let dst = embedding.gpu_of(transfers[i].dst);
        if router.route(src, dst).is_err() {
            stuck.push(i);
        }
    }
    let w = window(from, until);
    if stuck.is_empty() {
        report.push(
            LintCode::FaultReroutable,
            format!(
                "{channel} down {w}: all {} transfers on it re-route over surviving paths",
                users.len()
            ),
            Span {
                transfers: users.iter().map(|&i| specs[i].id).collect(),
                channels: vec![channel],
                ..Span::default()
            },
        );
        return;
    }
    let why = if structural > 0 {
        format!("{structural} on structural NIC paths that are never re-routed")
    } else {
        "no surviving route while concurrent outages last".to_string()
    };
    let span = Span {
        transfers: stuck.iter().map(|&i| specs[i].id).collect(),
        channels: vec![channel],
        ..Span::default()
    };
    if until.as_secs_f64().is_infinite() {
        report.push(
            LintCode::FaultSevered,
            format!(
                "{channel} down {w}: {} of {} transfers are severed ({why}); \
                 the fault engine drains Unroutable",
                stuck.len(),
                users.len()
            ),
            span,
        );
    } else {
        report.push(
            LintCode::FaultStall,
            format!(
                "{channel} down {w}: {} of {} transfers stall until repair ({why})",
                stuck.len(),
                users.len()
            ),
            span,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{FabricSpec, HopMode};
    use crate::faults::forever;
    use ccube_collectives::ring_allreduce;
    use ccube_topology::{dgx1, hierarchical, ByteSize};

    fn hier8() -> (Topology, Schedule, Embedding) {
        let topo = hierarchical(8);
        let s = ring_allreduce(8, ByteSize::mib(4));
        let e = Embedding::nic(&topo, &s).unwrap();
        (topo, s, e)
    }

    #[test]
    fn permanent_nic_down_is_severed() {
        let (topo, s, e) = hier8();
        let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: Seconds::ZERO,
            until: forever(),
        }])
        .unwrap();
        let report = analyze_severance(&plan, &topo, &s, &e, &SimOptions::default());
        assert!(!report.is_clean());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::FaultSevered));
    }

    #[test]
    fn finite_nic_down_stalls() {
        let (topo, s, e) = hier8();
        let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: Seconds::from_micros(10.0),
            until: Seconds::from_micros(500.0),
        }])
        .unwrap();
        let report = analyze_severance(&plan, &topo, &s, &e, &SimOptions::default());
        assert!(report.is_clean());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::FaultStall));
    }

    #[test]
    fn dgx1_nvlink_down_reroutes() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(4));
        let e = Embedding::identity(&topo, &s).unwrap();
        // An NVLink used by the ring, down forever: the router finds a
        // surviving path (path diversity is the DGX-1's whole point).
        let opts = SimOptions::default();
        let specs = lower_schedule(&s, &e, &topo, &opts.link_timing()).unwrap();
        let used = specs
            .iter()
            .flat_map(|t| t.path.iter().copied())
            .find(|&c| topo.channel(c).class() == ChannelClass::NvLink)
            .unwrap();
        let plan = FaultPlan::new(vec![FaultEvent::LinkDown {
            channel: used,
            from: Seconds::ZERO,
            until: forever(),
        }])
        .unwrap();
        let report = analyze_severance(&plan, &topo, &s, &e, &SimOptions::default());
        assert!(report.is_clean(), "{report}");
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::FaultReroutable));
    }

    #[test]
    fn degraded_windows_are_quiet() {
        let (topo, s, e) = hier8();
        let plan = FaultPlan::new(vec![FaultEvent::Degraded {
            channel: ChannelId(0),
            from: Seconds::ZERO,
            until: forever(),
            rate: 0.25,
        }])
        .unwrap();
        let report = analyze_severance(&plan, &topo, &s, &e, &SimOptions::default());
        assert!(report.diagnostics().is_empty());
    }

    fn fabric_opts(uplinks: usize, policy: UplinkPolicy) -> SimOptions {
        SimOptions::default().with_network(NetworkModel::SwitchFabric(FabricSpec {
            radix: Some(4),
            uplinks,
            spines: uplinks,
            uplink_policy: policy,
            hop_mode: HopMode::CutThrough,
            ..FabricSpec::passthrough()
        }))
    }

    #[test]
    fn single_uplink_permanent_outage_is_severed() {
        let (topo, s, e) = hier8();
        let plan = FaultPlan::new(vec![FaultEvent::UplinkDown {
            leaf: 0,
            uplink: 0,
            from: Seconds::ZERO,
            until: forever(),
        }])
        .unwrap();
        let report = analyze_severance(&plan, &topo, &s, &e, &fabric_opts(1, UplinkPolicy::Hash));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == LintCode::FaultSevered));
    }

    #[test]
    fn failover_policy_survives_one_slot_outage() {
        let (topo, s, e) = hier8();
        // Hash striping may leave one slot idle, so down each slot in
        // turn: whichever carries traffic must fail over cleanly.
        let mut rerouted = 0;
        for slot in 0..2u32 {
            let plan = FaultPlan::new(vec![FaultEvent::UplinkDown {
                leaf: 0,
                uplink: slot,
                from: Seconds::ZERO,
                until: forever(),
            }])
            .unwrap();
            let report = analyze_severance(
                &plan,
                &topo,
                &s,
                &e,
                &fabric_opts(2, UplinkPolicy::Failover),
            );
            assert!(report.is_clean(), "{report}");
            rerouted += report
                .diagnostics()
                .iter()
                .filter(|d| d.code == LintCode::FaultReroutable)
                .count();
        }
        assert!(rerouted >= 1);
    }

    #[test]
    fn hash_policy_stalls_on_finite_uplink_outage() {
        let (topo, s, e) = hier8();
        let plan = FaultPlan::new(vec![FaultEvent::UplinkDown {
            leaf: 0,
            uplink: 0,
            from: Seconds::ZERO,
            until: Seconds::from_millis(2.0),
        }])
        .unwrap();
        let report = analyze_severance(&plan, &topo, &s, &e, &fabric_opts(2, UplinkPolicy::Hash));
        // Leaf 0's cross traffic stripes somewhere; if slot 0 carries
        // any of it, it stalls (never severed: the window is finite).
        assert!(report
            .diagnostics()
            .iter()
            .all(|d| d.code != LintCode::FaultSevered));
    }
}
