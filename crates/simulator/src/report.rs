//! Simulation results.

use ccube_collectives::{ChunkId, Rank};
use ccube_topology::{GpuId, Seconds};
use std::collections::HashMap;

/// Timing of a single simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferTiming {
    /// When the transfer acquired its channels.
    pub start: Seconds,
    /// When it completed and released them.
    pub complete: Seconds,
}

/// The full result of one simulation run.
///
/// All per-chunk quantities use the schedule's global chunk ids.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub(crate) num_ranks: usize,
    pub(crate) num_chunks: usize,
    pub(crate) timings: Vec<TransferTiming>,
    /// done_at[rank][chunk]: when the rank holds the final value of the
    /// chunk (its last inbound transfer of that chunk completed).
    pub(crate) done_at: Vec<Vec<Seconds>>,
    /// chunk_complete[chunk]: when the chunk is final at *every* rank.
    pub(crate) chunk_complete: Vec<Seconds>,
    pub(crate) makespan: Seconds,
    pub(crate) channel_busy: Vec<Seconds>,
    pub(crate) forwarding_busy: HashMap<GpuId, Seconds>,
}

impl SimReport {
    /// Number of ranks in the simulated schedule.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of chunks in the simulated schedule.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Completion time of the entire collective.
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// Per-transfer start/complete timings, indexed by transfer id.
    pub fn timings(&self) -> &[TransferTiming] {
        &self.timings
    }

    /// When `rank` holds the final AllReduced value of `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `chunk` is out of range.
    pub fn done_at(&self, rank: Rank, chunk: ChunkId) -> Seconds {
        self.done_at[rank.index()][chunk.index()]
    }

    /// When `chunk` became final at every rank.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn chunk_complete(&self, chunk: ChunkId) -> Seconds {
        self.chunk_complete[chunk.index()]
    }

    /// All chunk completion times in chunk order.
    pub fn chunk_completions(&self) -> &[Seconds] {
        &self.chunk_complete
    }

    /// The **gradient turnaround time**: when the first chunk has
    /// completed the whole collective and is ready for computation
    /// (paper §III-C, Fig. 7 and Fig. 14b).
    pub fn turnaround(&self) -> Seconds {
        self.chunk_complete
            .iter()
            .copied()
            .min()
            .unwrap_or(Seconds::ZERO)
    }

    /// Busy time of each channel, indexed by channel id.
    pub fn channel_busy(&self) -> &[Seconds] {
        &self.channel_busy
    }

    /// Utilization of a channel over the makespan (0.0–1.0).
    ///
    /// # Panics
    ///
    /// Panics if `channel_index` is out of range.
    pub fn channel_utilization(&self, channel_index: usize) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.channel_busy[channel_index] / self.makespan
    }

    /// Forwarding busy time accumulated by each detour-intermediate GPU.
    pub fn forwarding_busy(&self) -> &HashMap<GpuId, Seconds> {
        &self.forwarding_busy
    }

    /// Effective AllReduce algorithm bandwidth: message bytes divided by
    /// makespan.
    pub fn algorithm_bandwidth(&self, message_bytes: u64) -> f64 {
        message_bytes as f64 / self.makespan.as_secs_f64()
    }

    /// True if chunk completion times are non-decreasing within each
    /// parity class of `num_trees` — the in-order delivery property.
    pub fn chunks_in_order(&self, num_trees: usize) -> bool {
        for parity in 0..num_trees {
            let mut prev = Seconds::ZERO;
            for (c, &t) in self.chunk_complete.iter().enumerate() {
                if c % num_trees == parity {
                    if t < prev {
                        return false;
                    }
                    prev = t;
                }
            }
        }
        true
    }
    /// Exports the full transfer trace as CSV
    /// (`transfer_id,phase,src,dst,chunk,bytes,start_us,complete_us`) for
    /// offline analysis or plotting.
    pub fn trace_csv(&self, schedule: &ccube_collectives::Schedule) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("transfer_id,phase,src,dst,chunk,bytes,start_us,complete_us\n");
        for t in schedule.transfers() {
            let timing = self.timings[t.id.index()];
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.3},{:.3}",
                t.id.0,
                t.phase,
                t.src.0,
                t.dst.0,
                t.chunk.0,
                t.bytes.as_u64(),
                timing.start.as_micros(),
                timing.complete.as_micros()
            );
        }
        out
    }
}
