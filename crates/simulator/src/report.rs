//! Simulation results.

use crate::trace::{utilization_bins, BusyInterval, SimTrace};
use ccube_collectives::{ChunkId, Rank};
use ccube_topology::{ChannelId, GpuId, Seconds};
use std::collections::HashMap;

/// Timing of a single simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferTiming {
    /// When the transfer acquired its channels.
    pub start: Seconds,
    /// When it completed and released them.
    pub complete: Seconds,
}

/// Counters an engine collects while running — the quantitative side of
/// the observability story (the qualitative side is the [`SimTrace`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Events pushed into the kernel's queue.
    pub events_scheduled: u64,
    /// Events popped and processed.
    pub events_processed: u64,
    /// High-water mark of the kernel's future-event queue.
    pub max_event_queue_depth: usize,
    /// High-water mark across the per-channel waiter queues.
    pub max_channel_queue_depth: usize,
    /// Total queue wait charged to each channel, indexed by channel id:
    /// every started transfer that had to wait contributes its full wait
    /// to each channel of its path.
    pub queue_wait: Vec<Seconds>,
    /// Times the chunk-priority arbiter force-started a transfer to
    /// break a reservation stall.
    pub force_starts: u64,
    /// Fault-plan events that activated during the run (events whose
    /// start lies past the makespan never activate and are not counted).
    pub faults_injected: u64,
    /// Transfers moved onto a surviving route after a link-down severed
    /// their planned path.
    pub reroutes_taken: u64,
    /// Total simulated time during which at least one channel ran at
    /// degraded bandwidth, clipped to the run's makespan.
    pub time_degraded: Seconds,
    /// Downtime per channel (indexed by channel id), clipped to the
    /// run's makespan. Empty when no fault plan was injected.
    pub channel_downtime: Vec<Seconds>,
    /// Busy time of every fabric port (indexed by port id), including
    /// uplink ports that have no channel counterpart. Populated only by
    /// the `SwitchFabric` network model; empty under `ChannelApprox`.
    pub port_busy: Vec<Seconds>,
    /// Per-switch high-water mark of the waiter-queue depth across the
    /// switch's ports — the congestion signal for policy search.
    /// Populated only by the `SwitchFabric` network model.
    pub switch_queue_depth: Vec<usize>,
    /// Transfers steered onto a different uplink slot — by an adaptive
    /// uplink policy at grant time, or by the fault driver failing them
    /// away from a downed uplink. `SwitchFabric` network model only.
    pub failovers: u64,
    /// Busy time of every uplink port, in port-id order (the same order
    /// [`FabricGraph`](ccube_topology::FabricGraph) enumerates them:
    /// leaf-major, up before down within a slot). Populated only by the
    /// `SwitchFabric` network model on fabrics with a spine level.
    pub uplink_busy: Vec<Seconds>,
}

impl SimStats {
    /// Sum of the per-channel queue waits.
    pub fn total_queue_wait(&self) -> Seconds {
        self.queue_wait
            .iter()
            .fold(Seconds::ZERO, |acc, &w| acc + w)
    }
}

/// The full result of one simulation run.
///
/// All per-chunk quantities use the schedule's global chunk ids.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    pub(crate) num_ranks: usize,
    pub(crate) num_chunks: usize,
    pub(crate) timings: Vec<TransferTiming>,
    /// done_at[rank][chunk]: when the rank holds the final value of the
    /// chunk (its last inbound transfer of that chunk completed).
    pub(crate) done_at: Vec<Vec<Seconds>>,
    /// chunk_complete[chunk]: when the chunk is final at *every* rank.
    pub(crate) chunk_complete: Vec<Seconds>,
    pub(crate) makespan: Seconds,
    pub(crate) channel_busy: Vec<Seconds>,
    pub(crate) channel_intervals: Vec<Vec<BusyInterval>>,
    pub(crate) forwarding_busy: HashMap<GpuId, Seconds>,
    pub(crate) trace: SimTrace,
    pub(crate) stats: SimStats,
}

impl SimReport {
    /// Number of ranks in the simulated schedule.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of chunks in the simulated schedule.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Completion time of the entire collective.
    pub fn makespan(&self) -> Seconds {
        self.makespan
    }

    /// Per-transfer start/complete timings, indexed by transfer id.
    pub fn timings(&self) -> &[TransferTiming] {
        &self.timings
    }

    /// When `rank` holds the final AllReduced value of `chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `chunk` is out of range.
    pub fn done_at(&self, rank: Rank, chunk: ChunkId) -> Seconds {
        self.done_at[rank.index()][chunk.index()]
    }

    /// When `chunk` became final at every rank.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn chunk_complete(&self, chunk: ChunkId) -> Seconds {
        self.chunk_complete[chunk.index()]
    }

    /// All chunk completion times in chunk order.
    pub fn chunk_completions(&self) -> &[Seconds] {
        &self.chunk_complete
    }

    /// The **gradient turnaround time**: when the first chunk has
    /// completed the whole collective and is ready for computation
    /// (paper §III-C, Fig. 7 and Fig. 14b).
    pub fn turnaround(&self) -> Seconds {
        self.chunk_complete
            .iter()
            .copied()
            .min()
            .unwrap_or(Seconds::ZERO)
    }

    /// Busy time of each channel, indexed by channel id.
    pub fn channel_busy(&self) -> &[Seconds] {
        &self.channel_busy
    }

    /// Busy intervals of each channel over the run, indexed by channel
    /// id, in completion order — the raw material for Gantt rendering
    /// and utilization-over-time analysis.
    pub fn channel_intervals(&self) -> &[Vec<BusyInterval>] {
        &self.channel_intervals
    }

    /// Utilization of `channel` over the simulated horizon (0.0–1.0).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_utilization(&self, channel: ChannelId) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.channel_busy[channel.index()] / self.makespan
    }

    /// Utilization of `channel` over time: the makespan divided into
    /// `bins` equal slices, each reporting the fraction of the slice the
    /// channel was busy (0.0–1.0).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `bins` is zero.
    pub fn channel_utilization_timeline(&self, channel: ChannelId, bins: usize) -> Vec<f64> {
        utilization_bins(
            &self.channel_intervals[channel.index()],
            self.makespan,
            bins,
        )
    }

    /// The structured trace recorded during the run.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// The run's counters: events processed, queue depths, queue waits.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Forwarding busy time accumulated by each detour-intermediate GPU.
    pub fn forwarding_busy(&self) -> &HashMap<GpuId, Seconds> {
        &self.forwarding_busy
    }

    /// Effective AllReduce algorithm bandwidth: message bytes divided by
    /// makespan.
    pub fn algorithm_bandwidth(&self, message_bytes: u64) -> f64 {
        message_bytes as f64 / self.makespan.as_secs_f64()
    }

    /// True if chunk completion times are non-decreasing within each
    /// parity class of `num_trees` — the in-order delivery property.
    pub fn chunks_in_order(&self, num_trees: usize) -> bool {
        for parity in 0..num_trees {
            let mut prev = Seconds::ZERO;
            for (c, &t) in self.chunk_complete.iter().enumerate() {
                if c % num_trees == parity {
                    if t < prev {
                        return false;
                    }
                    prev = t;
                }
            }
        }
        true
    }
    /// Exports the full transfer trace as CSV
    /// (`transfer_id,phase,src,dst,chunk,bytes,start_us,complete_us`) for
    /// offline analysis or plotting.
    pub fn trace_csv(&self, schedule: &ccube_collectives::Schedule) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("transfer_id,phase,src,dst,chunk,bytes,start_us,complete_us\n");
        for t in schedule.transfers() {
            let timing = self.timings[t.id.index()];
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.3},{:.3}",
                t.id.0,
                t.phase,
                t.src.0,
                t.dst.0,
                t.chunk.0,
                t.bytes.as_u64(),
                timing.start.as_micros(),
                timing.complete.as_micros()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::{ring_allreduce, Embedding};
    use ccube_topology::{dgx1, ByteSize};

    #[test]
    fn channel_utilization_takes_channel_ids() {
        let topo = dgx1();
        let s = ring_allreduce(8, ByteSize::mib(8));
        let e = Embedding::identity(&topo, &s).unwrap();
        let report = crate::simulate(&topo, &s, &e, &crate::SimOptions::default()).unwrap();
        let num_channels = topo.channels().len();
        let mut any_busy = false;
        for c in 0..num_channels as u32 {
            let u = report.channel_utilization(ChannelId(c));
            assert!((0.0..=1.0).contains(&u));
            any_busy |= u > 0.0;
            // The timeline integrates to the same utilization.
            let bins = report.channel_utilization_timeline(ChannelId(c), 16);
            let mean = bins.iter().sum::<f64>() / bins.len() as f64;
            assert!((mean - u).abs() < 1e-9, "channel {c}: {mean} vs {u}");
        }
        assert!(any_busy);
    }
}
