//! ASCII timeline rendering of simulation results.
//!
//! Produces a per-rank Gantt chart of transfer activity, the textual
//! analog of the paper's Fig. 7 timing diagrams — useful in examples and
//! for eyeballing where overlap happens.

use crate::report::SimReport;
use ccube_collectives::{Phase, Schedule};
use ccube_topology::Seconds;
use std::fmt::Write as _;

/// Rendering options for [`render_timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineOptions {
    /// Number of character columns the makespan is divided into.
    pub width: usize,
    /// Render receive activity (`dst`-side) instead of send activity.
    pub receive_side: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 72,
            receive_side: false,
        }
    }
}

/// Renders a per-rank activity chart: `R`/`r` for reduction sends,
/// `B`/`b` for broadcast sends (`S`/`G` for ring phases), `.` for idle.
///
/// Each rank occupies one row; a column is "busy" with the phase of the
/// transfer active at that time slice (later transfers win ties).
///
/// # Examples
///
/// ```
/// use ccube_collectives::{ring_allreduce, Embedding};
/// use ccube_sim::{render_timeline, simulate, SimOptions, TimelineOptions};
/// use ccube_topology::{dgx1, ByteSize};
///
/// let topo = dgx1();
/// let s = ring_allreduce(8, ByteSize::mib(8));
/// let e = Embedding::identity(&topo, &s).unwrap();
/// let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
/// let chart = render_timeline(&s, &report, &TimelineOptions::default());
/// assert!(chart.lines().count() >= 8);
/// ```
pub fn render_timeline(schedule: &Schedule, report: &SimReport, opts: &TimelineOptions) -> String {
    let width = opts.width.max(8);
    let p = schedule.num_ranks();
    let makespan = report.makespan();
    let mut rows = vec![vec!['.'; width]; p];

    let col_of = |t: Seconds| -> usize {
        if makespan.is_zero() {
            return 0;
        }
        ((t / makespan) * (width as f64 - 1.0)).floor() as usize
    };

    for t in schedule.transfers() {
        let timing = report.timings()[t.id.index()];
        let row = if opts.receive_side {
            t.dst.index()
        } else {
            t.src.index()
        };
        let glyph = match t.phase {
            Phase::Reduce => 'R',
            Phase::Broadcast => 'B',
            Phase::ReduceScatter => 'S',
            Phase::AllGather => 'G',
        };
        let from = col_of(timing.start);
        let to = col_of(timing.complete).max(from);
        for cell in rows[row].iter_mut().take(to + 1).skip(from) {
            *cell = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {} over {} ({} per column)",
        schedule.algorithm(),
        makespan,
        Seconds::new(makespan.as_secs_f64() / width as f64),
    );
    for (r, row) in rows.iter().enumerate() {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "r{r:<3} |{line}|");
    }
    out
}

/// Renders a per-channel occupancy chart from the report's busy
/// intervals: `#` where the channel carried a transfer, `.` where it sat
/// idle, with the channel's overall utilization on the right.
///
/// Unlike [`render_timeline`], which is rank-centric, this view shows
/// where the *physical* contention is — which channels saturate and
/// which idle, the quantity the paper's congestion arguments are about.
///
/// # Examples
///
/// ```
/// use ccube_collectives::{ring_allreduce, Embedding};
/// use ccube_sim::{render_channel_timeline, simulate, SimOptions, TimelineOptions};
/// use ccube_topology::{dgx1, ByteSize};
///
/// let topo = dgx1();
/// let s = ring_allreduce(8, ByteSize::mib(8));
/// let e = Embedding::identity(&topo, &s).unwrap();
/// let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
/// let chart = render_channel_timeline(&report, &TimelineOptions::default());
/// assert!(chart.contains('#'));
/// ```
pub fn render_channel_timeline(report: &SimReport, opts: &TimelineOptions) -> String {
    let width = opts.width.max(8);
    let makespan = report.makespan();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "channels over {} ({} per column)",
        makespan,
        Seconds::new(makespan.as_secs_f64() / width as f64),
    );
    for (c, intervals) in report.channel_intervals().iter().enumerate() {
        let channel = ccube_topology::ChannelId(c as u32);
        let bins = crate::trace::utilization_bins(intervals, makespan, width);
        let row: String = bins
            .iter()
            .map(|&u| {
                if u >= 0.5 {
                    '#'
                } else if u > 0.0 {
                    '-'
                } else {
                    '.'
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "ch{c:<3}|{row}| {:5.1}%",
            report.channel_utilization(channel) * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimOptions};
    use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
    use ccube_topology::{dgx1, ByteSize};

    #[test]
    fn timeline_shows_overlap_for_c1() {
        let topo = dgx1();
        let dt = DoubleBinaryTree::new(8).unwrap();
        let chunking = Chunking::even(ByteSize::mib(32), 16);
        let s = tree_allreduce(dt.trees(), &chunking, Overlap::ReductionBroadcast);
        let e = Embedding::dgx1_double_tree(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let chart = render_timeline(&s, &report, &TimelineOptions::default());
        // Both phases must appear, and some row must contain R after B has
        // started somewhere (i.e. the phases overlap in wall-clock time).
        assert!(chart.contains('R') && chart.contains('B'));
        let first_b = chart.find('B').unwrap();
        let last_r = chart.rfind('R').unwrap();
        assert!(last_r > first_b, "no visible overlap in chart:\n{chart}");
    }

    #[test]
    fn timeline_has_one_row_per_rank() {
        let topo = dgx1();
        let s = ccube_collectives::ring_allreduce(8, ByteSize::mib(4));
        let e = Embedding::identity(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let chart = render_timeline(
            &s,
            &report,
            &TimelineOptions {
                width: 40,
                receive_side: true,
            },
        );
        assert_eq!(chart.lines().count(), 9); // header + 8 ranks
    }

    #[test]
    fn channel_timeline_has_one_row_per_channel() {
        let topo = dgx1();
        let s = ccube_collectives::ring_allreduce(8, ByteSize::mib(4));
        let e = Embedding::identity(&topo, &s).unwrap();
        let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
        let chart = render_channel_timeline(&report, &TimelineOptions::default());
        assert_eq!(chart.lines().count(), topo.channels().len() + 1);
        // The ring keeps its channels saturated: some row must be mostly #.
        assert!(chart.contains("####"), "no busy spans in:\n{chart}");
    }
}
