//! Replayable fault injection and degradation-aware re-routing.
//!
//! The reproduction's other engines only ever simulate a *healthy*
//! fabric, but the paper's whole premise — static detour routes,
//! conflict-free channel assignments — is about links being scarce,
//! shared, and occasionally gone. This module adds the missing failure
//! side:
//!
//! * a [`FaultPlan`] declares fault events — link flaps
//!   ([`FaultEvent::LinkDown`]), degraded-bandwidth windows
//!   ([`FaultEvent::Degraded`]), straggler GPUs
//!   ([`FaultEvent::Straggler`]) — either hand-written or sampled from
//!   MTBF/duration distributions ([`FaultPlan::sample`]) via
//!   [`SimRng::fork`], so every plan is a pure function of a seed;
//! * [`simulate_system_faulted`] runs a [`SystemJob`] under a plan on
//!   the same deterministic DES kernel: fault boundaries are ordinary
//!   events in the `(time, key, seq)` total order (keyed *below* every
//!   traffic completion, so a boundary at time `t` is visible to all
//!   traffic at `t`), which makes faulted runs exactly as replayable as
//!   healthy ones;
//! * on a link-down, waiting transfers whose path crosses the dead
//!   channel are **re-routed** through the existing
//!   `ccube_topology::Router` fallback (direct → detour → host bridge,
//!   with every currently-down channel blocked) — chosen statically per
//!   fault epoch, mirroring the paper's static non-minimal forwarding.
//!   If no surviving route exists the transfer simply waits for the
//!   link to return; a run whose traffic can *never* finish reports
//!   [`SimError::Unroutable`] instead of a generic deadlock;
//! * [`FaultDriver`] is the same scheduling logic as a
//!   [`Component`] on the
//!   [`Simulation`](crate::kernel::Simulation) layer, for experiments
//!   built there;
//! * failing plans shrink to 1-minimal reproducers with
//!   [`FaultPlan::shrink`].
//!
//! An **empty plan is a true no-op**: [`simulate_system_faulted`]
//! delegates straight to [`simulate_system`], so golden results cannot
//! drift by construction.

use crate::engine::SimOptions;
use crate::error::SimError;
use crate::kernel::{Component, ComponentId, Ctx, Kernel, SimRng};
use crate::report::SimStats;
use crate::resource::{ChannelPool, ComputeStream};
use crate::system::{simulate_system, SystemJob, SystemReport};
use crate::trace::{SimTrace, TraceRecord};
use ccube_collectives::{Embedding, Schedule, TransferSpec};
use ccube_topology::{ChannelClass, ChannelId, GpuId, Router, Seconds, SwitchId, Topology};
use std::collections::HashMap;

/// The sentinel end time of a permanent fault: the event never lifts.
pub fn forever() -> Seconds {
    Seconds::new(f64::INFINITY)
}

/// One declarative fault event. `from` is inclusive, `until` exclusive;
/// `until` may be [`forever`] for a permanent fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A link flap: the channel rejects every new grant in the window.
    /// In-flight occupants finish normally — a flap is detected at
    /// grant time, not mid-wormhole.
    LinkDown {
        /// The channel that goes down.
        channel: ChannelId,
        /// When it goes down.
        from: Seconds,
        /// When it comes back up ([`forever`] = never).
        until: Seconds,
    },
    /// A degraded-bandwidth window: the channel runs at `rate`× its
    /// nominal bandwidth. In-flight transfers are rescaled at the
    /// window boundaries; overlapping windows multiply.
    Degraded {
        /// The degraded channel.
        channel: ChannelId,
        /// When degradation begins.
        from: Seconds,
        /// When it lifts ([`forever`] = never).
        until: Seconds,
        /// Bandwidth multiplier in `(0, 1]`.
        rate: f64,
    },
    /// A straggler window: every compute task on the GPU runs
    /// `slowdown`× longer. In-flight compute is rescaled at the window
    /// boundaries; overlapping windows multiply.
    Straggler {
        /// The straggling GPU.
        gpu: GpuId,
        /// When the slowdown begins.
        from: Seconds,
        /// When it lifts ([`forever`] = never).
        until: Seconds,
        /// Compute-time multiplier, at least `1.0`.
        slowdown: f64,
    },
    /// An uplink outage on the switch fabric: the up/down port pair of
    /// slot `uplink` on leaf `leaf` rejects every new grant in the
    /// window. In-flight wormholes drain normally — the outage is
    /// detected at grant time — and queued port paths fail over to the
    /// leaf's surviving slots under an adaptive
    /// [`UplinkPolicy`](crate::UplinkPolicy); exhausted diversity
    /// degrades to stall-until-repair. Requires the `SwitchFabric`
    /// network model.
    UplinkDown {
        /// The leaf switch whose uplink goes down.
        leaf: u32,
        /// The uplink slot on that leaf.
        uplink: u32,
        /// When it goes down.
        from: Seconds,
        /// When it comes back up ([`forever`] = never).
        until: Seconds,
    },
    /// A spine-switch outage: every uplink slot attached to the spine
    /// (slots `j` with `j % spines == spine`) goes down on **every**
    /// leaf for the window — the correlated analogue of
    /// [`FaultEvent::UplinkDown`]. Requires the `SwitchFabric` network
    /// model.
    SwitchDown {
        /// The spine switch that goes down.
        spine: u32,
        /// When it goes down.
        from: Seconds,
        /// When it comes back up ([`forever`] = never).
        until: Seconds,
    },
}

impl FaultEvent {
    /// When the event activates.
    pub fn from(&self) -> Seconds {
        match *self {
            FaultEvent::LinkDown { from, .. }
            | FaultEvent::Degraded { from, .. }
            | FaultEvent::Straggler { from, .. }
            | FaultEvent::UplinkDown { from, .. }
            | FaultEvent::SwitchDown { from, .. } => from,
        }
    }

    /// When the event lifts (may be [`forever`]).
    pub fn until(&self) -> Seconds {
        match *self {
            FaultEvent::LinkDown { until, .. }
            | FaultEvent::Degraded { until, .. }
            | FaultEvent::Straggler { until, .. }
            | FaultEvent::UplinkDown { until, .. }
            | FaultEvent::SwitchDown { until, .. } => until,
        }
    }

    /// True if the event never lifts.
    pub fn is_permanent(&self) -> bool {
        self.until().as_secs_f64().is_infinite()
    }
}

/// A validated, declarative list of fault events — the replayable unit
/// of the fault model. Equal plans on equal seeds/jobs produce
/// bit-identical reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (a guaranteed no-op).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from `events`, validating each one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultPlanInvalid`] if an event has a
    /// negative `from`, `until <= from`, a degrade rate outside
    /// `(0, 1]`, or a straggler slowdown below `1.0`. Channel and GPU
    /// indices are validated against the topology at simulation time.
    pub fn new(events: Vec<FaultEvent>) -> Result<Self, SimError> {
        for (i, e) in events.iter().enumerate() {
            if e.from() < Seconds::ZERO {
                return Err(SimError::FaultPlanInvalid(format!(
                    "event {i}: from must be non-negative"
                )));
            }
            if e.until() <= e.from() {
                return Err(SimError::FaultPlanInvalid(format!(
                    "event {i}: until must exceed from"
                )));
            }
            match *e {
                FaultEvent::Degraded { rate, .. } => {
                    if !(rate > 0.0 && rate <= 1.0) {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: degrade rate must be in (0, 1]"
                        )));
                    }
                }
                FaultEvent::Straggler { slowdown, .. } => {
                    if slowdown.is_nan() || slowdown < 1.0 {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: straggler slowdown must be at least 1"
                        )));
                    }
                }
                FaultEvent::LinkDown { .. }
                | FaultEvent::UplinkDown { .. }
                | FaultEvent::SwitchDown { .. } => {}
            }
        }
        Ok(FaultPlan { events })
    }

    /// The plan's events, in declaration order (the order trace records
    /// and fault indices refer to).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Samples a plan from `model` over `topo`: per non-host channel,
    /// link flaps and degradation windows arrive as Poisson processes
    /// (exponential inter-arrival with the model's MTBF, exponential
    /// durations); per GPU, straggler windows likewise. Host-bridge
    /// channels never fault — they model the PCIe/CPU escape path,
    /// which is exactly what a resilience study wants to keep alive.
    ///
    /// Sampling forks one RNG stream per (resource, fault kind) from
    /// `rng`, so the plan is a pure function of the seed — independent
    /// of draw order and of any other use of `rng`.
    pub fn sample(model: &FaultModel, topo: &Topology, rng: &SimRng) -> FaultPlan {
        let mut events = Vec::new();
        for ch in topo.channels() {
            if ch.class() == ChannelClass::HostBridge {
                continue;
            }
            let ci = u64::from(ch.id().0);
            if let Some(mtbf) = model.link_mtbf {
                let mut r = rng.fork(2 * ci);
                sample_windows(
                    &mut r,
                    mtbf,
                    model.link_mttr,
                    model.horizon,
                    |from, until| {
                        events.push(FaultEvent::LinkDown {
                            channel: ch.id(),
                            from,
                            until,
                        });
                    },
                );
            }
            if let Some(mtbf) = model.degrade_mtbf {
                let mut r = rng.fork(2 * ci + 1);
                sample_windows(
                    &mut r,
                    mtbf,
                    model.degrade_duration,
                    model.horizon,
                    |from, until| {
                        events.push(FaultEvent::Degraded {
                            channel: ch.id(),
                            from,
                            until,
                            rate: model.degrade_rate,
                        });
                    },
                );
            }
        }
        if let Some(mtbf) = model.straggler_mtbf {
            for g in 0..topo.num_gpus() as u32 {
                let mut r = rng.fork(0x0001_0000 + u64::from(g));
                sample_windows(
                    &mut r,
                    mtbf,
                    model.straggler_duration,
                    model.horizon,
                    |from, until| {
                        events.push(FaultEvent::Straggler {
                            gpu: GpuId(g),
                            from,
                            until,
                            slowdown: model.straggler_slowdown,
                        });
                    },
                );
            }
        }
        FaultPlan { events }
    }

    /// Samples uplink-outage windows over a spine/leaf fabric of
    /// `num_leaves` leaves with `uplinks_per_leaf` slots each: per
    /// `(leaf, slot)` pair, outages arrive as a Poisson process
    /// (exponential inter-arrival with mean `mtbf`, exponential
    /// durations with mean `mttr`) within `[0, horizon)`.
    ///
    /// Like [`FaultPlan::sample`], one RNG stream is forked per target
    /// from `rng`, so the plan is a pure function of the seed. Sampling
    /// with `uplinks_per_leaf` *smaller* than a fabric's actual slot
    /// count yields a plan valid on every fabric with at least that many
    /// slots — the trick the resilience study uses to replay the *same*
    /// seeded plan against single- and multi-uplink fabrics.
    pub fn sample_uplinks(
        num_leaves: usize,
        uplinks_per_leaf: usize,
        mtbf: Seconds,
        mttr: Seconds,
        horizon: Seconds,
        rng: &SimRng,
    ) -> FaultPlan {
        let mut events = Vec::new();
        for leaf in 0..num_leaves as u32 {
            for slot in 0..uplinks_per_leaf as u32 {
                let key = 0x0002_0000 + u64::from(leaf) * uplinks_per_leaf as u64 + u64::from(slot);
                let mut r = rng.fork(key);
                sample_windows(&mut r, mtbf, mttr, horizon, |from, until| {
                    events.push(FaultEvent::UplinkDown {
                        leaf,
                        uplink: slot,
                        from,
                        until,
                    });
                });
            }
        }
        FaultPlan { events }
    }

    /// Greedy delta-debugging shrinker: repeatedly drops single events
    /// while `still_fails` keeps returning `true`, until no single
    /// removal preserves the failure. The result is 1-minimal — every
    /// remaining event is necessary to reproduce the failure.
    ///
    /// `still_fails` must be deterministic (replay the same simulation
    /// from the same seed); with the deterministic kernel that is the
    /// default, not an extra requirement.
    pub fn shrink(&self, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
        let mut current = self.clone();
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < current.events.len() {
                let mut candidate = current.clone();
                candidate.events.remove(i);
                if still_fails(&candidate) {
                    current = candidate;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        current
    }

    fn validate_against(&self, topo: &Topology) -> Result<(), SimError> {
        let num_channels = topo.channels().len();
        for (i, e) in self.events.iter().enumerate() {
            match *e {
                FaultEvent::LinkDown { channel, .. } | FaultEvent::Degraded { channel, .. } => {
                    if channel.index() >= num_channels {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: channel {} outside the topology",
                            channel.0
                        )));
                    }
                }
                FaultEvent::Straggler { gpu, .. } => {
                    if gpu.index() >= topo.num_gpus() {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: {gpu} outside the topology"
                        )));
                    }
                }
                // Fabric targets are validated against the derived port
                // graph in validate_fabric_events, once the network
                // model is known.
                FaultEvent::UplinkDown { .. } | FaultEvent::SwitchDown { .. } => {}
            }
        }
        Ok(())
    }

    /// Validates the plan's fabric-native targets against the derived
    /// port graph (`None` under the channel approximation, where no
    /// fabric exists to fault).
    fn validate_fabric_events(
        &self,
        graph: Option<&ccube_topology::FabricGraph>,
    ) -> Result<(), SimError> {
        for (i, e) in self.events.iter().enumerate() {
            match *e {
                FaultEvent::UplinkDown { leaf, uplink, .. } => {
                    let Some(g) = graph else {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: UplinkDown requires the switch-fabric network model"
                        )));
                    };
                    if leaf as usize >= g.num_switches() {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: leaf {leaf} outside the fabric"
                        )));
                    }
                    let slots = g.uplinks_up(ccube_topology::SwitchId(leaf)).len();
                    if uplink as usize >= slots {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: uplink {uplink} outside leaf {leaf} \
                             ({slots} uplinks)"
                        )));
                    }
                }
                FaultEvent::SwitchDown { spine, .. } => {
                    let Some(g) = graph else {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: SwitchDown requires the switch-fabric network model"
                        )));
                    };
                    if spine as usize >= g.num_spines() {
                        return Err(SimError::FaultPlanInvalid(format!(
                            "event {i}: spine {spine} outside the fabric \
                             ({} spines)",
                            g.num_spines()
                        )));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Draws Poisson-process windows over `[0, horizon)`: exponential
/// inter-arrival times with mean `mtbf`, exponential durations with
/// mean `duration`.
fn sample_windows(
    rng: &mut SimRng,
    mtbf: Seconds,
    duration: Seconds,
    horizon: Seconds,
    mut emit: impl FnMut(Seconds, Seconds),
) {
    let exp = |rng: &mut SimRng, mean: Seconds| -mean.as_secs_f64() * (1.0 - rng.next_f64()).ln();
    let mut t = 0.0;
    loop {
        t += exp(rng, mtbf);
        if t >= horizon.as_secs_f64() {
            return;
        }
        let d = exp(rng, duration).max(horizon.as_secs_f64() * 1e-9);
        emit(Seconds::new(t), Seconds::new(t + d));
    }
}

/// MTBF/duration distributions [`FaultPlan::sample`] draws from. A
/// `None` MTBF disables that fault kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Faults arrive within `[0, horizon)` (typically the healthy run's
    /// makespan).
    pub horizon: Seconds,
    /// Per-channel mean time between link flaps.
    pub link_mtbf: Option<Seconds>,
    /// Mean flap duration (time to repair).
    pub link_mttr: Seconds,
    /// Per-channel mean time between degradation windows.
    pub degrade_mtbf: Option<Seconds>,
    /// Mean degradation-window duration.
    pub degrade_duration: Seconds,
    /// Bandwidth multiplier inside a degradation window, in `(0, 1]`.
    pub degrade_rate: f64,
    /// Per-GPU mean time between straggler windows.
    pub straggler_mtbf: Option<Seconds>,
    /// Mean straggler-window duration.
    pub straggler_duration: Seconds,
    /// Compute-time multiplier inside a straggler window (≥ 1.0).
    pub straggler_slowdown: f64,
}

impl FaultModel {
    /// The escalating-severity ladder of the resilience sweep. Level 0
    /// is a healthy fabric (empty plans); higher levels shorten every
    /// MTBF proportionally, so faults arrive `level`× as often.
    pub fn severity(level: u32, horizon: Seconds) -> FaultModel {
        let f = f64::from(level.max(1));
        FaultModel {
            horizon,
            link_mtbf: (level > 0).then(|| horizon * (12.0 / f)),
            link_mttr: horizon * 0.125,
            degrade_mtbf: (level > 0).then(|| horizon * (16.0 / f)),
            degrade_duration: horizon * 0.25,
            degrade_rate: 0.5,
            straggler_mtbf: (level > 0).then(|| horizon * (4.0 / f)),
            straggler_duration: horizon * (1.0 / 6.0),
            straggler_slowdown: 1.5,
        }
    }
}

/// Events a [`FaultDriver`] schedules and receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSignal {
    /// Kick-off: schedule every plan event's boundaries.
    Activate,
    /// Fault `.0` (a plan index) starts now.
    Start(u32),
    /// Fault `.0` ends now.
    End(u32),
}

/// The fault-boundary scheduler as a [`Component`]: on
/// [`FaultSignal::Activate`] it emits a [`FaultSignal::Start`] at each
/// event's `from` and a [`FaultSignal::End`] at each finite `until`,
/// addressed to `target` (or to itself when none, in which case it logs
/// the boundary). Because boundaries ride the simulation's
/// `(time, key, seq)` order, a fabric component receiving them observes
/// faults in exactly the order [`simulate_system_faulted`] applies them.
pub struct FaultDriver {
    plan: FaultPlan,
    target: Option<ComponentId>,
    log: Vec<(u32, bool, Seconds)>,
}

impl FaultDriver {
    /// A driver that logs boundaries itself.
    pub fn new(plan: FaultPlan) -> Self {
        FaultDriver {
            plan,
            target: None,
            log: Vec::new(),
        }
    }

    /// A driver that addresses boundaries to `target`.
    pub fn with_target(plan: FaultPlan, target: ComponentId) -> Self {
        FaultDriver {
            plan,
            target: Some(target),
            log: Vec::new(),
        }
    }

    /// The boundaries this driver received, as
    /// `(event index, is_start, time)` in delivery order.
    pub fn log(&self) -> &[(u32, bool, Seconds)] {
        &self.log
    }
}

impl Component<FaultSignal> for FaultDriver {
    fn on_event(&mut self, event: FaultSignal, ctx: &mut Ctx<'_, FaultSignal>) {
        match event {
            FaultSignal::Activate => {
                let to = self.target.unwrap_or_else(|| ctx.self_id());
                for (i, e) in self.plan.events().iter().enumerate() {
                    ctx.emit(to, e.from() - ctx.now(), FaultSignal::Start(i as u32));
                    if !e.is_permanent() {
                        ctx.emit(to, e.until() - ctx.now(), FaultSignal::End(i as u32));
                    }
                }
            }
            FaultSignal::Start(i) => self.log.push((i, true, ctx.now())),
            FaultSignal::End(i) => self.log.push((i, false, ctx.now())),
        }
    }
}

/// Runs `schedule` (communication only) under `plan`. See
/// [`simulate_system_faulted`].
///
/// # Errors
///
/// As [`simulate_system_faulted`].
pub fn simulate_faulted(
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    opts: &SimOptions,
    plan: &FaultPlan,
) -> Result<SystemReport, SimError> {
    let job = SystemJob {
        schedule: schedule.clone(),
        compute: vec![],
        transfer_gates: vec![],
    };
    simulate_system_faulted(topo, &job, embedding, opts, plan)
}

/// Fault events pop *before* traffic completions at equal times: their
/// tie-break keys are the plan indices, and every traffic key is offset
/// past them.
const NODE_KEYS: u64 = 1 << 32;

#[derive(Debug, Clone, Copy)]
enum Ev {
    FaultStart(u32),
    FaultEnd(u32),
    /// Transfer completion `(id, generation)` — stale generations are
    /// rescheduled completions and get ignored.
    Transfer(u32, u32),
    /// Compute completion `(id, generation)`.
    Compute(u32, u32),
}

struct Engine<'a> {
    topo: &'a Topology,
    job: &'a SystemJob,
    embedding: &'a Embedding,
    opts: &'a SimOptions,
    plan: &'a FaultPlan,
    specs: Vec<TransferSpec>,
    /// Channel→port mapping under the switch-fabric network model:
    /// `specs` keep channel-level paths (fault events and degradation
    /// windows are declared per channel), while the pool schedules the
    /// mapped port paths.
    fabric: Option<crate::fabric::FabricMap>,
    pool: ChannelPool,
    streams: HashMap<GpuId, ComputeStream>,
    kernel: Kernel<Ev>,
    trace: SimTrace,
    nt: usize,
    /// Per-node (transfers then compute) completion-event generation;
    /// rescheduling a completion bumps it, orphaning the stale event.
    generation: Vec<u32>,
    /// Scheduled finish time per node, for boundary rescaling.
    finish_at: Vec<Seconds>,
    /// Start time per node (pool tracks transfers; this also covers
    /// compute, for occupancy accounting under changing slowdowns).
    start_at: Vec<Seconds>,
    /// Effective bandwidth rate each running transfer was scheduled at.
    eff_of: Vec<f64>,
    /// Which plan events are currently active.
    active: Vec<bool>,
    compute_running: Vec<bool>,
    /// Valid (current-generation) completion events in the kernel.
    in_flight: usize,
    faults_injected: u64,
    reroutes_taken: u64,
    failovers: u64,
}

impl Engine<'_> {
    fn transfer_key(tid: u32) -> u64 {
        NODE_KEYS + (u64::from(tid) << 1)
    }

    fn compute_key(cid: u32) -> u64 {
        NODE_KEYS + ((u64::from(cid) << 1) | 1)
    }

    /// The pool resources a channel-level path occupies (identity under
    /// the channel approximation, the port path under the fabric).
    fn res_path(&self, channels: &[ChannelId]) -> Vec<ChannelId> {
        match &self.fabric {
            Some(f) => f.resource_path(channels),
            None => channels.to_vec(),
        }
    }

    /// True if `channel` is currently down in the pool (its endpoint
    /// ports, under the fabric).
    fn is_channel_down(&self, channel: ChannelId) -> bool {
        match &self.fabric {
            Some(f) => f
                .graph
                .ports_for_channel(channel)
                .iter()
                .any(|p| self.pool.is_link_down(ChannelId(p.0))),
            None => self.pool.is_link_down(channel),
        }
    }

    /// Product of the active degradation rates on `channel`.
    fn channel_rate(&self, channel: ChannelId) -> f64 {
        let mut rate = 1.0;
        for (i, e) in self.plan.events().iter().enumerate() {
            if let FaultEvent::Degraded {
                channel: c,
                rate: r,
                ..
            } = *e
            {
                if self.active[i] && c == channel {
                    rate *= r;
                }
            }
        }
        rate
    }

    /// Effective rate of a transfer: its bottleneck degradation.
    fn path_rate(&self, tid: u32) -> f64 {
        self.specs[tid as usize]
            .path
            .iter()
            .map(|&c| self.channel_rate(c))
            .fold(1.0, f64::min)
    }

    /// Product of the active straggler slowdowns on `gpu`.
    fn gpu_slowdown(&self, gpu: GpuId) -> f64 {
        let mut slowdown = 1.0;
        for (i, e) in self.plan.events().iter().enumerate() {
            if let FaultEvent::Straggler {
                gpu: g,
                slowdown: s,
                ..
            } = *e
            {
                if self.active[i] && g == gpu {
                    slowdown *= s;
                }
            }
        }
        slowdown
    }

    fn begin_transfer(&mut self, tid: u32, now: Seconds) {
        let t = tid as usize;
        let eff = self.path_rate(tid);
        let duration = Seconds::new(self.specs[t].duration.as_secs_f64() / eff);
        let finish = now + duration;
        self.finish_at[t] = finish;
        self.start_at[t] = now;
        self.eff_of[t] = eff;
        self.kernel.schedule(
            finish,
            Self::transfer_key(tid),
            Ev::Transfer(tid, self.generation[t]),
        );
        self.in_flight += 1;
        self.trace.push(TraceRecord::TransferStart {
            id: self.specs[t].id,
            at: now,
        });
    }

    fn begin_compute(&mut self, cid: u32, now: Seconds) {
        let task = &self.job.compute[cid as usize];
        let me = self.nt + cid as usize;
        let scaled = self.streams[&task.gpu].scale(task.duration);
        let finish = now + scaled;
        self.finish_at[me] = finish;
        self.start_at[me] = now;
        self.compute_running[cid as usize] = true;
        self.kernel.schedule(
            finish,
            Self::compute_key(cid),
            Ev::Compute(cid, self.generation[me]),
        );
        self.in_flight += 1;
        self.trace.push(TraceRecord::ComputeStart {
            id: cid,
            gpu: task.gpu,
            at: now,
        });
    }

    /// Activates plan event `e` at `now`.
    fn apply_start(&mut self, e: u32, now: Seconds) {
        self.active[e as usize] = true;
        self.faults_injected += 1;
        self.trace
            .push(TraceRecord::FaultStart { fault: e, at: now });
        match self.plan.events()[e as usize] {
            FaultEvent::LinkDown { channel, .. } => {
                for r in self.res_path(&[channel]) {
                    self.pool.set_link_down(r);
                }
                self.reroute_pass(now);
            }
            FaultEvent::Degraded { channel, .. } => self.rescale_channel(channel, now),
            FaultEvent::Straggler { gpu, .. } => self.rescale_gpu(gpu, now),
            ev @ (FaultEvent::UplinkDown { .. } | FaultEvent::SwitchDown { .. }) => {
                for r in self.fault_ports(&ev) {
                    self.pool.set_link_down(r);
                }
                // Downed ports drain their in-flight wormholes (the
                // completion events stay scheduled); queued port paths
                // fail over to surviving uplinks right away.
                self.failover_pass(now);
            }
        }
    }

    /// Lifts plan event `e` at `now`.
    fn apply_end(&mut self, e: u32, now: Seconds) {
        self.active[e as usize] = false;
        self.trace.push(TraceRecord::FaultEnd { fault: e, at: now });
        match self.plan.events()[e as usize] {
            FaultEvent::LinkDown { channel, .. } => {
                for r in self.res_path(&[channel]) {
                    self.pool.set_link_up(r);
                    if !self.pool.is_link_down(r) {
                        let mut started = Vec::new();
                        self.pool
                            .serve_channel(r, now, &mut self.trace, &mut started);
                        for s in started {
                            self.begin_transfer(s, now);
                        }
                    }
                }
            }
            FaultEvent::Degraded { channel, .. } => self.rescale_channel(channel, now),
            FaultEvent::Straggler { gpu, .. } => self.rescale_gpu(gpu, now),
            ev @ (FaultEvent::UplinkDown { .. } | FaultEvent::SwitchDown { .. }) => {
                let ports = self.fault_ports(&ev);
                for &r in &ports {
                    self.pool.set_link_up(r);
                }
                // Transfers stranded on a slot that is STILL down (they
                // had no survivor to fail over to) revise onto the
                // repaired one before its waiter queues are served.
                self.failover_pass(now);
                for r in ports {
                    if !self.pool.is_link_down(r) {
                        let mut started = Vec::new();
                        self.pool
                            .serve_channel(r, now, &mut self.trace, &mut started);
                        for s in started {
                            self.begin_transfer(s, now);
                        }
                    }
                }
            }
        }
    }

    /// The pool port resources a fabric-native fault event downs: both
    /// legs of the uplink crossing (a transfer that cannot reach the
    /// spine cannot come back down it either), or every crossing homed
    /// on a downed spine.
    fn fault_ports(&self, e: &FaultEvent) -> Vec<ChannelId> {
        let Some(f) = &self.fabric else {
            return Vec::new(); // validated away under ChannelApprox
        };
        match *e {
            FaultEvent::UplinkDown { leaf, uplink, .. } => {
                let sw = SwitchId(leaf);
                let up = f.graph.uplinks_up(sw)[uplink as usize];
                let down = f.graph.uplinks_down(sw)[uplink as usize];
                vec![ChannelId(up.0), ChannelId(down.0)]
            }
            FaultEvent::SwitchDown { spine, .. } => {
                let mut out = Vec::new();
                for leaf in 0..f.graph.num_switches() {
                    let sw = SwitchId(leaf as u32);
                    let ups = f.graph.uplinks_up(sw);
                    let downs = f.graph.uplinks_down(sw);
                    for (slot, (&u, &d)) in ups.iter().zip(downs).enumerate() {
                        if f.graph.spine_of_uplink(slot as u32) == spine {
                            out.push(ChannelId(u.0));
                            out.push(ChannelId(d.0));
                        }
                    }
                }
                out
            }
            _ => Vec::new(),
        }
    }

    /// Re-slots every waiting transfer's spine crossings onto surviving
    /// (or less-queued) uplinks. Unlike [`Self::reroute_pass`] this
    /// never changes the channel-level route — slot substitution is
    /// duration-invariant by construction, so specs and cached timings
    /// stay untouched. A crossing with no surviving slot keeps its
    /// current one and stalls until repair; permanent total severance
    /// surfaces as [`SimError::Unroutable`] when the queue drains.
    fn failover_pass(&mut self, now: Seconds) {
        let Some(f) = &self.fabric else { return };
        if f.policy == crate::fabric::UplinkPolicy::Hash {
            return;
        }
        let graph = std::rc::Rc::clone(&f.graph);
        let policy = f.policy;
        for tid in 0..self.nt as u32 {
            if self.pool.is_done(tid) || self.pool.is_running(tid) {
                continue;
            }
            let Some((revised, port)) =
                crate::fabric::choose_uplinks(&graph, &self.pool, self.pool.path(tid), policy)
            else {
                continue;
            };
            self.pool.reroute(tid, revised);
            self.failovers += 1;
            self.trace.push(TraceRecord::Failover {
                id: self.specs[tid as usize].id,
                port,
                at: now,
            });
            if self.pool.poke(tid, now, &mut self.trace) {
                self.begin_transfer(tid, now);
            }
        }
    }

    /// Marks `tid` ready, first revising its spine crossings under an
    /// adaptive uplink policy — the grant-time choice from live queue
    /// depths the fabric's healthy engine makes too.
    fn adapt_and_mark_ready(&mut self, tid: u32, now: Seconds) -> bool {
        if let Some(f) = &self.fabric {
            if f.policy != crate::fabric::UplinkPolicy::Hash {
                let graph = std::rc::Rc::clone(&f.graph);
                let policy = f.policy;
                if let Some((revised, port)) =
                    crate::fabric::choose_uplinks(&graph, &self.pool, self.pool.path(tid), policy)
                {
                    self.pool.reroute(tid, revised);
                    self.failovers += 1;
                    self.trace.push(TraceRecord::Failover {
                        id: self.specs[tid as usize].id,
                        port,
                        at: now,
                    });
                }
            }
        }
        self.pool.mark_ready(tid, now, &mut self.trace)
    }

    /// Re-routes every waiting transfer whose path crosses a down
    /// channel onto the best surviving route, if one exists. Routes are
    /// chosen statically for the fault epoch — one `Router` per pass,
    /// allocating in transfer-id order, load-balances the pass exactly
    /// like schedule-construction-time routing would have. A transfer
    /// with no surviving route keeps its old path and waits for the
    /// link to return.
    ///
    /// NIC paths (scale-out injection/ejection pairs) are structural,
    /// not `Router`-resolved, so they are never re-routed: a downed NIC
    /// stalls its endpoint until repair, and a permanently-downed NIC
    /// makes the run [`SimError::Unroutable`] — the asymmetry the
    /// resilience sweep measures against the DGX-1's path diversity.
    fn reroute_pass(&mut self, now: Seconds) {
        let mut router = Router::new(self.topo);
        for ch in self.topo.channels() {
            if self.is_channel_down(ch.id()) {
                router.block_channel(ch.id());
            }
        }
        let transfers = self.job.schedule.transfers();
        for tid in 0..self.nt as u32 {
            let t = tid as usize;
            if self.pool.is_done(tid) || self.pool.is_running(tid) {
                continue;
            }
            let crosses = self.specs[t].path.iter().any(|&c| self.is_channel_down(c));
            if !crosses {
                continue;
            }
            let structural = self.specs[t]
                .path
                .iter()
                .any(|&c| self.topo.channel(c).class() == ChannelClass::Nic);
            if structural {
                continue; // NIC paths wait for repair instead
            }
            let src = self.embedding.gpu_of(transfers[t].src);
            let dst = self.embedding.gpu_of(transfers[t].dst);
            let Ok(route) = router.allocate(src, dst) else {
                continue; // no surviving route: wait for the link
            };
            // Mirror lower_schedule's duration model on the new path.
            let mut alpha = Seconds::ZERO;
            let mut bottleneck = f64::INFINITY;
            for &c in route.channels() {
                let ch = self.topo.channel(c);
                alpha += ch.latency();
                bottleneck = bottleneck.min(ch.bandwidth().as_bytes_per_sec());
            }
            if route.is_detour() {
                alpha += self.opts.forwarding_latency;
            }
            let serialization = Seconds::new(
                transfers[t].bytes.as_f64() / (bottleneck * self.opts.bandwidth_scale),
            );
            self.specs[t].path = route.channels().to_vec();
            self.specs[t].via = route.via();
            self.specs[t].duration = match &self.fabric {
                Some(f) => f.duration(
                    &self.specs[t].path,
                    transfers[t].bytes,
                    route.is_detour(),
                    &self.opts.link_timing(),
                ),
                None => alpha + serialization,
            };
            let res_path = self.res_path(&self.specs[t].path);
            self.pool.reroute(tid, res_path);
            self.reroutes_taken += 1;
            self.trace.push(TraceRecord::Reroute {
                id: self.specs[t].id,
                at: now,
            });
            if self.pool.poke(tid, now, &mut self.trace) {
                self.begin_transfer(tid, now);
            }
        }
    }

    /// Rescales in-flight transfers crossing `channel` after its
    /// degradation changed: remaining work finishes at the new rate.
    fn rescale_channel(&mut self, channel: ChannelId, now: Seconds) {
        for tid in 0..self.nt as u32 {
            let t = tid as usize;
            if !self.pool.is_running(tid) || !self.specs[t].path.contains(&channel) {
                continue;
            }
            let eff_new = self.path_rate(tid);
            let eff_old = self.eff_of[t];
            if eff_new == eff_old {
                continue;
            }
            let remaining = self.finish_at[t] - now;
            let finish = now + remaining * (eff_old / eff_new);
            self.generation[t] += 1;
            self.finish_at[t] = finish;
            self.eff_of[t] = eff_new;
            self.kernel.schedule(
                finish,
                Self::transfer_key(tid),
                Ev::Transfer(tid, self.generation[t]),
            );
        }
    }

    /// Rescales in-flight compute on `gpu` after its straggler factor
    /// changed, and re-sets the stream's slowdown for future tasks.
    fn rescale_gpu(&mut self, gpu: GpuId, now: Seconds) {
        let sd_new = self.gpu_slowdown(gpu);
        let Some(stream) = self.streams.get_mut(&gpu) else {
            return; // no compute tasks ever run there
        };
        let sd_old = stream.slowdown();
        if sd_new == sd_old {
            return;
        }
        stream.set_slowdown(sd_new);
        for cid in 0..self.job.compute.len() {
            if !self.compute_running[cid] || self.job.compute[cid].gpu != gpu {
                continue;
            }
            let me = self.nt + cid;
            let remaining = self.finish_at[me] - now;
            let finish = now + remaining * (sd_new / sd_old);
            self.generation[me] += 1;
            self.finish_at[me] = finish;
            self.kernel.schedule(
                finish,
                Self::compute_key(cid as u32),
                Ev::Compute(cid as u32, self.generation[me]),
            );
        }
    }

    /// The terminal error when the event queue drained with nodes
    /// outstanding: [`SimError::Unroutable`] if some unfinished
    /// transfer is stuck behind a (necessarily permanent, by now)
    /// link-down, otherwise a plain deadlock.
    fn drained_error(&self, remaining: usize) -> SimError {
        let transfers = self.job.schedule.transfers();
        for tid in 0..self.nt as u32 {
            let t = tid as usize;
            if self.pool.is_done(tid) {
                continue;
            }
            let stuck = self.specs[t].path.iter().any(|&c| self.is_channel_down(c))
                || (self.fabric.is_some()
                    && self
                        .pool
                        .path(tid)
                        .iter()
                        .any(|&r| self.pool.is_link_down(r)));
            if stuck {
                return SimError::Unroutable {
                    src: self.embedding.gpu_of(transfers[t].src),
                    dst: self.embedding.gpu_of(transfers[t].dst),
                };
            }
        }
        SimError::Deadlock { remaining }
    }
}

/// [`simulate_system`] under a [`FaultPlan`]: the same deterministic
/// DES, with fault boundaries as first-class events.
///
/// Semantics per fault kind:
///
/// * **Link down** — the channel rejects new grants (force-starts
///   included); in-flight occupants finish normally. Waiting transfers
///   whose path crosses the channel are re-routed through the static
///   direct → detour → host-bridge fallback with all currently-down
///   channels blocked (one routing pass per fault epoch); transfers
///   with no surviving route wait for the link to return. Routes do
///   not revert on link-up — re-routing is static per epoch, like the
///   paper's static detours.
/// * **Degraded** — the channel's bandwidth is multiplied by `rate`;
///   in-flight transfers have their remaining time rescaled at the
///   window boundaries. The whole wormhole occupancy (latency included)
///   scales — a modeling simplification, documented in DESIGN.md.
/// * **Straggler** — compute on the GPU stretches by `slowdown`;
///   in-flight compute rescales at the boundaries.
///
/// An empty plan delegates to [`simulate_system`] — bit-identical
/// output, zero overhead.
///
/// # Errors
///
/// As [`simulate_system`], plus [`SimError::FaultPlanInvalid`] for a
/// plan referencing channels/GPUs outside `topo` and
/// [`SimError::Unroutable`] when permanently-severed traffic can never
/// finish.
pub fn simulate_system_faulted(
    topo: &Topology,
    job: &SystemJob,
    embedding: &Embedding,
    opts: &SimOptions,
    plan: &FaultPlan,
) -> Result<SystemReport, SimError> {
    if plan.is_empty() {
        return simulate_system(topo, job, embedding, opts);
    }
    plan.validate_against(topo)?;

    let transfers = job.schedule.transfers();
    let nt = transfers.len();
    let nc = job.compute.len();
    let num_channels = topo.channels().len();
    let node_count = nt + nc;

    // Lower through the preparation cache; the fault engine re-routes
    // specs in place (and rescales durations across fault windows), so
    // it always takes an owned copy of the cached specs.
    let prep = crate::prep::gate_and_lower(topo, &job.schedule, embedding, &opts.link_timing())?;
    let mut specs = (*prep.specs).clone();

    // Under the switch-fabric model the pool schedules port paths and
    // durations follow the fabric; specs keep their channel-level paths
    // (fault events are declared per channel).
    let fabric = crate::fabric::FabricMap::for_options(topo, opts);
    plan.validate_fabric_events(fabric.as_ref().map(|f| f.graph.as_ref()))?;
    let res_paths: Vec<Vec<ChannelId>> = match &fabric {
        Some(f) => {
            let crate::fabric::NetworkModel::SwitchFabric(spec) = opts.network else {
                unreachable!("FabricMap exists only under SwitchFabric")
            };
            let timing = opts.link_timing();
            // Port expansions come through the preparation cache (keyed
            // by the full fabric spec, spine/uplink config included).
            let ports = crate::prep::ports_for(&prep, &spec, &f.graph);
            specs
                .iter_mut()
                .zip(ports.iter())
                .map(|(s, route)| {
                    s.duration = f.duration_on(route, s.bytes, s.via.is_some(), &timing);
                    route.iter().map(|p| ChannelId(p.0)).collect()
                })
                .collect()
        }
        None => specs.iter().map(|s| s.path.clone()).collect(),
    };

    // Dependency bookkeeping, identical to simulate_system.
    let mut deps_remaining = vec![0u32; node_count];
    let mut dependents: Vec<Vec<(bool, u32)>> = vec![Vec::new(); node_count]; // (is_compute, id)
    for t in transfers {
        deps_remaining[t.id.index()] += t.deps.len() as u32;
        for d in &t.deps {
            dependents[d.index()].push((false, t.id.0));
        }
    }
    for (tid, cid) in &job.transfer_gates {
        deps_remaining[tid.index()] += 1;
        dependents[nt + cid.index()].push((false, tid.0));
    }
    for c in &job.compute {
        deps_remaining[nt + c.id.index()] += (c.deps_compute.len() + c.deps_transfers.len()) as u32;
        for d in &c.deps_compute {
            dependents[nt + d.index()].push((true, c.id.0));
        }
        for d in &c.deps_transfers {
            dependents[d.index()].push((true, c.id.0));
        }
    }

    let num_resources = fabric.as_ref().map_or(num_channels, |f| f.num_ports());
    let mut pool = ChannelPool::new(num_resources, opts.arbitration);
    pool.reserve_tasks(nt);
    for (s, path) in specs.iter().zip(res_paths) {
        pool.add_task(path, (s.chunk.0, s.id.0));
    }
    let mut streams: HashMap<GpuId, ComputeStream> = HashMap::new();
    for c in &job.compute {
        streams.entry(c.gpu).or_default();
    }

    let mut eng = Engine {
        topo,
        job,
        embedding,
        opts,
        plan,
        specs,
        fabric,
        pool,
        streams,
        kernel: Kernel::with_capacity(node_count.min(num_resources + nc) + 2 * plan.len()),
        trace: opts.make_trace_for(nt.saturating_mul(4) + nc.saturating_mul(2) + 2 * plan.len()),
        nt,
        generation: vec![0; node_count],
        finish_at: vec![Seconds::ZERO; node_count],
        start_at: vec![Seconds::ZERO; node_count],
        eff_of: vec![1.0; nt],
        active: vec![false; plan.len()],
        compute_running: vec![false; nc],
        in_flight: 0,
        faults_injected: 0,
        reroutes_taken: 0,
        failovers: 0,
    };

    // Faults active from t = 0 apply BEFORE seeding, so no transfer can
    // start on (or keep a path through) an initially-down channel.
    // Later boundaries become kernel events, keyed below every traffic
    // completion so a boundary at time t is visible to all traffic at t.
    for (i, e) in plan.events().iter().enumerate() {
        let key = i as u64;
        if e.from() == Seconds::ZERO {
            eng.apply_start(i as u32, Seconds::ZERO);
        } else {
            eng.kernel.schedule(e.from(), key, Ev::FaultStart(i as u32));
        }
        if !e.is_permanent() {
            eng.kernel.schedule(e.until(), key, Ev::FaultEnd(i as u32));
        }
    }

    // Seed: dependency-free nodes, transfers first (historical order).
    for t in transfers {
        if deps_remaining[t.id.index()] == 0 && eng.adapt_and_mark_ready(t.id.0, Seconds::ZERO) {
            eng.begin_transfer(t.id.0, Seconds::ZERO);
        }
    }
    for c in &job.compute {
        if deps_remaining[nt + c.id.index()] == 0 {
            let started = eng
                .streams
                .get_mut(&c.gpu)
                .expect("gpu stream exists")
                .acquire(c.id.0);
            if started {
                eng.begin_compute(c.id.0, Seconds::ZERO);
            }
        }
    }

    let mut transfer_complete = vec![Seconds::ZERO; nt];
    let mut compute_complete = vec![Seconds::ZERO; nc];
    let mut remaining = node_count;
    let mut makespan = Seconds::ZERO;
    let mut started = Vec::new();

    while remaining > 0 {
        if eng.in_flight == 0 {
            // No completion pending: either an arbitration stall (break
            // it immediately, like the healthy engines) or all traffic
            // is waiting out a link-down (advance to the boundary).
            let now = eng.kernel.now();
            if let Some(t) = eng.pool.force_start(now, &mut eng.trace) {
                eng.begin_transfer(t, now);
                continue;
            }
        }
        let Some((now, ev)) = eng.kernel.pop() else {
            return Err(eng.drained_error(remaining));
        };
        let (is_compute, id) = match ev {
            Ev::FaultStart(e) => {
                eng.apply_start(e, now);
                continue;
            }
            Ev::FaultEnd(e) => {
                eng.apply_end(e, now);
                continue;
            }
            Ev::Transfer(i, gen) => {
                if gen != eng.generation[i as usize] {
                    continue; // rescheduled; a current-gen event exists
                }
                (false, i)
            }
            Ev::Compute(i, gen) => {
                if gen != eng.generation[nt + i as usize] {
                    continue;
                }
                (true, i)
            }
        };
        eng.in_flight -= 1;
        remaining -= 1;
        makespan = makespan.max(now);
        let me = if is_compute {
            nt + id as usize
        } else {
            id as usize
        };

        // Release the resource and record the completion.
        if is_compute {
            let ci = id as usize;
            compute_complete[ci] = now;
            eng.compute_running[ci] = false;
            eng.trace.push(TraceRecord::ComputeEnd {
                id,
                gpu: job.compute[ci].gpu,
                at: now,
            });
        } else {
            let ti = id as usize;
            transfer_complete[ti] = now;
            eng.pool.complete(id, now);
            eng.trace.push(TraceRecord::TransferEnd {
                id: eng.specs[ti].id,
                at: now,
            });
            if let Some(via) = eng.specs[ti].via {
                eng.trace.push(TraceRecord::DetourHop {
                    id: eng.specs[ti].id,
                    via,
                    at: now,
                });
            }
        }

        // Unblock dependents before serving freed resources.
        let deps = std::mem::take(&mut dependents[me]);
        for (dep_compute, dep_id) in deps {
            let di = if dep_compute {
                nt + dep_id as usize
            } else {
                dep_id as usize
            };
            deps_remaining[di] -= 1;
            if deps_remaining[di] == 0 {
                if dep_compute {
                    let gpu = job.compute[dep_id as usize].gpu;
                    let ok = eng
                        .streams
                        .get_mut(&gpu)
                        .expect("gpu stream exists")
                        .acquire(dep_id);
                    if ok {
                        eng.begin_compute(dep_id, now);
                    }
                } else if eng.adapt_and_mark_ready(dep_id, now) {
                    eng.begin_transfer(dep_id, now);
                }
            }
        }

        // Serve the freed resource's waiters.
        if is_compute {
            let ci = id as usize;
            let gpu = job.compute[ci].gpu;
            let occupancy = now - eng.start_at[me];
            let next = eng
                .streams
                .get_mut(&gpu)
                .expect("gpu stream exists")
                .release(occupancy);
            if let Some(h) = next {
                eng.begin_compute(h, now);
            }
        } else {
            started.clear();
            eng.pool.serve(id, now, &mut eng.trace, &mut started);
            for &s in &started {
                eng.begin_transfer(s, now);
            }
        }
    }

    // Post-hoc fault intervals, clipped to the run's makespan.
    let mut channel_downtime = vec![Seconds::ZERO; num_channels];
    let mut per_channel: HashMap<ChannelId, Vec<(f64, f64)>> = HashMap::new();
    let mut degraded: Vec<(f64, f64)> = Vec::new();
    for e in plan.events() {
        let lo = e.from().as_secs_f64();
        let hi = e.until().as_secs_f64().min(makespan.as_secs_f64());
        if hi <= lo {
            continue;
        }
        match *e {
            FaultEvent::LinkDown { channel, .. } => {
                per_channel.entry(channel).or_default().push((lo, hi));
            }
            FaultEvent::Degraded { .. } => degraded.push((lo, hi)),
            // Fabric-port downtime has no channel to charge; it shows up
            // in the failover counter and per-uplink busy time instead.
            FaultEvent::Straggler { .. }
            | FaultEvent::UplinkDown { .. }
            | FaultEvent::SwitchDown { .. } => {}
        }
    }
    for (channel, windows) in per_channel {
        channel_downtime[channel.index()] = Seconds::new(merged_total(windows));
    }
    let time_degraded = Seconds::new(merged_total(degraded));

    let gpu_busy: HashMap<GpuId, Seconds> = eng
        .streams
        .iter()
        .filter(|(_, s)| s.busy() > Seconds::ZERO)
        .map(|(&g, s)| (g, s.busy()))
        .collect();
    let kstats = eng.kernel.stats();
    let max_stream_waiting = eng
        .streams
        .values()
        .map(|s| s.max_waiting())
        .max()
        .unwrap_or(0);
    // Per-port quantities fold back to channels under the fabric model;
    // the raw per-port busy vector stays visible in the stats.
    let (channel_busy, queue_wait, port_busy, uplink_busy) = match &eng.fabric {
        Some(f) => (
            f.channel_values(eng.pool.busy(), num_channels),
            f.channel_values(eng.pool.queue_wait(), num_channels),
            eng.pool.busy().to_vec(),
            crate::fabric::uplink_busy_of(&f.graph, eng.pool.busy()),
        ),
        None => (
            eng.pool.busy().to_vec(),
            eng.pool.queue_wait().to_vec(),
            Vec::new(),
            Vec::new(),
        ),
    };
    let stats = SimStats {
        events_scheduled: kstats.events_scheduled,
        events_processed: kstats.events_processed,
        max_event_queue_depth: kstats.max_queue_depth,
        max_channel_queue_depth: eng.pool.max_waiting().max(max_stream_waiting),
        queue_wait,
        force_starts: eng.pool.force_starts(),
        faults_injected: eng.faults_injected,
        reroutes_taken: eng.reroutes_taken,
        failovers: eng.failovers,
        time_degraded,
        channel_downtime,
        port_busy,
        uplink_busy,
        ..SimStats::default()
    };

    Ok(SystemReport {
        transfer_complete,
        compute_complete,
        makespan,
        gpu_busy,
        channel_busy,
        trace: eng.trace,
        stats,
    })
}

/// Total length of the union of `windows` (each `(lo, hi)` with
/// `hi > lo`).
fn merged_total(mut windows: Vec<(f64, f64)>) -> f64 {
    windows.sort_by(|a, b| a.partial_cmp(b).expect("finite windows"));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (lo, hi) in windows {
        match &mut cur {
            Some((_, chi)) if lo <= *chi => *chi = chi.max(hi),
            _ => {
                if let Some((clo, chi)) = cur {
                    total += chi - clo;
                }
                cur = Some((lo, hi));
            }
        }
    }
    if let Some((clo, chi)) = cur {
        total += chi - clo;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use ccube_topology::dgx1;

    fn us(t: f64) -> Seconds {
        Seconds::from_micros(t)
    }

    #[test]
    fn plan_validation_rejects_bad_events() {
        let inverted = FaultPlan::new(vec![FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: us(5.0),
            until: us(5.0),
        }]);
        assert!(matches!(inverted, Err(SimError::FaultPlanInvalid(_))));
        let bad_rate = FaultPlan::new(vec![FaultEvent::Degraded {
            channel: ChannelId(0),
            from: us(0.0),
            until: us(1.0),
            rate: 1.5,
        }]);
        assert!(matches!(bad_rate, Err(SimError::FaultPlanInvalid(_))));
        let bad_slow = FaultPlan::new(vec![FaultEvent::Straggler {
            gpu: GpuId(0),
            from: us(0.0),
            until: us(1.0),
            slowdown: 0.5,
        }]);
        assert!(matches!(bad_slow, Err(SimError::FaultPlanInvalid(_))));
        let fine = FaultPlan::new(vec![FaultEvent::LinkDown {
            channel: ChannelId(0),
            from: us(0.0),
            until: forever(),
        }]);
        assert!(fine.is_ok());
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_seed() {
        let topo = dgx1();
        let model = FaultModel::severity(2, Seconds::from_millis(2.0));
        let a = FaultPlan::sample(&model, &topo, &SimRng::new(7));
        let b = FaultPlan::sample(&model, &topo, &SimRng::new(7));
        let c = FaultPlan::sample(&model, &topo, &SimRng::new(8));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty(), "severity 2 should produce events");
        // Host-bridge channels never fault.
        for e in a.events() {
            if let FaultEvent::LinkDown { channel, .. } | FaultEvent::Degraded { channel, .. } = e {
                assert_ne!(topo.channel(*channel).class(), ChannelClass::HostBridge);
            }
        }
    }

    #[test]
    fn severity_zero_is_an_empty_plan() {
        let topo = dgx1();
        let model = FaultModel::severity(0, Seconds::from_millis(1.0));
        let plan = FaultPlan::sample(&model, &topo, &SimRng::new(1));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn shrink_is_one_minimal() {
        // The "failure" is: the plan contains a permanent down on
        // channel 3 AND one on channel 5 (both needed). Junk events
        // must all shrink away.
        let down = |c: u32| FaultEvent::LinkDown {
            channel: ChannelId(c),
            from: us(0.0),
            until: forever(),
        };
        let junk = |c: u32| FaultEvent::Degraded {
            channel: ChannelId(c),
            from: us(1.0),
            until: us(2.0),
            rate: 0.5,
        };
        let plan =
            FaultPlan::new(vec![junk(0), down(3), junk(1), down(5), junk(2), down(3)]).unwrap();
        let fails = |p: &FaultPlan| {
            let has = |c: u32| {
                p.events().iter().any(|e| {
                    matches!(e, FaultEvent::LinkDown { channel, .. } if channel.0 == c
                        && e.is_permanent())
                })
            };
            has(3) && has(5)
        };
        assert!(fails(&plan));
        let minimal = plan.shrink(fails);
        assert_eq!(minimal.len(), 2, "exactly one down(3) and one down(5)");
        assert!(fails(&minimal));
        for i in 0..minimal.len() {
            let mut smaller = minimal.events().to_vec();
            smaller.remove(i);
            let smaller = FaultPlan::new(smaller).unwrap();
            assert!(!fails(&smaller), "1-minimality violated at event {i}");
        }
    }

    #[test]
    fn fault_driver_schedules_boundaries_in_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent::LinkDown {
                channel: ChannelId(0),
                from: us(5.0),
                until: us(9.0),
            },
            FaultEvent::Straggler {
                gpu: GpuId(1),
                from: us(2.0),
                until: forever(),
                slowdown: 2.0,
            },
        ])
        .unwrap();
        let mut sim: Simulation<FaultSignal> = Simulation::with_seed(0);
        let d = sim.add_component(FaultDriver::new(plan));
        sim.emit(Seconds::ZERO, d, FaultSignal::Activate);
        sim.run();
        assert_eq!(sim.now(), us(9.0));
        // The log is reachable only through the component box; re-run
        // with a probe target instead.
        struct Probe(Vec<(u32, bool, Seconds)>);
        impl Component<FaultSignal> for Probe {
            fn on_event(&mut self, ev: FaultSignal, ctx: &mut Ctx<'_, FaultSignal>) {
                match ev {
                    FaultSignal::Start(i) => self.0.push((i, true, ctx.now())),
                    FaultSignal::End(i) => self.0.push((i, false, ctx.now())),
                    FaultSignal::Activate => {}
                }
            }
        }
        let plan2 = FaultPlan::new(vec![
            FaultEvent::LinkDown {
                channel: ChannelId(0),
                from: us(5.0),
                until: us(9.0),
            },
            FaultEvent::Straggler {
                gpu: GpuId(1),
                from: us(2.0),
                until: forever(),
                slowdown: 2.0,
            },
        ])
        .unwrap();
        let mut sim: Simulation<FaultSignal> = Simulation::with_seed(0);
        let probe = sim.add_component(Probe(Vec::new()));
        let d = sim.add_component(FaultDriver::with_target(plan2, probe));
        sim.emit(Seconds::ZERO, d, FaultSignal::Activate);
        // Drive to completion, then inspect via a final self-query: the
        // Simulation owns the components, so assert through event count
        // and time instead.
        let processed = sim.run();
        // Activate + start(0) + end(0) + start(1); the permanent
        // straggler has no end.
        assert_eq!(processed, 4);
        assert_eq!(sim.now(), us(9.0));
    }

    #[test]
    fn merged_total_unions_overlaps() {
        let total = merged_total(vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]);
        assert!((total - 4.0).abs() < 1e-12);
        assert_eq!(merged_total(vec![]), 0.0);
    }
}
