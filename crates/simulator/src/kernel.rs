//! The discrete-event kernel: one event queue for every engine.
//!
//! Historically this workspace grew three independent event loops (the
//! network engine, the system co-simulator, and the multi-iteration
//! training timeline), each with its own `BinaryHeap`, its own
//! tie-breaking rules, and no shared observability. [`Kernel`] replaces
//! all of them: a deterministic future-event queue whose pop order is the
//! total order `(time, key, sequence)` — `key` is a caller-chosen
//! priority that reproduces each engine's historical tie-break, and the
//! monotone `sequence` number makes the order total even for identical
//! `(time, key)` pairs, so replays are bit-identical run to run.
//!
//! On top of the raw kernel, [`Simulation`] offers a DSLab-style
//! component model: handlers register as [`Component`]s, events are
//! addressed to a [`ComponentId`], and handlers emit follow-up events
//! through a [`Ctx`]. The production engines drive [`Kernel`] directly
//! (their schedulers are a single component in effect); the component
//! layer serves tests, experiments, and new engines.
//!
//! Determinism contract: a kernel seeded with the same value, fed the
//! same `schedule` calls in the same order, pops the same events at the
//! same times and returns the same [`SimRng`] draws. Nothing in the
//! kernel reads wall-clock time or ambient randomness.

use ccube_topology::Seconds;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Deterministic simulation RNG (splitmix64).
///
/// Small, fast, and seedable — every stream of draws is a pure function
/// of the seed, which is what replayable simulation needs. Not
/// cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A value uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw draw.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An independent RNG derived from this one's seed and `stream`.
    /// Forked streams are stable: the same `(seed, stream)` always
    /// yields the same sequence, regardless of draws on `self`.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut probe = SimRng {
            state: self.state ^ stream.wrapping_mul(0xd6e8_feb8_6659_fd93),
        };
        SimRng::new(probe.next_u64())
    }
}

/// Counters the kernel maintains while running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Events pushed into the queue over the whole run.
    pub events_scheduled: u64,
    /// Events popped and handed to the caller.
    pub events_processed: u64,
    /// High-water mark of the future-event queue.
    pub max_queue_depth: usize,
}

/// One scheduled event; the ordering ignores the payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Seconds,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.key, self.seq).cmp(&(other.time, other.key, other.seq))
    }
}

/// A deterministic future-event queue with a simulation clock.
///
/// `E` is the event payload type; the kernel never inspects it.
///
/// # Examples
///
/// ```
/// use ccube_sim::kernel::Kernel;
/// use ccube_topology::Seconds;
///
/// let mut k: Kernel<&str> = Kernel::new();
/// k.schedule(Seconds::from_micros(2.0), 0, "late");
/// k.schedule(Seconds::from_micros(1.0), 0, "early");
/// assert_eq!(k.pop().unwrap().1, "early");
/// assert_eq!(k.now(), Seconds::from_micros(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Kernel<E> {
    now: Seconds,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    stats: KernelStats,
    rng: SimRng,
}

impl<E> Default for Kernel<E> {
    fn default() -> Self {
        Kernel::new()
    }
}

impl<E> Kernel<E> {
    /// A kernel starting at `t = 0` with seed 0.
    pub fn new() -> Self {
        Kernel::with_seed(0)
    }

    /// A kernel starting at `t = 0` with the given RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        Kernel {
            now: Seconds::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            stats: KernelStats::default(),
            rng: SimRng::new(seed),
        }
    }

    /// A seed-0 kernel whose event heap is pre-allocated for `capacity`
    /// pending events, so an engine that knows its event population up
    /// front (one completion per transfer, say) never regrows the heap
    /// mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut k = Kernel::new();
        k.heap.reserve(capacity);
        k
    }

    /// Pre-allocates room for `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Rewinds the kernel to a fresh `t = 0` state with the given seed,
    /// keeping the event heap's allocation. A reset kernel is
    /// observationally identical to `Kernel::with_seed(seed)` — same
    /// clock, sequence counter, stats, and RNG stream — so a run on a
    /// recycled kernel replays bit-identically to one on a fresh kernel
    /// (the arena-reuse contract the prep-cache layer relies on).
    pub fn reset(&mut self, seed: u64) {
        self.now = Seconds::ZERO;
        self.seq = 0;
        self.heap.clear();
        self.stats = KernelStats::default();
        self.rng = SimRng::new(seed);
    }

    /// The current simulation time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Schedules `event` at absolute `time` with tie-break priority
    /// `key`. Events at equal `(time, key)` pop in scheduling order.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `time` is before the current clock — the past
    /// is immutable in a DES.
    pub fn schedule(&mut self, time: Seconds, key: u64, event: E) {
        debug_assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            time,
            key,
            seq,
            event,
        }));
        self.stats.events_scheduled += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.heap.len());
    }

    /// Schedules `event` at `now() + delay`.
    pub fn schedule_in(&mut self, delay: Seconds, key: u64, event: E) {
        self.schedule(self.now + delay, key, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.time;
        self.stats.events_processed += 1;
        Some((s.time, s.event))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// The kernel's counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The kernel's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// Identifies a registered [`Component`] within a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The handler context passed to [`Component::on_event`]: lets a handler
/// read the clock, draw deterministic randomness, and emit follow-up
/// events without borrowing the simulation itself.
pub struct Ctx<'a, E> {
    now: Seconds,
    self_id: ComponentId,
    rng: &'a mut SimRng,
    emitted: &'a mut Vec<(Seconds, ComponentId, Option<u64>, E)>,
}

impl<E> Ctx<'_, E> {
    /// The current simulation time.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// The id of the component being invoked.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Emits `event` to `dst` after `delay`.
    pub fn emit(&mut self, dst: ComponentId, delay: Seconds, event: E) {
        self.emitted.push((self.now + delay, dst, None, event));
    }

    /// Emits `event` to `dst` after `delay` with an explicit tie-break
    /// `key` overriding the default destination-id key. Engines that
    /// must reproduce a domain-specific pop order (e.g. transfer-id
    /// tie-breaks) use this to keep equal-time deliveries deterministic
    /// in that domain order rather than component-registration order.
    pub fn emit_keyed(&mut self, dst: ComponentId, delay: Seconds, key: u64, event: E) {
        self.emitted.push((self.now + delay, dst, Some(key), event));
    }

    /// Emits `event` to the component itself after `delay`.
    pub fn emit_self(&mut self, delay: Seconds, event: E) {
        self.emit(self.self_id, delay, event);
    }
}

/// An event handler registered with a [`Simulation`].
pub trait Component<E> {
    /// Handles one event addressed to this component.
    fn on_event(&mut self, event: E, ctx: &mut Ctx<'_, E>);
}

/// A DSLab-style component simulation over [`Kernel`].
///
/// Events are addressed to components; the tie-break key is the
/// destination id, so delivery order between components at equal times
/// is by registration order, deterministically.
///
/// # Examples
///
/// ```
/// use ccube_sim::kernel::{Component, ComponentId, Ctx, Simulation};
/// use ccube_topology::Seconds;
///
/// struct Counter(u32);
/// impl Component<u32> for Counter {
///     fn on_event(&mut self, ttl: u32, ctx: &mut Ctx<'_, u32>) {
///         self.0 += 1;
///         if ttl > 0 {
///             ctx.emit_self(Seconds::from_micros(1.0), ttl - 1);
///         }
///     }
/// }
///
/// let mut sim = Simulation::with_seed(7);
/// let c = sim.add_component(Counter(0));
/// sim.emit(Seconds::ZERO, c, 4u32);
/// sim.run();
/// assert_eq!(sim.now(), Seconds::from_micros(4.0));
/// ```
pub struct Simulation<E> {
    kernel: Kernel<(ComponentId, E)>,
    components: Vec<Box<dyn Component<E>>>,
    emitted: Vec<(Seconds, ComponentId, Option<u64>, E)>,
}

impl<E> Simulation<E> {
    /// A simulation with the given RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        Simulation {
            kernel: Kernel::with_seed(seed),
            components: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// Registers `component` and returns its id.
    pub fn add_component(&mut self, component: impl Component<E> + 'static) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Box::new(component));
        id
    }

    /// Schedules `event` for `dst` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a registered component.
    pub fn emit(&mut self, time: Seconds, dst: ComponentId, event: E) {
        assert!(
            dst.index() < self.components.len(),
            "unknown component {dst:?}"
        );
        self.kernel.schedule(time, u64::from(dst.0), (dst, event));
    }

    /// Schedules `event` for `dst` at absolute `time` with an explicit
    /// tie-break `key` (see [`Ctx::emit_keyed`]).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a registered component.
    pub fn emit_keyed(&mut self, time: Seconds, dst: ComponentId, key: u64, event: E) {
        assert!(
            dst.index() < self.components.len(),
            "unknown component {dst:?}"
        );
        self.kernel.schedule(time, key, (dst, event));
    }

    /// Delivers the next event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((now, (dst, event))) = self.kernel.pop() else {
            return false;
        };
        let mut ctx = Ctx {
            now,
            self_id: dst,
            rng: &mut self.kernel.rng,
            emitted: &mut self.emitted,
        };
        self.components[dst.index()].on_event(event, &mut ctx);
        for (time, to, key, ev) in self.emitted.drain(..) {
            assert!(
                to.index() < self.components.len(),
                "unknown component {to:?}"
            );
            let key = key.unwrap_or(u64::from(to.0));
            self.kernel.schedule(time, key, (to, ev));
        }
        true
    }

    /// Runs until no events remain; returns the number processed.
    pub fn run(&mut self) -> u64 {
        let before = self.kernel.stats().events_processed;
        while self.step() {}
        self.kernel.stats().events_processed - before
    }

    /// The current simulation time.
    pub fn now(&self) -> Seconds {
        self.kernel.now()
    }

    /// The underlying kernel's counters.
    pub fn stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// Drains the simulation back to an empty `t = 0` state with the
    /// given seed: all components are dropped, pending events are
    /// discarded, and the kernel is [`Kernel::reset`] — but the event
    /// heap, component vector, and emission buffer keep their
    /// allocations. Re-registering the same components and emitting the
    /// same events afterwards replays bit-identically to a fresh
    /// `Simulation::with_seed(seed)`.
    pub fn reset(&mut self, seed: u64) {
        self.kernel.reset(seed);
        self.components.clear();
        self.emitted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_key_seq_order() {
        let mut k: Kernel<u32> = Kernel::new();
        let t = Seconds::from_micros(5.0);
        k.schedule(t, 2, 102);
        k.schedule(t, 1, 101);
        k.schedule(Seconds::from_micros(1.0), 9, 9);
        k.schedule(t, 1, 201); // same (time, key): scheduling order wins
        let order: Vec<u32> = std::iter::from_fn(|| k.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![9, 101, 201, 102]);
    }

    #[test]
    fn clock_is_monotone_and_stats_count() {
        let mut k: Kernel<()> = Kernel::new();
        for i in 0..10u64 {
            k.schedule(Seconds::from_micros(10.0 - i as f64), 0, ());
        }
        let mut prev = Seconds::ZERO;
        while let Some((t, ())) = k.pop() {
            assert!(t >= prev);
            prev = t;
        }
        let s = k.stats();
        assert_eq!(s.events_scheduled, 10);
        assert_eq!(s.events_processed, 10);
        assert_eq!(s.max_queue_depth, 10);
    }

    #[test]
    fn rng_is_deterministic_and_forkable() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            let _ = b.next_f64();
        }
        let mut f1 = SimRng::new(42).fork(3);
        let mut f2 = SimRng::new(42).fork(3);
        let mut f3 = SimRng::new(42).fork(4);
        assert_eq!(f1.next_u64(), f2.next_u64());
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    struct PingPong {
        peer: Option<ComponentId>,
        received: u32,
    }

    impl Component<u32> for PingPong {
        fn on_event(&mut self, ttl: u32, ctx: &mut Ctx<'_, u32>) {
            self.received += 1;
            if ttl > 0 {
                let to = self.peer.expect("peer wired");
                ctx.emit(to, Seconds::from_micros(1.0), ttl - 1);
            }
        }
    }

    #[test]
    fn components_exchange_events() {
        let mut sim: Simulation<u32> = Simulation::with_seed(1);
        let a = sim.add_component(PingPong {
            peer: None,
            received: 0,
        });
        let b = sim.add_component(PingPong {
            peer: Some(a),
            received: 0,
        });
        // b forwards the countdown to a, which stops at ttl 0.
        sim.emit(Seconds::ZERO, b, 1);
        let processed = sim.run();
        assert_eq!(processed, 2); // b at t=0, a at t=1µs
        assert_eq!(sim.now(), Seconds::from_micros(1.0));
        let _ = (a, b);
    }
}
