//! Sweep-wide preparation cache.
//!
//! Every figure of the paper is a sweep whose adjacent points share the
//! same topology, schedule structure, embedding, and fabric, differing
//! only in payload size or a timing knob — yet each `simulate*` call
//! historically re-resolved every route ([`lower_schedule`]), re-ran the
//! debug analyzer gate, and re-expanded port paths from scratch. This
//! module caches that preparation work: a `SimPrepared` artifact
//! (resolved routes with timing coefficients, the analyzer-gate verdict,
//! and the port-path expansion per fabric) keyed by the *structure* of
//! `(topology, schedule, embedding)` — everything the lowering and the
//! gate read **except** payload sizes and [`LinkTiming`], which are
//! rescaled per point via [`PreparedLowering::lower`].
//!
//! # Determinism and equivalence contract
//!
//! * The cache is **thread-local**: each sweep worker builds its own,
//!   so worker count and work-stealing order can never change what any
//!   point computes. The sweep executor merges only the hit/miss
//!   *counters* back to the caller (numbers never flow through them).
//! * A cache hit is bit-identical to a cold run: the key covers every
//!   input the lowering and the structural gate read, and
//!   [`PreparedLowering`] replays the float operations of
//!   [`lower_schedule`] in the same order. The golden-figure suites run
//!   with the cache enabled; `--no-prep-cache` must reproduce them.
//! * The internal `HashMap` is keyed by fingerprint and only ever
//!   probed by key — nothing iterates it, so its nondeterministic
//!   iteration order cannot leak into results (audited in
//!   `scripts/determinism_allowlist.txt`).
//!
//! The global [`set_prep_cache_enabled`] switch (the CLI's
//! `--no-prep-cache`) short-circuits every lookup to the cold path.

use crate::fabric::FabricSpec;
use ccube_collectives::{
    lower_schedule, EdgeKey, Embedding, LinkTiming, LowerError, PreparedLowering, Rank, Schedule,
    TransferSpec,
};
use ccube_topology::{FabricGraph, PortId, Topology};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};

/// Global cache switch (default on). Per-run results are identical
/// either way; this exists as the `--no-prep-cache` escape hatch and for
/// cold-vs-warm benchmarking.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the preparation cache process-wide.
///
/// Results are bit-identical either way — disabling only forces every
/// `simulate*` call back onto the cold `lower_schedule` + analyzer-gate
/// path (the CLI exposes this as `--no-prep-cache`).
pub fn set_prep_cache_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the preparation cache is currently enabled.
pub fn prep_cache_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Hit/miss counters of the preparation cache.
///
/// `hits` counts `simulate*` preparations served from a cached
/// `SimPrepared`; `misses` counts cold preparations (route resolution
/// plus, in debug builds, the analyzer gate). After a parallel sweep the
/// workers' counters are merged into the calling thread's, so the totals
/// are worker-count-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepCacheStats {
    /// Preparations served from the cache.
    pub hits: u64,
    /// Cold preparations (first sight of a structure).
    pub misses: u64,
}

impl PrepCacheStats {
    fn absorb(&mut self, other: PrepCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// The cached preparation artifact for one `(topology, schedule
/// structure, embedding)` key: the resolved lowering, the most recent
/// payload/timing rescale, and the port-path expansion per fabric.
///
/// The analyzer-gate verdict is implicit: in debug builds the gate runs
/// on every miss and panics on a dirty input, so an entry's existence
/// *is* the cached "gate clean" verdict.
struct SimPrepared {
    lowering: Rc<PreparedLowering>,
    /// Most recent `(payload+timing fingerprint, lowered specs)` —
    /// points that repeat exactly (policy-search fitness calls, repeated
    /// figure evaluations) share the specs with zero re-lowering.
    specs: Option<(u128, Rc<Vec<TransferSpec>>)>,
    /// Most recent `(fabric fingerprint, port-path expansion)`.
    ports: Option<(u128, Rc<Vec<Vec<PortId>>>)>,
}

#[derive(Default)]
struct PrepCache {
    map: HashMap<u128, SimPrepared>,
    /// Fabric graphs keyed by `(topology, fabric spec)` — independent of
    /// any schedule, so switch-fabric sweeps rebuild the port graph once
    /// per topology instead of once per point.
    graphs: HashMap<u128, Rc<FabricGraph>>,
    stats: PrepCacheStats,
}

thread_local! {
    static CACHE: RefCell<PrepCache> = RefCell::new(PrepCache::default());
}

/// The calling thread's cache counters (cumulative since the last
/// [`reset_prep_cache`]). After a parallel sweep the workers' counters
/// have been merged in, so this is the whole sweep's tally.
pub fn prep_cache_stats() -> PrepCacheStats {
    CACHE.with(|c| c.borrow().stats)
}

/// Drops every cached entry and zeroes the counters on the calling
/// thread. Benchmarks use this to measure cold starts.
pub fn reset_prep_cache() {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.map.clear();
        c.graphs.clear();
        c.stats = PrepCacheStats::default();
    });
}

/// Number of prepared structures currently cached on this thread.
pub fn prep_cache_len() -> usize {
    CACHE.with(|c| c.borrow().map.len())
}

/// Merges a finished sweep worker's counters into the calling thread's
/// tally (used by the sweep executor; entries themselves stay
/// worker-local and die with the worker).
pub(crate) fn absorb_stats(stats: PrepCacheStats) {
    if stats != PrepCacheStats::default() {
        CACHE.with(|c| c.borrow_mut().stats.absorb(stats));
    }
}

/// Snapshots and zeroes the calling thread's counters (a sweep worker
/// calls this at the end of its run so the executor can
/// [`absorb_stats`] them on the coordinating thread).
pub(crate) fn take_stats() -> PrepCacheStats {
    CACHE.with(|c| std::mem::take(&mut c.borrow_mut().stats))
}

// ---------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------

/// A 128-bit streaming fingerprint (two independent multiply-xor
/// accumulators with a splitmix finisher). Not cryptographic — it keys a
/// cache whose end-to-end outputs are golden-tested, and 128 bits make
/// accidental collisions astronomically unlikely (~10⁻³⁰ for the
/// thousands of distinct structures a run sees).
struct Fp {
    a: u64,
    b: u64,
}

impl Fp {
    fn new() -> Self {
        Fp {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn push(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ v.rotate_left(32)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    }

    fn finish(self) -> u128 {
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (u128::from(mix(self.a)) << 64) | u128::from(mix(self.b))
    }
}

/// Everything of the topology the lowering and the gate read: GPU
/// count and, per channel, endpoints, latency, and bandwidth.
fn fp_topology(h: &mut Fp, topo: &Topology) {
    h.push(topo.num_gpus() as u64);
    h.push(topo.channels().len() as u64);
    for ch in topo.channels() {
        h.push(u64::from(ch.src().0));
        h.push(u64::from(ch.dst().0));
        h.push(ch.latency().as_secs_f64().to_bits());
        h.push(ch.bandwidth().as_bytes_per_sec().to_bits());
    }
}

/// The schedule's *structure*: every transfer field the lowering or the
/// structural gate reads, **except** payload bytes (the rescalable
/// dimension — see [`fp_payload_timing`]).
fn fp_schedule_structure(h: &mut Fp, schedule: &Schedule) {
    h.push(schedule.num_ranks() as u64);
    h.push(schedule.chunking().num_chunks() as u64);
    h.push(schedule.transfers().len() as u64);
    for t in schedule.transfers() {
        h.push(u64::from(t.src.0));
        h.push(u64::from(t.dst.0));
        h.push(u64::from(t.chunk.0));
        h.push(u64::from(t.tree.0));
        h.push(t.deps.len() as u64);
        for d in &t.deps {
            h.push(u64::from(d.0));
        }
    }
}

/// The embedding as the schedule actually uses it: the rank→GPU map and
/// each transfer's route (endpoints, channels, via), visited in transfer
/// order — deterministic, and it never touches the embedding's internal
/// `HashMap` iteration order.
fn fp_embedding(h: &mut Fp, schedule: &Schedule, embedding: &Embedding) {
    for r in 0..schedule.num_ranks() {
        h.push(u64::from(embedding.gpu_of(Rank(r as u32)).0));
    }
    for t in schedule.transfers() {
        let key = EdgeKey {
            src: t.src,
            dst: t.dst,
            tree: t.tree,
        };
        match embedding.route(&key) {
            None => h.push(u64::MAX),
            Some(route) => {
                h.push(u64::from(route.src().0));
                h.push(u64::from(route.dst().0));
                h.push(route.via().map_or(u64::MAX - 1, |g| u64::from(g.0)));
                h.push(route.channels().len() as u64);
                for c in route.channels() {
                    h.push(u64::from(c.0));
                }
            }
        }
    }
}

fn structural_key(topo: &Topology, schedule: &Schedule, embedding: &Embedding) -> u128 {
    let mut h = Fp::new();
    fp_topology(&mut h, topo);
    fp_schedule_structure(&mut h, schedule);
    fp_embedding(&mut h, schedule, embedding);
    h.finish()
}

/// The per-point rescale dimensions: payload bytes per transfer plus the
/// [`LinkTiming`] knobs.
fn fp_payload_timing(schedule: &Schedule, timing: &LinkTiming) -> u128 {
    let mut h = Fp::new();
    h.push(timing.bandwidth_scale.to_bits());
    h.push(timing.forwarding_latency.as_secs_f64().to_bits());
    for t in schedule.transfers() {
        h.push(t.bytes.as_u64());
    }
    h.finish()
}

fn fp_fabric(spec: &FabricSpec) -> u128 {
    let mut h = Fp::new();
    h.push(spec.radix.map_or(u64::MAX, |r| r as u64));
    h.push(spec.oversubscription.to_bits());
    h.push(spec.uplink_latency.as_secs_f64().to_bits());
    h.push(match spec.hop_mode {
        crate::fabric::HopMode::CutThrough => 0,
        crate::fabric::HopMode::StoreForward => 1,
    });
    // The spine shape changes both the derived graph and the cached port
    // paths; the policy changes neither but keeps distinct sweep points
    // from sharing a fingerprint in stats.
    h.push(spec.spines as u64);
    h.push(spec.uplinks as u64);
    h.push(match spec.uplink_policy {
        crate::fabric::UplinkPolicy::Hash => 0,
        crate::fabric::UplinkPolicy::LeastQueued => 1,
        crate::fabric::UplinkPolicy::Failover => 2,
    });
    h.finish()
}

// ---------------------------------------------------------------------
// Engine entry points
// ---------------------------------------------------------------------

/// A prepared lowering handed to an engine: the specs plus the cache key
/// they were found under (None when the cache is disabled), so follow-up
/// lookups (port paths) skip re-fingerprinting.
pub(crate) struct Prep {
    key: Option<u128>,
    /// Lowered transfer specs for the requested `(payload, timing)`
    /// point. Shared: engines that must mutate specs clone the `Vec`.
    pub specs: Rc<Vec<TransferSpec>>,
}

/// Runs the structural analyzer gate (debug builds, cold path only) and
/// lowers `schedule`, through the preparation cache when enabled.
///
/// Cold path semantics are exactly the historical engines': the gate
/// debug-panics on a dirty schedule/embedding, then [`lower_schedule`]
/// resolves the routes. A cache hit skips both — the entry's existence
/// proves the gate passed, and [`PreparedLowering::lower`] rescales the
/// cached routes bit-identically.
///
/// # Errors
///
/// The errors of [`lower_schedule`] (missing route, unknown channel).
pub(crate) fn gate_and_lower(
    topo: &Topology,
    schedule: &Schedule,
    embedding: &Embedding,
    timing: &LinkTiming,
) -> Result<Prep, LowerError> {
    if !prep_cache_enabled() {
        run_gate(topo, schedule, embedding);
        return Ok(Prep {
            key: None,
            specs: Rc::new(lower_schedule(schedule, embedding, topo, timing)?),
        });
    }
    let key = structural_key(topo, schedule, embedding);
    let point_fp = fp_payload_timing(schedule, timing);
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.map.contains_key(&key) {
            c.stats.hits += 1;
            let entry = c.map.get_mut(&key).expect("entry present");
            if let Some((fp, specs)) = &entry.specs {
                if *fp == point_fp {
                    return Ok(Prep {
                        key: Some(key),
                        specs: Rc::clone(specs),
                    });
                }
            }
            let specs = Rc::new(entry.lowering.lower(schedule, timing));
            entry.specs = Some((point_fp, Rc::clone(&specs)));
            return Ok(Prep {
                key: Some(key),
                specs,
            });
        }
        // Cold path: gate (debug), resolve routes, insert.
        run_gate(topo, schedule, embedding);
        let lowering = Rc::new(PreparedLowering::new(schedule, embedding, topo)?);
        let specs = Rc::new(lowering.lower(schedule, timing));
        c.stats.misses += 1;
        c.map.insert(
            key,
            SimPrepared {
                lowering,
                specs: Some((point_fp, Rc::clone(&specs))),
                ports: None,
            },
        );
        Ok(Prep {
            key: Some(key),
            specs,
        })
    })
}

/// The structural gate every engine debug-asserts on (no-op in release
/// builds, exactly as before the cache existed).
fn run_gate(topo: &Topology, schedule: &Schedule, embedding: &Embedding) {
    let _ = (topo, schedule, embedding);
    #[cfg(debug_assertions)]
    {
        let lint = ccube_collectives::analyze::gate(schedule, embedding, topo);
        debug_assert!(
            lint.is_clean(),
            "schedule/embedding failed the static gate:\n{lint}"
        );
    }
}

/// The port-path expansion of `prep`'s specs over `graph`, cached per
/// fabric spec when the cache holds `prep`'s entry.
pub(crate) fn ports_for(
    prep: &Prep,
    spec: &FabricSpec,
    graph: &FabricGraph,
) -> Rc<Vec<Vec<PortId>>> {
    let Some(key) = prep.key else {
        return Rc::new(ccube_collectives::lower_to_ports(&prep.specs, graph));
    };
    let fabric_fp = fp_fabric(spec);
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        let Some(entry) = c.map.get_mut(&key) else {
            return Rc::new(ccube_collectives::lower_to_ports(&prep.specs, graph));
        };
        if let Some((fp, ports)) = &entry.ports {
            if *fp == fabric_fp {
                return Rc::clone(ports);
            }
        }
        let ports = Rc::new(ccube_collectives::lower_to_ports(&prep.specs, graph));
        entry.ports = Some((fabric_fp, Rc::clone(&ports)));
        ports
    })
}

/// The fabric graph for `(topo, spec)`, cached per topology so
/// switch-fabric sweeps build the port graph once instead of per point.
pub(crate) fn fabric_graph_for(topo: &Topology, spec: &FabricSpec) -> Rc<FabricGraph> {
    let build = || Rc::new(FabricGraph::from_topology(topo, &spec.fabric_config()));
    if !prep_cache_enabled() {
        return build();
    }
    let mut h = Fp::new();
    fp_topology(&mut h, topo);
    let key = h.finish() ^ fp_fabric(spec);
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some(g) = c.graphs.get(&key) {
            return Rc::clone(g);
        }
        let g = build();
        c.graphs.insert(key, Rc::clone(&g));
        g
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::{ring_allreduce, Embedding};
    use ccube_topology::{dgx1, ByteSize};

    #[test]
    fn fingerprint_ignores_payload_but_not_structure() {
        let topo = dgx1();
        let a = ring_allreduce(8, ByteSize::mib(1));
        let b = ring_allreduce(8, ByteSize::mib(64));
        let c = ring_allreduce(8, ByteSize::mib(1));
        let ea = Embedding::identity(&topo, &a).unwrap();
        assert_eq!(
            structural_key(&topo, &a, &ea),
            structural_key(&topo, &b, &ea),
            "payload size must not change the structural key"
        );
        assert_eq!(
            structural_key(&topo, &a, &ea),
            structural_key(&topo, &c, &ea)
        );
        let tree = ccube_collectives::BinaryTree::inorder(8).unwrap();
        let different = ccube_collectives::tree_allreduce(
            std::slice::from_ref(&tree),
            &ccube_collectives::Chunking::even(ByteSize::mib(1), 4),
            ccube_collectives::Overlap::None,
        );
        let ed = Embedding::identity(&topo, &different).unwrap();
        assert_ne!(
            structural_key(&topo, &a, &ea),
            structural_key(&topo, &different, &ed),
            "a different transfer DAG is a different structure"
        );
        assert_ne!(
            fp_payload_timing(&a, &LinkTiming::default()),
            fp_payload_timing(&b, &LinkTiming::default())
        );
    }

    #[test]
    fn cache_toggle_round_trips() {
        // Only exercises the switch itself; the equivalence suites flip
        // it around real runs in their own (process-isolated) binary.
        let was = prep_cache_enabled();
        set_prep_cache_enabled(was);
        assert_eq!(prep_cache_enabled(), was);
    }
}
