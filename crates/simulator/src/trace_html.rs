//! Self-contained HTML trace viewer — single runs and side-by-side
//! diffs.
//!
//! The Chrome `trace_event` export ([`SimTrace::to_chrome_json`])
//! requires an external UI; this module renders the same structured
//! trace into **one HTML file with zero external assets**: an embedded
//! JSON payload plus a small hand-written canvas renderer, vendored
//! inline from `trace_html/viewer.html`. Open the file in any browser —
//! per-channel (or per-port, under the switch fabric) Gantt lanes,
//! per-GPU compute lanes, fault windows shaded behind the traffic they
//! perturb, instant marks for queue waits / re-routes / failovers /
//! detours, hover tooltips, wheel zoom + drag pan, and a
//! [`utilization_bins`]-backed utilization strip.
//!
//! [`diff_to_html`] renders **two** runs in locked-scroll side-by-side
//! panes sharing one time axis, with the [`TraceDiff`](crate::TraceDiff)'s first
//! divergence marked in both panes and the per-kind record deltas
//! tabulated in the header — the visual counterpart of `ccube trace
//! --diff`.
//!
//! # The embedded payload is a stability contract
//!
//! The JSON inside `<script type="application/json"
//! id="ccube-trace-data">` is the **stable trace schema** documented in
//! DESIGN.md §15 and pinned byte-for-byte by
//! `tests/trace_html_golden.rs`: external tooling may parse it out of a
//! viewer file (everything between the opening tag and the next
//! `</script>`). The surrounding markup and script are explicitly *not*
//! part of the contract — cosmetic template changes never churn the
//! goldens.
//!
//! Top-level payload object:
//!
//! | key    | value |
//! |--------|-------|
//! | `schema` | payload schema version, currently `1` |
//! | `mode`   | `"single"` or `"diff"` |
//! | `left`   | a *scene* (below) |
//! | `right`  | second scene, diff mode only |
//! | `diff`   | [`TraceDiff::to_json`](crate::TraceDiff::to_json) object, diff mode only |
//!
//! Each scene (one run, produced by [`scene_json`]):
//!
//! | key | value |
//! |-----|-------|
//! | `title`      | run label (CLI seed / file name / study cell) |
//! | `lane_kind`  | `"channel"` or `"port"` — what the grant lanes are |
//! | `horizon_us` | last record timestamp (µs, 3 decimals) |
//! | `dropped`    | records evicted by the trace ring buffer |
//! | `lanes`      | `[{group, id, label}]` — `group` ∈ lane_kind \| `"gpu"` \| `"fault"`; channel/port lanes first (ascending id), then GPUs, then faults |
//! | `spans`      | `[{lane, name, start_us, end_us}]` — closed occupancy spans; `lane` indexes `lanes`; names are `t<id>` / `c<id>` / `fault<id>` |
//! | `marks`      | `[{kind, name, t_us, lane}]` — instants; `kind` ∈ `"wait"` \| `"reroute"` \| `"failover"` \| `"detour"`; `lane` is a lanes index or `null` |
//! | `counts`     | per-record-kind counts (`to_csv` kind names, name order) |
//! | `util`       | 64 bins of mean grant-lane utilization over the horizon (6 decimals), `[]` when no grant completed |
//!
//! Span pairing follows the Chrome exporter exactly: a grant-lane span
//! opens at [`TraceRecord::ChannelGrant`] and closes at the matching
//! [`TraceRecord::TransferEnd`]; compute spans pair start/end records;
//! a fault window still open at the end of the trace (a permanent
//! link-down) closes at the horizon.
//!
//! # Examples
//!
//! ```
//! use ccube_collectives::{ring_allreduce, Embedding};
//! use ccube_sim::{simulate, SimOptions};
//! use ccube_sim::trace_html::{to_html, LaneLabels};
//! use ccube_topology::{dgx1, ByteSize};
//!
//! let topo = dgx1();
//! let s = ring_allreduce(8, ByteSize::mib(1));
//! let e = Embedding::identity(&topo, &s).unwrap();
//! let report = simulate(&topo, &s, &e, &SimOptions::default()).unwrap();
//! let html = to_html(report.trace(), &LaneLabels::channels("ring on dgx1"));
//! assert!(html.contains("id=\"ccube-trace-data\""));
//! assert!(!html.contains("href=\"http")); // self-contained
//! ```

use crate::fabric::NetworkModel;
use crate::trace::{diff_csv, json_escape, utilization_bins, BusyInterval, SimTrace, TraceRecord};
use ccube_topology::{FabricGraph, Seconds, Topology};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The vendored single-file viewer template. `__CCUBE_DATA__` is
/// replaced by the payload, `__CCUBE_TITLE__` by the page title.
const TEMPLATE: &str = include_str!("trace_html/viewer.html");

/// Number of utilization bins a scene embeds — matches the Perfetto
/// counter track of [`SimTrace::to_chrome_json`].
const UTIL_BINS: usize = 64;

/// How a scene labels its lanes: the grant-lane kind (`"channel"` for
/// the channel engines, `"port"` for the switch fabric) plus optional
/// per-lane names — e.g. the [`FabricGraph`] port labels (`sw0.up1`), so
/// the viewer shows fabric structure instead of bare indices.
#[derive(Debug, Clone)]
pub struct LaneLabels {
    title: String,
    lane_kind: &'static str,
    names: BTreeMap<u32, String>,
}

impl LaneLabels {
    /// Channel-approximation lanes: `ch <n>`.
    pub fn channels(title: impl Into<String>) -> Self {
        LaneLabels {
            title: title.into(),
            lane_kind: "channel",
            names: BTreeMap::new(),
        }
    }

    /// Switch-fabric lanes named by the graph's stable port labels
    /// (`sw0.inc3`, `sw2.up0`, …); grant records of the fabric engines
    /// carry port indices, which are exactly [`FabricGraph`] port ids.
    pub fn ports(title: impl Into<String>, graph: &FabricGraph) -> Self {
        LaneLabels {
            title: title.into(),
            lane_kind: "port",
            names: graph
                .ports()
                .iter()
                .map(|p| (p.id().0, p.label()))
                .collect(),
        }
    }

    /// Labels appropriate for a run of `network` on `topo`:
    /// [`LaneLabels::channels`] under the approximation,
    /// [`LaneLabels::ports`] of the derived fabric graph under the
    /// switch fabric.
    pub fn for_network(title: impl Into<String>, topo: &Topology, network: &NetworkModel) -> Self {
        match network {
            NetworkModel::ChannelApprox => LaneLabels::channels(title),
            NetworkModel::SwitchFabric(spec) => LaneLabels::ports(
                title,
                &FabricGraph::from_topology(topo, &spec.fabric_config()),
            ),
        }
    }

    /// The run title shown in the viewer header.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn lane_label(&self, id: u32) -> String {
        match self.names.get(&id) {
            Some(name) => name.clone(),
            None => format!("{} {}", self.lane_kind, id),
        }
    }
}

/// One lane of the scene, keyed for stable ordering: grant lanes first
/// (group 0), then GPUs (1), then faults (2), ascending id within each.
type LaneKey = (u8, u32);

/// Serializes one run into the viewer's *scene* JSON object — the
/// byte-stable payload half of the module-level schema contract.
pub fn scene_json(trace: &SimTrace, labels: &LaneLabels) -> String {
    let horizon = trace
        .records()
        .map(|r| r.at())
        .fold(Seconds::ZERO, Seconds::max);

    // Pass 1: the lane population, in contract order.
    let mut lanes: BTreeMap<LaneKey, String> = BTreeMap::new();
    for r in trace.records() {
        match *r {
            TraceRecord::ChannelGrant { channel, .. } => {
                lanes
                    .entry((0, channel.0))
                    .or_insert_with(|| labels.lane_label(channel.0));
            }
            TraceRecord::ComputeStart { gpu, .. }
            | TraceRecord::ComputeEnd { gpu, .. }
            | TraceRecord::DetourHop { via: gpu, .. } => {
                lanes
                    .entry((1, gpu.0))
                    .or_insert_with(|| format!("gpu {}", gpu.0));
            }
            TraceRecord::FaultStart { fault, .. } | TraceRecord::FaultEnd { fault, .. } => {
                lanes
                    .entry((2, fault))
                    .or_insert_with(|| format!("fault {fault}"));
            }
            _ => {}
        }
    }
    let lane_index: BTreeMap<LaneKey, usize> =
        lanes.keys().enumerate().map(|(i, &k)| (k, i)).collect();

    // Pass 2: spans and marks, pairing open/close records exactly like
    // the Chrome exporter.
    let mut spans: Vec<(usize, String, Seconds, Seconds)> = Vec::new();
    let mut marks: Vec<(&str, String, Seconds, Option<usize>)> = Vec::new();
    let mut open_grants: BTreeMap<u32, Vec<(u32, Seconds)>> = BTreeMap::new();
    let mut open_compute: BTreeMap<u32, (u32, Seconds)> = BTreeMap::new();
    let mut open_faults: BTreeMap<u32, Seconds> = BTreeMap::new();
    let mut lane_busy: BTreeMap<u32, Vec<BusyInterval>> = BTreeMap::new();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for r in trace.records() {
        match *r {
            TraceRecord::TransferStart { .. } => {
                *counts.entry("transfer_start").or_default() += 1;
            }
            TraceRecord::ChannelGrant { channel, id, at } => {
                *counts.entry("channel_grant").or_default() += 1;
                open_grants.entry(id.0).or_default().push((channel.0, at));
            }
            TraceRecord::TransferEnd { id, at } => {
                *counts.entry("transfer_end").or_default() += 1;
                for (ch, start) in open_grants.remove(&id.0).unwrap_or_default() {
                    spans.push((lane_index[&(0, ch)], format!("t{}", id.0), start, at));
                    lane_busy
                        .entry(ch)
                        .or_default()
                        .push(BusyInterval { start, end: at });
                }
            }
            TraceRecord::QueueWait { id, granted, .. } => {
                *counts.entry("queue_wait").or_default() += 1;
                marks.push(("wait", format!("t{}", id.0), granted, None));
            }
            TraceRecord::ComputeStart { id, gpu, at } => {
                *counts.entry("compute_start").or_default() += 1;
                open_compute.insert(id, (gpu.0, at));
            }
            TraceRecord::ComputeEnd { id, at, .. } => {
                *counts.entry("compute_end").or_default() += 1;
                if let Some((gpu, start)) = open_compute.remove(&id) {
                    spans.push((lane_index[&(1, gpu)], format!("c{id}"), start, at));
                }
            }
            TraceRecord::DetourHop { id, via, at } => {
                *counts.entry("detour_hop").or_default() += 1;
                marks.push((
                    "detour",
                    format!("t{}", id.0),
                    at,
                    Some(lane_index[&(1, via.0)]),
                ));
            }
            TraceRecord::FaultStart { fault, at } => {
                *counts.entry("fault_start").or_default() += 1;
                open_faults.insert(fault, at);
            }
            TraceRecord::FaultEnd { fault, at } => {
                *counts.entry("fault_end").or_default() += 1;
                if let Some(start) = open_faults.remove(&fault) {
                    spans.push((lane_index[&(2, fault)], format!("fault{fault}"), start, at));
                }
            }
            TraceRecord::Reroute { id, at } => {
                *counts.entry("reroute").or_default() += 1;
                marks.push(("reroute", format!("t{}", id.0), at, None));
            }
            TraceRecord::Failover { id, at, .. } => {
                *counts.entry("failover").or_default() += 1;
                marks.push(("failover", format!("t{}", id.0), at, None));
            }
        }
    }
    // A fault still active at the end of the trace closes at the
    // horizon, like the Chrome export's permanent-link-down rule.
    for (fault, start) in open_faults {
        spans.push((
            lane_index[&(2, fault)],
            format!("fault{fault}"),
            start,
            horizon,
        ));
    }

    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"title\":\"{}\",\"lane_kind\":\"{}\",\"horizon_us\":{:.3},\"dropped\":{},",
        json_escape(&labels.title),
        labels.lane_kind,
        horizon.as_micros(),
        trace.dropped()
    );
    out.push_str("\"lanes\":[");
    for (i, (&(group, id), label)) in lanes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let group = match group {
            0 => labels.lane_kind,
            1 => "gpu",
            _ => "fault",
        };
        let _ = write!(
            out,
            "{{\"group\":\"{group}\",\"id\":{id},\"label\":\"{}\"}}",
            json_escape(label)
        );
    }
    out.push_str("],\"spans\":[");
    for (i, (lane, name, start, end)) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lane\":{lane},\"name\":\"{name}\",\"start_us\":{:.3},\"end_us\":{:.3}}}",
            start.as_micros(),
            end.as_micros()
        );
    }
    out.push_str("],\"marks\":[");
    for (i, (kind, name, at, lane)) in marks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let lane = match lane {
            Some(l) => l.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"kind\":\"{kind}\",\"name\":\"{name}\",\"t_us\":{:.3},\"lane\":{lane}}}",
            at.as_micros()
        );
    }
    out.push_str("],\"counts\":{");
    for (i, (kind, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{kind}\":{n}");
    }
    out.push_str("},\"util\":[");
    if !lane_busy.is_empty() && !horizon.is_zero() {
        let mut mean = vec![0.0f64; UTIL_BINS];
        for intervals in lane_busy.values() {
            for (m, u) in mean
                .iter_mut()
                .zip(utilization_bins(intervals, horizon, UTIL_BINS))
            {
                *m += u;
            }
        }
        let n = lane_busy.len() as f64;
        for (b, m) in mean.iter().enumerate() {
            if b > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:.6}", m / n);
        }
    }
    out.push_str("]}");
    out
}

/// Renders one run as a self-contained HTML viewer.
pub fn to_html(trace: &SimTrace, labels: &LaneLabels) -> String {
    let payload = format!(
        "{{\"schema\":1,\"mode\":\"single\",\"left\":{}}}",
        scene_json(trace, labels)
    );
    render(&payload, labels.title())
}

/// Renders two runs as a side-by-side diff viewer: locked zoom/pan, the
/// [`TraceDiff`](crate::TraceDiff) summary (computed here via
/// [`diff_csv`] over the traces' CSV renderings, exactly as `ccube trace
/// --diff` computes it) in the header, and the first-divergence instant
/// marked in both panes.
pub fn diff_to_html(left: (&SimTrace, &LaneLabels), right: (&SimTrace, &LaneLabels)) -> String {
    let diff = diff_csv(&left.0.to_csv(), &right.0.to_csv());
    let payload = format!(
        "{{\"schema\":1,\"mode\":\"diff\",\"left\":{},\"right\":{},\"diff\":{}}}",
        scene_json(left.0, left.1),
        scene_json(right.0, right.1),
        diff.to_json()
    );
    render(
        &payload,
        &format!("{} vs {}", left.1.title(), right.1.title()),
    )
}

/// Extracts the embedded payload back out of a rendered viewer file —
/// the reader side of the schema contract (and what the golden test
/// pins). Returns `None` if `html` carries no payload tag.
pub fn extract_payload(html: &str) -> Option<&str> {
    let tag = "id=\"ccube-trace-data\">";
    let start = html.find(tag)? + tag.len();
    let end = html[start..].find("</script>")?;
    Some(&html[start..start + end])
}

fn render(payload: &str, title: &str) -> String {
    let title: String = title
        .chars()
        .map(|c| match c {
            '<' => '⟨',
            '>' => '⟩',
            '&' => '+',
            c => c,
        })
        .collect();
    TEMPLATE
        .replacen("__CCUBE_TITLE__", &title, 1)
        .replacen("__CCUBE_DATA__", payload, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_collectives::TransferId;
    use ccube_topology::{ChannelId, GpuId};

    fn sample_trace() -> SimTrace {
        let mut t = SimTrace::default();
        t.push(TraceRecord::FaultStart {
            fault: 0,
            at: Seconds::from_micros(1.0),
        });
        t.push(TraceRecord::ChannelGrant {
            channel: ChannelId(4),
            id: TransferId(2),
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::ComputeStart {
            id: 9,
            gpu: GpuId(3),
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::QueueWait {
            id: TransferId(2),
            enqueued: Seconds::from_micros(1.0),
            granted: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::TransferEnd {
            id: TransferId(2),
            at: Seconds::from_micros(5.0),
        });
        t.push(TraceRecord::ComputeEnd {
            id: 9,
            gpu: GpuId(3),
            at: Seconds::from_micros(6.0),
        });
        t
    }

    #[test]
    fn scene_pairs_spans_and_closes_open_faults_at_horizon() {
        let scene = scene_json(&sample_trace(), &LaneLabels::channels("test run"));
        // Grant at 2µs closes at the transfer end (5µs) on the ch-4 lane.
        assert!(scene.contains("{\"lane\":0,\"name\":\"t2\",\"start_us\":2.000,\"end_us\":5.000}"));
        // Compute slice on gpu 3.
        assert!(scene.contains("{\"lane\":1,\"name\":\"c9\",\"start_us\":2.000,\"end_us\":6.000}"));
        // The never-ended fault closes at the 6µs horizon.
        assert!(
            scene.contains("{\"lane\":2,\"name\":\"fault0\",\"start_us\":1.000,\"end_us\":6.000}")
        );
        // Lanes in contract order: channels, gpus, faults.
        assert!(scene.contains(
            "\"lanes\":[{\"group\":\"channel\",\"id\":4,\"label\":\"channel 4\"},\
             {\"group\":\"gpu\",\"id\":3,\"label\":\"gpu 3\"},\
             {\"group\":\"fault\",\"id\":0,\"label\":\"fault 0\"}]"
        ));
        // The queue wait is a lane-less mark; counts cover every kind.
        assert!(scene.contains("{\"kind\":\"wait\",\"name\":\"t2\",\"t_us\":2.000,\"lane\":null}"));
        assert!(scene.contains("\"queue_wait\":1"));
        assert!(scene.contains("\"horizon_us\":6.000"));
        // 64 utilization bins present (the grant lane completed a span).
        assert!(scene.matches("0.").count() >= UTIL_BINS / 2);
    }

    #[test]
    fn html_is_self_contained_and_payload_round_trips() {
        let labels = LaneLabels::channels("solo");
        let html = to_html(&sample_trace(), &labels);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.trim_end().ends_with("</html>"));
        assert!(!html.contains("src=\"http") && !html.contains("href=\"http"));
        let payload = extract_payload(&html).expect("payload embedded");
        assert_eq!(
            payload,
            format!(
                "{{\"schema\":1,\"mode\":\"single\",\"left\":{}}}",
                scene_json(&sample_trace(), &labels)
            )
        );
    }

    #[test]
    fn diff_html_embeds_both_scenes_and_the_structured_diff() {
        let left = sample_trace();
        let mut right = sample_trace();
        right.push(TraceRecord::Reroute {
            id: TransferId(2),
            at: Seconds::from_micros(7.0),
        });
        let ll = LaneLabels::channels("left");
        let rl = LaneLabels::channels("right");
        let html = diff_to_html((&left, &ll), (&right, &rl));
        let payload = extract_payload(&html).expect("payload embedded");
        assert!(payload.starts_with("{\"schema\":1,\"mode\":\"diff\",\"left\":{"));
        assert!(payload.contains("\"diff\":{\"identical\":false"));
        assert!(payload.contains("\"reroute\":[0,1]"));
        // Identical traces produce an identical-diff payload.
        let same = diff_to_html((&left, &ll), (&left, &rl));
        assert!(extract_payload(&same)
            .unwrap()
            .contains("\"diff\":{\"identical\":true"));
    }

    #[test]
    fn port_labels_come_from_the_fabric_graph() {
        use crate::fabric::FabricSpec;
        let topo = ccube_topology::hierarchical(8);
        let spec = FabricSpec {
            radix: Some(4),
            uplinks: 2,
            spines: 2,
            ..FabricSpec::passthrough()
        };
        let labels = LaneLabels::for_network("fabric", &topo, &NetworkModel::SwitchFabric(spec));
        assert_eq!(labels.lane_kind, "port");
        // Slot-0 uplink of leaf sw0 keeps the graph's stable label.
        assert!(labels.names.values().any(|l| l.contains("up0")));
        let approx = LaneLabels::for_network("approx", &topo, &NetworkModel::ChannelApprox);
        assert_eq!(approx.lane_kind, "channel");
        assert!(approx.names.is_empty());
    }
}
