//! Discrete-event network simulator for C-Cube.
//!
//! This crate plays the role the real DGX-1 (and ASTRA-sim, for
//! scale-out) play in the paper "Logical/Physical Topology-Aware
//! Collective Communication in Deep Learning Training" (HPCA 2023): it
//! executes a logical [`Schedule`](ccube_collectives::Schedule) over a
//! physical [`Topology`](ccube_topology::Topology) through an
//! [`Embedding`](ccube_collectives::Embedding), with
//!
//! * **per-channel FIFO serialization** — each unidirectional channel
//!   carries one transfer at a time, in arrival order, so logical edges
//!   that share a physical channel (the conflict that breaks the naive
//!   overlapped double tree) contend exactly as on hardware;
//! * **wormhole timing** — a transfer occupies every channel on its route
//!   simultaneously for `Σα + bytes/bottleneck-bandwidth`;
//! * **detour accounting** — transfers routed through an intermediate GPU
//!   accumulate forwarding busy-time on that GPU, feeding the Fig. 15
//!   detour-overhead analysis;
//! * **dependency semantics identical to the unit-step verifier** — a
//!   transfer starts only after all of its schedule dependencies complete.
//!
//! The output [`SimReport`] exposes the quantities the paper measures:
//! AllReduce makespan (Fig. 12, 14a), per-chunk completion times at every
//! rank (the input to computation chaining), and the **gradient
//! turnaround time** (Fig. 14b).
//!
//! # Examples
//!
//! ```
//! use ccube_collectives::{ring_allreduce, Embedding};
//! use ccube_sim::{simulate, SimOptions};
//! use ccube_topology::{dgx1, ByteSize};
//!
//! let topo = dgx1();
//! let schedule = ring_allreduce(8, ByteSize::mib(64));
//! let emb = Embedding::identity(&topo, &schedule).unwrap();
//! let report = simulate(&topo, &schedule, &emb, &SimOptions::default()).unwrap();
//! assert!(report.makespan() > ccube_topology::Seconds::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod fabric;
pub mod faults;
pub mod kernel;
pub mod prep;
mod report;
pub mod resource;
pub mod severance;
pub mod sweep;
pub mod system;
mod timeline;
pub mod trace;
pub mod trace_html;

pub use engine::{simulate, Arbitration, SimOptions};
pub use error::SimError;
pub use fabric::{FabricSpec, HopMode, NetworkModel, UplinkPolicy};
pub use faults::{
    forever, simulate_faulted, simulate_system_faulted, FaultDriver, FaultEvent, FaultModel,
    FaultPlan, FaultSignal,
};
pub use kernel::{Component, ComponentId, Ctx, Kernel, KernelStats, SimRng, Simulation};
pub use prep::{
    prep_cache_enabled, prep_cache_len, prep_cache_stats, reset_prep_cache, set_prep_cache_enabled,
    PrepCacheStats,
};
pub use report::{SimReport, SimStats, TransferTiming};
pub use resource::{ChannelPool, ComputeStream};
pub use severance::analyze_severance;
pub use sweep::{available_threads, sweep, sweep_seeded, threads_from_args};
pub use system::{
    simulate_system, simulate_system_with_slowdowns, ComputeTask, ComputeTaskId, SystemJob,
    SystemReport,
};
pub use timeline::{render_channel_timeline, render_timeline, TimelineOptions};
pub use trace::{diff_csv, utilization_bins, BusyInterval, SimTrace, TraceDiff, TraceRecord};
pub use trace_html::{diff_to_html, extract_payload, scene_json, to_html, LaneLabels};

/// Convenient re-exports of the most commonly used items.
///
/// [`NetworkModel`] is deliberately absent: `ccube_dnn::prelude`
/// exports a type of the same name (the DNN being trained), and the
/// umbrella crate glob-imports both preludes. Name it explicitly as
/// `ccube_sim::NetworkModel`.
pub mod prelude {
    pub use crate::{
        simulate, Arbitration, FabricSpec, HopMode, SimError, SimOptions, SimReport, SimStats,
    };
}
