//! Deterministic parallel sweep execution.
//!
//! Every paper figure and every search the ROADMAP asks for (schedule
//! policy search, NVSwitch/torus sweeps) reduces to the same shape:
//! thousands of independent `simulate()` calls over a grid of
//! configurations. [`sweep`] is the one fan-out layer they all share: it
//! distributes the points of a sweep across `std::thread::scope` workers
//! and reassembles the results **by input index**, so the output is
//! bit-identical to a serial run regardless of the worker count or of
//! which worker happened to grab which point.
//!
//! # Determinism contract
//!
//! * **Pure points.** The per-point function must be a pure function of
//!   its `(index, config)` arguments (plus captured immutable state).
//!   Every engine in this workspace already satisfies this — `simulate`
//!   reads no wall clock and no ambient randomness.
//! * **Index-ordered reassembly.** Workers pull points from a shared
//!   atomic counter (dynamic load balancing), but results are written
//!   back into slot `index` of the output. The returned `Vec` is always
//!   in input order; scheduling jitter can never reorder it.
//! * **Forked RNG streams.** Points that need randomness must not share
//!   a sequential RNG (the draw interleaving would depend on execution
//!   order). [`sweep_seeded`] derives each point's generator as
//!   `SimRng::new(seed).fork(index)` — a pure function of `(seed,
//!   index)`, so parallelism never perturbs the draws.
//! * **No wall-clock reads.** Neither the executor nor the point
//!   functions may branch on time; the only clock in a sweep is each
//!   simulation's own virtual clock.
//!
//! # Examples
//!
//! ```
//! use ccube_sim::sweep::sweep;
//!
//! let points: Vec<u64> = (0..100).collect();
//! let serial = sweep(&points, 1, |_, &p| p * p);
//! let parallel = sweep(&points, 8, |_, &p| p * p);
//! assert_eq!(serial, parallel); // bit-identical, any worker count
//! ```

use crate::kernel::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count to something useful for `points`
/// points: at least 1, at most one worker per point.
fn effective_threads(threads: usize, points: usize) -> usize {
    threads.max(1).min(points.max(1))
}

/// Evaluates `f` at every point of `points` using up to `threads`
/// workers and returns the results **in input order**.
///
/// `f` receives the point's index and the point itself. With `threads
/// <= 1` (or a single point) the sweep runs inline on the calling
/// thread; the parallel path produces the exact same `Vec` — see the
/// module docs for the determinism contract.
///
/// # Panics
///
/// If `f` panics on any point, the panic is propagated to the caller
/// after all workers have stopped.
pub fn sweep<C, R, F>(points: &[C], threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    let threads = effective_threads(threads, points.len());
    if threads == 1 {
        return points.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }

    // Dynamic work-stealing off one atomic cursor: long points do not
    // convoy short ones behind a static partition. Each worker keeps
    // `(index, result)` pairs locally; indices make the merge exact.
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(points.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= points.len() {
                            break;
                        }
                        local.push((i, f(i, &points[i])));
                    }
                    // Each worker thread has its own preparation cache
                    // (results never flow through it — only hit/miss
                    // counters leave the thread, merged by the
                    // coordinator so `prep_cache_stats()` reflects the
                    // whole sweep).
                    (local, crate::prep::take_stats())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((local, stats)) => {
                    collected.extend(local);
                    crate::prep::absorb_stats(stats);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    // Reassemble by input index: the output order is the input order.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(points.len()).collect();
    for (i, r) in collected {
        debug_assert!(slots[i].is_none(), "point {i} computed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every point computed exactly once"))
        .collect()
}

/// [`sweep`] for point functions that draw randomness: each point
/// receives its own [`SimRng`] forked as `SimRng::new(seed).fork(index)`.
///
/// Forked streams are a pure function of `(seed, index)` — independent
/// of worker count, of execution order, and of the draws any other
/// point makes — so a seeded sweep is exactly as deterministic as an
/// unseeded one.
pub fn sweep_seeded<C, R, F>(points: &[C], seed: u64, threads: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C, SimRng) -> R + Sync,
{
    let root = SimRng::new(seed);
    sweep(points, threads, |i, c| f(i, c, root.fork(i as u64)))
}

/// Splits a `--threads N` flag out of CLI arguments.
///
/// Returns the remaining arguments and the requested worker count,
/// defaulting to [`available_threads`] when the flag is absent. Accepts
/// both `--threads N` and `--threads=N`.
///
/// # Errors
///
/// Returns a human-readable message if the flag is present but its
/// value is missing or not a positive integer.
pub fn threads_from_args(args: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut threads = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            let value = iter
                .next()
                .ok_or_else(|| "--threads requires a value".to_string())?;
            threads = Some(parse_threads(value)?);
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            threads = Some(parse_threads(value)?);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, threads.unwrap_or_else(available_threads)))
}

fn parse_threads(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--threads expects a positive integer, got {value:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_in_input_order_for_every_worker_count() {
        let points: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = points.iter().map(|p| p * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64, 1000] {
            assert_eq!(sweep(&points, threads, |_, &p| p * 3 + 1), expected);
        }
    }

    #[test]
    fn empty_and_single_point_sweeps_work() {
        let none: Vec<u32> = Vec::new();
        assert!(sweep(&none, 8, |_, &p| p).is_empty());
        assert_eq!(sweep(&[7u32], 8, |_, &p| p + 1), vec![8]);
    }

    #[test]
    fn index_is_passed_through() {
        let points = ["a", "b", "c"];
        let got = sweep(&points, 2, |i, &p| format!("{i}{p}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn seeded_sweep_is_worker_count_invariant() {
        let points: Vec<u32> = (0..64).collect();
        let draw = |_: usize, _: &u32, mut rng: SimRng| (rng.next_u64(), rng.next_u64());
        let serial = sweep_seeded(&points, 42, 1, draw);
        for threads in [2, 5, 8] {
            assert_eq!(sweep_seeded(&points, 42, threads, draw), serial);
        }
        // A different seed produces different streams.
        assert_ne!(sweep_seeded(&points, 43, 4, draw), serial);
    }

    #[test]
    fn threads_flag_parses_and_strips() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        let (rest, t) = threads_from_args(&args(&["figures", "--threads", "4", "out"])).unwrap();
        assert_eq!(rest, args(&["figures", "out"]));
        assert_eq!(t, 4);
        let (rest, t) = threads_from_args(&args(&["--threads=2"])).unwrap();
        assert!(rest.is_empty());
        assert_eq!(t, 2);
        let (_, t) = threads_from_args(&args(&["x"])).unwrap();
        assert_eq!(t, available_threads());
        assert!(threads_from_args(&args(&["--threads"])).is_err());
        assert!(threads_from_args(&args(&["--threads", "0"])).is_err());
        assert!(threads_from_args(&args(&["--threads", "nope"])).is_err());
    }

    #[test]
    fn worker_panic_propagates() {
        let points: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            sweep(&points, 4, |_, &p| {
                assert!(p != 9, "boom");
                p
            })
        });
        assert!(result.is_err());
    }
}
