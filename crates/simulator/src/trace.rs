//! Structured simulation traces.
//!
//! Every engine built on the [`kernel`](crate::kernel) records what
//! happened as typed [`TraceRecord`]s in a [`SimTrace`] — transfer and
//! compute start/end, channel grants, queue waits, and detour hops — so
//! runs can be inspected, diffed, and replayed without parsing log text.
//! The trace is a bounded ring buffer: pushing past the capacity drops
//! the **oldest** records (counted in [`SimTrace::dropped`]) so that long
//! simulations keep the recent past at a fixed memory cost.
//!
//! [`BusyInterval`]s are the per-channel occupancy spans the engines
//! collect alongside the trace; they feed the timeline renderers and the
//! utilization-over-time export on the reports.

use ccube_collectives::TransferId;
use ccube_topology::{ChannelId, GpuId, Seconds};
use std::collections::VecDeque;
use std::fmt::{self, Write as _};

/// One closed span during which a resource was occupied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyInterval {
    /// When the occupancy began.
    pub start: Seconds,
    /// When the occupancy ended.
    pub end: Seconds,
}

impl BusyInterval {
    /// The span's length.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// The overlap of this interval with `[lo, hi)`, as a duration.
    pub fn overlap(&self, lo: Seconds, hi: Seconds) -> Seconds {
        let s = self.start.max(lo);
        let e = self.end.min(hi);
        if e > s {
            e - s
        } else {
            Seconds::ZERO
        }
    }
}

/// One structured event of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceRecord {
    /// A transfer acquired all channels of its path and began moving
    /// bytes.
    TransferStart {
        /// The transfer.
        id: TransferId,
        /// When it started.
        at: Seconds,
    },
    /// A transfer completed and released its channels.
    TransferEnd {
        /// The transfer.
        id: TransferId,
        /// When it completed.
        at: Seconds,
    },
    /// A channel was granted to a transfer (one record per channel of
    /// the path).
    ChannelGrant {
        /// The granted channel.
        channel: ChannelId,
        /// The transfer it was granted to.
        id: TransferId,
        /// When the grant happened.
        at: Seconds,
    },
    /// A transfer that had to wait for channels was finally granted
    /// them.
    QueueWait {
        /// The transfer that waited.
        id: TransferId,
        /// When it became ready and queued.
        enqueued: Seconds,
        /// When its channels were granted.
        granted: Seconds,
    },
    /// A compute task began occupying its GPU's stream.
    ComputeStart {
        /// The compute task id.
        id: u32,
        /// The GPU whose stream it occupies.
        gpu: GpuId,
        /// When it started.
        at: Seconds,
    },
    /// A compute task finished.
    ComputeEnd {
        /// The compute task id.
        id: u32,
        /// The GPU it ran on.
        gpu: GpuId,
        /// When it finished.
        at: Seconds,
    },
    /// A completed transfer was routed through an intermediate GPU,
    /// charging forwarding time to it.
    DetourHop {
        /// The forwarded transfer.
        id: TransferId,
        /// The intermediate GPU that forwarded it.
        via: GpuId,
        /// When the forwarded transfer completed.
        at: Seconds,
    },
    /// A fault-plan event became active.
    FaultStart {
        /// Index of the event in the [`FaultPlan`](crate::FaultPlan).
        fault: u32,
        /// When it activated.
        at: Seconds,
    },
    /// A fault-plan event ended.
    FaultEnd {
        /// Index of the event in the [`FaultPlan`](crate::FaultPlan).
        fault: u32,
        /// When it lifted.
        at: Seconds,
    },
    /// A waiting transfer was moved onto a surviving route after a
    /// link-down fault severed its planned path.
    Reroute {
        /// The re-routed transfer.
        id: TransferId,
        /// When the new route was chosen.
        at: Seconds,
    },
    /// A transfer's port path was steered onto a different uplink slot —
    /// by an adaptive uplink policy at grant time, or by the fault
    /// driver failing it away from a downed uplink. Fabric engines only.
    Failover {
        /// The transfer whose path moved.
        id: TransferId,
        /// Pool resource index of the uplink-up port now carrying it.
        port: ChannelId,
        /// When the new slot was chosen.
        at: Seconds,
    },
}

impl TraceRecord {
    /// The record's timestamp.
    pub fn at(&self) -> Seconds {
        match *self {
            TraceRecord::TransferStart { at, .. }
            | TraceRecord::TransferEnd { at, .. }
            | TraceRecord::ChannelGrant { at, .. }
            | TraceRecord::ComputeStart { at, .. }
            | TraceRecord::ComputeEnd { at, .. }
            | TraceRecord::DetourHop { at, .. }
            | TraceRecord::FaultStart { at, .. }
            | TraceRecord::FaultEnd { at, .. }
            | TraceRecord::Reroute { at, .. }
            | TraceRecord::Failover { at, .. } => at,
            TraceRecord::QueueWait { granted, .. } => granted,
        }
    }
}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// # Examples
///
/// ```
/// use ccube_sim::trace::{SimTrace, TraceRecord};
/// use ccube_collectives::TransferId;
/// use ccube_topology::Seconds;
///
/// let mut trace = SimTrace::bounded(2);
/// for i in 0..3 {
///     trace.push(TraceRecord::TransferStart {
///         id: TransferId(i),
///         at: Seconds::from_micros(i as f64),
///     });
/// }
/// assert_eq!(trace.len(), 2); // oldest record evicted
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for SimTrace {
    fn default() -> Self {
        SimTrace::bounded(SimTrace::DEFAULT_CAPACITY)
    }
}

impl SimTrace {
    /// The default ring capacity used by the engines.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A trace holding at most `capacity` records (at least 1).
    pub fn bounded(capacity: usize) -> Self {
        SimTrace::bounded_for(capacity, 4096)
    }

    /// A trace holding at most `capacity` records, pre-allocated for an
    /// `expected` record count so an engine that can bound its event
    /// population up front (transfers × records-per-transfer, say)
    /// never regrows the ring mid-run. Behaviorally identical to
    /// [`SimTrace::bounded`] — only the initial allocation differs.
    pub fn bounded_for(capacity: usize, expected: usize) -> Self {
        let capacity = capacity.max(1);
        SimTrace {
            records: VecDeque::with_capacity(capacity.min(expected.max(16))),
            capacity,
            dropped: 0,
        }
    }

    /// A disabled trace: [`SimTrace::push`] is a no-op and nothing is
    /// ever retained or counted as dropped.
    ///
    /// This is the engines' `trace: off` fast path — sweep and search
    /// drivers that only read a report's timings and counters skip the
    /// per-event ring-buffer bookkeeping entirely (request it with
    /// [`SimOptions::without_trace`](crate::SimOptions::without_trace)).
    /// Tracing is pure observation, so a disabled trace never changes
    /// simulated timings.
    pub fn disabled() -> Self {
        SimTrace {
            records: VecDeque::new(),
            capacity: 0,
            dropped: 0,
        }
    }

    /// True unless this trace was created with [`SimTrace::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record, evicting the oldest if the ring is full.
    /// No-op on a [`SimTrace::disabled`] trace.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the retained records as CSV
    /// (`kind,id,channel_or_gpu,t_us,extra_us`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,id,channel_or_gpu,t_us,extra_us\n");
        for r in &self.records {
            let _ = match *r {
                TraceRecord::TransferStart { id, at } => {
                    writeln!(out, "transfer_start,{},,{:.3},", id.0, at.as_micros())
                }
                TraceRecord::TransferEnd { id, at } => {
                    writeln!(out, "transfer_end,{},,{:.3},", id.0, at.as_micros())
                }
                TraceRecord::ChannelGrant { channel, id, at } => writeln!(
                    out,
                    "channel_grant,{},{},{:.3},",
                    id.0,
                    channel.0,
                    at.as_micros()
                ),
                TraceRecord::QueueWait {
                    id,
                    enqueued,
                    granted,
                } => writeln!(
                    out,
                    "queue_wait,{},,{:.3},{:.3}",
                    id.0,
                    granted.as_micros(),
                    (granted - enqueued).as_micros()
                ),
                TraceRecord::ComputeStart { id, gpu, at } => {
                    writeln!(out, "compute_start,{},{},{:.3},", id, gpu.0, at.as_micros())
                }
                TraceRecord::ComputeEnd { id, gpu, at } => {
                    writeln!(out, "compute_end,{},{},{:.3},", id, gpu.0, at.as_micros())
                }
                TraceRecord::DetourHop { id, via, at } => {
                    writeln!(out, "detour_hop,{},{},{:.3},", id.0, via.0, at.as_micros())
                }
                TraceRecord::FaultStart { fault, at } => {
                    writeln!(out, "fault_start,{},,{:.3},", fault, at.as_micros())
                }
                TraceRecord::FaultEnd { fault, at } => {
                    writeln!(out, "fault_end,{},,{:.3},", fault, at.as_micros())
                }
                TraceRecord::Reroute { id, at } => {
                    writeln!(out, "reroute,{},,{:.3},", id.0, at.as_micros())
                }
                TraceRecord::Failover { id, port, at } => {
                    writeln!(out, "failover,{},{},{:.3},", id.0, port.0, at.as_micros())
                }
            };
        }
        out
    }

    /// Parses a trace CSV (the [`SimTrace::to_csv`] format) back into a
    /// trace — the inverse of the export, used by the HTML viewer
    /// ([`trace_html`](crate::trace_html)) so saved trace files render
    /// through the same scene builder as live runs.
    ///
    /// The returned trace is unbounded enough to hold every parsed
    /// record (`capacity == max(len, 1)`, `dropped == 0`): the file is
    /// the whole history as far as the parser can know. Timestamps keep
    /// the export's microsecond precision, so `to_csv` of the result
    /// reproduces the input byte-for-byte when the input came from
    /// `to_csv`. Fails with a line-numbered message on an unknown record
    /// kind or a malformed field; the header line is required.
    pub fn from_csv(csv: &str) -> Result<SimTrace, String> {
        use ccube_collectives::TransferId;
        let mut lines = csv.lines();
        match lines.next() {
            Some(h) if h.starts_with("kind,") => {}
            _ => return Err("missing trace-CSV header (`kind,id,...`)".to_string()),
        }
        let mut records = Vec::new();
        for (n, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", n + 2);
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 5 {
                return Err(err("expected 5 columns"));
            }
            let id = |c: &str| c.parse::<u32>().map_err(|_| err("bad id"));
            let at = |c: &str| {
                c.parse::<f64>()
                    .map(Seconds::from_micros)
                    .map_err(|_| err("bad timestamp"))
            };
            records.push(match cols[0] {
                "transfer_start" => TraceRecord::TransferStart {
                    id: TransferId(id(cols[1])?),
                    at: at(cols[3])?,
                },
                "transfer_end" => TraceRecord::TransferEnd {
                    id: TransferId(id(cols[1])?),
                    at: at(cols[3])?,
                },
                "channel_grant" => TraceRecord::ChannelGrant {
                    id: TransferId(id(cols[1])?),
                    channel: ChannelId(id(cols[2])?),
                    at: at(cols[3])?,
                },
                "queue_wait" => {
                    let granted = at(cols[3])?;
                    TraceRecord::QueueWait {
                        id: TransferId(id(cols[1])?),
                        enqueued: granted - at(cols[4])?,
                        granted,
                    }
                }
                "compute_start" => TraceRecord::ComputeStart {
                    id: id(cols[1])?,
                    gpu: GpuId(id(cols[2])?),
                    at: at(cols[3])?,
                },
                "compute_end" => TraceRecord::ComputeEnd {
                    id: id(cols[1])?,
                    gpu: GpuId(id(cols[2])?),
                    at: at(cols[3])?,
                },
                "detour_hop" => TraceRecord::DetourHop {
                    id: TransferId(id(cols[1])?),
                    via: GpuId(id(cols[2])?),
                    at: at(cols[3])?,
                },
                "fault_start" => TraceRecord::FaultStart {
                    fault: id(cols[1])?,
                    at: at(cols[3])?,
                },
                "fault_end" => TraceRecord::FaultEnd {
                    fault: id(cols[1])?,
                    at: at(cols[3])?,
                },
                "reroute" => TraceRecord::Reroute {
                    id: TransferId(id(cols[1])?),
                    at: at(cols[3])?,
                },
                "failover" => TraceRecord::Failover {
                    id: TransferId(id(cols[1])?),
                    port: ChannelId(id(cols[2])?),
                    at: at(cols[3])?,
                },
                other => return Err(err(&format!("unknown record kind {other:?}"))),
            });
        }
        let mut trace = SimTrace::bounded(records.len().max(1));
        for r in records {
            trace.push(r);
        }
        Ok(trace)
    }

    /// Exports the retained records as Chrome `trace_event` JSON for
    /// `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
    ///
    /// Three synthetic processes keep the lanes readable: pid 0
    /// ("channels") holds one thread per channel with a complete (`"X"`)
    /// slice per occupancy (channel grant → transfer end), pid 1
    /// ("compute") one thread per GPU, and pid 2 ("faults") one thread
    /// per fault-plan event — so downtime and degradation intervals
    /// render as slices directly above the traffic they perturb.
    /// Queue waits, detour hops, and re-routes become instant (`"i"`)
    /// events. A fault still active at the end of the trace (a
    /// permanent link-down) is closed at the last recorded timestamp.
    /// Timestamps are microseconds, as the format requires.
    ///
    /// When the trace carries grant slices, pid 3 ("utilization") adds
    /// a Perfetto counter track (`"C"` events): the mean lane
    /// utilization over time, binned by [`utilization_bins`], so the
    /// step plot reads directly against the slices that produce it.
    ///
    /// Every lane also gets a `thread_name` metadata row (channels as
    /// `ch <n>`), so Perfetto shows names instead of bare tids. Traces
    /// from the switch-fabric engines grant *ports*, not channels — use
    /// [`to_chrome_json_labeled`](Self::to_chrome_json_labeled) to
    /// label the lanes accordingly.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_labeled("ch")
    }

    /// [`to_chrome_json`](Self::to_chrome_json) with the pid-0 lanes
    /// labeled `<lane> <n>` — pass `"port"` for traces recorded by the
    /// switch-fabric engines, whose grant records carry port indices.
    pub fn to_chrome_json_labeled(&self, lane: &str) -> String {
        use std::collections::BTreeMap;
        use std::collections::BTreeSet;
        let mut events: Vec<String> = Vec::with_capacity(self.records.len() + 4);
        for (pid, name) in [(0, "channels"), (1, "compute"), (2, "faults")] {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        // One thread_name metadata row per lane actually used, so
        // Perfetto labels channels/ports, GPUs and faults readably.
        let mut lanes: BTreeSet<(u32, u32, String)> = BTreeSet::new();
        for r in &self.records {
            match *r {
                TraceRecord::ChannelGrant { channel, .. } => {
                    lanes.insert((0, channel.0, format!("{lane} {}", channel.0)));
                }
                TraceRecord::QueueWait { .. }
                | TraceRecord::Reroute { .. }
                | TraceRecord::Failover { .. } => {
                    lanes.insert((0, 0, format!("{lane} 0")));
                }
                TraceRecord::ComputeStart { gpu, .. } | TraceRecord::ComputeEnd { gpu, .. } => {
                    lanes.insert((1, gpu.0, format!("gpu {}", gpu.0)));
                }
                TraceRecord::DetourHop { via, .. } => {
                    lanes.insert((1, via.0, format!("gpu {}", via.0)));
                }
                TraceRecord::FaultStart { fault, .. } | TraceRecord::FaultEnd { fault, .. } => {
                    lanes.insert((2, fault, format!("fault {fault}")));
                }
                TraceRecord::TransferStart { .. } | TraceRecord::TransferEnd { .. } => {}
            }
        }
        for (pid, tid, name) in lanes {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        let horizon = self
            .records
            .iter()
            .map(|r| r.at())
            .fold(Seconds::ZERO, Seconds::max);
        // Open slices awaiting their end record. BTreeMaps keep the
        // leftover-fault close-out below deterministic.
        let mut open_grants: BTreeMap<u32, Vec<(u32, Seconds)>> = BTreeMap::new();
        let mut open_compute: BTreeMap<u32, (u32, Seconds)> = BTreeMap::new();
        let mut open_faults: BTreeMap<u32, Seconds> = BTreeMap::new();
        // Completed occupancy spans per lane, feeding the pid-3
        // utilization counter track below (BTreeMap: the bin averages
        // sum lanes in a fixed order).
        let mut channel_busy: BTreeMap<u32, Vec<BusyInterval>> = BTreeMap::new();
        let slice = |name: &str, pid: u32, tid: u32, start: Seconds, end: Seconds| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                start.as_micros(),
                (end - start).as_micros()
            )
        };
        let instant = |name: &str, pid: u32, tid: u32, at: Seconds| {
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{:.3}}}",
                at.as_micros()
            )
        };
        for r in &self.records {
            match *r {
                TraceRecord::TransferStart { .. } => {}
                TraceRecord::ChannelGrant { channel, id, at } => {
                    open_grants.entry(id.0).or_default().push((channel.0, at));
                }
                TraceRecord::TransferEnd { id, at } => {
                    for (ch, start) in open_grants.remove(&id.0).unwrap_or_default() {
                        events.push(slice(&format!("t{}", id.0), 0, ch, start, at));
                        channel_busy
                            .entry(ch)
                            .or_default()
                            .push(BusyInterval { start, end: at });
                    }
                }
                TraceRecord::QueueWait { id, granted, .. } => {
                    events.push(instant(&format!("wait t{}", id.0), 0, 0, granted));
                }
                TraceRecord::ComputeStart { id, gpu, at } => {
                    open_compute.insert(id, (gpu.0, at));
                }
                TraceRecord::ComputeEnd { id, at, .. } => {
                    if let Some((gpu, start)) = open_compute.remove(&id) {
                        events.push(slice(&format!("c{id}"), 1, gpu, start, at));
                    }
                }
                TraceRecord::DetourHop { id, via, at } => {
                    events.push(instant(&format!("detour t{}", id.0), 1, via.0, at));
                }
                TraceRecord::FaultStart { fault, at } => {
                    open_faults.insert(fault, at);
                }
                TraceRecord::FaultEnd { fault, at } => {
                    if let Some(start) = open_faults.remove(&fault) {
                        events.push(slice(&format!("fault{fault}"), 2, fault, start, at));
                    }
                }
                TraceRecord::Reroute { id, at } => {
                    events.push(instant(&format!("reroute t{}", id.0), 0, 0, at));
                }
                TraceRecord::Failover { id, at, .. } => {
                    events.push(instant(&format!("failover t{}", id.0), 0, 0, at));
                }
            }
        }
        for (fault, start) in open_faults {
            events.push(slice(&format!("fault{fault}"), 2, fault, start, horizon));
        }
        // Counter track: mean utilization across the pid-0 lanes, one
        // "C" sample per bin edge plus a closing zero at the horizon so
        // the step plot ends where the trace does.
        if !channel_busy.is_empty() && !horizon.is_zero() {
            const NBINS: usize = 64;
            events.push(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\
                 \"args\":{\"name\":\"utilization\"}}"
                    .to_string(),
            );
            let mut mean = vec![0.0f64; NBINS];
            for intervals in channel_busy.values() {
                for (m, u) in mean
                    .iter_mut()
                    .zip(utilization_bins(intervals, horizon, NBINS))
                {
                    *m += u;
                }
            }
            let lanes = channel_busy.len() as f64;
            let bin_width = horizon.as_secs_f64() / NBINS as f64;
            for (b, m) in mean.iter().enumerate() {
                let ts = Seconds::new(bin_width * b as f64);
                events.push(format!(
                    "{{\"name\":\"{lane} busy\",\"ph\":\"C\",\"pid\":3,\"tid\":0,\
                     \"ts\":{:.3},\"args\":{{\"busy\":{:.6}}}}}",
                    ts.as_micros(),
                    m / lanes
                ));
            }
            events.push(format!(
                "{{\"name\":\"{lane} busy\",\"ph\":\"C\",\"pid\":3,\"tid\":0,\
                 \"ts\":{:.3},\"args\":{{\"busy\":0.000000}}}}",
                horizon.as_micros()
            ));
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Bins `intervals` over `[0, horizon)` and returns per-bin utilization
/// in `0.0..=1.0`. Used by the reports' utilization-over-time exports.
pub fn utilization_bins(intervals: &[BusyInterval], horizon: Seconds, bins: usize) -> Vec<f64> {
    assert!(bins > 0, "need at least one bin");
    if horizon.is_zero() {
        return vec![0.0; bins];
    }
    let bin_width = Seconds::new(horizon.as_secs_f64() / bins as f64);
    let mut out = vec![0.0; bins];
    for (b, slot) in out.iter_mut().enumerate() {
        let lo = Seconds::new(bin_width.as_secs_f64() * b as f64);
        let hi = if b + 1 == bins {
            horizon
        } else {
            Seconds::new(bin_width.as_secs_f64() * (b + 1) as f64)
        };
        let width = hi - lo;
        if width.is_zero() {
            continue;
        }
        let busy: f64 = intervals
            .iter()
            .map(|iv| iv.overlap(lo, hi).as_secs_f64())
            .sum();
        *slot = (busy / width.as_secs_f64()).min(1.0);
    }
    out
}

/// The structural difference between two trace CSVs (the
/// [`SimTrace::to_csv`] format), as computed by [`diff_csv`]. Built for
/// answering "where did these two runs diverge?" — e.g. a channel-approx
/// run against a switch-fabric run, or two fault replays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDiff {
    /// First data line (1-based, header excluded) where the two traces
    /// differ, with both lines (`None` marks one trace ending early).
    pub first_divergence: Option<(usize, Option<String>, Option<String>)>,
    /// Per-record-kind counts `(left, right)`, for every kind present in
    /// either trace.
    pub kind_counts: std::collections::BTreeMap<String, (usize, usize)>,
    /// Number of data lines in the left / right trace.
    pub lines: (usize, usize),
    /// Per-transfer busy drift: summed `|duration_left − duration_right|`
    /// over transfers present in both traces (start→end intervals).
    pub busy_drift: Seconds,
    /// Largest single-transfer busy drift.
    pub max_busy_drift: Seconds,
    /// Difference between the last record timestamps (right − left).
    pub horizon_delta: Seconds,
}

impl TraceDiff {
    /// True if the traces are line-for-line identical.
    pub fn is_identical(&self) -> bool {
        self.first_divergence.is_none() && self.lines.0 == self.lines.1
    }

    /// Timestamp (µs) of the first divergent record, if any: the
    /// earliest timestamp parseable from either divergent line. The HTML
    /// diff viewer anchors its divergence marker here.
    pub fn divergence_time_us(&self) -> Option<f64> {
        let (_, a, b) = self.first_divergence.as_ref()?;
        let t = |side: &Option<String>| {
            side.as_deref()
                .and_then(parse_line)
                .and_then(|(_, _, at)| at)
        };
        match (t(a), t(b)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// Renders the diff as a byte-stable JSON object — the structured
    /// counterpart of the [`Display`](fmt::Display) rendering, embedded
    /// verbatim in the HTML diff viewer's payload
    /// ([`trace_html`](crate::trace_html), schema in DESIGN.md §15).
    ///
    /// Keys, in order: `identical`, `lines` (`[left, right]`),
    /// `first_divergence` (`null`, or `{record, left, right}` with
    /// `null` marking a trace that ended early), `divergence_t_us`
    /// (`null` when no timestamp is parseable), `kinds` (per-kind
    /// `[left, right]` counts, every kind present in either trace, name
    /// order), `busy_drift_us`, `max_busy_drift_us`, `horizon_delta_us`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"identical\":{},\"lines\":[{},{}],",
            self.is_identical(),
            self.lines.0,
            self.lines.1
        );
        match &self.first_divergence {
            Some((record, a, b)) => {
                let side = |s: &Option<String>| match s {
                    Some(line) => format!("\"{}\"", json_escape(line)),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "\"first_divergence\":{{\"record\":{record},\"left\":{},\"right\":{}}},",
                    side(a),
                    side(b)
                );
            }
            None => out.push_str("\"first_divergence\":null,"),
        }
        match self.divergence_time_us() {
            Some(t) => {
                let _ = write!(out, "\"divergence_t_us\":{t:.3},");
            }
            None => out.push_str("\"divergence_t_us\":null,"),
        }
        out.push_str("\"kinds\":{");
        for (i, (kind, (l, r))) in self.kind_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[{l},{r}]", json_escape(kind));
        }
        let _ = write!(
            out,
            "}},\"busy_drift_us\":{:.3},\"max_busy_drift_us\":{:.3},\"horizon_delta_us\":{:.3}}}",
            self.busy_drift.as_micros(),
            self.max_busy_drift.as_micros(),
            self.horizon_delta.as_micros()
        );
        out
    }
}

/// Escapes a string for embedding in a JSON literal. `<` is escaped too
/// so payloads can sit inside a `<script>` tag without ever forming a
/// closing-tag sequence.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '<' => out.push_str("\\u003c"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identical() {
            return writeln!(f, "traces identical ({} records)", self.lines.0);
        }
        match &self.first_divergence {
            Some((line, a, b)) => {
                writeln!(f, "first divergence at record {line}:")?;
                writeln!(f, "  left:  {}", a.as_deref().unwrap_or("<end of trace>"))?;
                writeln!(f, "  right: {}", b.as_deref().unwrap_or("<end of trace>"))?;
            }
            None => writeln!(
                f,
                "no divergent record, but lengths differ: {} vs {}",
                self.lines.0, self.lines.1
            )?,
        }
        writeln!(f, "records: {} vs {}", self.lines.0, self.lines.1)?;
        for (kind, (l, r)) in &self.kind_counts {
            if l != r {
                writeln!(f, "  {kind}: {l} vs {r} ({:+})", *r as i64 - *l as i64)?;
            }
        }
        writeln!(
            f,
            "busy drift: {} total, {} max per transfer",
            self.busy_drift, self.max_busy_drift
        )?;
        write!(f, "horizon delta: {}", self.horizon_delta)
    }
}

/// Record kind, transfer id, and timestamp of one CSV data line.
fn parse_line(line: &str) -> Option<(&str, Option<u64>, Option<f64>)> {
    let mut cols = line.split(',');
    let kind = cols.next()?;
    let id = cols.next().and_then(|c| c.parse().ok());
    let at = cols.nth(1).and_then(|c| c.parse().ok());
    Some((kind, id, at))
}

/// Compares two trace CSVs (as produced by [`SimTrace::to_csv`]):
/// first divergent record, per-kind record-count deltas, per-transfer
/// busy drift (transfer start→end), and horizon shift. Tolerant of
/// unknown kinds — anything with the `kind,id,_,t_us,…` shape counts.
pub fn diff_csv(left: &str, right: &str) -> TraceDiff {
    let data = |s: &str| -> Vec<String> {
        s.lines()
            .skip(1)
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect()
    };
    let (l, r) = (data(left), data(right));
    let mut diff = TraceDiff {
        lines: (l.len(), r.len()),
        ..TraceDiff::default()
    };
    for i in 0..l.len().max(r.len()) {
        let (a, b) = (l.get(i), r.get(i));
        if a != b {
            diff.first_divergence = Some((i + 1, a.cloned(), b.cloned()));
            break;
        }
    }
    let mut spans: [std::collections::BTreeMap<u64, (f64, f64)>; 2] = Default::default();
    let mut horizon = [0.0f64; 2];
    for (side, trace) in [&l, &r].into_iter().enumerate() {
        for line in trace {
            let Some((kind, id, at)) = parse_line(line) else {
                continue;
            };
            let (a, b) = diff.kind_counts.entry(kind.to_string()).or_default();
            *if side == 0 { a } else { b } += 1;
            let Some(at) = at else { continue };
            horizon[side] = horizon[side].max(at);
            if let Some(id) = id {
                match kind {
                    "transfer_start" => {
                        spans[side].entry(id).or_insert((0.0, 0.0)).0 = at;
                    }
                    "transfer_end" => {
                        spans[side].entry(id).or_insert((0.0, 0.0)).1 = at;
                    }
                    _ => {}
                }
            }
        }
    }
    let (left_spans, right_spans) = (std::mem::take(&mut spans[0]), std::mem::take(&mut spans[1]));
    for (id, (s0, e0)) in &left_spans {
        if let Some((s1, e1)) = right_spans.get(id) {
            let d = ((e1 - s1) - (e0 - s0)).abs();
            diff.busy_drift += Seconds::from_micros(d);
            diff.max_busy_drift = diff.max_busy_drift.max(Seconds::from_micros(d));
        }
    }
    diff.horizon_delta = Seconds::from_micros(horizon[1] - horizon[0]);
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> BusyInterval {
        BusyInterval {
            start: Seconds::from_micros(a),
            end: Seconds::from_micros(b),
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = SimTrace::bounded(3);
        for i in 0..5u32 {
            t.push(TraceRecord::ComputeStart {
                id: i,
                gpu: GpuId(0),
                at: Seconds::from_micros(i as f64),
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.records().next().unwrap();
        assert_eq!(first.at(), Seconds::from_micros(2.0));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = SimTrace::disabled();
        assert!(!t.is_enabled());
        for i in 0..10u32 {
            t.push(TraceRecord::ComputeStart {
                id: i,
                gpu: GpuId(0),
                at: Seconds::from_micros(i as f64),
            });
        }
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), 0);
        assert!(SimTrace::default().is_enabled());
    }

    #[test]
    fn utilization_bins_integrate_intervals() {
        // Busy for the first half of a 10µs horizon.
        let bins = utilization_bins(&[iv(0.0, 5.0)], Seconds::from_micros(10.0), 10);
        assert_eq!(bins.len(), 10);
        for b in &bins[0..5] {
            assert!((b - 1.0).abs() < 1e-9);
        }
        for b in &bins[5..] {
            assert!(b.abs() < 1e-9);
        }
        // Two disjoint intervals in one bin accumulate.
        let one = utilization_bins(&[iv(0.0, 2.0), iv(4.0, 6.0)], Seconds::from_micros(10.0), 1);
        assert!((one[0] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn csv_has_one_line_per_record_plus_header() {
        let mut t = SimTrace::default();
        t.push(TraceRecord::QueueWait {
            id: ccube_collectives::TransferId(3),
            enqueued: Seconds::ZERO,
            granted: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::DetourHop {
            id: ccube_collectives::TransferId(3),
            via: GpuId(5),
            at: Seconds::from_micros(4.0),
        });
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("queue_wait,3,,2.000,2.000"));
        assert!(csv.contains("detour_hop,3,5,4.000,"));
    }

    #[test]
    fn csv_covers_fault_records() {
        let mut t = SimTrace::default();
        t.push(TraceRecord::FaultStart {
            fault: 1,
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::Reroute {
            id: ccube_collectives::TransferId(7),
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::FaultEnd {
            fault: 1,
            at: Seconds::from_micros(9.0),
        });
        let csv = t.to_csv();
        assert!(csv.contains("fault_start,1,,2.000,"));
        assert!(csv.contains("reroute,7,,2.000,"));
        assert!(csv.contains("fault_end,1,,9.000,"));
    }

    #[test]
    fn chrome_json_pairs_slices_and_closes_permanent_faults() {
        use ccube_collectives::TransferId;
        let mut t = SimTrace::default();
        t.push(TraceRecord::FaultStart {
            fault: 0,
            at: Seconds::from_micros(1.0),
        });
        t.push(TraceRecord::ChannelGrant {
            channel: ChannelId(4),
            id: TransferId(2),
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::ComputeStart {
            id: 9,
            gpu: GpuId(3),
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::TransferEnd {
            id: TransferId(2),
            at: Seconds::from_micros(5.0),
        });
        t.push(TraceRecord::ComputeEnd {
            id: 9,
            gpu: GpuId(3),
            at: Seconds::from_micros(6.0),
        });
        let json = t.to_chrome_json();
        // channel occupancy: grant at 2µs, end at 5µs → dur 3µs on tid 4
        assert!(json.contains(
            "{\"name\":\"t2\",\"ph\":\"X\",\"pid\":0,\"tid\":4,\"ts\":2.000,\"dur\":3.000}"
        ));
        // compute slice on pid 1, tid = gpu 3
        assert!(json.contains(
            "{\"name\":\"c9\",\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":2.000,\"dur\":4.000}"
        ));
        // the never-ended fault closes at the last timestamp (6µs)
        assert!(json.contains(
            "{\"name\":\"fault0\",\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":1.000,\"dur\":5.000}"
        ));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"process_name\""));
    }

    #[test]
    fn chrome_json_emits_utilization_counter_track() {
        use ccube_collectives::TransferId;
        let mut t = SimTrace::default();
        t.push(TraceRecord::ChannelGrant {
            channel: ChannelId(0),
            id: TransferId(0),
            at: Seconds::from_micros(2.0),
        });
        t.push(TraceRecord::TransferEnd {
            id: TransferId(0),
            at: Seconds::from_micros(5.0),
        });
        t.push(TraceRecord::ComputeEnd {
            id: 1,
            gpu: GpuId(0),
            at: Seconds::from_micros(8.0),
        });
        let json = t.to_chrome_json();
        // pid 3 hosts the counter track, named after the lane label.
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\
             \"args\":{\"name\":\"utilization\"}}"
        ));
        // 64 bins over an 8µs horizon: bin width 0.125µs. The lane is
        // idle at t=0, fully busy inside [2µs, 5µs), and the track
        // closes with a zero sample at the horizon.
        assert!(json.contains(
            "{\"name\":\"ch busy\",\"ph\":\"C\",\"pid\":3,\"tid\":0,\
             \"ts\":0.000,\"args\":{\"busy\":0.000000}}"
        ));
        assert!(json.contains(
            "{\"name\":\"ch busy\",\"ph\":\"C\",\"pid\":3,\"tid\":0,\
             \"ts\":2.000,\"args\":{\"busy\":1.000000}}"
        ));
        assert!(json.contains(
            "{\"name\":\"ch busy\",\"ph\":\"C\",\"pid\":3,\"tid\":0,\
             \"ts\":8.000,\"args\":{\"busy\":0.000000}}"
        ));
        // A trace with no grants gets no counter process.
        let mut empty = SimTrace::default();
        empty.push(TraceRecord::ComputeEnd {
            id: 0,
            gpu: GpuId(0),
            at: Seconds::from_micros(1.0),
        });
        assert!(!empty.to_chrome_json().contains("\"ph\":\"C\""));
    }
}
