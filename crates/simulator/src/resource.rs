//! Shared simulated resources: channels and compute streams.
//!
//! Both engines used to carry private copies of the channel-arbitration
//! logic (with subtly divergent bug-fix histories). [`ChannelPool`] is
//! now the only implementation: it owns the free/busy state of every
//! channel, the per-channel waiter queues, and the arbitration policy
//! ([`Arbitration::FifoHol`] strict head-of-line service, or
//! [`Arbitration::ChunkPriority`] oldest-chunk-first with reservation
//! semantics and a force-start escape hatch for reservation cycles).
//! Engines only tell the pool when a task becomes *ready* and when a
//! running task *completes*; the pool decides who starts, and records
//! grants, queue waits, busy time, and busy intervals as it does so.
//!
//! [`ComputeStream`] is the compute-side resource: one exclusive,
//! FIFO-ordered stream per GPU, with a slowdown factor that models the
//! forwarding-occupancy tax detour GPUs pay (Fig. 15) by stretching
//! every task duration.

use crate::engine::Arbitration;
use crate::trace::{BusyInterval, SimTrace, TraceRecord};
use ccube_collectives::TransferId;
use ccube_topology::{ChannelId, Seconds};
use std::collections::VecDeque;

/// Inline capacity of a [`WaiterQueue`]: queues at or below this length
/// (the overwhelmingly common case — most channels never see more than a
/// handful of simultaneous waiters) live entirely inside the pool's
/// `waiters` vector, with no per-channel heap allocation.
const WAITER_INLINE: usize = 8;

/// A per-channel waiter queue: a fixed inline buffer that spills to a
/// heap `Vec` only when more than [`WAITER_INLINE`] tasks wait at once.
/// Semantically identical to a plain `Vec<u32>` (same order, same
/// insert/remove positions), so arbitration behavior is unchanged; the
/// point is allocation count, which the sweep bench counts per point.
#[derive(Debug, Clone)]
enum WaiterQueue {
    /// Up to `WAITER_INLINE` waiters stored inline; `len` is the live
    /// prefix of `buf`.
    Inline { buf: [u32; WAITER_INLINE], len: u8 },
    /// The spilled representation. Stays spilled after a clear so the
    /// capacity survives arena reuse.
    Heap(Vec<u32>),
}

impl WaiterQueue {
    fn new() -> Self {
        WaiterQueue::Inline {
            buf: [0; WAITER_INLINE],
            len: 0,
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            WaiterQueue::Inline { buf, len } => &buf[..*len as usize],
            WaiterQueue::Heap(v) => v,
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn first(&self) -> Option<u32> {
        self.as_slice().first().copied()
    }

    fn get(&self, pos: usize) -> Option<u32> {
        self.as_slice().get(pos).copied()
    }

    fn push(&mut self, task: u32) {
        match self {
            WaiterQueue::Inline { buf, len } if (*len as usize) < WAITER_INLINE => {
                buf[*len as usize] = task;
                *len += 1;
            }
            WaiterQueue::Inline { .. } => {
                self.spill().push(task);
            }
            WaiterQueue::Heap(v) => v.push(task),
        }
    }

    fn insert(&mut self, pos: usize, task: u32) {
        match self {
            WaiterQueue::Inline { buf, len } if (*len as usize) < WAITER_INLINE => {
                let n = *len as usize;
                buf.copy_within(pos..n, pos + 1);
                buf[pos] = task;
                *len += 1;
            }
            WaiterQueue::Inline { .. } => {
                self.spill().insert(pos, task);
            }
            WaiterQueue::Heap(v) => v.insert(pos, task),
        }
    }

    fn remove(&mut self, pos: usize) -> u32 {
        match self {
            WaiterQueue::Inline { buf, len } => {
                let n = *len as usize;
                let out = buf[pos];
                buf.copy_within(pos + 1..n, pos);
                *len -= 1;
                out
            }
            WaiterQueue::Heap(v) => v.remove(pos),
        }
    }

    fn clear(&mut self) {
        match self {
            WaiterQueue::Inline { len, .. } => *len = 0,
            WaiterQueue::Heap(v) => v.clear(),
        }
    }

    /// Moves an exactly-full inline buffer onto the heap and returns the
    /// spilled `Vec` for the caller to mutate.
    fn spill(&mut self) -> &mut Vec<u32> {
        if let WaiterQueue::Inline { buf, len } = self {
            let mut v = Vec::with_capacity(WAITER_INLINE * 2);
            v.extend_from_slice(&buf[..*len as usize]);
            *self = WaiterQueue::Heap(v);
        }
        match self {
            WaiterQueue::Heap(v) => v,
            WaiterQueue::Inline { .. } => unreachable!("just spilled"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Dependencies not yet satisfied (unknown to the pool's queues).
    Pending,
    /// Ready to run, waiting in the queues of its path's channels.
    Ready,
    /// Occupying its channels.
    Running,
    /// Finished.
    Done,
}

/// The exclusive-channel resource manager shared by every engine.
///
/// Tasks are registered up front with their channel path and their
/// arbitration key `(chunk, id)` — lowest key first under
/// [`Arbitration::ChunkPriority`]. A task occupies **all** channels of
/// its path at once (wormhole switching) or none.
#[derive(Debug, Clone)]
pub struct ChannelPool {
    arbitration: Arbitration,
    paths: Vec<Vec<ChannelId>>,
    keys: Vec<(u32, u32)>,
    state: Vec<TaskState>,
    enqueued_at: Vec<Option<Seconds>>,
    started_at: Vec<Seconds>,
    free: Vec<bool>,
    /// Per-channel waiter queues. Under [`Arbitration::FifoHol`] each
    /// queue is in readiness (FIFO) order; under
    /// [`Arbitration::ChunkPriority`] it is kept sorted ascending by
    /// arbitration key, so the best waiter is always the front — no
    /// per-round scan.
    waiters: Vec<WaiterQueue>,
    /// Cleared path buffers recycled by [`ChannelPool::reset`], handed
    /// back out by [`ChannelPool::add_task_path`] so a reused pool
    /// re-registers its tasks without reallocating every route.
    spare_paths: Vec<Vec<ChannelId>>,
    /// Scratch buffer for [`ChannelPool::force_start`]'s key-sorted scan
    /// of the ready set. Built lazily per stall round: stalls are rare,
    /// so paying a collect-and-sort there beats the O(tasks) sorted
    /// insert/remove an eagerly maintained ready list costs on *every*
    /// readiness change (quadratic over deep tree schedules).
    force_scratch: Vec<u32>,
    /// Count of active link-down faults per channel: a down channel
    /// rejects every new grant (force-starts included) until every
    /// overlapping fault has lifted.
    link_down: Vec<u32>,
    busy: Vec<Seconds>,
    intervals: Vec<Vec<BusyInterval>>,
    queue_wait: Vec<Seconds>,
    max_waiting: usize,
    force_starts: u64,
}

impl ChannelPool {
    /// A pool over `num_channels` channels with the given policy.
    pub fn new(num_channels: usize, arbitration: Arbitration) -> Self {
        ChannelPool {
            arbitration,
            paths: Vec::new(),
            keys: Vec::new(),
            state: Vec::new(),
            enqueued_at: Vec::new(),
            started_at: Vec::new(),
            free: vec![true; num_channels],
            waiters: vec![WaiterQueue::new(); num_channels],
            spare_paths: Vec::new(),
            force_scratch: Vec::new(),
            link_down: vec![0; num_channels],
            busy: vec![Seconds::ZERO; num_channels],
            intervals: vec![Vec::new(); num_channels],
            queue_wait: vec![Seconds::ZERO; num_channels],
            max_waiting: 0,
            force_starts: 0,
        }
    }

    /// Pre-allocates the per-task bookkeeping for `num_tasks` upcoming
    /// [`ChannelPool::add_task`] calls.
    pub fn reserve_tasks(&mut self, num_tasks: usize) {
        self.paths.reserve(num_tasks);
        self.keys.reserve(num_tasks);
        self.state.reserve(num_tasks);
        self.enqueued_at.reserve(num_tasks);
        self.started_at.reserve(num_tasks);
    }

    /// Registers a task; ids are dense and assigned in call order.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty or references an unknown channel.
    pub fn add_task(&mut self, path: Vec<ChannelId>, key: (u32, u32)) -> u32 {
        assert!(!path.is_empty(), "a task needs at least one channel");
        assert!(
            path.iter().all(|c| c.index() < self.free.len()),
            "path references an unknown channel"
        );
        let id = self.paths.len() as u32;
        self.paths.push(path);
        self.keys.push(key);
        self.state.push(TaskState::Pending);
        self.enqueued_at.push(None);
        self.started_at.push(Seconds::ZERO);
        id
    }

    /// Registers a task from a borrowed path, recycling a path buffer
    /// freed by [`ChannelPool::reset`] when one is available — the
    /// zero-alloc re-registration path for arena-reused pools. Identical
    /// to [`ChannelPool::add_task`] in every observable way.
    ///
    /// # Panics
    ///
    /// As [`ChannelPool::add_task`].
    pub fn add_task_path(&mut self, path: &[ChannelId], key: (u32, u32)) -> u32 {
        let mut buf = self.spare_paths.pop().unwrap_or_default();
        buf.extend_from_slice(path);
        self.add_task(buf, key)
    }

    /// Drains the pool back to the observable state of
    /// `ChannelPool::new(num_channels, arbitration)` while keeping its
    /// allocations: per-task vectors keep their capacity, spilled waiter
    /// queues stay spilled, and every registered path buffer is cleared
    /// and recycled into the pool [`ChannelPool::add_task_path`] draws
    /// from. A reset pool behaves bit-identically to a fresh one — the
    /// arena-reuse half of the prep-cache equivalence contract.
    pub fn reset(&mut self, num_channels: usize, arbitration: Arbitration) {
        self.arbitration = arbitration;
        for mut p in self.paths.drain(..) {
            p.clear();
            self.spare_paths.push(p);
        }
        self.keys.clear();
        self.state.clear();
        self.enqueued_at.clear();
        self.started_at.clear();
        self.free.clear();
        self.free.resize(num_channels, true);
        self.waiters.truncate(num_channels);
        for w in &mut self.waiters {
            w.clear();
        }
        self.waiters.resize_with(num_channels, WaiterQueue::new);
        self.force_scratch.clear();
        self.link_down.clear();
        self.link_down.resize(num_channels, 0);
        self.busy.clear();
        self.busy.resize(num_channels, Seconds::ZERO);
        self.intervals.truncate(num_channels);
        for iv in &mut self.intervals {
            iv.clear();
        }
        self.intervals.resize_with(num_channels, Vec::new);
        self.queue_wait.clear();
        self.queue_wait.resize(num_channels, Seconds::ZERO);
        self.max_waiting = 0;
        self.force_starts = 0;
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.paths.len()
    }

    /// The channel path of `task`.
    pub fn path(&self, task: u32) -> &[ChannelId] {
        &self.paths[task as usize]
    }

    /// Declares `task`'s dependencies satisfied. Returns `true` if the
    /// task started immediately (the caller must then schedule its
    /// completion event at `now + duration`); otherwise it waits in its
    /// channels' queues.
    pub fn mark_ready(&mut self, task: u32, now: Seconds, trace: &mut SimTrace) -> bool {
        debug_assert_eq!(self.state[task as usize], TaskState::Pending);
        self.state[task as usize] = TaskState::Ready;
        self.try_start(task, now, false, trace)
    }

    /// Where `task` sits (or belongs) in a key-sorted task list. Keys
    /// `(chunk, id)` are unique per task, so this is exact.
    fn key_position(&self, sorted: &[u32], task: u32) -> usize {
        let key = self.keys[task as usize];
        sorted.partition_point(|&t| self.keys[t as usize] < key)
    }

    /// Releases the channels of a completed `task`, charging busy time
    /// and recording the busy interval. Does **not** serve the freed
    /// queues — call [`ChannelPool::serve`] after the caller has
    /// processed the completion's dependency fallout, preserving the
    /// historical unblock-then-serve order.
    pub fn complete(&mut self, task: u32, now: Seconds) {
        let t = task as usize;
        debug_assert_eq!(self.state[t], TaskState::Running);
        self.state[t] = TaskState::Done;
        let started = self.started_at[t];
        let occupancy = now - started;
        for ci in self.paths[t].iter().map(|c| c.index()) {
            self.free[ci] = true;
            self.busy[ci] += occupancy;
            self.intervals[ci].push(BusyInterval {
                start: started,
                end: now,
            });
        }
    }

    /// Serves the waiter queues of the channels a completed `task` just
    /// released, starting every waiter the policy admits. Started task
    /// ids are appended to `started` in start order.
    pub fn serve(&mut self, task: u32, now: Seconds, trace: &mut SimTrace, started: &mut Vec<u32>) {
        for i in 0..self.paths[task as usize].len() {
            let c = self.paths[task as usize][i];
            self.serve_channel(c, now, trace, started);
        }
    }

    /// Serves one channel's waiter queue, starting every waiter the
    /// policy admits (used by [`ChannelPool::serve`] and by fault
    /// drivers when a downed link comes back up).
    ///
    /// Under [`Arbitration::FifoHol`] the front is the oldest waiter
    /// (strict head-of-line); under [`Arbitration::ChunkPriority`] the
    /// queue is key-sorted so the front is the oldest waiting chunk —
    /// either way the queue advances only while its front can start,
    /// and a blocked front leaves the channel idle (reserved for it
    /// under ChunkPriority).
    pub fn serve_channel(
        &mut self,
        channel: ChannelId,
        now: Seconds,
        trace: &mut SimTrace,
        started: &mut Vec<u32>,
    ) {
        let ci = channel.index();
        while let Some(head) = self.waiters[ci].first() {
            if self.try_start(head, now, false, trace) {
                started.push(head);
            } else {
                break;
            }
        }
    }

    /// Breaks a reservation stall: force-starts the best (lowest-key)
    /// ready task whose channels are free, bypassing chunk priority.
    /// Returns the started task, or `None` if nothing can run (a true
    /// deadlock).
    pub fn force_start(&mut self, now: Seconds, trace: &mut SimTrace) -> Option<u32> {
        // The ready set is collected and key-sorted here, per stall
        // round, rather than maintained eagerly: keys are unique, so the
        // ascending-key scan order is exactly the one a sorted ready
        // list would give.
        let mut scratch = std::mem::take(&mut self.force_scratch);
        scratch.clear();
        scratch.extend(
            (0..self.state.len() as u32).filter(|&t| self.state[t as usize] == TaskState::Ready),
        );
        scratch.sort_unstable_by_key(|&t| self.keys[t as usize]);
        let mut found = None;
        for &t in &scratch {
            if self.try_start(t, now, true, trace) {
                self.force_starts += 1;
                found = Some(t);
                break;
            }
        }
        self.force_scratch = scratch;
        found
    }

    fn try_start(&mut self, task: u32, now: Seconds, force: bool, trace: &mut SimTrace) -> bool {
        let t = task as usize;
        if self.state[t] != TaskState::Ready {
            return false;
        }
        let channels_free = self.paths[t]
            .iter()
            .all(|c| self.free[c.index()] && self.link_down[c.index()] == 0);
        let priority_ok = force
            || match self.arbitration {
                Arbitration::FifoHol => true,
                // A freed channel is implicitly reserved for the oldest
                // waiting chunk: a younger task yields to any ready
                // waiter with a smaller key anywhere on its path. The
                // queues are key-sorted, so checking the front (the
                // minimum key) decides for the whole queue.
                Arbitration::ChunkPriority => {
                    self.paths[t]
                        .iter()
                        .all(|c| match self.waiters[c.index()].first() {
                            None => true,
                            Some(w) => w == task || self.keys[w as usize] >= self.keys[t],
                        })
                }
            };
        if !(channels_free && priority_ok) {
            // A task waits in either all of its path's queues or none,
            // so `enqueued_at` doubles as the membership flag.
            if self.enqueued_at[t].is_none() {
                self.enqueued_at[t] = Some(now);
                for i in 0..self.paths[t].len() {
                    let ci = self.paths[t][i].index();
                    self.enqueue_waiter(ci, task);
                    self.max_waiting = self.max_waiting.max(self.waiters[ci].len());
                }
            }
            return false;
        }
        for i in 0..self.paths[t].len() {
            let ci = self.paths[t][i].index();
            self.free[ci] = false;
            self.remove_waiter(ci, task);
            trace.push(TraceRecord::ChannelGrant {
                channel: ChannelId(ci as u32),
                id: TransferId(task),
                at: now,
            });
        }
        if let Some(enqueued) = self.enqueued_at[t].take() {
            let wait = now - enqueued;
            for ci in self.paths[t].iter().map(|c| c.index()) {
                self.queue_wait[ci] += wait;
            }
            trace.push(TraceRecord::QueueWait {
                id: TransferId(task),
                enqueued,
                granted: now,
            });
        }
        self.state[t] = TaskState::Running;
        self.started_at[t] = now;
        true
    }

    /// Adds `task` to channel `ci`'s waiter queue: FIFO order under
    /// [`Arbitration::FifoHol`], key-sorted under
    /// [`Arbitration::ChunkPriority`].
    fn enqueue_waiter(&mut self, ci: usize, task: u32) {
        match self.arbitration {
            Arbitration::FifoHol => self.waiters[ci].push(task),
            Arbitration::ChunkPriority => {
                let pos = self.key_position(self.waiters[ci].as_slice(), task);
                self.waiters[ci].insert(pos, task);
            }
        }
    }

    /// Removes `task` from channel `ci`'s waiter queue if present.
    fn remove_waiter(&mut self, ci: usize, task: u32) {
        let pos = match self.arbitration {
            Arbitration::FifoHol => self.waiters[ci].as_slice().iter().position(|&x| x == task),
            Arbitration::ChunkPriority => {
                let pos = self.key_position(self.waiters[ci].as_slice(), task);
                (self.waiters[ci].get(pos) == Some(task)).then_some(pos)
            }
        };
        if let Some(pos) = pos {
            self.waiters[ci].remove(pos);
        }
    }

    /// Takes channel `channel` down for a fault. Down channels reject
    /// every new grant — including force-starts — so tasks whose path
    /// crosses the channel wait in its queue (or get re-routed by the
    /// fault driver). In-flight occupants are unaffected: a flap is
    /// detected at grant time, not mid-wormhole.
    pub fn set_link_down(&mut self, channel: ChannelId) {
        self.link_down[channel.index()] += 1;
    }

    /// Lifts one link-down fault from `channel`. The channel serves
    /// again once **every** overlapping fault has lifted; the caller
    /// should then [`ChannelPool::serve_channel`] it.
    pub fn set_link_up(&mut self, channel: ChannelId) {
        let ci = channel.index();
        debug_assert!(self.link_down[ci] > 0, "link-up without a matching down");
        self.link_down[ci] -= 1;
    }

    /// Whether `channel` is currently down.
    pub fn is_link_down(&self, channel: ChannelId) -> bool {
        self.link_down[channel.index()] > 0
    }

    /// Whether `channel` is currently unoccupied — the live congestion
    /// signal (together with [`ChannelPool::waiting_on`]) that adaptive
    /// uplink policies score candidate slots by.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn is_free(&self, channel: ChannelId) -> bool {
        self.free[channel.index()]
    }

    /// Moves a waiting (not running, not done) task onto a new channel
    /// path, preserving its enqueue timestamp so time spent waiting out
    /// a fault still counts as queue wait. If the task was queued it is
    /// re-queued on the new path's channels; the caller should
    /// [`ChannelPool::poke`] it afterwards to start it if possible.
    ///
    /// # Panics
    ///
    /// Panics if the new path is empty or references an unknown
    /// channel; debug-panics if the task is running or done.
    pub fn reroute(&mut self, task: u32, new_path: Vec<ChannelId>) {
        assert!(!new_path.is_empty(), "a task needs at least one channel");
        assert!(
            new_path.iter().all(|c| c.index() < self.free.len()),
            "path references an unknown channel"
        );
        let t = task as usize;
        debug_assert!(
            matches!(self.state[t], TaskState::Pending | TaskState::Ready),
            "only waiting tasks can be re-routed"
        );
        let was_enqueued = self.enqueued_at[t].is_some();
        if was_enqueued {
            for i in 0..self.paths[t].len() {
                let ci = self.paths[t][i].index();
                self.remove_waiter(ci, task);
            }
        }
        self.paths[t] = new_path;
        if was_enqueued {
            for i in 0..self.paths[t].len() {
                let ci = self.paths[t][i].index();
                self.enqueue_waiter(ci, task);
                self.max_waiting = self.max_waiting.max(self.waiters[ci].len());
            }
        }
    }

    /// Tries to start a `Ready` task under the normal
    /// (non-forced) policy — e.g. after a re-route moved it onto free
    /// channels. Returns `true` if it started; `false` leaves it queued.
    pub fn poke(&mut self, task: u32, now: Seconds, trace: &mut SimTrace) -> bool {
        self.try_start(task, now, false, trace)
    }

    /// Whether `task` is currently occupying its channels.
    pub fn is_running(&self, task: u32) -> bool {
        self.state[task as usize] == TaskState::Running
    }

    /// Whether `task` has completed.
    pub fn is_done(&self, task: u32) -> bool {
        self.state[task as usize] == TaskState::Done
    }

    /// When `task` last acquired its channels.
    pub fn started_at(&self, task: u32) -> Seconds {
        self.started_at[task as usize]
    }

    /// Total busy time per channel.
    pub fn busy(&self) -> &[Seconds] {
        &self.busy
    }

    /// Busy intervals per channel, in completion order.
    pub fn into_intervals(self) -> Vec<Vec<BusyInterval>> {
        self.intervals
    }

    /// Takes the per-channel busy intervals out of the pool without
    /// consuming it, leaving an empty interval table behind (rebuilt by
    /// the next [`ChannelPool::reset`]). The arena path's replacement
    /// for [`ChannelPool::into_intervals`].
    pub fn take_intervals(&mut self) -> Vec<Vec<BusyInterval>> {
        std::mem::take(&mut self.intervals)
    }

    /// Total queue wait charged to each channel: every started task that
    /// had to wait contributes its full wait to **each** channel of its
    /// path.
    pub fn queue_wait(&self) -> &[Seconds] {
        &self.queue_wait
    }

    /// High-water mark across the per-channel waiter queues.
    pub fn max_waiting(&self) -> usize {
        self.max_waiting
    }

    /// Current length of `channel`'s waiter queue — the congestion
    /// signal the fabric engine samples into per-switch queue depths.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn waiting_on(&self, channel: ChannelId) -> usize {
        self.waiters[channel.index()].len()
    }

    /// Number of force-starts used to break reservation stalls.
    pub fn force_starts(&self) -> u64 {
        self.force_starts
    }
}

/// One GPU's exclusive compute stream: at most one task at a time, in
/// readiness order, with every duration stretched by a slowdown factor.
///
/// The slowdown models the forwarding-occupancy tax of detour routes:
/// the store-and-forward kernel holds SMs, so co-resident compute runs
/// at `1 / (1 - occupied_fraction)` of its nominal time (Fig. 15).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeStream {
    slowdown: f64,
    free: bool,
    waiters: VecDeque<u32>,
    busy: Seconds,
    max_waiting: usize,
}

impl Default for ComputeStream {
    fn default() -> Self {
        ComputeStream::new()
    }
}

impl ComputeStream {
    /// A stream at nominal speed.
    pub fn new() -> Self {
        ComputeStream::with_slowdown(1.0)
    }

    /// A stream whose tasks run `slowdown`× longer than nominal.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1.0`.
    pub fn with_slowdown(slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1.0");
        ComputeStream {
            slowdown,
            free: true,
            waiters: VecDeque::new(),
            busy: Seconds::ZERO,
            max_waiting: 0,
        }
    }

    /// The stream's slowdown factor.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Re-sets the slowdown factor (a straggler window opening or
    /// closing). Affects tasks scaled after the call; the fault driver
    /// rescales in-flight completions itself.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown < 1.0`.
    pub fn set_slowdown(&mut self, slowdown: f64) {
        assert!(slowdown >= 1.0, "slowdown must be >= 1.0");
        self.slowdown = slowdown;
    }

    /// A nominal duration stretched by the slowdown factor.
    pub fn scale(&self, nominal: Seconds) -> Seconds {
        nominal * self.slowdown
    }

    /// Tries to acquire the stream for `task`. Returns `true` if the
    /// task starts now (the caller schedules its completion after
    /// [`ComputeStream::scale`]d duration); otherwise it queues FIFO.
    pub fn acquire(&mut self, task: u32) -> bool {
        if self.free {
            self.free = false;
            true
        } else {
            self.waiters.push_back(task);
            self.max_waiting = self.max_waiting.max(self.waiters.len());
            false
        }
    }

    /// Releases the stream after a task ran for `occupancy` (already
    /// scaled). If a waiter exists it immediately takes the stream, and
    /// its id is returned for the caller to start.
    pub fn release(&mut self, occupancy: Seconds) -> Option<u32> {
        self.busy += occupancy;
        match self.waiters.pop_front() {
            Some(next) => Some(next),
            None => {
                self.free = true;
                None
            }
        }
    }

    /// Total busy time of the stream.
    pub fn busy(&self) -> Seconds {
        self.busy
    }

    /// High-water mark of the stream's waiter queue.
    pub fn max_waiting(&self) -> usize {
        self.max_waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(channels: usize, arb: Arbitration) -> (ChannelPool, SimTrace) {
        (ChannelPool::new(channels, arb), SimTrace::default())
    }

    fn us(t: f64) -> Seconds {
        Seconds::from_micros(t)
    }

    #[test]
    fn fifo_serves_in_readiness_order() {
        let (mut p, mut tr) = pool(1, Arbitration::FifoHol);
        let a = p.add_task(vec![ChannelId(0)], (0, 0));
        let b = p.add_task(vec![ChannelId(0)], (1, 1));
        assert!(p.mark_ready(a, us(0.0), &mut tr));
        assert!(!p.mark_ready(b, us(0.0), &mut tr)); // queued behind a
        p.complete(a, us(5.0));
        let mut started = Vec::new();
        p.serve(a, us(5.0), &mut tr, &mut started);
        assert_eq!(started, vec![b]);
        assert_eq!(p.started_at(b), us(5.0));
        // b waited 5µs; the wait is charged to channel 0.
        assert_eq!(p.queue_wait()[0], us(5.0));
        assert!(tr
            .records()
            .any(|r| matches!(r, TraceRecord::QueueWait { .. })));
    }

    #[test]
    fn chunk_priority_reserves_for_the_oldest_chunk() {
        // Two channels; the old-chunk task needs both, the young-chunk
        // task only one. When channel 0 frees, it must idle (reserved)
        // rather than admit the young task.
        let (mut p, mut tr) = pool(2, Arbitration::ChunkPriority);
        let blocker = p.add_task(vec![ChannelId(1)], (0, 0));
        let old = p.add_task(vec![ChannelId(0), ChannelId(1)], (1, 1));
        let young = p.add_task(vec![ChannelId(0)], (2, 2));
        assert!(p.mark_ready(blocker, us(0.0), &mut tr));
        assert!(!p.mark_ready(old, us(0.0), &mut tr)); // ch1 busy
        assert!(!p.mark_ready(young, us(0.0), &mut tr)); // yields to old on ch0
        p.complete(blocker, us(3.0));
        let mut started = Vec::new();
        p.serve(blocker, us(3.0), &mut tr, &mut started);
        assert_eq!(started, vec![old], "the reserved old chunk starts first");
        p.complete(old, us(7.0));
        started.clear();
        p.serve(old, us(7.0), &mut tr, &mut started);
        assert_eq!(started, vec![young]);
    }

    #[test]
    fn force_start_breaks_reservation_stalls() {
        let (mut p, mut tr) = pool(1, Arbitration::ChunkPriority);
        // old's channel never frees by itself because nothing runs.
        let runner = p.add_task(vec![ChannelId(0)], (5, 0));
        let _idle = p.add_task(vec![ChannelId(0)], (9, 1));
        // runner yields to nobody but pretend a stall: mark only via a
        // scenario where priority blocks — here simply exercise the API.
        assert!(p.mark_ready(runner, us(0.0), &mut tr));
        p.complete(runner, us(1.0));
        assert_eq!(p.force_starts(), 0);
        assert!(p.force_start(us(1.0), &mut tr).is_none()); // nothing ready
    }

    #[test]
    fn busy_intervals_cover_occupancy() {
        let (mut p, mut tr) = pool(1, Arbitration::FifoHol);
        let a = p.add_task(vec![ChannelId(0)], (0, 0));
        assert!(p.mark_ready(a, us(2.0), &mut tr));
        p.complete(a, us(6.0));
        assert_eq!(p.busy()[0], us(6.0) - us(2.0));
        let iv = p.into_intervals();
        assert_eq!(iv[0].len(), 1);
        assert_eq!(iv[0][0].start, us(2.0));
        assert_eq!(iv[0][0].end, us(6.0));
    }

    #[test]
    fn down_links_reject_grants_until_up() {
        let (mut p, mut tr) = pool(1, Arbitration::FifoHol);
        let a = p.add_task(vec![ChannelId(0)], (0, 0));
        p.set_link_down(ChannelId(0));
        assert!(p.is_link_down(ChannelId(0)));
        assert!(!p.mark_ready(a, us(0.0), &mut tr)); // queued: channel down
        assert!(!p.poke(a, us(1.0), &mut tr));
        assert!(
            p.force_start(us(1.0), &mut tr).is_none(),
            "force-starts must respect down links"
        );
        p.set_link_up(ChannelId(0));
        let mut started = Vec::new();
        p.serve_channel(ChannelId(0), us(4.0), &mut tr, &mut started);
        assert_eq!(started, vec![a]);
        // the wait across the downtime is charged as queue wait
        assert_eq!(p.queue_wait()[0], us(4.0));
    }

    #[test]
    fn overlapping_downs_need_every_up() {
        let (mut p, mut tr) = pool(1, Arbitration::FifoHol);
        let a = p.add_task(vec![ChannelId(0)], (0, 0));
        p.set_link_down(ChannelId(0));
        p.set_link_down(ChannelId(0));
        p.set_link_up(ChannelId(0));
        assert!(p.is_link_down(ChannelId(0)), "one fault still active");
        assert!(!p.mark_ready(a, us(0.0), &mut tr));
        p.set_link_up(ChannelId(0));
        assert!(!p.is_link_down(ChannelId(0)));
        assert!(p.poke(a, us(1.0), &mut tr));
    }

    #[test]
    fn reroute_moves_a_waiting_task_to_its_new_queues() {
        let (mut p, mut tr) = pool(2, Arbitration::FifoHol);
        let blocker = p.add_task(vec![ChannelId(0)], (0, 0));
        let b = p.add_task(vec![ChannelId(0)], (1, 1));
        assert!(p.mark_ready(blocker, us(0.0), &mut tr));
        assert!(!p.mark_ready(b, us(0.0), &mut tr)); // queued on ch0
        p.reroute(b, vec![ChannelId(1)]);
        assert_eq!(p.path(b), &[ChannelId(1)]);
        // ch1 is free, so a poke starts b immediately, and the wait
        // accumulated since the original enqueue survives the re-route.
        assert!(p.poke(b, us(2.0), &mut tr));
        assert!(p.is_running(b));
        assert_eq!(p.queue_wait()[1], us(2.0));
        // completing the blocker must not try to serve b on ch0 anymore
        p.complete(blocker, us(3.0));
        let mut started = Vec::new();
        p.serve(blocker, us(3.0), &mut tr, &mut started);
        assert!(started.is_empty());
        assert!(!p.is_done(b));
    }

    #[test]
    fn compute_stream_serializes_and_scales() {
        let mut s = ComputeStream::with_slowdown(2.0);
        assert_eq!(s.scale(us(3.0)), us(6.0));
        assert!(s.acquire(0));
        assert!(!s.acquire(1)); // queued
        assert_eq!(s.release(us(6.0)), Some(1)); // 1 takes over immediately
        assert_eq!(s.release(us(6.0)), None);
        assert_eq!(s.busy(), us(12.0));
        assert_eq!(s.max_waiting(), 1);
    }

    #[test]
    fn set_slowdown_rescales_future_tasks() {
        let mut s = ComputeStream::new();
        assert_eq!(s.scale(us(3.0)), us(3.0));
        s.set_slowdown(1.5);
        assert_eq!(s.scale(us(4.0)), us(6.0));
    }
}
