//! The `ccube` command-line tool: drive the reproduction without writing
//! code.
//!
//! ```text
//! ccube figures [out_dir]          regenerate every paper figure (CSV)
//! ccube compare <network> [batch] [--low]
//!                                  mode table (B/C1/C2/R/CC) for a network
//! ccube scaleout [max_p] [mib...]  Fig. 14 sweep on the switch fabric
//! ccube search                     best schedule per topology (policy search)
//! ccube timeline [mib]             ASCII Fig. 7 timelines on the DGX-1
//! ccube train [iterations]         threaded C-Cube training loop
//! ccube rings                      DGX-1 Hamiltonian ring decomposition
//! ccube faults [out] [--seed N] [--smoke]
//!                                  resilience sweep under sampled fault plans
//! ccube faults --shrink <seed>     1-minimal reproducer of the seed's plan
//! ccube trace [out] [--json] [--seed N]
//!                                  faulted C1 trace (CSV or Chrome trace_event)
//! ccube trace --html <out.html>    same run as a self-contained HTML viewer
//! ccube trace --diff <a> <b> [--html <out.html>]
//!                                  compare two traces (CSV paths or live-run
//!                                  seeds; first divergence, per-kind deltas;
//!                                  --html: side-by-side viewer)
//! ccube faults --html <out.html>   fabric-failover demo viewer (k=1 vs k=2)
//! ccube lint [case|all] [--json]   static schedule analyzer (CC001.. lints)
//! ```
//!
//! Sweep-backed commands (`figures`, `scaleout`, `search`, `faults`)
//! accept `--threads N` (default: the machine's available parallelism);
//! the output is bit-identical at any worker count. DES-backed commands
//! (`figures`, `scaleout`, `faults`, `trace`) accept `--fabric
//! {approx,switch}` to pick the network model: `approx` (default) is the
//! channel approximation, `switch` runs the componentized switch fabric
//! (explicit NIC/switch agents with per-port queues); at the passthrough
//! configuration the two produce identical results. The spine/leaf shape
//! of the switch fabric is set with `--radix N`, `--spines N`,
//! `--uplinks N` and `--uplink-policy {hash,least-queued,failover}`
//! (each implies `--fabric switch`).

use ccube::experiments;
use ccube::pipeline::{Mode, TrainingPipeline};
use ccube_dnn::{resnet50, vgg16, zfnet, ComputeModel, NetworkModel};
use ccube_topology::ByteSize;
use std::path::PathBuf;
use std::process::ExitCode;

/// The complete help text. Kept as one audited constant: the
/// doc-consistency test (`tests/doc_consistency.rs`) checks every flag
/// the subcommands actually parse appears here and in README.md's
/// subcommand table.
const USAGE: &str = "\
usage: ccube <command>

commands:
  figures [out_dir]                regenerate every paper figure (CSV)
  compare <network> [batch] [--low] mode table for zfnet|vgg16|resnet50
  scaleout [max_p] [mib...]        Fig. 14 sweep on the switch fabric
  search [--bounds]                best schedule per topology (policy search;
                                   --bounds: skip candidates by lower bound)
  timeline [mib]                   ASCII Fig. 7 timelines on the DGX-1
  train [iterations]               threaded C-Cube training loop
  rings                            DGX-1 Hamiltonian ring decomposition
  faults [out] [--seed N] [--smoke] resilience sweep under sampled fault plans
  faults --shrink <seed>           1-minimal reproducer of the seed's plan
  faults --html <out.html>         fabric-failover demo viewer: k=1 vs k=2
                                   uplinks under the same seeded outage
  trace [out] [--json] [--seed N]  faulted C1 trace (CSV or Chrome JSON)
  trace --html <out.html>          the same run as a self-contained HTML
                                   trace viewer (Gantt lanes, zoom, faults)
  trace --diff <a> <b> [--html <out.html>]
                                   compare two traces; each side is a
                                   trace-CSV path or a live-run seed
                                   (--html: side-by-side diff viewer)
  lint [case|all] [--json]         static schedule analyzer (CC001.. lints)
  lint --physical [case|all]       physical-layer analyzer (CC015.. lints:
                                   fabric hazards, bounds, fault severance)

figures/scaleout/search/faults take --threads N (default: all cores);
results are bit-identical at any worker count.
figures/scaleout/faults/trace take --fabric {approx,switch}:
the channel approximation (default) or the componentized switch fabric.
the spine/leaf fabric is shaped with --radix N, --spines N, --uplinks N
and --uplink-policy {hash,least-queued,failover} (imply --fabric switch).
every command takes --no-prep-cache: disable the sweep-wide
preparation cache (same results, cold lowering every point).";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn network_by_name(name: &str) -> Option<NetworkModel> {
    match name {
        "zfnet" => Some(zfnet()),
        "vgg16" => Some(vgg16()),
        "resnet50" => Some(resnet50()),
        _ => None,
    }
}

fn cmd_figures(args: &[String], threads: usize) -> ExitCode {
    let (args, fabric) = match fabric_from_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("figures: {e}");
            return ExitCode::from(2);
        }
    };
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    match experiments::run_all_with_network(&dir, threads, fabric) {
        Ok(paths) => {
            println!("wrote {} CSV files to {}", paths.len(), dir.display());
            for p in paths {
                println!("  {}", p.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("compare: which network? (zfnet | vgg16 | resnet50)");
        return ExitCode::from(2);
    };
    let Some(net) = network_by_name(name) else {
        eprintln!("compare: unknown network {name:?} (zfnet | vgg16 | resnet50)");
        return ExitCode::from(2);
    };
    let batch: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let low = args.iter().any(|a| a == "--low");
    let scale = if low { 0.25 } else { 1.0 };
    let pipeline = TrainingPipeline::dgx1_with(&net, batch, &ComputeModel::v100(), scale);
    println!(
        "{net} on an 8-GPU DGX-1 model, batch {batch}, {} bandwidth",
        if low { "low" } else { "high" }
    );
    println!(
        "{:<4} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "mode", "comm", "turnaround", "iteration", "bubbles", "norm."
    );
    for r in pipeline.all_modes() {
        println!(
            "{:<4} {:>12} {:>12} {:>12} {:>10} {:>8.3}",
            r.mode.label(),
            format!("{}", r.t_comm),
            format!("{}", r.turnaround),
            format!("{}", r.t_iter),
            format!("{}", r.total_bubble),
            r.normalized_perf,
        );
    }
    let b = pipeline.iteration(Mode::Baseline);
    let cc = pipeline.iteration(Mode::CCube);
    println!(
        "C-Cube over baseline tree: +{:.1}%",
        (b.t_iter / cc.t_iter - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_scaleout(args: &[String], threads: usize) -> ExitCode {
    let (args, fabric) = match fabric_from_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("scaleout: {e}");
            return ExitCode::from(2);
        }
    };
    let max_p: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(128);
    let sizes: Vec<ByteSize> = {
        let explicit: Vec<u64> = args.iter().skip(1).filter_map(|s| s.parse().ok()).collect();
        if explicit.is_empty() {
            vec![ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)]
        } else {
            explicit.into_iter().map(ByteSize::mib).collect()
        }
    };
    let mut ps = Vec::new();
    let mut p = 4;
    while p <= max_p {
        ps.push(p);
        p *= 2;
    }
    for row in experiments::fig14::run_with_threads_net(&ps, &sizes, threads, fabric) {
        println!("{row}");
    }
    ExitCode::SUCCESS
}

fn cmd_search(args: &[String], threads: usize) -> ExitCode {
    let bounds = args.iter().any(|a| a == "--bounds");
    println!("schedule policy search: topology x tree shape x arbitration x chunks");
    let rows = if bounds {
        let outcome = experiments::policy_search::run_bounded();
        println!(
            "static gate pruned {} invalid candidate(s) before simulation:",
            outcome.pruned.len()
        );
        for p in &outcome.pruned {
            println!("  {p}");
        }
        println!(
            "lower bounds skipped {} of {} candidate(s) ({} simulated):",
            outcome.skipped.len(),
            outcome.candidates,
            outcome.simulated
        );
        for s in &outcome.skipped {
            println!("  {s}");
        }
        outcome.rows
    } else {
        let outcome = experiments::policy_search::run_full(threads);
        println!(
            "static gate pruned {} invalid candidate(s) before simulation:",
            outcome.pruned.len()
        );
        for p in &outcome.pruned {
            println!("  {p}");
        }
        outcome.rows
    };
    for row in &rows {
        println!("{row}");
    }
    for topo in ["dgx1", "hier16"] {
        let best = experiments::policy_search::best_for(&rows, topo);
        println!(
            "{topo}: best schedule is {} / {} / K={} (makespan {}, queue wait {})",
            best.shape,
            experiments::policy_search::arbitration_name(best.arbitration),
            best.k,
            best.makespan,
            best.queue_wait
        );
    }
    ExitCode::SUCCESS
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    use ccube_collectives::cost::{k_opt, CostParams};
    use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
    use ccube_sim::{render_timeline, simulate, SimOptions, TimelineOptions};
    use ccube_topology::dgx1;

    let mib: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(64);
    let n = ByteSize::mib(mib);
    let topo = dgx1();
    let dt = DoubleBinaryTree::new(8).expect("8 ranks");
    let k = k_opt(&CostParams::nvlink(), 8, n).div_ceil(2).max(1) * 2;
    for (title, overlap) in [
        ("baseline double tree (B)", Overlap::None),
        ("overlapped double tree (C1)", Overlap::ReductionBroadcast),
    ] {
        let s = tree_allreduce(dt.trees(), &Chunking::even(n, k), overlap);
        let e = Embedding::dgx1_double_tree(&topo, &s).expect("embeddable");
        let report = simulate(&topo, &s, &e, &SimOptions::default()).expect("simulates");
        println!("== {title}: {n} in {k} chunks ==");
        println!(
            "{}",
            render_timeline(&s, &report, &TimelineOptions::default())
        );
        println!(
            "makespan {}   turnaround {}\n",
            report.makespan(),
            report.turnaround()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_train(args: &[String]) -> ExitCode {
    use ccube_runtime::{serial_reference, Trainer, TrainerConfig};
    let iterations: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let config = TrainerConfig {
        num_ranks: 8,
        num_params: 8192,
        num_chunks: 32,
        layer_chunk_table: vec![2, 4, 8, 12, 18, 25, 32],
        learning_rate: 0.05,
    };
    let mut trainer = match Trainer::new(config.clone()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("train: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut chained = 0usize;
    for _ in 0..iterations {
        match trainer.step() {
            Ok(early) => chained += early,
            Err(e) => {
                eprintln!("train: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let ok =
        trainer.replicas_agree() && trainer.params(0) == &serial_reference(&config, iterations)[..];
    println!(
        "{iterations} iterations, {chained} chained layer-starts, replicas {}",
        if ok {
            "bit-identical (== serial)"
        } else {
            "DIVERGED"
        }
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Splits one `--name value` / `--name=value` flag out of `args`,
/// returning the remaining args and the (last) value if present.
fn split_flag(args: &[String], name: &str) -> Result<(Vec<String>, Option<String>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let eq = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == name {
            let v = iter
                .next()
                .ok_or_else(|| format!("{name} requires a value"))?;
            value = Some(v.clone());
        } else if let Some(v) = arg.strip_prefix(&eq) {
            value = Some(v.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, value))
}

/// Splits the network-model flags out of `args`, defaulting to the
/// channel approximation. `--fabric switch` selects the componentized
/// switch fabric — at its passthrough configuration it reproduces the
/// approximation exactly, so the flag is both an end-to-end equivalence
/// check and the hook for fabric experiments. The shaping flags
/// `--radix N`, `--spines N`, `--uplinks N` and `--uplink-policy
/// {hash,least-queued,failover}` configure the spine/leaf fabric (and
/// imply `--fabric switch` when it is not stated); `--uplinks N` or
/// `--spines N` above 1 without `--radix` defaults the radix to 4 so
/// the fabric actually has leaves to uplink.
fn fabric_from_args(args: &[String]) -> Result<(Vec<String>, ccube_sim::NetworkModel), String> {
    let (args, fabric) = split_flag(args, "--fabric")?;
    let (args, radix) = split_flag(&args, "--radix")?;
    let (args, spines) = split_flag(&args, "--spines")?;
    let (args, uplinks) = split_flag(&args, "--uplinks")?;
    let (args, policy) = split_flag(&args, "--uplink-policy")?;

    let shaped = radix.is_some() || spines.is_some() || uplinks.is_some() || policy.is_some();
    let parse_pos = |v: &String, what: &str| -> Result<usize, String> {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("{what}: {v:?} is not a positive integer")),
        }
    };
    let mut spec = ccube_sim::FabricSpec::passthrough();
    if let Some(v) = &radix {
        spec.radix = Some(parse_pos(v, "--radix")?);
    }
    if let Some(v) = &uplinks {
        spec.uplinks = parse_pos(v, "--uplinks")?;
    }
    spec.spines = match &spines {
        Some(v) => parse_pos(v, "--spines")?,
        // One spine per slot unless stated: the homogeneous spine/leaf
        // shape the fabric-resilience study uses.
        None => spec.uplinks,
    };
    if let Some(v) = &policy {
        spec.uplink_policy = match v.as_str() {
            "hash" => ccube_sim::UplinkPolicy::Hash,
            "least-queued" => ccube_sim::UplinkPolicy::LeastQueued,
            "failover" => ccube_sim::UplinkPolicy::Failover,
            other => {
                return Err(format!(
                    "--uplink-policy: unknown policy {other:?} (hash | least-queued | failover)"
                ))
            }
        };
    }
    match fabric.as_deref() {
        Some("approx") if shaped => Err(
            "--radix/--spines/--uplinks/--uplink-policy shape the switch fabric; \
             they cannot combine with --fabric approx"
                .to_string(),
        ),
        None if !shaped => Ok((args, ccube_sim::NetworkModel::ChannelApprox)),
        Some("approx") => Ok((args, ccube_sim::NetworkModel::ChannelApprox)),
        None | Some("switch") => {
            if (spec.uplinks > 1 || spec.spines > 1) && spec.radix.is_none() {
                spec.radix = Some(4);
            }
            Ok((args, ccube_sim::NetworkModel::SwitchFabric(spec)))
        }
        Some(v) => Err(format!("--fabric: unknown model {v:?} (approx | switch)")),
    }
}

/// Splits a `--seed N` / `--seed=N` flag out of `args`, defaulting to
/// `default`.
fn seed_from_args(args: &[String], default: u64) -> Result<(Vec<String>, u64), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut seed = default;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--seed" {
            Some(
                iter.next()
                    .ok_or_else(|| "--seed requires a value".to_string())?
                    .as_str(),
            )
        } else {
            arg.strip_prefix("--seed=")
        };
        match value {
            Some(v) => {
                seed = v
                    .parse()
                    .map_err(|_| format!("--seed: {v:?} is not a valid u64"))?;
            }
            None => rest.push(arg.clone()),
        }
    }
    Ok((rest, seed))
}

fn write_or_print(out: Option<&String>, content: &str) -> ExitCode {
    match out {
        Some(path) => match std::fs::write(path, content) {
            Ok(()) => {
                println!("wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{content}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_faults(args: &[String], threads: usize) -> ExitCode {
    use ccube::experiments::resilience;
    let (args, fabric) = match fabric_from_args(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("faults: {e}");
            return ExitCode::from(2);
        }
    };
    let (args, shrink) = match split_flag(&args, "--shrink") {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("faults: {e} (the seed of the plan to shrink)");
            return ExitCode::from(2);
        }
    };
    if let Some(v) = shrink {
        let Ok(seed) = v.parse::<u64>() else {
            eprintln!("faults --shrink: {v:?} is not a valid u64 seed");
            return ExitCode::from(2);
        };
        return cmd_faults_shrink(seed, fabric);
    }
    let (args, seed) = match seed_from_args(&args, resilience::DEFAULT_SEED) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("faults: {e}");
            return ExitCode::from(2);
        }
    };
    let (args, html) = match split_flag(&args, "--html") {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("faults: {e} (the viewer output path)");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = html {
        // The explorable fabric-failover figure: k=1 vs k=2 uplinks
        // under the same seeded slot-0 outage, side by side. The demo
        // is inherently a switch-fabric run, so --fabric is ignored.
        return write_or_print(Some(&path), &resilience::fabric_demo_html(seed));
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args.iter().find(|a| !a.starts_with("--"));
    let rows = if smoke {
        resilience::run_smoke_network(fabric)
    } else {
        resilience::run_with_network(seed, threads, fabric)
    };
    if out.is_none() {
        for row in &rows {
            println!("{row}");
        }
        return ExitCode::SUCCESS;
    }
    write_or_print(out, &resilience::to_csv(&rows))
}

/// Renders one fault event as a human-readable line.
fn describe_event(e: &ccube_sim::FaultEvent) -> String {
    use ccube_sim::FaultEvent as E;
    use ccube_topology::Seconds;
    let window = |from: Seconds, until: Seconds| {
        if until.as_secs_f64().is_infinite() {
            format!("[{from}, forever)")
        } else {
            format!("[{from}, {until})")
        }
    };
    match *e {
        E::LinkDown {
            channel,
            from,
            until,
        } => format!("link-down    channel {} {}", channel.0, window(from, until)),
        E::Degraded {
            channel,
            from,
            until,
            rate,
        } => format!(
            "degraded     channel {} rate {:.2} {}",
            channel.0,
            rate,
            window(from, until)
        ),
        E::Straggler {
            gpu,
            from,
            until,
            slowdown,
        } => format!(
            "straggler    gpu {} x{:.2} {}",
            gpu.0,
            slowdown,
            window(from, until)
        ),
        E::UplinkDown {
            leaf,
            uplink,
            from,
            until,
        } => format!(
            "uplink-down  leaf {leaf} slot {uplink} {}",
            window(from, until)
        ),
        E::SwitchDown { spine, from, until } => {
            format!("switch-down  spine {spine} {}", window(from, until))
        }
    }
}

/// `ccube faults --shrink <seed>`: sample the severity-3 plan of `seed`
/// on the hierarchical C1 workload (plus uplink outages when the fabric
/// is a multi-leaf spine/leaf), replay it, and delta-debug the plan down
/// to a 1-minimal reproducer — removing any single remaining event no
/// longer reproduces the faulted outcome (the typed failure, or the full
/// faulted makespan).
fn cmd_faults_shrink(seed: u64, fabric: ccube_sim::NetworkModel) -> ExitCode {
    use ccube_collectives::{tree_allreduce, Chunking, DoubleBinaryTree, Embedding, Overlap};
    use ccube_sim::{simulate_faulted, FaultModel, FaultPlan, SimError, SimOptions, SimRng};
    use ccube_topology::hierarchical;

    // The C1 collective on hierarchical(16): the same workload the
    // resilience grid stresses, so a shrunk plan maps straight onto a
    // grid row.
    let topo = hierarchical(16);
    let dt = DoubleBinaryTree::new(16).expect("16 ranks");
    let s = tree_allreduce(
        dt.trees(),
        &Chunking::even(ByteSize::mib(16), 16),
        Overlap::ReductionBroadcast,
    );
    let e = Embedding::nic(&topo, &s).expect("embeds");
    let opts = SimOptions::scale_out().with_network(fabric);
    let healthy =
        simulate_faulted(&topo, &s, &e, &opts, &FaultPlan::empty()).expect("healthy run simulates");
    let h = healthy.makespan;

    let mut events = FaultPlan::sample(&FaultModel::severity(3, h), &topo, &SimRng::new(seed))
        .events()
        .to_vec();
    if let ccube_sim::NetworkModel::SwitchFabric(spec) = fabric {
        if let Some(radix) = spec.radix {
            let leaves = topo.num_gpus().div_ceil(radix);
            events.extend_from_slice(
                FaultPlan::sample_uplinks(
                    leaves,
                    spec.uplinks,
                    h * 0.5,
                    h * 0.25,
                    h,
                    &SimRng::new(seed),
                )
                .events(),
            );
        }
    }
    let full = match FaultPlan::new(events) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("faults --shrink: sampled plan is invalid: {e}");
            return ExitCode::FAILURE;
        }
    };

    let run = |p: &FaultPlan| simulate_faulted(&topo, &s, &e, &opts, p);
    let minimal = match run(&full) {
        Ok(r) => {
            let target = r.makespan;
            println!(
                "seed {seed}: {} sampled events, faulted makespan {} (slowdown {:.3})",
                full.len(),
                target,
                target / h
            );
            // Keep an event iff dropping it no longer reaches the full
            // faulted makespan; a plan that turns unroutable without one
            // of its repairs still "fails".
            full.shrink(|p| run(p).map(|r| r.makespan >= target).unwrap_or(true))
        }
        Err(SimError::Unroutable { .. }) => {
            println!(
                "seed {seed}: {} sampled events, outcome: unroutable",
                full.len()
            );
            full.shrink(|p| matches!(run(p), Err(SimError::Unroutable { .. })))
        }
        Err(err) => {
            eprintln!("faults --shrink: full plan failed unexpectedly: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "1-minimal reproducer: {} of {} events",
        minimal.len(),
        full.len()
    );
    for ev in minimal.events() {
        println!("  {}", describe_event(ev));
    }
    ExitCode::SUCCESS
}

/// `ccube trace --diff <a> <b>`: compare two traces and report the first
/// diverging line, per-record-kind count deltas, and busy / horizon
/// drift. Each side is either a trace-CSV path, or a seed (any u64) —
/// seeds are re-simulated in-process, so `ccube trace --diff 7 8`
/// compares two live runs without temp files, and `ccube trace --diff 7
/// before.csv` checks a live run against a saved baseline. With `--html
/// <out.html>` the same comparison is written as a side-by-side HTML
/// viewer. Exit code 0 when identical, 1 when they differ.
fn cmd_trace_diff(
    sides: &[&String],
    fabric: ccube_sim::NetworkModel,
    html: Option<&String>,
) -> ExitCode {
    use ccube::experiments::resilience;
    let [left, right] = sides else {
        eprintln!("trace --diff: expected exactly two sides (trace-CSV paths or seeds)");
        return ExitCode::from(2);
    };
    // A side that parses as a u64 is a seed: re-simulate it in-process.
    let side = |arg: &String| -> Option<(ccube_sim::SimTrace, ccube_sim::LaneLabels)> {
        if let Ok(seed) = arg.parse::<u64>() {
            match resilience::demo_trace(seed, fabric) {
                Ok(report) => Some((
                    report.trace,
                    resilience::demo_labels(format!("seed {seed}"), &fabric),
                )),
                Err(e) => {
                    eprintln!("trace --diff: seed {seed}: faulted run failed: {e}");
                    None
                }
            }
        } else {
            let text = match std::fs::read_to_string(arg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("trace --diff: failed to read {arg}: {e}");
                    return None;
                }
            };
            match ccube_sim::SimTrace::from_csv(&text) {
                Ok(t) => Some((t, resilience::demo_labels(arg.clone(), &fabric))),
                Err(e) => {
                    eprintln!("trace --diff: {arg}: {e}");
                    None
                }
            }
        }
    };
    let (Some((lt, ll)), Some((rt, rl))) = (side(left), side(right)) else {
        return ExitCode::FAILURE;
    };
    let diff = ccube_sim::diff_csv(&lt.to_csv(), &rt.to_csv());
    if let Some(path) = html {
        let doc = ccube_sim::diff_to_html((&lt, &ll), (&rt, &rl));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("trace --diff: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "traces are {}; wrote {path}",
            if diff.is_identical() {
                "identical"
            } else {
                "different"
            }
        );
    } else if diff.is_identical() {
        println!("traces are identical");
    } else {
        print!("{diff}");
    }
    if diff.is_identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_trace(args: &[String]) -> ExitCode {
    use ccube::experiments::resilience;
    let parsed = fabric_from_args(args)
        .and_then(|(args, fabric)| Ok((split_flag(&args, "--html")?, fabric)));
    let ((args, html), fabric) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trace: {e}");
            return ExitCode::from(2);
        }
    };
    if args.iter().any(|a| a == "--diff") {
        let sides: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        return cmd_trace_diff(&sides, fabric, html.as_ref());
    }
    let (args, seed) = match seed_from_args(&args, resilience::DEFAULT_SEED) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("trace: {e}");
            return ExitCode::from(2);
        }
    };
    let json = args.iter().any(|a| a == "--json");
    if json && html.is_some() {
        eprintln!("trace: --json and --html are mutually exclusive");
        return ExitCode::from(2);
    }
    let out = args.iter().find(|a| !a.starts_with("--"));
    let report = match resilience::demo_trace(seed, fabric) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace: faulted run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &html {
        let labels = resilience::demo_labels(format!("seed {seed}"), &fabric);
        return write_or_print(Some(path), &ccube_sim::to_html(&report.trace, &labels));
    }
    // Under the switch fabric the grant records carry port indices, so
    // label the Chrome-trace lanes accordingly.
    let lane = match fabric {
        ccube_sim::NetworkModel::ChannelApprox => "channel",
        ccube_sim::NetworkModel::SwitchFabric(_) => "port",
    };
    let content = if json {
        report.trace.to_chrome_json_labeled(lane)
    } else {
        report.trace.to_csv()
    };
    write_or_print(out, &content)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    use ccube::lint;
    let json = args.iter().any(|a| a == "--json");
    let physical = args.iter().any(|a| a == "--physical");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);
    // An explicitly named case gates on its own findings — DEMO or not —
    // so CI can assert a specific hazard. `all` exempts the DEMO cases,
    // whose errors are the point.
    let named = !matches!(which, None | Some("all"));
    let reports = match which {
        None | Some("all") => {
            if physical {
                lint::run_physical_all()
            } else {
                lint::run_all()
            }
        }
        Some(name) => {
            let case = if physical {
                lint::run_physical_case(name)
            } else {
                lint::run_case(name)
            };
            match case {
                Some(r) => vec![r],
                None => {
                    eprintln!("lint: unknown case {name:?}; available cases:");
                    let cases: &[(&str, &str)] = if physical {
                        &lint::PHYSICAL_CASES
                    } else {
                        &lint::CASES
                    };
                    for (n, d) in cases {
                        eprintln!("  {n:<20} {d}");
                    }
                    return ExitCode::from(2);
                }
            }
        }
    };
    if json {
        println!("{}", lint::to_json(&reports));
    } else {
        print!("{}", lint::to_text(&reports));
    }
    // Demo cases are expected to carry errors; the exit code of a full
    // run reflects only the shipped configurations (non-DEMO cases).
    let dirty = reports
        .iter()
        .any(|r| (named || !r.description.starts_with("DEMO")) && !r.report.is_clean());
    if dirty {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_rings() -> ExitCode {
    let topo = ccube_topology::dgx1();
    let rings = ccube_topology::disjoint_rings(&topo, 3);
    println!(
        "DGX-1 NVLink graph decomposes into {} Hamiltonian cycles:",
        rings.len()
    );
    for (i, ring) in rings.iter().enumerate() {
        let path: Vec<String> = ring.iter().map(|g| g.0.to_string()).collect();
        println!("  ring {i}: {} -> (back to {})", path.join(" -> "), path[0]);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    // The escape hatch for the sweep-wide preparation cache: with the
    // flag present every run re-gates and re-lowers from scratch.
    // Results are bit-identical either way (the equivalence contract);
    // the flag exists to prove it and to time the cold path.
    if let Some(pos) = raw.iter().position(|a| a == "--no-prep-cache") {
        raw.remove(pos);
        ccube_sim::set_prep_cache_enabled(false);
    }
    let (args, threads) = match ccube_sim::threads_from_args(&raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match command.as_str() {
        "figures" => cmd_figures(rest, threads),
        "compare" => cmd_compare(rest),
        "scaleout" => cmd_scaleout(rest, threads),
        "search" => cmd_search(rest, threads),
        "timeline" => cmd_timeline(rest),
        "train" => cmd_train(rest),
        "rings" => cmd_rings(),
        "faults" => cmd_faults(rest, threads),
        "trace" => cmd_trace(rest),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage()
        }
    }
}
