//! Multi-iteration training timeline co-simulation.
//!
//! [`TrainingPipeline`] prices one
//! steady-state iteration in closed form. This module rolls the same
//! model across *many* iterations with per-GPU compute heterogeneity —
//! the regime where the paper's Fig. 15 effect (detour GPUs computing
//! slightly slower) actually bites a synchronous system:
//!
//! * iteration `i`'s one-shot AllReduce starts only when the **slowest**
//!   GPU finishes backward (synchronous data parallelism);
//! * in the chained modes each GPU's next forward pass is gated per
//!   layer by the chunk arrivals, so a slow GPU both *starts* the
//!   collective later and *finishes* its chained forward later;
//! * iteration 0 has no inbound gradients, so the timeline exhibits a
//!   warm-up iteration followed by a steady state — which must agree
//!   with the closed-form model for homogeneous GPUs (tested).
//!
//! The roll-out executes on the workspace-wide DES machinery: every
//! forward layer and backward pass is an event on a
//! [`Kernel`], and each GPU is one exclusive
//! [`ComputeStream`] whose slowdown factor
//! models the Fig. 15 forwarding-occupancy tax — the same kernel and
//! resources [`ccube_sim::simulate`] and [`ccube_sim::simulate_system`]
//! run on.

use crate::arrivals::ChunkArrivals;
use crate::pipeline::{Mode, TrainingPipeline};
use ccube_collectives::Overlap;
use ccube_sim::{ComputeStream, Kernel};
use ccube_topology::Seconds;
use std::fmt;

/// The timeline of one multi-iteration run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Wall-clock time at which each iteration's parameters were fully
    /// updated everywhere (end of that iteration's collective *and* of
    /// every GPU's chained forward consuming it).
    pub iteration_ends: Vec<Seconds>,
    /// Per-GPU compute busy time over the whole run.
    pub gpu_busy: Vec<Seconds>,
    /// Total wall-clock time.
    pub makespan: Seconds,
}

impl TimelineReport {
    /// Number of iterations simulated.
    pub fn iterations(&self) -> usize {
        self.iteration_ends.len()
    }

    /// The steady-state iteration time: the spacing of the last two
    /// iteration boundaries.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two iterations were simulated.
    pub fn steady_iteration_time(&self) -> Seconds {
        let n = self.iteration_ends.len();
        assert!(n >= 2, "need at least two iterations for a steady state");
        self.iteration_ends[n - 1] - self.iteration_ends[n - 2]
    }

    /// Average iteration time over the whole run (includes warm-up).
    pub fn mean_iteration_time(&self) -> Seconds {
        Seconds::new(self.makespan.as_secs_f64() / self.iteration_ends.len() as f64)
    }

    /// Compute utilization of a GPU over the run.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn gpu_utilization(&self, gpu: usize) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.gpu_busy[gpu] / self.makespan
    }
}

impl fmt::Display for TimelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations in {} (steady {})",
            self.iterations(),
            self.makespan,
            if self.iterations() >= 2 {
                format!("{}", self.steady_iteration_time())
            } else {
                "n/a".to_string()
            }
        )
    }
}

/// Multi-iteration co-simulator over a [`TrainingPipeline`].
#[derive(Debug, Clone)]
pub struct TimelineSim<'a> {
    pipeline: &'a TrainingPipeline,
    mode: Mode,
    /// Per-GPU compute slowdown factors (≥ 1.0); 1.0 = nominal speed.
    /// Detour-forwarding GPUs get factors slightly above 1 (Fig. 15).
    compute_slowdown: Vec<f64>,
}

impl<'a> TimelineSim<'a> {
    /// Creates a timeline simulation with homogeneous GPUs.
    pub fn new(pipeline: &'a TrainingPipeline, mode: Mode, num_gpus: usize) -> Self {
        TimelineSim {
            pipeline,
            mode,
            compute_slowdown: vec![1.0; num_gpus],
        }
    }

    /// Sets per-GPU compute slowdown factors.
    ///
    /// # Panics
    ///
    /// Panics if any factor is below 1.0 or the vector is empty.
    #[must_use]
    pub fn with_slowdowns(mut self, factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty());
        assert!(factors.iter().all(|&f| f >= 1.0), "slowdowns must be >= 1");
        self.compute_slowdown = factors;
        self
    }

    fn arrivals(&self) -> ChunkArrivals {
        match self.mode {
            Mode::Baseline | Mode::Chained => self.pipeline.tree_arrivals(Overlap::None),
            Mode::OverlappedTree | Mode::CCube => {
                self.pipeline.tree_arrivals(Overlap::ReductionBroadcast)
            }
            // The timeline rolls the one-shot strategies; backward
            // overlap is priced by `backward_overlap_iteration` and gets
            // the ring's (everything-at-the-end) arrival curve here.
            Mode::Ring | Mode::BackwardOverlap => {
                ChunkArrivals::ring_uniform(self.pipeline.ring_time(), self.pipeline.num_chunks())
            }
        }
    }

    /// Runs `iterations` training iterations and returns the timeline.
    ///
    /// Every forward layer and backward pass is an event on the shared
    /// DES [`Kernel`]; GPUs are exclusive [`ComputeStream`]s. In the
    /// chained modes, layer `l` of iteration `i + 1` is gated on the
    /// arrival of its parameter chunks from iteration `i`'s collective;
    /// otherwise the whole forward pass waits for the collective to
    /// finish.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn run(&self, iterations: usize) -> TimelineReport {
        assert!(iterations > 0, "need at least one iteration");
        let p = self.compute_slowdown.len();
        let arrivals = self.arrivals();
        let table = self.pipeline.layer_chunk_table();
        let layer_fwd = self.pipeline.layer_fwd_times();
        let num_layers = layer_fwd.len();
        let t_bwd = self.pipeline.t_bwd();
        let comm_makespan = arrivals.last();
        let chained = self.mode.is_chained();

        let mut kernel: Kernel<Ev> = Kernel::new();
        let mut streams: Vec<ComputeStream> = self
            .compute_slowdown
            .iter()
            .map(|&f| ComputeStream::with_slowdown(f))
            .collect();

        // Forward passes run 0..=iterations; backward and the collective
        // run once per iteration 0..iterations.
        let mut last_fwd_done = vec![Seconds::ZERO; iterations + 1];
        let mut bwd_remaining = vec![p; iterations];
        let mut comm_start = vec![Seconds::ZERO; iterations];
        let mut comm_end = vec![Seconds::ZERO; iterations];

        // Iteration 0's forward pass runs unconstrained from t=0.
        for g in 0..p {
            schedule_layer(&mut kernel, &mut streams, layer_fwd, g, 0, 0, Seconds::ZERO);
        }

        while let Some((now, ev)) = kernel.pop() {
            match ev {
                Ev::LayerDone { gpu, pass, layer } => {
                    let g = gpu as usize;
                    let dur = streams[g].scale(layer_fwd[layer as usize]);
                    streams[g].release(dur);
                    let next = layer as usize + 1;
                    if next < num_layers {
                        // Chained modes gate each layer on its chunks'
                        // arrival; pass 0 and the one-shot modes only
                        // chain on the previous layer.
                        let gate = if pass > 0 && chained {
                            comm_start[pass as usize - 1] + arrivals.ready_after(table[next])
                        } else {
                            Seconds::ZERO
                        };
                        schedule_layer(
                            &mut kernel,
                            &mut streams,
                            layer_fwd,
                            g,
                            pass,
                            next as u32,
                            now.max(gate),
                        );
                    } else {
                        let pi = pass as usize;
                        last_fwd_done[pi] = last_fwd_done[pi].max(now);
                        if pi < iterations {
                            let b = streams[g].scale(t_bwd);
                            assert!(streams[g].acquire(u32::MAX), "stream busy at bwd");
                            let done = Ev::BwdDone { gpu, pass };
                            kernel.schedule(now + b, ev_key(done), done);
                        }
                    }
                }
                Ev::BwdDone { gpu, pass } => {
                    let g = gpu as usize;
                    let b = streams[g].scale(t_bwd);
                    streams[g].release(b);
                    let pi = pass as usize;
                    bwd_remaining[pi] -= 1;
                    if bwd_remaining[pi] == 0 {
                        // Synchronous barrier: the one-shot collective
                        // starts when the slowest GPU finishes backward —
                        // i.e. now, since events pop in time order.
                        comm_start[pi] = now;
                        let done = Ev::CommDone { pass };
                        kernel.schedule(now + comm_makespan, ev_key(done), done);
                        // Release every GPU into the next forward pass.
                        let gate = if chained {
                            now + arrivals.ready_after(table[0])
                        } else {
                            now + comm_makespan
                        };
                        for g2 in 0..p {
                            schedule_layer(
                                &mut kernel,
                                &mut streams,
                                layer_fwd,
                                g2,
                                pass + 1,
                                0,
                                gate,
                            );
                        }
                    }
                }
                Ev::CommDone { pass } => {
                    comm_end[pass as usize] = now;
                }
            }
        }

        let iteration_ends: Vec<Seconds> = (0..iterations)
            .map(|i| comm_end[i].max(last_fwd_done[i + 1]))
            .collect();
        TimelineReport {
            makespan: *iteration_ends.last().expect("at least one iteration"),
            iteration_ends,
            gpu_busy: streams.iter().map(|s| s.busy()).collect(),
        }
    }
}

/// Events of the multi-iteration roll-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
enum Ev {
    /// GPU `gpu` finished forward layer `layer` of pass `pass`.
    LayerDone { gpu: u32, pass: u32, layer: u32 },
    /// GPU `gpu` finished pass `pass`'s backward.
    BwdDone { gpu: u32, pass: u32 },
    /// Iteration `pass`'s collective delivered its last chunk.
    CommDone { pass: u32 },
}

/// Deterministic tie-break key: pass major, then GPU, then stage.
fn ev_key(ev: Ev) -> u64 {
    match ev {
        Ev::LayerDone { gpu, pass, layer } => {
            (u64::from(pass) << 32) | (u64::from(gpu) << 16) | u64::from(layer)
        }
        Ev::BwdDone { gpu, pass } => (u64::from(pass) << 32) | (u64::from(gpu) << 16) | 0xFFFF,
        Ev::CommDone { pass } => (u64::from(pass) << 32) | 0xFFFF_FFFF,
    }
}

/// Occupies `g`'s compute stream with layer `layer` of pass `pass`,
/// finishing `scaled duration` after `at`.
fn schedule_layer(
    kernel: &mut Kernel<Ev>,
    streams: &mut [ComputeStream],
    layer_fwd: &[Seconds],
    g: usize,
    pass: u32,
    layer: u32,
    at: Seconds,
) {
    let dur = streams[g].scale(layer_fwd[layer as usize]);
    assert!(
        streams[g].acquire(layer),
        "per-GPU forward layers are sequential"
    );
    let ev = Ev::LayerDone {
        gpu: g as u32,
        pass,
        layer,
    };
    kernel.schedule(at + dur, ev_key(ev), ev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_dnn::resnet50;

    fn pipeline() -> TrainingPipeline {
        TrainingPipeline::dgx1(&resnet50(), 64)
    }

    #[test]
    fn steady_state_matches_closed_form_for_homogeneous_gpus() {
        let p = pipeline();
        for mode in Mode::ALL {
            let report = TimelineSim::new(&p, mode, 8).run(6);
            let steady = report.steady_iteration_time().as_secs_f64();
            let closed = p.iteration(mode).t_iter.as_secs_f64();
            let rel = (steady - closed).abs() / closed;
            assert!(
                rel < 0.01,
                "{mode}: timeline {steady:.6}s vs closed form {closed:.6}s"
            );
        }
    }

    #[test]
    fn warmup_iteration_differs_from_steady_state() {
        let p = pipeline();
        let report = TimelineSim::new(&p, Mode::CCube, 8).run(5);
        let first = report.iteration_ends[0].as_secs_f64();
        let steady = report.steady_iteration_time().as_secs_f64();
        // Iteration 0 includes the unconstrained first forward pass, so
        // its span differs from the steady state.
        assert!((first - steady).abs() / steady > 1e-3);
    }

    #[test]
    fn detour_slowdown_drags_the_whole_synchronous_system() {
        let p = pipeline();
        let base = TimelineSim::new(&p, Mode::CCube, 8).run(4);
        // GPUs 1 and 7 forward detours at ~3.9% compute loss (Fig. 15).
        let mut factors = vec![1.0; 8];
        factors[1] = 1.039;
        factors[7] = 1.039;
        let slowed = TimelineSim::new(&p, Mode::CCube, 8)
            .with_slowdowns(factors)
            .run(4);
        let inflation = slowed.steady_iteration_time().as_secs_f64()
            / base.steady_iteration_time().as_secs_f64();
        // The synchronous barrier propagates the slowest GPU's loss to
        // everyone, but never more than the compute share of the
        // iteration.
        assert!(
            inflation > 1.005 && inflation < 1.04,
            "inflation {inflation}"
        );
        // The slowed GPUs are the busiest.
        assert!(slowed.gpu_busy[1] > slowed.gpu_busy[0]);
    }

    #[test]
    fn utilization_is_higher_for_chained_modes() {
        let p = pipeline();
        let cc = TimelineSim::new(&p, Mode::CCube, 8).run(4);
        let b = TimelineSim::new(&p, Mode::Baseline, 8).run(4);
        assert!(cc.gpu_utilization(0) > b.gpu_utilization(0));
        assert!(cc.gpu_utilization(0) <= 1.0);
    }

    #[test]
    fn report_accessors_are_consistent() {
        let p = pipeline();
        let report = TimelineSim::new(&p, Mode::Ring, 8).run(3);
        assert_eq!(report.iterations(), 3);
        assert_eq!(report.makespan, *report.iteration_ends.last().unwrap());
        assert!(report.mean_iteration_time() > Seconds::ZERO);
        // iteration boundaries are strictly increasing
        for w in report.iteration_ends.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
