//! # C-Cube: Chaining Collective Communication with Computation
//!
//! A full reproduction of *"Logical/Physical Topology-Aware Collective
//! Communication in Deep Learning Training"* (Jo, Son & Kim, KAIST —
//! HPCA 2023) as a Rust workspace. This crate is the top of the stack:
//! it combines
//!
//! * [`topology`] — physical machines: the DGX-1 hybrid mesh-cube with
//!   its doubled NVLinks, detour routing, and a hierarchical scale-out
//!   fabric;
//! * [`collectives`] — the logical algorithms: ring, tree, double binary
//!   tree, and the paper's **overlapped tree** (C1), as dependency-DAG
//!   schedules with α+β cost models (Eq. 1–7) and a symbolic correctness
//!   verifier;
//! * [`sim`] — a discrete-event simulator replaying schedules over
//!   topologies with per-channel contention (the stand-in for the real
//!   DGX-1 and for ASTRA-sim);
//! * [`dnn`] — analytical ZFNet / VGG-16 / ResNet-50 profiles and the
//!   MLPerf workload suite;
//! * [`runtime`] — a threaded functional executor with the paper's
//!   device-side `lock`/`post`/`wait`/`check` synchronization (Fig. 11)
//!   and **gradient queuing** (Fig. 9), computing real `f32` AllReduces;
//!
//! and adds the training-iteration [`pipeline`] — the five execution
//! modes the paper evaluates (`B`, `C1`, `C2`, `CC`, `R`) — plus one
//! [`experiments`] driver per figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use ccube::pipeline::{Mode, TrainingPipeline};
//! use ccube::prelude::*;
//!
//! // ResNet-50 on an 8-GPU DGX-1-like system, batch 64 per GPU.
//! let pipeline = TrainingPipeline::dgx1(&ccube_dnn::resnet50(), 64);
//! let baseline = pipeline.iteration(Mode::Baseline);
//! let ccube = pipeline.iteration(Mode::CCube);
//! assert!(ccube.t_iter < baseline.t_iter);
//! println!(
//!     "C-Cube speeds up the iteration by {:.1}%",
//!     (baseline.t_iter / ccube.t_iter - 1.0) * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod experiments;
pub mod lint;
pub mod pipeline;
pub mod systemjob;
pub mod timeline;

/// Re-export of `ccube-topology`.
pub use ccube_topology as topology;

/// Re-export of `ccube-collectives`.
pub use ccube_collectives as collectives;

/// Re-export of `ccube-sim`.
pub use ccube_sim as sim;

/// Re-export of `ccube-dnn`.
pub use ccube_dnn as dnn;

/// Re-export of `ccube-runtime`.
pub use ccube_runtime as runtime;

/// Convenient re-exports of the most commonly used items across the
/// whole workspace.
pub mod prelude {
    pub use crate::arrivals::ChunkArrivals;
    pub use crate::pipeline::{IterationReport, Mode, TrainingPipeline};
    pub use crate::timeline::{TimelineReport, TimelineSim};
    pub use ccube_collectives::prelude::*;
    pub use ccube_dnn::prelude::*;
    pub use ccube_runtime::prelude::*;
    pub use ccube_sim::prelude::*;
    pub use ccube_topology::prelude::*;
}
