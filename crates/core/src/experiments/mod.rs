//! One driver per figure of the paper's evaluation.
//!
//! Each submodule regenerates the data series of one figure of the paper
//! (workload generator, parameter sweep, baselines, and the rows the
//! paper plots). Absolute numbers come from our simulator/cost models
//! rather than the authors' DGX-1, so the *shapes* — who wins, by what
//! factor, where the crossovers sit — are the reproduction targets;
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! every figure.
//!
//! | module | paper figure | content |
//! |--------|--------------|---------|
//! | [`fig01`] | Fig. 1 | AllReduce share of execution time (MLPerf suite) |
//! | [`fig03`] | Fig. 3 | one-shot vs layer-wise vs slicing granularity |
//! | [`fig04`] | Fig. 4 | ring vs tree cost-model ratio over (P, N) |
//! | [`fig12`] | Fig. 12 | C1 vs B communication speedup on the DGX-1 (+model) |
//! | [`fig13`] | Fig. 13 | normalized overall performance of B/C1/C2/R/CC |
//! | [`fig14`] | Fig. 14 | scale-out C1 vs R and gradient-turnaround speedup |
//! | [`fig15`] | Fig. 15 | detour-node performance loss |
//! | [`fig16`] | Fig. 16 | communication/computation pattern cases |
//! | [`fig17`] | Fig. 17 | ResNet-50 per-layer parameters vs compute time |
//!
//! Beyond the paper, [`extensions`] adds three follow-up studies the
//! paper motivates: an NVSwitch-class alternative-topology comparison,
//! a detour-vs-PCIe quantification, and a chunk-count sensitivity sweep
//! validating Eq. 4 against the simulator — [`policy_search`]
//! brute-forces the best (chunk count, tree shape, arbitration)
//! schedule per topology over the sweep executor — [`resilience`]
//! stresses every mode under sampled fault plans (link flaps,
//! degradation, stragglers) at escalating severity — and
//! [`scaleout_fabric`] compares the NIC-channel approximation against
//! the componentized switch fabric (explicit NIC/switch agents,
//! per-port queues, uplink oversubscription) across hierarchical,
//! NVSwitch-class and 2-D torus scale-out topologies, including the
//! Fig. 14-style NVSwitch and torus sweeps.
//!
//! The `paper_figures` example runs every driver and writes one CSV per
//! figure. [`run_all`] fans the figures out across
//! [`ccube_sim::sweep()`] workers; because every driver is a pure
//! function, the CSVs are bit-identical at any worker count.

pub mod extensions;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod policy_search;
pub mod resilience;
pub mod scaleout_fabric;

use ccube_sim::NetworkModel;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A figure entry: output file name plus the driver rendering its CSV.
/// Drivers take the network model the DES-backed figures should run
/// under; cost-model-only figures ignore it, and the fabric comparison
/// figures sweep models internally.
type Figure = (&'static str, fn(NetworkModel) -> String);

/// The full figure table. Each driver runs serially inside one sweep
/// point; [`run_all`] parallelizes across the table.
const FIGURES: &[Figure] = &[
    (
        "fig01_allreduce_ratio.csv",
        |_| fig01::to_csv(&fig01::run()),
    ),
    ("fig03_granularity.csv", |_| fig03::to_csv(&fig03::run())),
    ("fig04_ring_vs_tree.csv", |_| fig04::to_csv(&fig04::run())),
    ("fig12_comm_overlap.csv", |net| {
        fig12::to_csv(&fig12::run_net(net))
    }),
    ("fig13_overall.csv", |_| fig13::to_csv(&fig13::run())),
    ("fig14_scaleout.csv", |net| {
        fig14::to_csv(&fig14::run_net(net))
    }),
    ("fig15_detour.csv", |net| {
        fig15::to_csv(&fig15::run_with_net(64, net))
    }),
    ("fig16_patterns.csv", |_| fig16::to_csv(&fig16::run())),
    ("fig17_resnet_layers.csv", |_| {
        fig17::to_csv(&fig17::run(64))
    }),
    ("ext_topology_study.csv", |_| {
        extensions::topology_to_csv(&extensions::topology_study())
    }),
    ("ext_detour_vs_host.csv", |_| {
        extensions::detour_to_csv(&extensions::detour_vs_host())
    }),
    ("ext_chunk_sensitivity.csv", |_| {
        extensions::chunk_to_csv(&extensions::chunk_sensitivity())
    }),
    ("ext_cosim_validation.csv", |_| {
        extensions::cosim_to_csv(&extensions::cosim_validation())
    }),
    ("ext_overlap_strategies.csv", |_| {
        extensions::strategy_to_csv(&extensions::overlap_strategy_study())
    }),
    ("ext_policy_search.csv", |_| {
        policy_search::to_csv(&policy_search::run())
    }),
    ("ext_resilience.csv", |net| {
        resilience::to_csv(&resilience::run_with_network(
            resilience::DEFAULT_SEED,
            1,
            net,
        ))
    }),
    ("ext_fabric_resilience.csv", |_| {
        resilience::fabric_to_csv(&resilience::run_fabric())
    }),
    ("ext_scaleout_fabric.csv", |_| {
        scaleout_fabric::fabric_to_csv(&scaleout_fabric::fabric_study())
    }),
    ("ext_nvswitch_sweep.csv", |_| {
        scaleout_fabric::sweep_to_csv(&scaleout_fabric::nvswitch_sweep())
    }),
    ("ext_torus_sweep.csv", |_| {
        scaleout_fabric::sweep_to_csv(&scaleout_fabric::torus_sweep())
    }),
];

/// Runs every experiment at its default configuration and writes one CSV
/// per figure into `dir` (created if missing), using every available
/// core. Returns the written paths.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing files.
pub fn run_all(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    run_all_with(dir, ccube_sim::available_threads())
}

/// [`run_all`] on an explicit worker count: the figure drivers are the
/// sweep points, so the CSVs come out bit-identical at any `threads`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing files.
pub fn run_all_with(dir: &Path, threads: usize) -> std::io::Result<Vec<PathBuf>> {
    run_all_with_network(dir, threads, NetworkModel::ChannelApprox)
}

/// [`run_all_with`] under an explicit network model: the DES-backed
/// figures (12/14/15 and the resilience study) rerun on that model
/// (`ccube figures --fabric switch`), while the cost-model figures and
/// the fabric comparison studies are unaffected. A passthrough switch
/// fabric reproduces the default CSVs byte-for-byte.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing files.
pub fn run_all_with_network(
    dir: &Path,
    threads: usize,
    network: NetworkModel,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let outputs = ccube_sim::sweep(FIGURES, threads, |_, &(name, driver)| {
        (name, driver(network))
    });
    let mut paths = Vec::new();
    for (name, csv) in outputs {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(csv.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_writes_every_figure() {
        // Unique per process so concurrently running test binaries (unit
        // + integration suites) never race on the same directory.
        let dir = std::env::temp_dir().join(format!("ccube_run_all_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = run_all(&dir).unwrap();
        assert_eq!(paths.len(), 20);
        for p in &paths {
            let content = std::fs::read_to_string(p).unwrap();
            assert!(content.lines().count() >= 2, "{p:?} has no data rows");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
